// fault_campaign — Monte Carlo fault-injection campaign over the CORDIC
// division design (paper Section IV-A), the co-simulation analog of a
// radiation-test SEU characterization. Samples N deterministic fault
// plans, runs each against the golden reference on a thread pool, and
// writes the vulnerability report (outcome totals plus per-site and
// per-mode histograms) as JSON.
//
// Usage:
//   fault_campaign [--experiments N] [--seed S] [--threads T]
//                  [--pes P] [--items N] [--json FILE]
//                  [--exec-tier {precise,predecode,dbt}]
//
// The report is byte-identical for the same (seed, experiments, design)
// at any --threads value; "--json none" disables file emission.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/cordic/cordic_app.hpp"
#include "common/stopwatch.hpp"
#include "fault/campaign.hpp"
#include "iss/exec_tier.hpp"

using namespace mbcosim;

namespace {

struct Options {
  u64 seed = 1;
  u32 experiments = 1000;
  unsigned threads = 0;
  unsigned num_pes = 4;
  unsigned items = 4;
  iss::ExecTier exec_tier = iss::ExecTier::kDbt;
  std::string json_path = "BENCH_fault_campaign.json";
};

bool parse_unsigned(const char* text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    u64 number = 0;
    if (arg == "--json" && value != nullptr) {
      options.json_path = std::strcmp(value, "none") == 0 ? "" : value;
      ++i;
    } else if (arg == "--exec-tier" && value != nullptr) {
      const auto tier = iss::parse_exec_tier(value);
      if (!tier) {
        std::fprintf(stderr,
                     "bad --exec-tier value: %s (expected precise, "
                     "predecode or dbt)\n",
                     value);
        return false;
      }
      options.exec_tier = *tier;
      ++i;
    } else if (value != nullptr && parse_unsigned(value, number)) {
      if (arg == "--experiments") {
        options.experiments = static_cast<u32>(number);
      } else if (arg == "--seed") {
        options.seed = number;
      } else if (arg == "--threads") {
        options.threads = static_cast<unsigned>(number);
      } else if (arg == "--pes") {
        options.num_pes = static_cast<unsigned>(number);
      } else if (arg == "--items") {
        options.items = static_cast<unsigned>(number);
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        return false;
      }
      ++i;
    } else {
      std::fprintf(stderr, "bad argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    std::fprintf(stderr,
                 "usage: fault_campaign [--experiments N] [--seed S]\n"
                 "                      [--threads T] [--pes P] [--items N]\n"
                 "                      [--json FILE]\n"
                 "                      [--exec-tier {precise,predecode,dbt}]\n");
    return 1;
  }

  apps::cordic::CordicRunConfig design;
  design.num_pes = options.num_pes;
  design.items = options.items;
  design.set_size = options.items;  // one FSL batch per run
  const auto [x, y] =
      apps::cordic::make_cordic_dataset(options.items, 0x51D);

  // Every experiment builds a fresh self-contained system; a non-null
  // plan is armed onto it before the run.
  const iss::ExecTier exec_tier = options.exec_tier;
  const fault::SystemFactory factory =
      [&design, &x, &y, exec_tier](const fault::FaultPlan* plan)
      -> Expected<sim::SimSystem> {
    Expected<sim::SimSystem> built =
        apps::cordic::make_cordic_system(design, x, y);
    if (!built.ok()) return built;
    sim::SimSystem system = std::move(built).value();
    // The tier knob rides through to every sampled system; outcomes are
    // tier-independent (execution tiers are bit-identical, DESIGN.md §12).
    system.cpu().set_exec_tier(exec_tier);
    if (plan != nullptr) {
      if (const Status status = system.arm_fault(*plan); !status.ok) {
        return Expected<sim::SimSystem>::failure(status.message);
      }
    }
    return system;
  };
  const fault::OutputExtractor extract = [&options](sim::SimSystem& system) {
    std::vector<Word> outputs;
    outputs.reserve(options.items);
    for (u32 i = 0; i < options.items; ++i) {
      outputs.push_back(system.word("results", i));
    }
    return outputs;
  };

  // Size the trigger window from the golden run so sampled cycles always
  // land inside the execution.
  fault::CampaignConfig config;
  config.seed = options.seed;
  config.experiments = options.experiments;
  config.threads = options.threads;
  config.max_cycles = Cycle{1} << 24;
  {
    const auto golden =
        fault::run_golden(factory, extract, config.max_cycles);
    if (!golden.ok()) {
      std::fprintf(stderr, "%s\n", golden.error().c_str());
      return 1;
    }
    config.space.max_trigger_cycle = golden.value().cycles;
  }
  config.space.mem_base = 0;
  config.space.mem_bytes = 4 * 1024;  // program text + data + results
  config.space.registers = 32;
  config.space.to_hw_channels = {0};
  config.space.from_hw_channels = {0};
  config.space.opb = false;

  std::printf("fault campaign: %u experiments, seed %llu, CORDIC P=%u "
              "(%u items)\n",
              options.experiments,
              static_cast<unsigned long long>(options.seed), options.num_pes,
              options.items);

  Stopwatch watch;
  const auto report = fault::run_campaign(config, factory, extract);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().c_str());
    return 1;
  }
  const double seconds = watch.elapsed_seconds();
  const fault::CampaignReport& result = report.value();

  std::printf("golden run: %llu cycles\n",
              static_cast<unsigned long long>(result.golden_cycles));
  std::printf("outcomes: masked %u, sdc %u, hang %u, trap %u"
              " (%u build failures) in %.2f s\n",
              result.total(fault::Outcome::kMasked),
              result.total(fault::Outcome::kSdc),
              result.total(fault::Outcome::kHang),
              result.total(fault::Outcome::kTrap), result.build_failures,
              seconds);

  if (!options.json_path.empty()) {
    std::FILE* out = std::fopen(options.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", options.json_path.c_str());
      return 1;
    }
    const std::string json = result.to_json();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote JSON report to %s\n", options.json_path.c_str());
  }
  return 0;
}
