// mbcserve — simulation-as-a-service daemon. Hosts a pool of
// co-simulation sessions behind the minimal HTTP+JSON protocol of
// src/server (DESIGN.md §13): create a session from a machine
// description, run it asynchronously, stream its telemetry, checkpoint
// it over the wire, attach gdb to its debug port, kill it. Everything
// mbcsim computes in batch is reachable here with identical results.
//
//   mbcserve --port 8080
//   curl -s localhost:8080/sessions -d '{"machine_file":"m.json"}'
//
// Shutdown: SIGINT/SIGTERM or POST /shutdown; with --state-dir the
// daemon drains gracefully (stops admitting, checkpoints running
// sessions, leaves journals on disk for --recover), otherwise live
// sessions are killed and the listener drained before exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "apps/machine_peripherals.hpp"
#include "common/types.hpp"
#include "server/http.hpp"
#include "server/service.hpp"

namespace {

using namespace mbcosim;

std::atomic<bool> g_shutdown{false};

void handle_signal(int) { g_shutdown.store(true); }

void usage() {
  std::fprintf(
      stderr,
      "usage: mbcserve [--port P] [--max-sessions N] [--worker-budget N]\n"
      "                [--control-quantum CYCLES] [--state-dir DIR]\n"
      "                [--recover] [--drain-timeout-ms MS]\n"
      "\n"
      "  --port P             listen on 127.0.0.1:P (default 0 = ephemeral)\n"
      "  --max-sessions N     concurrent session limit (default 8)\n"
      "  --worker-budget N    total worker-thread budget (default 2x cores)\n"
      "  --control-quantum C  cycles between session control points\n"
      "                       (default 100000)\n"
      "  --state-dir DIR      durable session journals under DIR; shutdown\n"
      "                       becomes a graceful drain\n"
      "  --recover            rebuild journaled sessions from --state-dir\n"
      "                       at startup\n"
      "  --drain-timeout-ms M bound on the per-session drain wait\n"
      "                       (default 5000)\n");
}

bool parse_u64(const char* text, u64& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  u64 port = 0;
  server::Service::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    u64 value = 0;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--recover") {
      options.recover = true;
      continue;
    }
    if (arg == "--state-dir") {
      if (!has_value) {
        std::fprintf(stderr, "option --state-dir requires a path argument\n");
        return 2;
      }
      options.state_dir = argv[++i];
      continue;
    }
    if (!has_value || !parse_u64(argv[i + 1], value)) {
      std::fprintf(stderr, "option %s requires a numeric argument\n",
                   arg.c_str());
      return 2;
    }
    ++i;
    if (arg == "--port" && value <= 65535) {
      port = value;
    } else if (arg == "--max-sessions" && value > 0) {
      options.limits.max_sessions = static_cast<std::size_t>(value);
    } else if (arg == "--worker-budget" && value > 0) {
      options.limits.worker_budget = static_cast<unsigned>(value);
    } else if (arg == "--control-quantum" && value > 0) {
      options.control_quantum = static_cast<Cycle>(value);
    } else if (arg == "--drain-timeout-ms") {
      options.drain_timeout_ms = value;
    } else {
      std::fprintf(stderr, "unknown option or bad value: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  apps::register_machine_peripherals();
  const bool durable = !options.state_dir.empty();
  options.on_shutdown = [] { g_shutdown.store(true); };
  server::Service service(std::move(options));

  server::SessionManager::RecoveryReport report;
  if (Status opened = service.init(&report); !opened.ok) {
    std::fprintf(stderr, "mbcserve: %s\n", opened.message.c_str());
    return 3;
  }
  for (const std::string& line : report.log) {
    std::fprintf(stderr, "mbcserve: recover: %s\n", line.c_str());
  }
  if (report.recovered > 0) {
    std::printf("mbcserve recovered %zu session(s)\n", report.recovered);
  }

  Expected<std::unique_ptr<server::HttpServer>> started =
      server::HttpServer::start(
          static_cast<u16>(port),
          [&service](const server::HttpRequest& request,
                     server::HttpResponseWriter& writer) {
            service.handle(request, writer);
          });
  if (!started) {
    std::fprintf(stderr, "mbcserve: %s\n", started.error().c_str());
    return 3;
  }
  std::unique_ptr<server::HttpServer> http = std::move(started).value();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("mbcserve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(http->port()));
  std::fflush(stdout);

  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (durable) {
    std::printf("mbcserve draining\n");
    std::fflush(stdout);
    // Checkpoints every running session and leaves its journal on disk
    // for a later --recover; streams end with {"stream":"draining"}.
    service.drain();
  } else {
    std::printf("mbcserve shutting down\n");
    std::fflush(stdout);
    service.manager().kill_all();  // ends every telemetry stream
  }
  http->stop();
  return 0;
}
