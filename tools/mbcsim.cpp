// mbcsim — command-line front end for the MB32 toolchain and simulators.
//
// Usage:
//   mbcsim [options] --machine machine.json     (declarative machine)
//   mbcsim [options] --cores N program.s        (replicated-core preset)
//   mbcsim [options] program.s                  (deprecated single-core shim)
//
// Machine options:
//   --machine FILE      build and run the machine described by FILE
//                       (MachineDesc JSON: cores, FSL links, peripherals;
//                       see examples/machines/). Mutually exclusive with
//                       a program.s argument and the per-core flags —
//                       those live in the machine file.
//   --cores N           preset: N identical cores running program.s
//                       (no cross-links), honoring the per-core flags
//   --workers N         host threads for the multi-core rounds (0 = one
//                       per hardware thread). Purely a host-performance
//                       knob: results are identical at every value.
//   --gdb-core N        core --gdb attaches the debugger to (default 0)
//
// Options:
//   --disasm            assemble and print the listing, do not run
//   --trace FILE        write a JSONL event log of the run to FILE
//                       ("-" = stdout): instruction retire/stall/halt/
//                       trap events plus FSL FIFO traffic
//   --vcd FILE          write a GTKWave-compatible waveform to FILE
//                       (ISS runs use the observability VCD sink; --rtl
//                       runs sample the pc/halted nets directly)
//   --metrics           print aggregated event counters and histograms
//                       after the run
//   --regs              dump the register file after the run
//   --mem ADDR COUNT    dump COUNT memory words starting at ADDR
//   --max-cycles N      cycle budget (default 100M)
//   --no-multiplier     processor configuration knobs
//   --no-barrel-shifter
//   --divider
//   --exec-tier TIER    processor execution tier: precise (decode every
//                       step), predecode (cached decode + batched
//                       dispatch) or dbt (superblock threaded code, the
//                       default). Cycle counts are identical across
//                       tiers (DESIGN.md §12)
//   --no-predecode      deprecated alias for --exec-tier precise
//   --rtl               run on the low-level RTL system instead of the
//                       ISS (no peripheral; for timing cross-checks)
//   --gdb PORT          do not run: serve one GDB Remote Serial Protocol
//                       session on 127.0.0.1:PORT (0 = ephemeral; the
//                       bound port is printed) and let the client drive
//                       execution (`gdb` + `target remote :PORT`)
//   --fault SPEC        inject one fault during the run, described by a
//                       comma-separated spec, e.g.
//                       "site=mem,mode=bitflip,cycle=1000,addr=0x120"
//                       (add "core=N" to target another machine core;
//                       see fault/fault_plan.hpp for the grammar)
//   --fault-seed S      seed deriving the fault's open parameters
//                       (which bit flips) when the spec leaves them unset
//
// Exit status: 0 = program halted normally, 2 = illegal instruction,
// 3 = cycle budget exhausted, 4 = deadlock, 1 = usage / assembly errors.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/machine_peripherals.hpp"
#include "asm/assembler.hpp"
#include "asm/objdump.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "iss/memory.hpp"
#include "iss/processor.hpp"
#include "machine/machine_desc.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_bus.hpp"
#include "obs/vcd_sink.hpp"
#include "rtl/vcd.hpp"
#include "rtlmodels/system_rtl.hpp"
#include "sim/sim_system.hpp"

using namespace mbcosim;

namespace {

struct Options {
  std::string source_path;
  std::string machine_path;
  std::size_t cores = 0;  ///< 0 = no --cores flag
  std::optional<unsigned> workers;
  std::optional<std::size_t> gdb_core;
  bool disasm_only = false;
  bool metrics = false;
  bool dump_regs = false;
  bool use_rtl = false;
  std::string trace_path;
  std::string vcd_path;
  std::vector<std::pair<Addr, u32>> memory_dumps;
  Cycle max_cycles = 100'000'000;
  iss::ExecTier exec_tier = iss::ExecTier::kDbt;
  std::optional<u16> gdb_port;
  std::string fault_spec;
  u64 fault_seed = 1;
  std::string save_ckpt_path;  ///< write a snapshot after the run stops
  std::string load_ckpt_path;  ///< restore a snapshot before running
  isa::CpuConfig cpu;
  /// First per-core configuration flag seen, for the --machine
  /// contradiction diagnostic.
  std::string per_core_flag;
};

void usage() {
  std::fprintf(stderr,
               "usage: mbcsim [--machine FILE | [--cores N] program.s]\n"
               "              [--workers N] [--gdb-core N]\n"
               "              [--disasm] [--trace FILE] [--vcd FILE]\n"
               "              [--metrics] [--regs] [--mem ADDR COUNT]\n"
               "              [--max-cycles N] [--no-multiplier]\n"
               "              [--no-barrel-shifter] [--divider] [--rtl]\n"
               "              [--exec-tier {precise,predecode,dbt}]\n"
               "              [--no-predecode] [--gdb PORT]\n"
               "              [--fault SPEC] [--fault-seed S]\n"
               "              [--save-ckpt FILE] [--load-ckpt FILE]\n");
}

bool parse_u64(const char* text, u64& out) {
  std::string_view body = text;
  int base = 10;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body.remove_prefix(2);
  }
  const auto* end = body.data() + body.size();
  const auto result = std::from_chars(body.data(), end, out, base);
  return result.ec == std::errc{} && result.ptr == end;
}

/// The value of a flag that takes one; null (with a diagnostic) when the
/// command line ends before it.
const char* flag_value(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "option %s requires an argument\n", flag.c_str());
    return nullptr;
  }
  return argv[++i];
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--disasm") {
      options.disasm_only = true;
    } else if (arg == "--machine") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.machine_path = value;
    } else if (arg == "--cores") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 parsed = 0;
      if (value == nullptr || !parse_u64(value, parsed) || parsed == 0) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --cores value: %s\n", value);
        }
        return false;
      }
      options.cores = static_cast<std::size_t>(parsed);
    } else if (arg == "--workers") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 parsed = 0;
      if (value == nullptr || !parse_u64(value, parsed) || parsed > 1024) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --workers value: %s\n", value);
        }
        return false;
      }
      options.workers = static_cast<unsigned>(parsed);
    } else if (arg == "--gdb-core") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 parsed = 0;
      if (value == nullptr || !parse_u64(value, parsed)) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --gdb-core value: %s\n", value);
        }
        return false;
      }
      options.gdb_core = static_cast<std::size_t>(parsed);
    } else if (arg == "--trace") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.trace_path = value;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--regs") {
      options.dump_regs = true;
    } else if (arg == "--rtl") {
      options.use_rtl = true;
    } else if (arg == "--no-multiplier") {
      options.cpu.has_multiplier = false;
      if (options.per_core_flag.empty()) options.per_core_flag = arg;
    } else if (arg == "--no-barrel-shifter") {
      options.cpu.has_barrel_shifter = false;
      if (options.per_core_flag.empty()) options.per_core_flag = arg;
    } else if (arg == "--divider") {
      options.cpu.has_divider = true;
      if (options.per_core_flag.empty()) options.per_core_flag = arg;
    } else if (arg == "--exec-tier") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      const auto tier = iss::parse_exec_tier(value);
      if (!tier) {
        std::fprintf(stderr,
                     "bad --exec-tier value: %s (expected precise, "
                     "predecode or dbt)\n",
                     value);
        return false;
      }
      options.exec_tier = *tier;
      if (options.per_core_flag.empty()) options.per_core_flag = arg;
    } else if (arg == "--no-predecode") {
      std::fprintf(stderr,
                   "mbcsim: --no-predecode is deprecated; use "
                   "--exec-tier precise\n");
      options.exec_tier = iss::ExecTier::kPrecise;
      if (options.per_core_flag.empty()) options.per_core_flag = arg;
    } else if (arg == "--vcd") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.vcd_path = value;
    } else if (arg == "--max-cycles") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 parsed = 0;
      if (value == nullptr || !parse_u64(value, parsed)) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --max-cycles value: %s\n", value);
        }
        return false;
      }
      options.max_cycles = parsed;
    } else if (arg == "--gdb") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 port = 0;
      if (value == nullptr || !parse_u64(value, port) || port > 65535) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --gdb port: %s\n", value);
        }
        return false;
      }
      options.gdb_port = static_cast<u16>(port);
    } else if (arg == "--fault") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.fault_spec = value;
    } else if (arg == "--fault-seed") {
      const char* value = flag_value(argc, argv, i, arg);
      u64 parsed = 0;
      if (value == nullptr || !parse_u64(value, parsed)) {
        if (value != nullptr) {
          std::fprintf(stderr, "bad --fault-seed value: %s\n", value);
        }
        return false;
      }
      options.fault_seed = parsed;
    } else if (arg == "--save-ckpt") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.save_ckpt_path = value;
    } else if (arg == "--load-ckpt") {
      const char* value = flag_value(argc, argv, i, arg);
      if (value == nullptr) return false;
      options.load_ckpt_path = value;
    } else if (arg == "--mem") {
      const char* addr_text = flag_value(argc, argv, i, arg);
      const char* count_text =
          addr_text == nullptr ? nullptr : flag_value(argc, argv, i, arg);
      u64 addr = 0;
      u64 count = 0;
      if (count_text == nullptr || !parse_u64(addr_text, addr) ||
          !parse_u64(count_text, count)) {
        if (count_text != nullptr) {
          std::fprintf(stderr, "bad --mem arguments: %s %s\n", addr_text,
                       count_text);
        }
        return false;
      }
      options.memory_dumps.emplace_back(static_cast<Addr>(addr),
                                        static_cast<u32>(count));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else if (options.source_path.empty()) {
      options.source_path = arg;
    } else {
      std::fprintf(stderr, "unexpected extra argument: %s\n", arg.c_str());
      return false;
    }
  }
  // Mode resolution + contradiction diagnostics: the machine file is
  // the single source of truth for everything per-core, so mixing it
  // with the legacy per-core surface is rejected, not merged.
  const bool machine_mode = !options.machine_path.empty() || options.cores > 0;
  if (!options.machine_path.empty()) {
    if (!options.source_path.empty()) {
      std::fprintf(stderr,
                   "--machine and a program.s argument are mutually "
                   "exclusive: core programs come from the machine file\n");
      return false;
    }
    if (options.cores > 0) {
      std::fprintf(stderr,
                   "--machine and --cores are mutually exclusive: the "
                   "machine file fixes the core count\n");
      return false;
    }
    if (!options.per_core_flag.empty()) {
      std::fprintf(stderr,
                   "--machine and %s are mutually exclusive: per-core "
                   "options come from the machine file\n",
                   options.per_core_flag.c_str());
      return false;
    }
    if (options.disasm_only) {
      std::fprintf(stderr, "--disasm takes a program.s, not --machine\n");
      return false;
    }
  } else if (options.source_path.empty()) {
    std::fprintf(stderr, "no program file given\n");
    return false;
  }
  if ((!options.save_ckpt_path.empty() || !options.load_ckpt_path.empty()) &&
      !machine_mode) {
    std::fprintf(stderr,
                 "--save-ckpt/--load-ckpt require --machine or --cores "
                 "(snapshots cover the full SimSystem)\n");
    return false;
  }
  if (machine_mode && options.use_rtl) {
    std::fprintf(stderr,
                 "--rtl supports only the single-core command line "
                 "(no --machine/--cores)\n");
    return false;
  }
  if (options.workers && !machine_mode) {
    std::fprintf(stderr, "--workers requires --machine or --cores\n");
    return false;
  }
  if (options.gdb_core) {
    if (!options.gdb_port) {
      std::fprintf(stderr, "--gdb-core requires --gdb PORT\n");
      return false;
    }
    if (!machine_mode) {
      std::fprintf(stderr, "--gdb-core requires --machine or --cores\n");
      return false;
    }
  }
  return true;
}

void dump_memory(const Options& options, iss::LmbMemory& memory) {
  for (const auto& [addr, count] : options.memory_dumps) {
    for (u32 i = 0; i < count; ++i) {
      const Addr a = addr + 4 * i;
      if (!memory.contains(a, 4)) {
        std::printf("  0x%08x: <out of range>\n", a);
        break;
      }
      std::printf("  0x%08x: 0x%08x  (%d)\n", a, memory.read_word(a),
                  static_cast<i32>(memory.read_word(a)));
    }
  }
}

int run_on_iss(const Options& options, const assembler::Program& program) {
  iss::LmbMemory memory;
  memory.load_program(program);
  fsl::FslHub hub;
  iss::Processor cpu(options.cpu, memory, &hub);
  cpu.set_exec_tier(options.exec_tier);

  // Observability: one bus feeding whatever sinks the flags asked for.
  obs::TraceBus bus;
  obs::MetricsRegistry* metrics = nullptr;
  if (!options.trace_path.empty()) {
    auto sink = options.trace_path == "-"
                    ? std::make_unique<obs::JsonlSink>(std::cout)
                    : std::make_unique<obs::JsonlSink>(options.trace_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", options.trace_path.c_str());
      return 1;
    }
    sink->set_disassembler(
        [](Addr, Word raw) { return isa::disassemble(raw); });
    bus.add_sink(std::move(sink));
  }
  if (!options.vcd_path.empty()) {
    auto sink = std::make_unique<obs::VcdSink>(options.vcd_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open %s\n", options.vcd_path.c_str());
      return 1;
    }
    bus.add_sink(std::move(sink));
  }
  if (options.metrics) {
    auto registry = std::make_unique<obs::MetricsRegistry>();
    metrics = registry.get();
    bus.add_sink(std::move(registry));
  }
  if (bus.enabled()) {
    cpu.set_trace_bus(&bus);
    hub.set_trace_bus(&bus);
  }

  cpu.reset(program.entry());
  const iss::Event event = cpu.run(options.max_cycles);
  bus.flush();

  const auto& stats = cpu.stats();
  std::printf("stopped: %s after %llu cycles (%.2f usec @ 50 MHz), "
              "%llu instructions\n",
              event == iss::Event::kHalted    ? "halted"
              : event == iss::Event::kIllegal ? "illegal instruction"
                                              : "cycle budget exhausted",
              static_cast<unsigned long long>(stats.cycles),
              cycles_to_usec(stats.cycles),
              static_cast<unsigned long long>(stats.instructions));
  if (!options.vcd_path.empty()) {
    std::printf("wrote waveform to %s\n", options.vcd_path.c_str());
  }
  if (metrics != nullptr) {
    std::printf("%s", metrics->snapshot().to_string().c_str());
  }
  if (options.dump_regs) {
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      std::printf("  r%-2u = 0x%08x%s", r, cpu.reg(r),
                  (r % 4 == 3) ? "\n" : "  ");
    }
  }
  dump_memory(options, memory);
  if (event == iss::Event::kHalted) return 0;
  return event == iss::Event::kIllegal ? 2 : 3;
}

/// Report facilities shared by the SimSystem-based run modes: the
/// structured deadlock diagnosis and any trace-sink I/O failure.
void report_system_health(sim::SimSystem& system) {
  if (const auto diagnosis = system.deadlock_diagnosis(); diagnosis) {
    std::printf("%s\n", diagnosis->to_string().c_str());
  }
  if (const Status sinks = system.sink_status(); !sinks.ok) {
    std::fprintf(stderr, "warning: %s\n", sinks.message.c_str());
  }
}

int run_fault(const Options& options, const assembler::Program& program) {
  const Expected<fault::FaultPlan> parsed =
      fault::parse_plan(options.fault_spec, options.fault_seed);
  if (!parsed) {
    std::fprintf(stderr, "%s\n", parsed.error().c_str());
    return 1;
  }
  std::printf("fault plan: %s\n", parsed.value().to_string().c_str());

  sim::SimSystem::Builder builder;
  builder.program(program)
      .cpu_config(options.cpu)
      .exec_tier(options.exec_tier)
      .fault(parsed.value());
  if (!options.trace_path.empty()) builder.trace(options.trace_path);
  if (!options.vcd_path.empty()) builder.vcd(options.vcd_path);
  if (options.metrics) builder.metrics();
  Expected<sim::SimSystem> built = builder.build();
  if (!built) {
    std::fprintf(stderr, "%s\n", built.error().c_str());
    return 1;
  }
  sim::SimSystem system = std::move(built).value();

  const core::StopReason reason = system.run(options.max_cycles);
  const core::CoSimStats stats = system.stats();
  std::printf("stopped: %s after %llu cycles (%.2f usec @ 50 MHz), "
              "%llu instructions\n",
              core::stop_reason_name(reason),
              static_cast<unsigned long long>(stats.cycles),
              cycles_to_usec(stats.cycles),
              static_cast<unsigned long long>(stats.instructions));
  if (const fault::Injector* injector = system.fault_injector();
      injector != nullptr && injector->armed_or_fired()) {
    std::printf("fault: %s\n", injector->detail().empty()
                                   ? "armed (did not fire)"
                                   : injector->detail().c_str());
  } else {
    std::printf("fault: trigger not reached\n");
  }
  report_system_health(system);
  if (options.metrics) {
    std::printf("%s", system.metrics_snapshot().to_string().c_str());
  }
  if (options.dump_regs) {
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      std::printf("  r%-2u = 0x%08x%s", r, system.cpu().reg(r),
                  (r % 4 == 3) ? "\n" : "  ");
    }
  }
  dump_memory(options, system.memory());
  switch (reason) {
    case core::StopReason::kHalted: return 0;
    case core::StopReason::kIllegal: return 2;
    case core::StopReason::kCycleLimit: return 3;
    case core::StopReason::kDeadlock: return 4;
  }
  return 1;
}

int run_gdb(const Options& options, const assembler::Program& program) {
  sim::SimSystem::Builder builder;
  builder.program(program)
      .cpu_config(options.cpu)
      .exec_tier(options.exec_tier);
  if (!options.trace_path.empty()) builder.trace(options.trace_path);
  if (!options.vcd_path.empty()) builder.vcd(options.vcd_path);
  if (options.metrics) builder.metrics();
  Expected<sim::SimSystem> built = builder.build();
  if (!built) {
    std::fprintf(stderr, "%s\n", built.error().c_str());
    return 1;
  }
  sim::SimSystem system = std::move(built).value();

  const Expected<rsp::SessionEnd> end =
      system.serve_gdb(*options.gdb_port, [](u16 port) {
        std::printf("gdb server listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(port));
        std::fflush(stdout);
      });
  if (!end) {
    std::fprintf(stderr, "%s\n", end.error().c_str());
    return 1;
  }

  const core::CoSimStats stats = system.stats();
  std::printf("gdb client %s after %llu cycles (%.2f usec @ 50 MHz), "
              "%llu instructions\n",
              rsp::to_string(end.value()),
              static_cast<unsigned long long>(stats.cycles),
              cycles_to_usec(stats.cycles),
              static_cast<unsigned long long>(stats.instructions));
  report_system_health(system);
  if (options.metrics) {
    std::printf("%s", system.metrics_snapshot().to_string().c_str());
  }
  if (options.dump_regs) {
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      std::printf("  r%-2u = 0x%08x%s", r, system.cpu().reg(r),
                  (r % 4 == 3) ? "\n" : "  ");
    }
  }
  dump_memory(options, system.memory());
  return 0;
}

int exit_code(core::StopReason reason) {
  switch (reason) {
    case core::StopReason::kHalted: return 0;
    case core::StopReason::kIllegal: return 2;
    case core::StopReason::kCycleLimit: return 3;
    case core::StopReason::kDeadlock: return 4;
  }
  return 1;
}

void dump_machine_regs(sim::SimSystem& system) {
  for (std::size_t c = 0; c < system.core_count(); ++c) {
    if (system.core_count() > 1) {
      std::printf("%s:\n", system.core_name(c).c_str());
    }
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      std::printf("  r%-2u = 0x%08x%s", r, system.cpu(c).reg(r),
                  (r % 4 == 3) ? "\n" : "  ");
    }
  }
}

/// The --machine / --cores run mode: build the described machine and
/// run (or debug) it, reporting machine totals plus per-core figures.
int run_machine(const Options& options, machine::MachineDesc desc) {
  apps::register_machine_peripherals();
  std::printf("machine: %zu core(s), %zu link(s), %zu peripheral(s), "
              "quantum %llu, fifo depth %zu\n",
              desc.cores.size(), desc.links.size(), desc.peripherals.size(),
              static_cast<unsigned long long>(desc.quantum), desc.fifo_depth);

  std::optional<fault::FaultPlan> plan;
  if (!options.fault_spec.empty()) {
    const Expected<fault::FaultPlan> parsed =
        fault::parse_plan(options.fault_spec, options.fault_seed);
    if (!parsed) {
      std::fprintf(stderr, "%s\n", parsed.error().c_str());
      return 1;
    }
    plan = parsed.value();
    std::printf("fault plan: %s\n", plan->to_string().c_str());
  }

  sim::SimSystem::Builder builder;
  builder.machine(std::move(desc));
  if (options.workers) builder.workers(*options.workers);
  if (options.gdb_core) builder.gdb_core(*options.gdb_core);
  if (plan) builder.fault(*plan);
  if (!options.trace_path.empty()) builder.trace(options.trace_path);
  if (!options.vcd_path.empty()) builder.vcd(options.vcd_path);
  if (options.metrics) builder.metrics();
  Expected<sim::SimSystem> built = builder.build();
  if (!built) {
    std::fprintf(stderr, "%s\n", built.error().c_str());
    return 1;
  }
  sim::SimSystem system = std::move(built).value();

  // Checkpoint chatter goes to stderr, so a restored run's stdout stays
  // byte-identical to the tail of a free run's (the CI replay diff
  // depends on that).
  if (!options.load_ckpt_path.empty()) {
    if (const Status restored = system.restore(options.load_ckpt_path);
        !restored.ok) {
      std::fprintf(stderr, "%s\n", restored.message.c_str());
      return 1;
    }
    std::fprintf(stderr, "restored checkpoint from %s\n",
                 options.load_ckpt_path.c_str());
  }

  int code = 0;
  if (options.gdb_port) {
    const Expected<rsp::SessionEnd> end =
        system.serve_gdb(*options.gdb_port, [](u16 port) {
          std::printf("gdb server listening on 127.0.0.1:%u\n",
                      static_cast<unsigned>(port));
          std::fflush(stdout);
        });
    if (!end) {
      std::fprintf(stderr, "%s\n", end.error().c_str());
      return 1;
    }
    std::printf("gdb client %s\n", rsp::to_string(end.value()));
  } else {
    const core::StopReason reason = system.run(options.max_cycles);
    const core::CoSimStats total = system.stats();
    std::printf("stopped: %s", core::stop_reason_name(reason));
    if (system.core_count() > 1 &&
        (reason == core::StopReason::kIllegal ||
         reason == core::StopReason::kDeadlock ||
         reason == core::StopReason::kHalted) &&
        system.stop_core() < system.core_count()) {
      // For kHalted this is the last core to halt, not a culprit.
      std::printf(" (core '%s')",
                  system.core_name(system.stop_core()).c_str());
    }
    std::printf(" after %llu cycles (%.2f usec @ 50 MHz), "
                "%llu instructions",
                static_cast<unsigned long long>(total.cycles),
                cycles_to_usec(total.cycles),
                static_cast<unsigned long long>(total.instructions));
    if (const core::ManyCoreEngine* engine = system.machine_engine()) {
      std::printf(", %llu link words",
                  static_cast<unsigned long long>(engine->link_words()));
    }
    std::printf("\n");
    code = exit_code(reason);
    if (!options.save_ckpt_path.empty()) {
      if (const Status saved = system.save_checkpoint(options.save_ckpt_path);
          !saved.ok) {
        std::fprintf(stderr, "%s\n", saved.message.c_str());
        return 1;
      }
      std::fprintf(stderr, "saved checkpoint to %s\n",
                   options.save_ckpt_path.c_str());
    }
  }

  if (system.core_count() > 1) {
    for (std::size_t c = 0; c < system.core_count(); ++c) {
      const core::CoSimStats stats = system.core_stats(c);
      std::printf("  %s: %llu cycles, %llu instructions, "
                  "%llu fsl-stall cycles\n",
                  system.core_name(c).c_str(),
                  static_cast<unsigned long long>(stats.cycles),
                  static_cast<unsigned long long>(stats.instructions),
                  static_cast<unsigned long long>(stats.fsl_stall_cycles));
    }
  }
  if (plan) {
    if (const fault::Injector* injector = system.fault_injector();
        injector != nullptr && injector->armed_or_fired()) {
      std::printf("fault: %s\n", injector->detail().empty()
                                     ? "armed (did not fire)"
                                     : injector->detail().c_str());
    } else {
      std::printf("fault: trigger not reached\n");
    }
  }
  if (const auto diagnosis = system.deadlock_diagnosis(); diagnosis) {
    if (const core::ManyCoreEngine* engine = system.machine_engine()) {
      std::printf("core '%s': ",
                  system.core_name(engine->deadlock_core()).c_str());
    }
    std::printf("%s\n", diagnosis->to_string().c_str());
  }
  if (const Status sinks = system.sink_status(); !sinks.ok) {
    std::fprintf(stderr, "warning: %s\n", sinks.message.c_str());
  }
  if (options.metrics) {
    std::printf("%s", system.metrics_snapshot().to_string().c_str());
  }
  if (options.dump_regs) dump_machine_regs(system);
  dump_memory(options, system.memory());
  return code;
}

int run_on_rtl(const Options& options, const assembler::Program& program) {
  rtlmodels::RtlSystem rtl(program, options.cpu,
                           rtlmodels::RtlPeripheralConfig{});
  rtlmodels::RtlStopReason reason = rtlmodels::RtlStopReason::kCycleLimit;
  if (!options.vcd_path.empty()) {
    std::ofstream vcd_file(options.vcd_path);
    if (!vcd_file) {
      std::fprintf(stderr, "cannot open %s\n", options.vcd_path.c_str());
      return 1;
    }
    // Observe the architectural-state nets plus a few datapath buses.
    std::vector<const rtl::Net*> probes;
    for (const char* name : {"clk", "cpu.pc", "cpu.halted", "cpu.op_a",
                             "cpu.op_b", "cpu.result", "cpu.msr", "cpu.r3",
                             "cpu.r4", "cpu.r5"}) {
      if (const rtl::Net* net = rtl.simulator().find_net(name)) {
        probes.push_back(net);
      }
    }
    rtl::VcdWriter vcd(vcd_file, probes);
    // Tick manually so every clock cycle lands in the waveform.
    Cycle cycle = 0;
    while (!rtl.core().halted() && cycle < options.max_cycles) {
      rtl.tick();
      vcd.sample(cycle++);
    }
    reason = rtl.core().illegal() ? rtlmodels::RtlStopReason::kIllegal
             : rtl.core().halted() ? rtlmodels::RtlStopReason::kHalted
                                   : rtlmodels::RtlStopReason::kCycleLimit;
    std::printf("wrote %llu waveform samples to %s\n",
                static_cast<unsigned long long>(vcd.samples_taken()),
                options.vcd_path.c_str());
  } else {
    reason = rtl.run(options.max_cycles);
  }
  std::printf("RTL stopped: %s after %llu cycles; kernel: %llu events, "
              "%llu activations, %llu delta cycles\n",
              reason == rtlmodels::RtlStopReason::kHalted ? "halted"
              : reason == rtlmodels::RtlStopReason::kIllegal
                  ? "illegal instruction"
                  : "cycle budget exhausted",
              static_cast<unsigned long long>(rtl.cycles()),
              static_cast<unsigned long long>(rtl.kernel_stats().events),
              static_cast<unsigned long long>(
                  rtl.kernel_stats().process_activations),
              static_cast<unsigned long long>(
                  rtl.kernel_stats().delta_cycles));
  if (options.dump_regs) {
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      std::printf("  r%-2u = 0x%08x%s", r, rtl.core().reg_value(r),
                  (r % 4 == 3) ? "\n" : "  ");
    }
  }
  dump_memory(options, rtl.memory());
  if (reason == rtlmodels::RtlStopReason::kHalted) return 0;
  return reason == rtlmodels::RtlStopReason::kIllegal ? 2 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    usage();
    return 1;
  }

  if (!options.machine_path.empty()) {
    Expected<machine::MachineDesc> desc =
        machine::MachineDesc::from_file(options.machine_path);
    if (!desc) {
      std::fprintf(stderr, "%s\n", desc.error().c_str());
      return 1;
    }
    try {
      return run_machine(options, std::move(desc).value());
    } catch (const SimError& error) {
      std::fprintf(stderr, "simulation error: %s\n", error.what());
      return 1;
    }
  }

  std::ifstream file(options.source_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", options.source_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  const auto assembled = assembler::assemble(buffer.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s: assembly failed:\n%s\n",
                 options.source_path.c_str(), assembled.error().c_str());
    return 1;
  }
  const assembler::Program& program = assembled.value();
  const auto summary = assembler::summarize(program);
  std::printf("%s: %u bytes (%u instructions, %u data words), %u BRAM(s)\n",
              options.source_path.c_str(), summary.size_bytes,
              summary.instruction_words, summary.data_words,
              assembler::brams_for_program(program));

  if (options.disasm_only) {
    std::printf("%s", assembler::listing(program).c_str());
    return 0;
  }
  try {
    if (options.cores > 0) {
      machine::CoreDesc core_template;
      core_template.program = buffer.str();
      core_template.has_multiplier = options.cpu.has_multiplier;
      core_template.has_barrel_shifter = options.cpu.has_barrel_shifter;
      core_template.has_divider = options.cpu.has_divider;
      core_template.predecode = options.exec_tier != iss::ExecTier::kPrecise;
      core_template.exec_tier = options.exec_tier;
      return run_machine(options, machine::MachineDesc::replicated(
                                      options.cores,
                                      std::move(core_template)));
    }
    std::fprintf(stderr,
                 "note: the single-core command line is a deprecated shim; "
                 "prefer --machine FILE (see examples/machines/)\n");
    if (options.gdb_port) return run_gdb(options, program);
    if (!options.fault_spec.empty()) {
      if (options.use_rtl) {
        std::fprintf(stderr, "--fault is not supported with --rtl\n");
        return 1;
      }
      return run_fault(options, program);
    }
    return options.use_rtl ? run_on_rtl(options, program)
                           : run_on_iss(options, program);
  } catch (const SimError& error) {
    std::fprintf(stderr, "simulation error: %s\n", error.what());
    return 1;
  }
}
