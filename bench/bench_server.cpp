// Server durability bench: what does the session journal cost? A hosted
// session on a scaled-up 3-core CORDIC farm runs to halt three ways —
// journal off, journal at the default checkpoint interval, journal at
// an aggressive interval — and the wall-clock overhead of each journaled
// run over the baseline is reported against the <5% budget DESIGN.md
// §14 promises for the default interval. Journaling must also be
// invisible in the results: the bench diffs the stats page of every
// journaled run against the baseline and exits 1 on any mismatch (the
// correctness oracle, same role the report diff plays in bench_ckpt).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "bench_common.hpp"
#include "apps/machine_peripherals.hpp"
#include "common/stopwatch.hpp"
#include "machine/machine_desc.hpp"
#include "server/journal.hpp"
#include "server/session.hpp"

namespace {

using namespace mbcosim;

/// Rounds of the farm's 8-item dataset the feeder streams. The checked-in
/// examples/machines/cordic_farm.json halts after one round (~340
/// cycles); the bench loops the same dataset so one hosted run crosses
/// the default checkpoint interval (~1.1M cycles at ~224 cycles/round
/// once rounds overlap in the pipeline) while staying a few seconds per
/// run — the farm's stall-heavy FSL schedule simulates at a few hundred
/// kHz, far below single-core DBT speeds.
constexpr unsigned kRounds = 5'000;

constexpr Cycle kControlQuantum = 50'000;   // same for every variant
constexpr Cycle kDefaultCkptEvery = 1'000'000;
constexpr Cycle kAggressiveCkptEvery = 100'000;
constexpr Cycle kRunForever = Cycle{1} << 36;
constexpr int kRepeats = 3;  // min-of-N wall clock

/// The examples/machines CORDIC farm with a round counter wrapped around
/// each core's loop: feeder streams the 8-pair dataset kRounds times,
/// the worker runs 2 sets of 4 per round, the collector overwrites the
/// same 8-word result buffer each round. Same topology, same 16-PE
/// pipeline, ~340 cycles per round.
machine::MachineDesc farm_desc(unsigned rounds) {
  const std::string count = std::to_string(rounds);
  machine::MachineDesc desc;
  desc.quantum = 64;
  desc.fifo_depth = 16;

  machine::CoreDesc feeder;
  feeder.name = "feeder";
  feeder.program = R"(
start:
  li r25, )" + count + R"(
round_loop:
  la r21, data_x
  la r22, data_y
  li r29, 32              # 8 items * 4 bytes
  addk r10, r0, r0
item_loop:
  lw r3, r21, r10
  put r3, rfsl1           # X (divisor)
  lw r4, r22, r10
  put r4, rfsl1           # Y (dividend)
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, item_loop
  addik r25, r25, -1
  bnei r25, round_loop
  halt

data_x:                   # divisors, Fix32_24
  .word 0x01000000
  .word 0x02000000
  .word 0x01800000
  .word 0x04000000
  .word 0x01000000
  .word 0x03000000
  .word 0x01400000
  .word 0x02800000
data_y:                   # dividends, Fix32_24
  .word 0x00800000
  .word 0x03000000
  .word 0x00c00000
  .word 0x01000000
  .word 0xff800000
  .word 0x02000000
  .word 0x01000000
  .word 0x00a00000
)";

  machine::CoreDesc worker;
  worker.name = "worker";
  worker.program = R"(
start:
  li r25, )" + count + R"(
round_loop:
  li r20, 2               # sets of 4 items per round
set_loop:
  cput r0, rfsl0          # control word: initial shift amount s0 = 0
  li r5, 4
send_loop:
  get r3, rfsl1           # X from the feeder
  put r3, rfsl0
  get r3, rfsl1           # Y from the feeder
  put r3, rfsl0
  put r0, rfsl0           # Z = 0
  addik r5, r5, -1
  bnei r5, send_loop
  li r5, 4
recv_loop:
  get r3, rfsl0           # X out (discarded)
  get r3, rfsl0           # Y residue (discarded)
  get r3, rfsl0           # Z out = quotient
  put r3, rfsl2           # forward to the collector
  addik r5, r5, -1
  bnei r5, recv_loop
  addik r20, r20, -1
  bnei r20, set_loop
  addik r25, r25, -1
  bnei r25, round_loop
  halt
)";

  machine::CoreDesc collector;
  collector.name = "collector";
  collector.program = R"(
start:
  li r25, )" + count + R"(
round_loop:
  la r28, results
  li r29, 32              # 8 quotients * 4 bytes
  addk r10, r0, r0
store_loop:
  get r3, rfsl1
  sw r3, r28, r10
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, store_loop
  addik r25, r25, -1
  bnei r25, round_loop
  halt

results: .space 32
)";

  desc.cores = {feeder, worker, collector};
  desc.links = {{"feeder", 1, "worker", 1}, {"worker", 2, "collector", 1}};
  machine::PeripheralDesc cordic;
  cordic.core = "worker";
  cordic.type = "cordic";
  cordic.channel = 0;
  cordic.params["num_pes"] = 16;
  desc.peripherals = {cordic};
  return desc;
}

server::SessionConfig session_config(Cycle ckpt_every) {
  server::SessionConfig config;
  config.desc = farm_desc(kRounds);
  // Single-threaded rounds: worker count never changes results, only
  // wall-clock, and one thread keeps the measurement about the journal
  // instead of about thread-pool barrier latency at a 64-cycle quantum.
  config.workers = 1;
  config.metrics = true;
  config.trace = false;
  config.control_quantum = kControlQuantum;
  config.ckpt_every = ckpt_every;
  return config;
}

struct RunResult {
  Cycle cycles = 0;
  double wall_seconds = 0.0;
  std::string stats;
};

/// Host one session, run it to halt, wait for idle. `state_dir` empty
/// means no journal. Returns nullopt-style failure via exit(1) — this is
/// a bench, the environment is under our control.
RunResult hosted_run(u64 id, Cycle ckpt_every, const std::string& state_dir) {
  std::unique_ptr<server::SessionJournal> journal;
  std::unique_ptr<server::JournalStore> store;
  server::SessionConfig config = session_config(ckpt_every);
  if (!state_dir.empty()) {
    auto opened = server::JournalStore::open(state_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "journal open failed: %s\n",
                   opened.error().c_str());
      std::exit(1);
    }
    store = std::move(opened).value();
    auto created = store->create_session(
        id, server::session_config_to_json(config));
    if (!created.ok()) {
      std::fprintf(stderr, "journal create failed: %s\n",
                   created.error().c_str());
      std::exit(1);
    }
    journal = std::move(created).value();
  }
  auto session =
      server::Session::create(id, std::move(config), std::move(journal));
  if (!session.ok()) {
    std::fprintf(stderr, "session create failed: %s\n",
                 session.error().c_str());
    std::exit(1);
  }

  Stopwatch watch;
  if (const std::string err = session.value()->run_async(kRunForever);
      !err.empty()) {
    std::fprintf(stderr, "run failed: %s\n", err.c_str());
    std::exit(1);
  }
  while (session.value()->state() == server::SessionState::kRunning) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  RunResult result;
  result.wall_seconds = watch.elapsed_seconds();

  const auto stats = session.value()->stats_page();
  if (!stats.ok()) {
    std::fprintf(stderr, "stats failed: %s\n", stats.error().c_str());
    std::exit(1);
  }
  result.stats = stats.value();
  const std::string info = session.value()->info_json();
  const std::size_t at = info.find("\"cycles\":");
  result.cycles =
      at == std::string::npos
          ? 0
          : std::strtoull(info.c_str() + at + 9, nullptr, 10);
  if (const std::string err = session.value()->kill(); !err.empty()) {
    std::fprintf(stderr, "kill failed: %s\n", err.c_str());
    std::exit(1);
  }
  return result;
}

/// Min-of-kRepeats wall clock; stats/cycles from the first repeat (they
/// are deterministic, so every repeat produces the same bytes).
RunResult best_of(u64 id_base, Cycle ckpt_every,
                  const std::string& state_dir) {
  namespace fs = std::filesystem;
  RunResult best;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    if (!state_dir.empty()) {
      std::error_code ec;
      fs::remove_all(state_dir, ec);  // fresh store per repeat
    }
    RunResult result =
        hosted_run(id_base + static_cast<u64>(repeat), ckpt_every, state_dir);
    if (repeat == 0 || result.wall_seconds < best.wall_seconds) {
      const std::string stats =
          repeat == 0 ? std::move(result.stats) : std::move(best.stats);
      best = std::move(result);
      best.stats = stats;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbcosim::bench;
  namespace fs = std::filesystem;

  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_server.json");
  JsonReport report("server");

  mbcosim::apps::register_machine_peripherals();
  const std::string state_dir =
      (fs::temp_directory_path() / "mbcosim_bench_server_state").string();

  print_header(
      "Session journal overhead: hosted CORDIC farm, " +
      std::to_string(kRounds) + " rounds, min of " +
      std::to_string(kRepeats));

  const RunResult baseline = best_of(100, 0, {});
  const RunResult journaled =
      best_of(200, kDefaultCkptEvery, state_dir);
  const RunResult aggressive =
      best_of(300, kAggressiveCkptEvery, state_dir);
  {
    std::error_code ec;
    fs::remove_all(state_dir, ec);
  }

  const auto overhead = [&](const RunResult& run) {
    return baseline.wall_seconds > 0.0
               ? (run.wall_seconds / baseline.wall_seconds - 1.0) * 100.0
               : 0.0;
  };
  std::printf("%-32s %12.4f s\n", "journal off", baseline.wall_seconds);
  std::printf("%-32s %12.4f s  (%+.2f%%)\n",
              ("journal on, ckpt_every=" + std::to_string(kDefaultCkptEvery))
                  .c_str(),
              journaled.wall_seconds, overhead(journaled));
  std::printf("%-32s %12.4f s  (%+.2f%%)\n",
              ("journal on, ckpt_every=" +
               std::to_string(kAggressiveCkptEvery))
                  .c_str(),
              aggressive.wall_seconds, overhead(aggressive));
  report.add("journal=off", baseline.cycles, baseline.wall_seconds);
  report.add("journal=ckpt_every_" + std::to_string(kDefaultCkptEvery),
             journaled.cycles, journaled.wall_seconds);
  report.add("journal=ckpt_every_" + std::to_string(kAggressiveCkptEvery),
             aggressive.cycles, aggressive.wall_seconds);

  // The correctness oracle: journaling is observation, not simulation —
  // a journaled run's stats must be byte-identical to the baseline's.
  if (journaled.stats != baseline.stats ||
      aggressive.stats != baseline.stats) {
    std::fprintf(stderr,
                 "FAIL: journaled run stats differ from the baseline\n");
    return 1;
  }
  std::printf("journaled stats are byte-identical to the baseline\n");
  if (overhead(journaled) >= 5.0) {
    std::printf("note: default-interval journal overhead %+.2f%% exceeds "
                "the 5%% budget (loaded host?)\n", overhead(journaled));
  }

  return report.write(json_path) ? 0 : 1;
}
