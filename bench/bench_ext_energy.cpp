// Extension bench (paper Section V future work, implemented here): rapid
// energy estimation across the CORDIC design space. For every P the
// co-simulation reports execution time AND estimated energy, giving the
// time/energy trade-off view the paper says designers of adaptive
// beamformers need ("designs that provide different time and resource
// usage trade-offs are highly desired").
#include <cstdio>

#include "bench_common.hpp"
#include "energy/energy_model.hpp"

int main() {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  print_header(
      "Extension: rapid energy estimation for the CORDIC design space\n"
      "  (instruction-level model for software + domain-specific model "
      "for hardware)");
  std::printf("%4s %12s %12s %12s %12s %12s %10s\n", "P", "usec", "cpu uJ",
              "hw uJ", "static uJ", "total uJ", "avg mW");
  print_rule();

  const CordicWorkload workload = CordicWorkload::standard(100, 24);
  for (unsigned p : {0u, 2u, 4u, 6u, 8u}) {
    const auto result = run_cordic_cosim(workload, p);
    const auto& e = result.energy;
    std::printf("%4u %12.1f %12.3f %12.3f %12.3f %12.3f %10.2f\n", p,
                result.usec(), e.processor_nj * 1e-3, e.peripheral_nj * 1e-3,
                e.static_nj * 1e-3, e.total_uj(), e.average_power_mw());
  }

  print_rule();
  std::printf(
      "Reading: the hardware-assisted designs draw more POWER (more\n"
      "active fabric) but finish so much earlier that their ENERGY per\n"
      "batch is lower -- the quantitative version of the paper's\n"
      "compact-design argument, produced without any low-level power\n"
      "simulation.\n");

  print_header("Extension: energy for the matmul design points (N = 16)");
  std::printf("%14s %12s %12s %10s\n", "design", "usec", "total uJ",
              "avg mW");
  print_rule();
  const auto a = apps::matmul::make_matrix(16, 1);
  const auto b = apps::matmul::make_matrix(16, 2);
  for (unsigned block : {0u, 2u, 4u}) {
    const auto result = run_matmul_cosim(a, b, block);
    char name[32];
    if (block == 0) {
      std::snprintf(name, sizeof name, "pure software");
    } else {
      std::snprintf(name, sizeof name, "%ux%u blocks", block, block);
    }
    std::printf("%14s %12.1f %12.3f %10.2f\n", name, result.usec(),
                result.energy.total_uj(), result.energy.average_power_mw());
  }
  print_rule();
  std::printf("The 2x2 design loses on BOTH time and energy (it burns\n"
              "fabric while being slower); 4x4 wins both -- the energy\n"
              "view sharpens Figure 7's crossover.\n");
  return 0;
}
