// Table II: raw simulation speeds (simulated clock cycles per host
// second) of the three simulators the paper compares for the CORDIC
// division application:
//   - the cycle-accurate instruction simulator alone (software side),
//   - the block-level hardware model alone (the Simulink/System Generator
//     analog, hardware peripherals only),
//   - the low-level event-driven RTL simulation of the full system.
// Built on google-benchmark; each benchmark reports a cycles_per_second
// counter, and a summary table is printed at exit. Paper Table II gives
// the same ordering: instruction simulator >> Simulink >> ModelSim, with
// a potential speedup of "5.5X to more than 1000X".
//
// Besides the benchmarks, the binary runs two exit guards:
//   - trace_overhead: a wired-but-sinkless TraceBus must stay almost free;
//   - exec_tier: the three execution tiers (precise, predecode, dbt) must
//     keep simulated cycle and instruction counts bit-identical (ISS alone
//     and full co-simulation) while each tier delivers its guarded
//     wall-clock speedup over the one below it (DESIGN.md §12).
// Pass `--json FILE` (default BENCH_table2.json, `--json none` to
// disable) to also write machine-readable rows for perf tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace_bus.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

// ---------------------------------------------------------------------------
// Instruction simulator alone: pure-software CORDIC program.
// ---------------------------------------------------------------------------
void BM_InstructionSimulator(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulator);

// Same workload with the observability bus attached but carrying no
// sinks — the "compiled in but disabled" configuration whose overhead
// the trace_overhead guard below bounds.
void BM_InstructionSimulatorTracingDisabled(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  obs::TraceBus bus;  // no sinks: enabled() stays false
  cpu.set_trace_bus(&bus);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorTracingDisabled);

// Tier A/B baselines: identical workload and cycle counts under each
// execution tier. BM_InstructionSimulator above runs the default (dbt:
// superblock threaded code); these two pin the predecode tier (the
// PR-3 batched fast path) and the precise tier (decode every step).
void BM_InstructionSimulatorPredecodeTier(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  cpu.set_exec_tier(iss::ExecTier::kPredecode);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorPredecodeTier);

void BM_InstructionSimulatorNoPredecode(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  cpu.set_exec_tier(iss::ExecTier::kPrecise);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorNoPredecode);

// ---------------------------------------------------------------------------
// Hardware block model alone ("Simulink"): the CORDIC pipeline fed by a
// scripted input stream, no processor in the loop.
// ---------------------------------------------------------------------------
void BM_BlockModelHardwareOnly(benchmark::State& state) {
  auto pipeline = apps::cordic::build_cordic_pipeline(4);
  sysgen::Model& model = *pipeline.model;

  Cycle total_cycles = 0;
  for (auto _ : state) {
    // Feed a continuous stream: every third cycle completes a triple.
    pipeline.io.s_exists->set_bool(true);
    pipeline.io.s_control->set_bool(false);
    for (int cycle = 0; cycle < 3000; ++cycle) {
      pipeline.io.s_data->set_raw((cycle * 2654435761u) & 0x00FFFFFFu);
      model.step();
    }
    total_cycles += 3000;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockModelHardwareOnly);

// ---------------------------------------------------------------------------
// Full high-level co-simulation (both sides + FSL bridge).
// ---------------------------------------------------------------------------
void BM_CoSimulationFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    const auto result = run_cordic_cosim(workload, 4);
    total_cycles += result.cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulationFullSystem);

// ---------------------------------------------------------------------------
// Low-level RTL simulation of the full system (the ModelSim analog).
// ---------------------------------------------------------------------------
void BM_RtlFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    double unused = 0;
    total_cycles += run_cordic_rtl(workload, 4, &unused);
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlFullSystem);

// ---------------------------------------------------------------------------
// trace_overhead guard: the observability layer's cost contract says a
// wired-but-sinkless TraceBus must be almost free (target < 2% on the
// ISS hot loop). Measured as the min of several reps to shed scheduler
// noise; the hard failure threshold is deliberately looser (10%) so the
// guard trips on real regressions, not on a busy CI host.
// ---------------------------------------------------------------------------
int check_trace_overhead() {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;

  const auto run_once = [&](obs::TraceBus* bus) {
    iss::LmbMemory memory;
    memory.load_program(program);
    iss::Processor cpu(config, memory, nullptr);
    cpu.set_trace_bus(bus);
    cpu.reset(program.entry());
    Stopwatch watch;
    cpu.run(1u << 28);
    return watch.elapsed_seconds();
  };

  constexpr int kReps = 5;
  double baseline = 1e300;
  double disabled = 1e300;
  obs::TraceBus bus;  // no sinks attached
  run_once(nullptr);  // warm caches before timing
  for (int rep = 0; rep < kReps; ++rep) {
    baseline = std::min(baseline, run_once(nullptr));
    disabled = std::min(disabled, run_once(&bus));
  }

  const double overhead = disabled / baseline - 1.0;
  constexpr double kTargetOverhead = 0.02;
  constexpr double kFailOverhead = 0.10;
  std::printf(
      "\ntrace_overhead guard: ISS with sinkless TraceBus vs no bus: "
      "%+.2f%% (target < %.0f%%, fail >= %.0f%%)\n",
      overhead * 100.0, kTargetOverhead * 100.0, kFailOverhead * 100.0);
  if (overhead >= kFailOverhead) {
    std::fprintf(stderr,
                 "trace_overhead guard FAILED: disabled observability "
                 "costs %.2f%% on the ISS hot loop\n",
                 overhead * 100.0);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// exec_tier guard: the three execution tiers must (a) leave every
// simulated CpuStats/CoSimStats count bit-identical on the pure ISS
// *and* the full co-simulation (CORDIC + matmul), and (b) each deliver
// its guarded wall-clock speedup on the ISS hot loop:
//   predecode over precise: >= 1.3x (PR-3 floor, acceptance target 2x),
//   dbt over predecode:     >= 2.0x (this tier's acceptance bar).
// The identity checks are hard failures at any deviation.
// ---------------------------------------------------------------------------
constexpr iss::ExecTier kTiers[] = {
    iss::ExecTier::kPrecise, iss::ExecTier::kPredecode, iss::ExecTier::kDbt};

int check_exec_tiers(JsonReport& report) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;

  const auto run_once = [&](iss::ExecTier tier, iss::CpuStats* stats) {
    iss::LmbMemory memory;
    memory.load_program(program);
    iss::Processor cpu(config, memory, nullptr);
    cpu.set_exec_tier(tier);
    cpu.reset(program.entry());
    Stopwatch watch;
    cpu.run(1u << 28);
    const double seconds = watch.elapsed_seconds();
    if (stats != nullptr) *stats = cpu.stats();
    return seconds;
  };

  int failures = 0;
  const auto check_equal = [&](const char* what, iss::ExecTier tier, u64 got,
                               u64 want) {
    if (got != want) {
      std::fprintf(stderr,
                   "exec_tier guard FAILED: %s differ: %llu (%s) vs "
                   "%llu (precise)\n",
                   what, static_cast<unsigned long long>(got),
                   iss::to_string(tier), static_cast<unsigned long long>(want));
      ++failures;
    }
  };

  // (a) identity, pure ISS: every CpuStats field the run accumulates,
  // with the precise tier as the reference.
  iss::CpuStats tier_stats[3];
  for (int t = 0; t < 3; ++t) run_once(kTiers[t], &tier_stats[t]);
  for (int t = 1; t < 3; ++t) {
    const iss::ExecTier tier = kTiers[t];
    check_equal("ISS cycles", tier, tier_stats[t].cycles,
                tier_stats[0].cycles);
    check_equal("ISS instructions", tier, tier_stats[t].instructions,
                tier_stats[0].instructions);
    check_equal("ISS loads", tier, tier_stats[t].loads, tier_stats[0].loads);
    check_equal("ISS stores", tier, tier_stats[t].stores,
                tier_stats[0].stores);
    check_equal("ISS branches", tier, tier_stats[t].branches,
                tier_stats[0].branches);
    check_equal("ISS branches_taken", tier, tier_stats[t].branches_taken,
                tier_stats[0].branches_taken);
  }

  // (a) identity, full co-simulation (FSL quanta + quiescence window).
  const auto cosim_stats = [&](iss::ExecTier tier, double* wall) {
    apps::cordic::CordicRunConfig cosim_config;
    cosim_config.num_pes = 4;
    cosim_config.iterations = workload.iterations;
    cosim_config.items = static_cast<unsigned>(workload.x.size());
    auto built =
        apps::cordic::make_cordic_system(cosim_config, workload.x, workload.y);
    if (!built.ok()) {
      std::fprintf(stderr, "exec_tier guard: cordic system: %s\n",
                   built.error().c_str());
      std::exit(1);
    }
    sim::SimSystem system = std::move(built).value();
    system.cpu().set_exec_tier(tier);
    if (system.run() != core::StopReason::kHalted) {
      std::fprintf(stderr, "exec_tier guard: cordic cosim did not halt\n");
      std::exit(1);
    }
    if (wall != nullptr) *wall = system.run_wall_seconds();
    return system.stats();
  };
  core::CoSimStats cosim_tier[3];
  double cosim_seconds[3] = {};
  for (int t = 0; t < 3; ++t) {
    cosim_tier[t] = cosim_stats(kTiers[t], &cosim_seconds[t]);
  }
  for (int t = 1; t < 3; ++t) {
    const iss::ExecTier tier = kTiers[t];
    check_equal("cosim cycles", tier, cosim_tier[t].cycles,
                cosim_tier[0].cycles);
    check_equal("cosim instructions", tier, cosim_tier[t].instructions,
                cosim_tier[0].instructions);
    check_equal("cosim fsl_stall_cycles", tier, cosim_tier[t].fsl_stall_cycles,
                cosim_tier[0].fsl_stall_cycles);
    check_equal("cosim hw_cycles_stepped", tier,
                cosim_tier[t].hw_cycles_stepped,
                cosim_tier[0].hw_cycles_stepped);
    check_equal("cosim hw_cycles_skipped", tier,
                cosim_tier[t].hw_cycles_skipped,
                cosim_tier[0].hw_cycles_skipped);
  }

  // (a) identity, matmul app (second workload shape: OPB-free, multiplier).
  const auto matmul_stats = [&](iss::ExecTier tier) {
    apps::matmul::MatmulRunConfig matmul_config;
    matmul_config.matrix_size = 8;
    matmul_config.block_size = 2;
    const auto a = apps::matmul::make_matrix(8, 1);
    const auto b = apps::matmul::make_matrix(8, 2);
    auto built = apps::matmul::make_matmul_system(matmul_config, a, b);
    if (!built.ok()) {
      std::fprintf(stderr, "exec_tier guard: matmul system: %s\n",
                   built.error().c_str());
      std::exit(1);
    }
    sim::SimSystem system = std::move(built).value();
    system.cpu().set_exec_tier(tier);
    if (system.run() != core::StopReason::kHalted) {
      std::fprintf(stderr, "exec_tier guard: matmul cosim did not halt\n");
      std::exit(1);
    }
    return system.stats();
  };
  core::CoSimStats matmul_tier[3];
  for (int t = 0; t < 3; ++t) matmul_tier[t] = matmul_stats(kTiers[t]);
  for (int t = 1; t < 3; ++t) {
    const iss::ExecTier tier = kTiers[t];
    check_equal("matmul cycles", tier, matmul_tier[t].cycles,
                matmul_tier[0].cycles);
    check_equal("matmul instructions", tier, matmul_tier[t].instructions,
                matmul_tier[0].instructions);
  }

  // (b) wall-clock speedups on the ISS hot loop, min over reps.
  constexpr int kReps = 5;
  double best[3] = {1e300, 1e300, 1e300};
  for (int rep = 0; rep < kReps; ++rep) {
    for (int t = 0; t < 3; ++t) {
      best[t] = std::min(best[t], run_once(kTiers[t], nullptr));
    }
  }
  const double predecode_speedup = best[0] / best[1];
  const double dbt_speedup = best[1] / best[2];
  constexpr double kFailPredecodeSpeedup = 1.3;
  constexpr double kFailDbtSpeedup = 2.0;
  std::printf(
      "exec_tier guard: ISS hot loop precise %.4fs, predecode %.4fs "
      "(%.2fx, fail < %.1fx), dbt %.4fs (%.2fx over predecode, fail < "
      "%.1fx); all simulated counts identical on ISS, CORDIC cosim and "
      "matmul cosim\n",
      best[0], best[1], predecode_speedup, kFailPredecodeSpeedup, best[2],
      dbt_speedup, kFailDbtSpeedup);
  if (predecode_speedup < kFailPredecodeSpeedup) {
    std::fprintf(stderr,
                 "exec_tier guard FAILED: predecode tier is only %.2fx "
                 "over precise\n",
                 predecode_speedup);
    ++failures;
  }
  if (dbt_speedup < kFailDbtSpeedup) {
    std::fprintf(stderr,
                 "exec_tier guard FAILED: dbt tier is only %.2fx over "
                 "the predecode tier (acceptance bar >= 2x)\n",
                 dbt_speedup);
    ++failures;
  }

  for (int t = 0; t < 3; ++t) {
    const std::string tier_name = iss::to_string(kTiers[t]);
    report.add("iss_cordic_" + tier_name, tier_stats[t].cycles, best[t]);
    report.add("cosim_cordic_p4_" + tier_name, cosim_tier[t].cycles,
               cosim_seconds[t]);
  }
  return failures == 0 ? 0 : 1;
}

int emit_rtl_row(JsonReport& report) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  double wall = 0;
  const Cycle cycles = run_cordic_rtl(workload, 4, &wall);
  report.add("rtl_cordic_p4", cycles, wall);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_table2.json");
  std::printf(
      "Table II reproduction: simulator speeds in simulated clock cycles "
      "per host second.\nPaper (cycles/sec): instruction simulator ~1.9e5, "
      "Simulink (HW only) ~1.3e3, ModelSim behavioral ~240.\nExpected "
      "ordering here: BM_InstructionSimulator >> BM_CoSimulationFullSystem "
      ">~ BM_BlockModelHardwareOnly >> BM_RtlFullSystem\n(the HW-only bench "
      "keeps the pipeline full every cycle; the full co-simulation "
      "interleaves cheap ISS cycles\nand skips quiescent hardware cycles, "
      "as the paper's environment does).\n\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  JsonReport report("table2_simspeed");
  int failures = check_trace_overhead();
  failures += check_exec_tiers(report);
  failures += emit_rtl_row(report);
  if (!report.write(json_path)) ++failures;
  return failures == 0 ? 0 : 1;
}
