// Table II: raw simulation speeds (simulated clock cycles per host
// second) of the three simulators the paper compares for the CORDIC
// division application:
//   - the cycle-accurate instruction simulator alone (software side),
//   - the block-level hardware model alone (the Simulink/System Generator
//     analog, hardware peripherals only),
//   - the low-level event-driven RTL simulation of the full system.
// Built on google-benchmark; each benchmark reports a cycles_per_second
// counter, and a summary table is printed at exit. Paper Table II gives
// the same ordering: instruction simulator >> Simulink >> ModelSim, with
// a potential speedup of "5.5X to more than 1000X".
//
// Besides the benchmarks, the binary runs two exit guards:
//   - trace_overhead: a wired-but-sinkless TraceBus must stay almost free;
//   - predecode: the predecode cache + batched fast path must deliver a
//     real wall-clock speedup over --no-predecode execution while keeping
//     simulated cycle and instruction counts bit-identical (ISS alone and
//     full co-simulation).
// Pass `--json FILE` (default BENCH_table2.json, `--json none` to
// disable) to also write machine-readable rows for perf tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace_bus.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

// ---------------------------------------------------------------------------
// Instruction simulator alone: pure-software CORDIC program.
// ---------------------------------------------------------------------------
void BM_InstructionSimulator(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulator);

// Same workload with the observability bus attached but carrying no
// sinks — the "compiled in but disabled" configuration whose overhead
// the trace_overhead guard below bounds.
void BM_InstructionSimulatorTracingDisabled(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  obs::TraceBus bus;  // no sinks: enabled() stays false
  cpu.set_trace_bus(&bus);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorTracingDisabled);

// The --no-predecode A/B baseline: identical workload and cycle counts,
// but every step re-decodes its instruction word and pays the per-step
// dispatch overhead (the pre-PR-3 hot loop).
void BM_InstructionSimulatorNoPredecode(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  cpu.set_predecode(false);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorNoPredecode);

// ---------------------------------------------------------------------------
// Hardware block model alone ("Simulink"): the CORDIC pipeline fed by a
// scripted input stream, no processor in the loop.
// ---------------------------------------------------------------------------
void BM_BlockModelHardwareOnly(benchmark::State& state) {
  auto pipeline = apps::cordic::build_cordic_pipeline(4);
  sysgen::Model& model = *pipeline.model;

  Cycle total_cycles = 0;
  for (auto _ : state) {
    // Feed a continuous stream: every third cycle completes a triple.
    pipeline.io.s_exists->set_bool(true);
    pipeline.io.s_control->set_bool(false);
    for (int cycle = 0; cycle < 3000; ++cycle) {
      pipeline.io.s_data->set_raw((cycle * 2654435761u) & 0x00FFFFFFu);
      model.step();
    }
    total_cycles += 3000;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockModelHardwareOnly);

// ---------------------------------------------------------------------------
// Full high-level co-simulation (both sides + FSL bridge).
// ---------------------------------------------------------------------------
void BM_CoSimulationFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    const auto result = run_cordic_cosim(workload, 4);
    total_cycles += result.cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulationFullSystem);

// ---------------------------------------------------------------------------
// Low-level RTL simulation of the full system (the ModelSim analog).
// ---------------------------------------------------------------------------
void BM_RtlFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    double unused = 0;
    total_cycles += run_cordic_rtl(workload, 4, &unused);
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlFullSystem);

// ---------------------------------------------------------------------------
// trace_overhead guard: the observability layer's cost contract says a
// wired-but-sinkless TraceBus must be almost free (target < 2% on the
// ISS hot loop). Measured as the min of several reps to shed scheduler
// noise; the hard failure threshold is deliberately looser (10%) so the
// guard trips on real regressions, not on a busy CI host.
// ---------------------------------------------------------------------------
int check_trace_overhead() {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;

  const auto run_once = [&](obs::TraceBus* bus) {
    iss::LmbMemory memory;
    memory.load_program(program);
    iss::Processor cpu(config, memory, nullptr);
    cpu.set_trace_bus(bus);
    cpu.reset(program.entry());
    Stopwatch watch;
    cpu.run(1u << 28);
    return watch.elapsed_seconds();
  };

  constexpr int kReps = 5;
  double baseline = 1e300;
  double disabled = 1e300;
  obs::TraceBus bus;  // no sinks attached
  run_once(nullptr);  // warm caches before timing
  for (int rep = 0; rep < kReps; ++rep) {
    baseline = std::min(baseline, run_once(nullptr));
    disabled = std::min(disabled, run_once(&bus));
  }

  const double overhead = disabled / baseline - 1.0;
  constexpr double kTargetOverhead = 0.02;
  constexpr double kFailOverhead = 0.10;
  std::printf(
      "\ntrace_overhead guard: ISS with sinkless TraceBus vs no bus: "
      "%+.2f%% (target < %.0f%%, fail >= %.0f%%)\n",
      overhead * 100.0, kTargetOverhead * 100.0, kFailOverhead * 100.0);
  if (overhead >= kFailOverhead) {
    std::fprintf(stderr,
                 "trace_overhead guard FAILED: disabled observability "
                 "costs %.2f%% on the ISS hot loop\n",
                 overhead * 100.0);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// predecode guard: the predecode cache + batched fast path must (a) leave
// simulated cycle and instruction counts bit-identical on the pure ISS
// *and* the full co-simulation, and (b) deliver a real wall-clock speedup
// on the ISS hot loop. The identity checks are hard failures; the timing
// floor is looser than the >= 2x acceptance target so it trips on real
// regressions, not on a busy CI host.
// ---------------------------------------------------------------------------
int check_predecode(JsonReport& report) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;

  const auto run_once = [&](bool predecode, iss::CpuStats* stats) {
    iss::LmbMemory memory;
    memory.load_program(program);
    iss::Processor cpu(config, memory, nullptr);
    cpu.set_predecode(predecode);
    cpu.reset(program.entry());
    Stopwatch watch;
    cpu.run(1u << 28);
    const double seconds = watch.elapsed_seconds();
    if (stats != nullptr) *stats = cpu.stats();
    return seconds;
  };

  int failures = 0;
  const auto check_equal = [&](const char* what, u64 fast, u64 slow) {
    if (fast != slow) {
      std::fprintf(stderr,
                   "predecode guard FAILED: %s differ: %llu (predecode) vs "
                   "%llu (--no-predecode)\n",
                   what, static_cast<unsigned long long>(fast),
                   static_cast<unsigned long long>(slow));
      ++failures;
    }
  };

  // (a) identity, pure ISS: every CpuStats field the run accumulates.
  iss::CpuStats fast_stats;
  iss::CpuStats slow_stats;
  run_once(true, &fast_stats);
  run_once(false, &slow_stats);
  check_equal("ISS cycles", fast_stats.cycles, slow_stats.cycles);
  check_equal("ISS instructions", fast_stats.instructions,
              slow_stats.instructions);
  check_equal("ISS loads", fast_stats.loads, slow_stats.loads);
  check_equal("ISS stores", fast_stats.stores, slow_stats.stores);
  check_equal("ISS branches", fast_stats.branches, slow_stats.branches);
  check_equal("ISS branches_taken", fast_stats.branches_taken,
              slow_stats.branches_taken);

  // (a) identity, full co-simulation (FSL quanta + quiescence window).
  const auto cosim_stats = [&](bool predecode, double* wall) {
    apps::cordic::CordicRunConfig cosim_config;
    cosim_config.num_pes = 4;
    cosim_config.iterations = workload.iterations;
    cosim_config.items = static_cast<unsigned>(workload.x.size());
    auto built =
        apps::cordic::make_cordic_system(cosim_config, workload.x, workload.y);
    if (!built.ok()) {
      std::fprintf(stderr, "predecode guard: cordic system: %s\n",
                   built.error().c_str());
      std::exit(1);
    }
    sim::SimSystem system = std::move(built).value();
    system.cpu().set_predecode(predecode);
    if (system.run() != core::StopReason::kHalted) {
      std::fprintf(stderr, "predecode guard: cordic cosim did not halt\n");
      std::exit(1);
    }
    if (wall != nullptr) *wall = system.run_wall_seconds();
    return system.stats();
  };
  double cosim_fast_s = 0;
  double cosim_slow_s = 0;
  const core::CoSimStats cosim_fast = cosim_stats(true, &cosim_fast_s);
  const core::CoSimStats cosim_slow = cosim_stats(false, &cosim_slow_s);
  check_equal("cosim cycles", cosim_fast.cycles, cosim_slow.cycles);
  check_equal("cosim instructions", cosim_fast.instructions,
              cosim_slow.instructions);
  check_equal("cosim fsl_stall_cycles", cosim_fast.fsl_stall_cycles,
              cosim_slow.fsl_stall_cycles);
  check_equal("cosim hw_cycles_stepped", cosim_fast.hw_cycles_stepped,
              cosim_slow.hw_cycles_stepped);
  check_equal("cosim hw_cycles_skipped", cosim_fast.hw_cycles_skipped,
              cosim_slow.hw_cycles_skipped);

  // (a) identity, matmul app (second workload shape: OPB-free, multiplier).
  const auto matmul_stats = [&](bool predecode) {
    apps::matmul::MatmulRunConfig matmul_config;
    matmul_config.matrix_size = 8;
    matmul_config.block_size = 2;
    const auto a = apps::matmul::make_matrix(8, 1);
    const auto b = apps::matmul::make_matrix(8, 2);
    auto built = apps::matmul::make_matmul_system(matmul_config, a, b);
    if (!built.ok()) {
      std::fprintf(stderr, "predecode guard: matmul system: %s\n",
                   built.error().c_str());
      std::exit(1);
    }
    sim::SimSystem system = std::move(built).value();
    system.cpu().set_predecode(predecode);
    if (system.run() != core::StopReason::kHalted) {
      std::fprintf(stderr, "predecode guard: matmul cosim did not halt\n");
      std::exit(1);
    }
    return system.stats();
  };
  const core::CoSimStats matmul_fast = matmul_stats(true);
  const core::CoSimStats matmul_slow = matmul_stats(false);
  check_equal("matmul cycles", matmul_fast.cycles, matmul_slow.cycles);
  check_equal("matmul instructions", matmul_fast.instructions,
              matmul_slow.instructions);

  // (b) wall-clock speedup on the ISS hot loop, min over reps.
  constexpr int kReps = 5;
  double fast_s = 1e300;
  double slow_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    fast_s = std::min(fast_s, run_once(true, nullptr));
    slow_s = std::min(slow_s, run_once(false, nullptr));
  }
  const double speedup = slow_s / fast_s;
  constexpr double kTargetSpeedup = 2.0;
  constexpr double kFailSpeedup = 1.3;
  std::printf(
      "predecode guard: ISS hot loop %.4fs -> %.4fs, speedup %.2fx "
      "(target >= %.1fx, fail < %.1fx); cycle/instruction counts "
      "identical on ISS, CORDIC cosim and matmul cosim\n",
      slow_s, fast_s, speedup, kTargetSpeedup, kFailSpeedup);
  if (speedup < kFailSpeedup) {
    std::fprintf(stderr,
                 "predecode guard FAILED: batched fast path is only %.2fx "
                 "over --no-predecode\n",
                 speedup);
    ++failures;
  }

  report.add("iss_cordic_predecode", fast_stats.cycles, fast_s);
  report.add("iss_cordic_no_predecode", slow_stats.cycles, slow_s);
  report.add("cosim_cordic_p4_predecode", cosim_fast.cycles, cosim_fast_s);
  report.add("cosim_cordic_p4_no_predecode", cosim_slow.cycles, cosim_slow_s);
  return failures == 0 ? 0 : 1;
}

int emit_rtl_row(JsonReport& report) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  double wall = 0;
  const Cycle cycles = run_cordic_rtl(workload, 4, &wall);
  report.add("rtl_cordic_p4", cycles, wall);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_table2.json");
  std::printf(
      "Table II reproduction: simulator speeds in simulated clock cycles "
      "per host second.\nPaper (cycles/sec): instruction simulator ~1.9e5, "
      "Simulink (HW only) ~1.3e3, ModelSim behavioral ~240.\nExpected "
      "ordering here: BM_InstructionSimulator >> BM_CoSimulationFullSystem "
      ">~ BM_BlockModelHardwareOnly >> BM_RtlFullSystem\n(the HW-only bench "
      "keeps the pipeline full every cycle; the full co-simulation "
      "interleaves cheap ISS cycles\nand skips quiescent hardware cycles, "
      "as the paper's environment does).\n\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  JsonReport report("table2_simspeed");
  int failures = check_trace_overhead();
  failures += check_predecode(report);
  failures += emit_rtl_row(report);
  if (!report.write(json_path)) ++failures;
  return failures == 0 ? 0 : 1;
}
