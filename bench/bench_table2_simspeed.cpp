// Table II: raw simulation speeds (simulated clock cycles per host
// second) of the three simulators the paper compares for the CORDIC
// division application:
//   - the cycle-accurate instruction simulator alone (software side),
//   - the block-level hardware model alone (the Simulink/System Generator
//     analog, hardware peripherals only),
//   - the low-level event-driven RTL simulation of the full system.
// Built on google-benchmark; each benchmark reports a cycles_per_second
// counter, and a summary table is printed at exit. Paper Table II gives
// the same ordering: instruction simulator >> Simulink >> ModelSim, with
// a potential speedup of "5.5X to more than 1000X".
#include <benchmark/benchmark.h>

#include "apps/cordic/cordic_hw.hpp"
#include "bench_common.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

// ---------------------------------------------------------------------------
// Instruction simulator alone: pure-software CORDIC program.
// ---------------------------------------------------------------------------
void BM_InstructionSimulator(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulator);

// ---------------------------------------------------------------------------
// Hardware block model alone ("Simulink"): the CORDIC pipeline fed by a
// scripted input stream, no processor in the loop.
// ---------------------------------------------------------------------------
void BM_BlockModelHardwareOnly(benchmark::State& state) {
  auto pipeline = apps::cordic::build_cordic_pipeline(4);
  sysgen::Model& model = *pipeline.model;

  Cycle total_cycles = 0;
  for (auto _ : state) {
    // Feed a continuous stream: every third cycle completes a triple.
    pipeline.io.s_exists->set_bool(true);
    pipeline.io.s_control->set_bool(false);
    for (int cycle = 0; cycle < 3000; ++cycle) {
      pipeline.io.s_data->set_raw((cycle * 2654435761u) & 0x00FFFFFFu);
      model.step();
    }
    total_cycles += 3000;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockModelHardwareOnly);

// ---------------------------------------------------------------------------
// Full high-level co-simulation (both sides + FSL bridge).
// ---------------------------------------------------------------------------
void BM_CoSimulationFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    const auto result = run_cordic_cosim(workload, 4);
    total_cycles += result.cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulationFullSystem);

// ---------------------------------------------------------------------------
// Low-level RTL simulation of the full system (the ModelSim analog).
// ---------------------------------------------------------------------------
void BM_RtlFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    double unused = 0;
    total_cycles += run_cordic_rtl(workload, 4, &unused);
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlFullSystem);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table II reproduction: simulator speeds in simulated clock cycles "
      "per host second.\nPaper (cycles/sec): instruction simulator ~1.9e5, "
      "Simulink (HW only) ~1.3e3, ModelSim behavioral ~240.\nExpected "
      "ordering here: BM_InstructionSimulator >> BM_CoSimulationFullSystem "
      ">~ BM_BlockModelHardwareOnly >> BM_RtlFullSystem\n(the HW-only bench "
      "keeps the pipeline full every cycle; the full co-simulation "
      "interleaves cheap ISS cycles\nand skips quiescent hardware cycles, "
      "as the paper's environment does).\n\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
