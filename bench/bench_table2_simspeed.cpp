// Table II: raw simulation speeds (simulated clock cycles per host
// second) of the three simulators the paper compares for the CORDIC
// division application:
//   - the cycle-accurate instruction simulator alone (software side),
//   - the block-level hardware model alone (the Simulink/System Generator
//     analog, hardware peripherals only),
//   - the low-level event-driven RTL simulation of the full system.
// Built on google-benchmark; each benchmark reports a cycles_per_second
// counter, and a summary table is printed at exit. Paper Table II gives
// the same ordering: instruction simulator >> Simulink >> ModelSim, with
// a potential speedup of "5.5X to more than 1000X".
#include <benchmark/benchmark.h>

#include <algorithm>

#include "apps/cordic/cordic_hw.hpp"
#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "obs/trace_bus.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

// ---------------------------------------------------------------------------
// Instruction simulator alone: pure-software CORDIC program.
// ---------------------------------------------------------------------------
void BM_InstructionSimulator(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulator);

// Same workload with the observability bus attached but carrying no
// sinks — the "compiled in but disabled" configuration whose overhead
// the trace_overhead guard below bounds.
void BM_InstructionSimulatorTracingDisabled(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(config, memory, nullptr);
  obs::TraceBus bus;  // no sinks: enabled() stays false
  cpu.set_trace_bus(&bus);

  Cycle total_cycles = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 28));
    total_cycles += cpu.stats().cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InstructionSimulatorTracingDisabled);

// ---------------------------------------------------------------------------
// Hardware block model alone ("Simulink"): the CORDIC pipeline fed by a
// scripted input stream, no processor in the loop.
// ---------------------------------------------------------------------------
void BM_BlockModelHardwareOnly(benchmark::State& state) {
  auto pipeline = apps::cordic::build_cordic_pipeline(4);
  sysgen::Model& model = *pipeline.model;

  Cycle total_cycles = 0;
  for (auto _ : state) {
    // Feed a continuous stream: every third cycle completes a triple.
    pipeline.io.s_exists->set_bool(true);
    pipeline.io.s_control->set_bool(false);
    for (int cycle = 0; cycle < 3000; ++cycle) {
      pipeline.io.s_data->set_raw((cycle * 2654435761u) & 0x00FFFFFFu);
      model.step();
    }
    total_cycles += 3000;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockModelHardwareOnly);

// ---------------------------------------------------------------------------
// Full high-level co-simulation (both sides + FSL bridge).
// ---------------------------------------------------------------------------
void BM_CoSimulationFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    const auto result = run_cordic_cosim(workload, 4);
    total_cycles += result.cycles;
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoSimulationFullSystem);

// ---------------------------------------------------------------------------
// Low-level RTL simulation of the full system (the ModelSim analog).
// ---------------------------------------------------------------------------
void BM_RtlFullSystem(benchmark::State& state) {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  Cycle total_cycles = 0;
  for (auto _ : state) {
    double unused = 0;
    total_cycles += run_cordic_rtl(workload, 4, &unused);
  }
  state.counters["cycles_per_second"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlFullSystem);

// ---------------------------------------------------------------------------
// trace_overhead guard: the observability layer's cost contract says a
// wired-but-sinkless TraceBus must be almost free (target < 2% on the
// ISS hot loop). Measured as the min of several reps to shed scheduler
// noise; the hard failure threshold is deliberately looser (10%) so the
// guard trips on real regressions, not on a busy CI host.
// ---------------------------------------------------------------------------
int check_trace_overhead() {
  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  const auto program = assembler::assemble_or_throw(
      apps::cordic::pure_software_program(
          workload.x, workload.y, workload.iterations,
          apps::cordic::ShiftStrategy::kShiftLoop));
  isa::CpuConfig config;
  config.has_barrel_shifter = false;

  const auto run_once = [&](obs::TraceBus* bus) {
    iss::LmbMemory memory;
    memory.load_program(program);
    iss::Processor cpu(config, memory, nullptr);
    cpu.set_trace_bus(bus);
    cpu.reset(program.entry());
    Stopwatch watch;
    cpu.run(1u << 28);
    return watch.elapsed_seconds();
  };

  constexpr int kReps = 5;
  double baseline = 1e300;
  double disabled = 1e300;
  obs::TraceBus bus;  // no sinks attached
  run_once(nullptr);  // warm caches before timing
  for (int rep = 0; rep < kReps; ++rep) {
    baseline = std::min(baseline, run_once(nullptr));
    disabled = std::min(disabled, run_once(&bus));
  }

  const double overhead = disabled / baseline - 1.0;
  constexpr double kTargetOverhead = 0.02;
  constexpr double kFailOverhead = 0.10;
  std::printf(
      "\ntrace_overhead guard: ISS with sinkless TraceBus vs no bus: "
      "%+.2f%% (target < %.0f%%, fail >= %.0f%%)\n",
      overhead * 100.0, kTargetOverhead * 100.0, kFailOverhead * 100.0);
  if (overhead >= kFailOverhead) {
    std::fprintf(stderr,
                 "trace_overhead guard FAILED: disabled observability "
                 "costs %.2f%% on the ISS hot loop\n",
                 overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Table II reproduction: simulator speeds in simulated clock cycles "
      "per host second.\nPaper (cycles/sec): instruction simulator ~1.9e5, "
      "Simulink (HW only) ~1.3e3, ModelSim behavioral ~240.\nExpected "
      "ordering here: BM_InstructionSimulator >> BM_CoSimulationFullSystem "
      ">~ BM_BlockModelHardwareOnly >> BM_RtlFullSystem\n(the HW-only bench "
      "keeps the pipeline full every cycle; the full co-simulation "
      "interleaves cheap ISS cycles\nand skips quiescent hardware cycles, "
      "as the paper's environment does).\n\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return check_trace_overhead();
}
