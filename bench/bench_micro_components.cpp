// Micro-benchmarks (google-benchmark) of the individual substrates:
// instruction throughput of the ISS, block-model step rate, FSL FIFO
// operations, fixed-point arithmetic and event-kernel throughput. These
// are the constants behind the system-level numbers in Tables I/II.
#include <benchmark/benchmark.h>

#include "apps/cordic/cordic_hw.hpp"
#include "bench_common.hpp"
#include "rtl/kernel.hpp"
#include "rtl/primitives.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

void BM_IssInstructionThroughput(benchmark::State& state) {
  // Tight ALU loop: measures retired instructions per second.
  const auto program = assembler::assemble_or_throw(
      "  li r3, 1000000\n"
      "loop:\n"
      "  add r4, r4, r3\n"
      "  xor r5, r4, r3\n"
      "  addik r3, r3, -1\n"
      "  bnei r3, loop\n"
      "  halt\n");
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(isa::CpuConfig{}, memory, nullptr);
  u64 instructions = 0;
  for (auto _ : state) {
    cpu.reset(program.entry());
    benchmark::DoNotOptimize(cpu.run(1u << 30));
    instructions += cpu.stats().instructions;
  }
  state.counters["instructions_per_second"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssInstructionThroughput);

void BM_SysgenModelStep(benchmark::State& state) {
  auto pipeline =
      apps::cordic::build_cordic_pipeline(static_cast<unsigned>(state.range(0)));
  pipeline.io.s_exists->set_bool(false);
  u64 cycles = 0;
  for (auto _ : state) {
    pipeline.model->step();
    ++cycles;
  }
  state.counters["hw_cycles_per_second"] =
      benchmark::Counter(static_cast<double>(cycles),
                         benchmark::Counter::kIsRate);
  state.counters["blocks"] =
      static_cast<double>(pipeline.model->block_count());
}
BENCHMARK(BM_SysgenModelStep)->Arg(2)->Arg(4)->Arg(8);

void BM_FslChannelOps(benchmark::State& state) {
  fsl::FslChannel channel(16);
  u64 ops = 0;
  for (auto _ : state) {
    channel.try_write(42, false);
    benchmark::DoNotOptimize(channel.try_read());
    ops += 2;
  }
  state.counters["ops_per_second"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FslChannelOps);

void BM_FixMultiply(benchmark::State& state) {
  const Fix a = Fix::from_double(FixFormat::signed_fix(32, 24), 1.2345);
  const Fix b = Fix::from_double(FixFormat::signed_fix(32, 24), -0.9876);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a.mul_full(b).cast(FixFormat::signed_fix(32, 24)));
  }
}
BENCHMARK(BM_FixMultiply);

void BM_RtlRippleAdd32(benchmark::State& state) {
  const auto a = rtl::LogicVector::of(32, 0xDEADBEEF);
  const auto b = rtl::LogicVector::of(32, 0x12345678);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtl::rc_add(a, b));
  }
}
BENCHMARK(BM_RtlRippleAdd32);

void BM_RtlArrayMultiply32(benchmark::State& state) {
  const auto a = rtl::LogicVector::of(32, 0xDEADBEEF);
  const auto b = rtl::LogicVector::of(32, 0x12345678);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtl::array_multiply(a, b));
  }
}
BENCHMARK(BM_RtlArrayMultiply32);

void BM_RtlKernelEventThroughput(benchmark::State& state) {
  rtl::Simulator sim;
  rtl::Net& clk = sim.net("clk", 1, 0);
  rtl::Net& counter = sim.net("counter", 32, 0);
  sim.process("count", {&clk}, [&] {
    if (clk.rose()) sim.assign(counter, counter.read().bits + 1);
  });
  sim.start();
  u64 cycles = 0;
  for (auto _ : state) {
    sim.tick(clk);
    ++cycles;
  }
  state.counters["kernel_cycles_per_second"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RtlKernelEventThroughput);

}  // namespace

BENCHMARK_MAIN();
