// Shared helpers for the paper-reproduction benches: fixed-width table
// printing, the standard workloads of Section IV, and the machine-
// readable JSON result emitter used to track perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "apps/matmul/matmul_sw.hpp"
#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "rtlmodels/system_rtl.hpp"

namespace mbcosim::bench {

/// Machine-readable bench results: one row per measured workload, written
/// as a stable JSON document so `BENCH_*.json` files can be diffed and
/// plotted across PRs. MHz is derived (simulated cycles per host second
/// / 1e6) — the exact quantity the paper's Table II compares.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(std::string workload, Cycle simulated_cycles,
           double wall_seconds) {
    rows_.push_back(
        Row{std::move(workload), simulated_cycles, wall_seconds});
  }

  /// Write the report; returns false (with a message on stderr) when the
  /// file cannot be opened. An empty path disables emission.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open JSON report file %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      const double mhz = row.wall_seconds > 0.0
                             ? static_cast<double>(row.cycles) /
                                   row.wall_seconds / 1e6
                             : 0.0;
      std::fprintf(out,
                   "    {\"workload\": \"%s\", \"simulated_cycles\": %llu, "
                   "\"wall_seconds\": %.6f, \"mhz\": %.4f}%s\n",
                   row.workload.c_str(),
                   static_cast<unsigned long long>(row.cycles),
                   row.wall_seconds, mhz, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote JSON results to %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string workload;
    Cycle cycles = 0;
    double wall_seconds = 0.0;
  };
  std::string bench_name_;
  std::vector<Row> rows_;
};

/// Consume a `--json FILE` argument from argv (so it can run ahead of
/// google-benchmark's own flag parsing). Returns FILE when given,
/// `fallback` otherwise; `--json none` disables emission (empty path).
inline std::string take_json_path_arg(int& argc, char** argv,
                                      std::string fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path == "none" ? std::string{} : path;
    }
  }
  return fallback;
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// The paper's standard CORDIC workload scaled up so wall-clock
/// measurements are stable: `items` divisions of the same dataset.
struct CordicWorkload {
  std::vector<i32> x;
  std::vector<i32> y;
  unsigned iterations = 24;

  static CordicWorkload standard(unsigned items, unsigned iterations,
                                 u64 seed = 0x51D) {
    CordicWorkload w;
    auto [x, y] = apps::cordic::make_cordic_dataset(items, seed);
    w.x = std::move(x);
    w.y = std::move(y);
    w.iterations = iterations;
    return w;
  }
};

/// Run the CORDIC design (P = 0 => pure software) on the high-level
/// co-simulation environment, returning the result struct.
inline apps::cordic::CordicRunResult run_cordic_cosim(
    const CordicWorkload& workload, unsigned num_pes) {
  apps::cordic::CordicRunConfig config;
  config.num_pes = num_pes;
  config.iterations = workload.iterations;
  config.items = static_cast<unsigned>(workload.x.size());
  return apps::cordic::run_cordic(config, workload.x, workload.y);
}

/// Run the same CORDIC design on the low-level RTL baseline. Returns the
/// simulated cycles; `wall_seconds` receives the host time.
inline Cycle run_cordic_rtl(const CordicWorkload& workload, unsigned num_pes,
                            double* wall_seconds) {
  isa::CpuConfig cpu_config;
  // Neither the shift-loop software baseline nor the hardware-driver
  // program uses barrel shifts, so the RTL core never instantiates one.
  cpu_config.has_barrel_shifter = false;
  const std::string source =
      num_pes == 0
          ? apps::cordic::pure_software_program(
                workload.x, workload.y, workload.iterations,
                apps::cordic::ShiftStrategy::kShiftLoop)
          : apps::cordic::hw_driver_program(workload.x, workload.y,
                                            workload.iterations, num_pes, 5);
  const auto program = assembler::assemble_or_throw(source);
  rtlmodels::RtlPeripheralConfig peripheral;
  if (num_pes > 0) {
    peripheral.kind = rtlmodels::RtlPeripheralConfig::Kind::kCordic;
    peripheral.parameter = num_pes;
  }
  Stopwatch watch;
  rtlmodels::RtlSystem rtl(program, cpu_config, peripheral);
  const auto reason = rtl.run(1u << 28);
  if (wall_seconds != nullptr) *wall_seconds = watch.elapsed_seconds();
  if (reason != rtlmodels::RtlStopReason::kHalted) {
    std::fprintf(stderr, "RTL CORDIC run did not halt!\n");
  }
  return rtl.cycles();
}

/// Matmul equivalents.
inline apps::matmul::MatmulRunResult run_matmul_cosim(
    const apps::matmul::Matrix& a, const apps::matmul::Matrix& b,
    unsigned block_size) {
  apps::matmul::MatmulRunConfig config;
  config.matrix_size = a.n;
  config.block_size = block_size;
  return apps::matmul::run_matmul(config, a, b);
}

inline Cycle run_matmul_rtl(const apps::matmul::Matrix& a,
                            const apps::matmul::Matrix& b,
                            unsigned block_size, double* wall_seconds) {
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  const std::string source =
      block_size == 0 ? apps::matmul::pure_software_program(a, b)
                      : apps::matmul::hw_driver_program(a, b, block_size);
  const auto program = assembler::assemble_or_throw(source);
  rtlmodels::RtlPeripheralConfig peripheral;
  if (block_size > 0) {
    peripheral.kind = rtlmodels::RtlPeripheralConfig::Kind::kMatmul;
    peripheral.parameter = block_size;
  }
  Stopwatch watch;
  rtlmodels::RtlSystem rtl(program, cpu_config, peripheral, 256 * 1024);
  const auto reason = rtl.run(1u << 28);
  if (wall_seconds != nullptr) *wall_seconds = watch.elapsed_seconds();
  if (reason != rtlmodels::RtlStopReason::kHalted) {
    std::fprintf(stderr, "RTL matmul run did not halt!\n");
  }
  return rtl.cycles();
}

}  // namespace mbcosim::bench
