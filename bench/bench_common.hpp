// Shared helpers for the paper-reproduction benches: fixed-width table
// printing and the standard workloads of Section IV.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "apps/matmul/matmul_app.hpp"
#include "apps/matmul/matmul_sw.hpp"
#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "rtlmodels/system_rtl.hpp"

namespace mbcosim::bench {

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// The paper's standard CORDIC workload scaled up so wall-clock
/// measurements are stable: `items` divisions of the same dataset.
struct CordicWorkload {
  std::vector<i32> x;
  std::vector<i32> y;
  unsigned iterations = 24;

  static CordicWorkload standard(unsigned items, unsigned iterations,
                                 u64 seed = 0x51D) {
    CordicWorkload w;
    auto [x, y] = apps::cordic::make_cordic_dataset(items, seed);
    w.x = std::move(x);
    w.y = std::move(y);
    w.iterations = iterations;
    return w;
  }
};

/// Run the CORDIC design (P = 0 => pure software) on the high-level
/// co-simulation environment, returning the result struct.
inline apps::cordic::CordicRunResult run_cordic_cosim(
    const CordicWorkload& workload, unsigned num_pes) {
  apps::cordic::CordicRunConfig config;
  config.num_pes = num_pes;
  config.iterations = workload.iterations;
  config.items = static_cast<unsigned>(workload.x.size());
  return apps::cordic::run_cordic(config, workload.x, workload.y);
}

/// Run the same CORDIC design on the low-level RTL baseline. Returns the
/// simulated cycles; `wall_seconds` receives the host time.
inline Cycle run_cordic_rtl(const CordicWorkload& workload, unsigned num_pes,
                            double* wall_seconds) {
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = num_pes == 0;  // pure-SW default config
  const std::string source =
      num_pes == 0
          ? apps::cordic::pure_software_program(
                workload.x, workload.y, workload.iterations,
                apps::cordic::ShiftStrategy::kShiftLoop)
          : apps::cordic::hw_driver_program(workload.x, workload.y,
                                            workload.iterations, num_pes, 5);
  if (num_pes == 0) cpu_config.has_barrel_shifter = false;
  const auto program = assembler::assemble_or_throw(source);
  rtlmodels::RtlPeripheralConfig peripheral;
  if (num_pes > 0) {
    peripheral.kind = rtlmodels::RtlPeripheralConfig::Kind::kCordic;
    peripheral.parameter = num_pes;
  }
  Stopwatch watch;
  rtlmodels::RtlSystem rtl(program, cpu_config, peripheral);
  const auto reason = rtl.run(1u << 28);
  if (wall_seconds != nullptr) *wall_seconds = watch.elapsed_seconds();
  if (reason != rtlmodels::RtlStopReason::kHalted) {
    std::fprintf(stderr, "RTL CORDIC run did not halt!\n");
  }
  return rtl.cycles();
}

/// Matmul equivalents.
inline apps::matmul::MatmulRunResult run_matmul_cosim(
    const apps::matmul::Matrix& a, const apps::matmul::Matrix& b,
    unsigned block_size) {
  apps::matmul::MatmulRunConfig config;
  config.matrix_size = a.n;
  config.block_size = block_size;
  return apps::matmul::run_matmul(config, a, b);
}

inline Cycle run_matmul_rtl(const apps::matmul::Matrix& a,
                            const apps::matmul::Matrix& b,
                            unsigned block_size, double* wall_seconds) {
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  const std::string source =
      block_size == 0 ? apps::matmul::pure_software_program(a, b)
                      : apps::matmul::hw_driver_program(a, b, block_size);
  const auto program = assembler::assemble_or_throw(source);
  rtlmodels::RtlPeripheralConfig peripheral;
  if (block_size > 0) {
    peripheral.kind = rtlmodels::RtlPeripheralConfig::Kind::kMatmul;
    peripheral.parameter = block_size;
  }
  Stopwatch watch;
  rtlmodels::RtlSystem rtl(program, cpu_config, peripheral, 256 * 1024);
  const auto reason = rtl.run(1u << 28);
  if (wall_seconds != nullptr) *wall_seconds = watch.elapsed_seconds();
  if (reason != rtlmodels::RtlStopReason::kHalted) {
    std::fprintf(stderr, "RTL matmul run did not halt!\n");
  }
  return rtl.cycles();
}

}  // namespace mbcosim::bench
