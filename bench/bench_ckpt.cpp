// Checkpoint subsystem bench: snapshot size and save/restore latency on
// a long single-core workload, and the headline fork-from-checkpoint
// campaign acceleration. A fault campaign whose cycle triggers all land
// late in the run re-simulates the same fault-free prefix once per
// experiment; forking every experiment from one snapshot of that prefix
// removes the redundancy without changing a byte of the report. This
// bench measures the speedup AND asserts the byte-identity (exit 1 on a
// report mismatch — it is the correctness oracle, not just a timer).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ckpt/ckpt.hpp"
#include "common/stopwatch.hpp"
#include "fault/campaign.hpp"
#include "sim/sim_system.hpp"

namespace {

// ~1.5M-cycle countdown sum: a long fault-free prefix with a single
// architectural output word, so late faults classify as masked/sdc.
constexpr const char* kLongProgram = R"(
start:
  li r3, 300000
  addk r4, r0, r0
loop:
  addk r4, r4, r3
  addik r3, r3, -1
  bnei r3, loop
  la r5, result
  swi r4, r5, 0
  halt
result: .space 4
)";

constexpr mbcosim::Cycle kPrefixCycles = 1'200'000;  // quantum of interest
constexpr mbcosim::Cycle kBudget = 1'600'000;

mbcosim::Expected<mbcosim::sim::SimSystem> long_factory(
    const mbcosim::fault::FaultPlan* plan) {
  mbcosim::sim::SimSystem::Builder builder;
  builder.program(kLongProgram);
  if (plan != nullptr) builder.fault(*plan);
  return builder.build();
}

std::vector<mbcosim::Word> long_outputs(mbcosim::sim::SimSystem& system) {
  return {system.word("result")};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_ckpt.json");
  JsonReport report("ckpt");

  // ------------------------------------------- snapshot size and latency
  print_header("Checkpoint mechanics: snapshot size, save/restore latency");
  auto built = long_factory(nullptr);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.error().c_str());
    return 1;
  }
  sim::SimSystem system = std::move(built).value();
  if (system.run(kPrefixCycles) != core::StopReason::kCycleLimit) {
    std::fprintf(stderr, "prefix run ended early\n");
    return 1;
  }
  Stopwatch save_watch;
  const std::vector<unsigned char> image = system.snapshot();
  const double save_seconds = save_watch.elapsed_seconds();

  auto resumed_built = long_factory(nullptr);
  if (!resumed_built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", resumed_built.error().c_str());
    return 1;
  }
  sim::SimSystem resumed = std::move(resumed_built).value();
  Stopwatch restore_watch;
  if (const Status restored = resumed.restore_image(image); !restored.ok) {
    std::fprintf(stderr, "restore failed: %s\n", restored.message.c_str());
    return 1;
  }
  const double restore_seconds = restore_watch.elapsed_seconds();
  std::printf("%-24s %12zu bytes\n", "snapshot size", image.size());
  std::printf("%-24s %12.6f s\n", "snapshot() latency", save_seconds);
  std::printf("%-24s %12.6f s\n", "restore_image() latency", restore_seconds);
  report.add("snapshot_bytes=" + std::to_string(image.size()), kPrefixCycles,
             save_seconds);
  report.add("restore", kPrefixCycles, restore_seconds);

  // -------------------------------------- fork-from-checkpoint campaign
  print_header(
      "Fork-from-checkpoint campaign: late triggers, 24 experiments");
  fault::CampaignConfig config;
  config.seed = 0xF0DE;
  config.experiments = 24;
  config.threads = 1;  // serial: wall time measures simulated work only
  config.max_cycles = kBudget;
  config.space.mem_base = 0;
  config.space.mem_bytes = 64;
  config.space.registers = 8;
  config.space.opb = false;
  // The vulnerability window under study is the tail of the run: every
  // trigger lands after 1.4M of the ~1.5M golden cycles, so the shared
  // fault-free prefix dominates an unforked experiment (>90% of its
  // simulated cycles are redundant re-simulation).
  config.space.min_trigger_cycle = 1'400'000;
  config.space.max_trigger_cycle = 1'450'000;

  config.fork = false;
  Stopwatch unforked_watch;
  const auto unforked = fault::run_campaign(config, long_factory, long_outputs);
  const double unforked_seconds = unforked_watch.elapsed_seconds();
  if (!unforked.ok()) {
    std::fprintf(stderr, "unforked campaign failed: %s\n",
                 unforked.error().c_str());
    return 1;
  }

  config.fork = true;
  Stopwatch forked_watch;
  const auto forked = fault::run_campaign(config, long_factory, long_outputs);
  const double forked_seconds = forked_watch.elapsed_seconds();
  if (!forked.ok()) {
    std::fprintf(stderr, "forked campaign failed: %s\n",
                 forked.error().c_str());
    return 1;
  }

  Cycle simulated = 0;
  for (const fault::ExperimentResult& row : unforked.value().results) {
    simulated += row.cycles;
  }
  const double speedup =
      forked_seconds > 0.0 ? unforked_seconds / forked_seconds : 0.0;
  std::printf("%-24s %12.4f s\n", "campaign, fork off", unforked_seconds);
  std::printf("%-24s %12.4f s\n", "campaign, fork on", forked_seconds);
  std::printf("%-24s %12.2fx\n", "fork speedup", speedup);
  report.add("campaign_fork=off", simulated, unforked_seconds);
  report.add("campaign_fork=on", simulated, forked_seconds);

  // The correctness oracle: acceleration must be invisible in the
  // vulnerability report, byte for byte.
  if (forked.value().to_json() != unforked.value().to_json()) {
    std::fprintf(stderr,
                 "FAIL: forked campaign report differs from unforked\n");
    return 1;
  }
  std::printf("forked report is byte-identical to the unforked report\n");
  if (speedup < 5.0) {
    std::printf("note: fork speedup %.2fx is below the 5x target "
                "(loaded host?)\n", speedup);
  }

  return report.write(json_path) ? 0 : 1;
}
