// Table I (simulation-time columns): wall-clock time for cycle-accurate
// functional simulation of each design in (a) our high-level
// co-simulation environment and (b) the low-level event-driven RTL
// baseline (the ModelSim-behavioral analog), plus the speedup. The paper
// reports speedups of 5.6x-19.4x (CORDIC) and 13x/15.1x (matmul); the
// reproduced shape is "co-simulation is many times faster, and the gap
// widens for the software-dominated matmul runs".
//
// The co-simulation side goes through the SimSystem facade and the
// sim::Sweep engine — but on ONE worker thread: this bench measures
// per-design host wall-clock, and concurrent points would contend for
// cores and distort exactly the quantity being reported.
//
// Pass `--json FILE` (default BENCH_table1.json, `--json none` to
// disable) to also write machine-readable rows for perf tracking; each
// design contributes a cosim_* and an rtl_* row.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

constexpr int kReps = 3;

/// Median-of-3 wall time for a callable returning simulated cycles.
template <typename F>
double measure_seconds(F&& run) {
  double best = 1e99;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch watch;
    run();
    best = std::min(best, watch.elapsed_seconds());
  }
  return best;
}

struct Row {
  const char* design;
  double cosim_s;
  double rtl_s;
  Cycle cycles;
  const char* paper;
};

void print_row(const Row& row) {
  std::printf("%-34s %10.4f %10.4f %8.1fx %9llu   %s\n", row.design,
              row.cosim_s, row.rtl_s, row.rtl_s / row.cosim_s,
              static_cast<unsigned long long>(row.cycles), row.paper);
}

/// Best-of-reps simulation-loop seconds and the (identical) cycle count
/// for the `kReps` sweep rows starting at `first`.
std::pair<double, Cycle> reduce_reps(
    const std::vector<sim::SweepPointResult>& results, std::size_t first) {
  double best = 1e99;
  Cycle cycles = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto& r = results[first + static_cast<std::size_t>(rep)];
    if (!r.ok) {
      std::fprintf(stderr, "point %s FAILED: %s\n", r.label.c_str(),
                   r.error.c_str());
      std::exit(1);
    }
    best = std::min(best, r.sim_wall_seconds);
    cycles = r.stats.cycles;
  }
  return {best, cycles};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_table1.json");
  JsonReport report("table1_simtime");
  print_header(
      "Table I (simulation time): high-level co-simulation vs low-level "
      "RTL baseline\n  columns: co-sim [s], RTL [s], speedup, simulated "
      "cycles, paper (env vs ModelSim)");
  print_rule();

  // 100 items keeps each measurement comfortably above timer resolution.
  const CordicWorkload workload = CordicWorkload::standard(100, 24);
  const unsigned kCordicPes[] = {2u, 4u, 6u, 8u};
  const unsigned kMatmulBlocks[] = {2u, 4u};
  const auto a = apps::matmul::make_matrix(16, 1);
  const auto b = apps::matmul::make_matrix(16, 2);

  // All co-simulation measurements as one serial sweep (kReps rows per
  // design; estimates off — they are not part of the timed quantity).
  sim::Sweep cosim;
  for (unsigned p : kCordicPes) {
    apps::cordic::CordicRunConfig config;
    config.num_pes = p;
    config.iterations = workload.iterations;
    config.items = static_cast<unsigned>(workload.x.size());
    for (int rep = 0; rep < kReps; ++rep) {
      cosim.add("cordic P=" + std::to_string(p), [config, &workload] {
        return apps::cordic::make_cordic_system(config, workload.x,
                                                workload.y);
      });
    }
  }
  for (unsigned block : kMatmulBlocks) {
    apps::matmul::MatmulRunConfig config;
    config.matrix_size = 16;
    config.block_size = block;
    for (int rep = 0; rep < kReps; ++rep) {
      cosim.add("matmul " + std::to_string(block) + "x" +
                    std::to_string(block),
                [config, &a, &b] {
                  return apps::matmul::make_matmul_system(config, a, b);
                });
    }
  }
  const auto results = cosim.run({.threads = 1, .estimates = false});

  static const char* kPaperCordic[] = {
      "paper: 6.3s vs 35.5s (5.6x)", "paper: 3.1s vs 34.0s (11.0x)",
      "paper: 2.2s vs 33.5s (15.2x)", "paper: 1.7s vs 33.0s (19.4x)"};
  std::size_t point = 0;
  int index = 0;
  double total_speedup = 0;
  int designs = 0;
  for (unsigned p : kCordicPes) {
    const auto [cosim_s, cycles] = reduce_reps(results, point);
    point += kReps;
    const double rtl_s = measure_seconds([&] {
      double unused = 0;
      (void)run_cordic_rtl(workload, p, &unused);
    });
    const std::string name =
        "24-iter CORDIC division, P=" + std::to_string(p);
    print_row(Row{name.c_str(), cosim_s, rtl_s, cycles,
                  kPaperCordic[index++]});
    report.add("cosim_cordic_p" + std::to_string(p), cycles, cosim_s);
    report.add("rtl_cordic_p" + std::to_string(p), cycles, rtl_s);
    total_speedup += rtl_s / cosim_s;
    ++designs;
  }

  static const char* kPaperMatmul[] = {"paper: 187s vs 1501s (8.0x)",
                                       "paper: 45s vs 678s (15.1x)"};
  index = 0;
  for (unsigned block : kMatmulBlocks) {
    const auto [cosim_s, cycles] = reduce_reps(results, point);
    point += kReps;
    const double rtl_s = measure_seconds([&] {
      double unused = 0;
      (void)run_matmul_rtl(a, b, block, &unused);
    });
    const std::string name = "16x16 matmul, " + std::to_string(block) + "x" +
                             std::to_string(block) + " blocks";
    print_row(Row{name.c_str(), cosim_s, rtl_s, cycles,
                  kPaperMatmul[index++]});
    report.add("cosim_matmul_b" + std::to_string(block), cycles, cosim_s);
    report.add("rtl_matmul_b" + std::to_string(block), cycles, rtl_s);
    total_speedup += rtl_s / cosim_s;
    ++designs;
  }

  print_rule();
  std::printf("average simulation speedup over the RTL baseline: %.1fx "
              "(paper: 12.8x average for the CORDIC designs, 11.0x overall)\n",
              total_speedup / designs);
  return report.write(json_path) ? 0 : 1;
}
