// Figure 5: time performance of the CORDIC processor for division —
// application execution time (microseconds at the 50 MHz system clock)
// versus the number of PEs P, for 24 and 32 iterations. P = 0 denotes
// the pure software implementation, as in the paper.
//
// Reproduced shape: execution time drops steeply from P = 0 to small P
// and then shows diminishing returns (the pass count ceil(iters/P)
// dominates); the paper's headline is a 5.6x improvement at P = 4 with
// 24 iterations.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  print_header(
      "Figure 5: CORDIC division execution time (usec) vs P\n"
      "  (P = 0 is the pure software implementation; 100 items)");
  std::printf("%4s %18s %18s %14s %14s\n", "P", "24 iters [usec]",
              "32 iters [usec]", "speedup(24)", "speedup(32)");
  print_rule();

  const CordicWorkload w24 = CordicWorkload::standard(100, 24);
  const CordicWorkload w32 = CordicWorkload::standard(100, 32);

  double sw24 = 0;
  double sw32 = 0;
  for (unsigned p : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const auto r24 = run_cordic_cosim(w24, p);
    const auto r32 = run_cordic_cosim(w32, p);
    if (p == 0) {
      sw24 = r24.usec();
      sw32 = r32.usec();
    }
    std::printf("%4u %18.1f %18.1f %13.2fx %13.2fx\n", p, r24.usec(),
                r32.usec(), sw24 / r24.usec(), sw32 / r32.usec());
  }

  print_rule();
  std::printf(
      "Paper shape: monotone decrease with P, diminishing returns; P=4 at\n"
      "24 iterations is 5.6x faster than pure software (ours printed in\n"
      "the speedup(24) column). Effective iterations for P that does not\n"
      "divide the count are rounded up to the next multiple of P\n"
      "(extra CORDIC iterations only refine the quotient).\n");
  return 0;
}
