// Figure 5: time performance of the CORDIC processor for division —
// application execution time (microseconds at the 50 MHz system clock)
// versus the number of PEs P, for 24 and 32 iterations. P = 0 denotes
// the pure software implementation, as in the paper.
//
// The 18 design points run as one parallel sim::Sweep over the
// SimSystem facade: every point is an independent simulator, so the
// design-space exploration parallelizes perfectly and the per-point
// cycle counts are bit-identical to a serial run.
//
// Reproduced shape: execution time drops steeply from P = 0 to small P
// and then shows diminishing returns (the pass count ceil(iters/P)
// dominates); the paper's headline is a 5.6x improvement at P = 4 with
// 24 iterations.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_fig5.json");

  print_header(
      "Figure 5: CORDIC division execution time (usec) vs P\n"
      "  (P = 0 is the pure software implementation; 100 items)");

  const CordicWorkload w24 = CordicWorkload::standard(100, 24);
  const CordicWorkload w32 = CordicWorkload::standard(100, 32);
  const unsigned kPes[] = {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u};

  // Two points (24- and 32-iteration workloads) per pipeline depth.
  sim::Sweep sweep;
  for (unsigned p : kPes) {
    for (const CordicWorkload* w : {&w24, &w32}) {
      apps::cordic::CordicRunConfig config;
      config.num_pes = p;
      config.iterations = w->iterations;
      config.items = static_cast<unsigned>(w->x.size());
      sweep.add("P=" + std::to_string(p) + "/" +
                    std::to_string(w->iterations) + "it",
                [config, w] {
                  return apps::cordic::make_cordic_system(config, w->x, w->y);
                });
    }
  }

  const unsigned threads =
      std::max(4u, std::thread::hardware_concurrency());
  Stopwatch sweep_watch;
  const auto results = sweep.run({.threads = threads});
  const double sweep_seconds = sweep_watch.elapsed_seconds();

  JsonReport report("fig5_cordic_perf");
  std::printf("%4s %18s %18s %14s %14s\n", "P", "24 iters [usec]",
              "32 iters [usec]", "speedup(24)", "speedup(32)");
  print_rule();
  double sw24 = 0;
  double sw32 = 0;
  for (std::size_t i = 0; i < std::size(kPes); ++i) {
    const auto& r24 = results[2 * i];
    const auto& r32 = results[2 * i + 1];
    if (!r24.ok || !r32.ok) {
      std::printf("%4u  FAILED: %s\n", kPes[i],
                  (!r24.ok ? r24 : r32).error.c_str());
      return 1;
    }
    if (kPes[i] == 0) {
      sw24 = r24.usec();
      sw32 = r32.usec();
    }
    std::printf("%4u %18.1f %18.1f %13.2fx %13.2fx\n", kPes[i], r24.usec(),
                r32.usec(), sw24 / r24.usec(), sw32 / r32.usec());
    report.add(r24.label, r24.stats.cycles, r24.sim_wall_seconds);
    report.add(r32.label, r32.stats.cycles, r32.sim_wall_seconds);
  }
  report.write(json_path);

  print_rule();
  std::printf(
      "Paper shape: monotone decrease with P, diminishing returns; P=4 at\n"
      "24 iterations is 5.6x faster than pure software (ours printed in\n"
      "the speedup(24) column). Effective iterations for P that does not\n"
      "divide the count are rounded up to the next multiple of P\n"
      "(extra CORDIC iterations only refine the quotient).\n"
      "Sweep: %zu points on %u worker threads in %.2f s wall-clock.\n",
      results.size(), threads, sweep_seconds);
  return 0;
}
