// Ablation: hardware/software data-exchange frequency vs co-simulation
// speed. The paper's analysis (Section IV-A) names two factors that slow
// the co-simulation of the CORDIC application: the fraction of work done
// in the hardware model and the frequency of data exchanges between the
// software program and the hardware peripherals. This bench varies both:
//   - P (more PEs = more hardware work per simulated cycle);
//   - the set size (smaller sets = more frequent pass boundaries and
//     control-word exchanges per item);
//   - the FSL FIFO depth (shallower FIFOs = more processor stalls, i.e.
//     more simulated cycles for the same work).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_ablation_exchange.json");
  JsonReport report("ablation_exchange");

  const CordicWorkload workload = CordicWorkload::standard(100, 24);

  print_header(
      "Ablation A: set size (exchange granularity) -- P=4, 24 iterations");
  std::printf("%10s %14s %16s %18s\n", "set size", "cycles", "stall cycles",
              "co-sim wall [s]");
  print_rule();
  for (unsigned set_size : {1u, 2u, 5u}) {
    apps::cordic::CordicRunConfig config;
    config.num_pes = 4;
    config.iterations = 24;
    config.items = 100;
    config.set_size = set_size;
    Stopwatch watch;
    const auto result =
        apps::cordic::run_cordic(config, workload.x, workload.y);
    const double seconds = watch.elapsed_seconds();
    std::printf("%10u %14llu %16llu %18.4f\n", set_size,
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.fsl_stall_cycles),
                seconds);
    report.add("set_size=" + std::to_string(set_size), result.cycles, seconds);
  }
  std::printf("Smaller sets exchange control words more often and overlap\n"
              "less compute with communication: more simulated cycles.\n");

  print_header("Ablation B: FSL FIFO depth -- P=4, 24 iterations, sets of 5");
  std::printf("%10s %14s %16s\n", "depth", "cycles", "stall cycles");
  print_rule();
  for (unsigned depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    apps::cordic::CordicRunConfig config;
    config.num_pes = 4;
    config.iterations = 24;
    config.items = 100;
    config.fifo_depth = depth;
    const auto result =
        apps::cordic::run_cordic(config, workload.x, workload.y);
    std::printf("%10u %14llu %16llu\n", depth,
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.fsl_stall_cycles));
    report.add("fifo_depth=" + std::to_string(depth), result.cycles,
               result.sim_wall_seconds);
  }
  std::printf(
      "Finding: with correct FSL handshaking (blocking puts/gets on the\n"
      "processor, full/exists respected by the peripheral -- Section\n"
      "III-B semantics), even minimal FIFOs add no stall cycles here:\n"
      "the software side is the throughput bottleneck, producing/consuming\n"
      "a word only every ~8 cycles. The paper's careful data-set sizing\n"
      "(so results 'would not overflow the FIFOs') protects correctness\n"
      "for peripherals that IGNORE backpressure, not performance.\n");

  print_header(
      "Ablation C: hardware fraction -- wall time per simulated cycle");
  std::printf("%4s %14s %18s %22s\n", "P", "cycles", "co-sim wall [s]",
              "host us per sim cycle");
  print_rule();
  for (unsigned p : {1u, 2u, 4u, 8u}) {
    Stopwatch watch;
    const auto result = run_cordic_cosim(workload, p);
    const double seconds = watch.elapsed_seconds();
    std::printf("%4u %14llu %18.4f %22.3f\n", p,
                static_cast<unsigned long long>(result.cycles), seconds,
                seconds / double(result.cycles) * 1e6);
    report.add("P=" + std::to_string(p), result.cycles, seconds);
  }
  std::printf("More PEs = more block evaluations per simulated cycle: the\n"
              "host cost per cycle grows with the hardware fraction, the\n"
              "paper's first slow-down factor.\n");
  report.write(json_path);
  return 0;
}
