// Table I (resource columns): estimated vs implemented resource usage of
// the six designs the paper evaluates — CORDIC division with P = 2/4/6/8
// and 16x16 block matmul with 2x2 / 4x4 blocks. The paper's own numbers
// are printed alongside for shape comparison (our PE datapath is 32-bit
// with two barrel shifters per PE, so absolute slice counts differ; the
// linear growth with P, the single program BRAM and the exact multiplier
// counts are the reproduced shape).
#include <cstdio>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_hw.hpp"
#include "bench_common.hpp"
#include "estimate/estimator.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

struct PaperRow {
  const char* design;
  unsigned slices_est, slices_act, brams, mults;
};

void print_row(const char* name, const estimate::ResourceReport& report,
               const PaperRow& paper) {
  std::printf("%-34s %6u /%6u %5u %5u   | %5u /%5u %4u %4u\n", name,
              report.estimated.slices, report.implemented.slices,
              report.estimated.brams, report.estimated.mult18s,
              paper.slices_est, paper.slices_act, paper.brams, paper.mults);
}

}  // namespace

int main() {
  print_header(
      "Table I (resources): estimated/implemented slices, BRAMs, MULT18x18s"
      "\n  columns: ours (est/impl, BRAM, mult)  |  paper (est/act, BRAM, "
      "mult)");
  std::printf("%-34s %15s %5s %5s   | %12s %4s %4s\n", "design", "slices",
              "BRAM", "mult", "slices", "BRAM", "mult");
  print_rule();

  const CordicWorkload workload = CordicWorkload::standard(20, 24);
  static const PaperRow kPaperCordic[] = {
      {"24-iter CORDIC division, P=2", 729, 721, 1, 3},
      {"24-iter CORDIC division, P=4", 801, 793, 1, 3},
      {"24-iter CORDIC division, P=6", 873, 865, 1, 3},
      {"24-iter CORDIC division, P=8", 975, 937, 1, 3},
  };
  int row = 0;
  for (unsigned p : {2u, 4u, 6u, 8u}) {
    const auto pipeline = apps::cordic::build_cordic_pipeline(p);
    const auto program = assembler::assemble_or_throw(
        apps::cordic::hw_driver_program(workload.x, workload.y, 24, p, 5));
    estimate::SystemDescription system;
    system.cpu.has_barrel_shifter = false;
    system.fsl_links_used = 2;
    system.peripheral = pipeline.model.get();
    system.program = &program;
    print_row(kPaperCordic[row].design, estimate::estimate_system(system),
              kPaperCordic[row]);
    ++row;
  }

  static const PaperRow kPaperMatmul[] = {
      {"16x16 matmul, 2x2 blocks", 851, 713, 1, 5},
      {"16x16 matmul, 4x4 blocks", 1043, 867, 1, 7},
  };
  const auto a = apps::matmul::make_matrix(16, 1);
  const auto b = apps::matmul::make_matrix(16, 2);
  row = 0;
  for (unsigned block : {2u, 4u}) {
    const auto peripheral = apps::matmul::build_matmul_peripheral(block);
    const auto program = assembler::assemble_or_throw(
        apps::matmul::hw_driver_program(a, b, block));
    estimate::SystemDescription system;
    system.cpu.has_barrel_shifter = false;
    system.fsl_links_used = 2;
    system.peripheral = peripheral.model.get();
    system.program = &program;
    print_row(kPaperMatmul[row].design, estimate::estimate_system(system),
              kPaperMatmul[row]);
    ++row;
  }

  print_rule();
  std::printf(
      "Shape checks: slices grow linearly with P; every design fits its\n"
      "program in 1 BRAM; multiplier counts match the paper exactly\n"
      "(3 = CPU multiply unit; +2 / +4 embedded multipliers for the\n"
      "matmul MAC array); implemented <= estimated slices, with a larger\n"
      "trim on the mux/control-heavy matmul designs.\n");
  return 0;
}
