// Figure 7: time performance of block matrix multiplication —
// application execution time versus matrix size N for pure software,
// 2x2-block hardware and 4x4-block hardware. The 12 design points run
// as one parallel sim::Sweep over the SimSystem facade.
//
// Reproduced shape (the paper's crossover result): the 4x4-block design
// beats software by ~2.2x at N = 16, while the 2x2-block design is
// slightly SLOWER than pure software (paper: 8.8% more execution time)
// because the per-word FSL communication overhead exceeds the offloaded
// MAC work.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  const std::string json_path =
      take_json_path_arg(argc, argv, "BENCH_fig7.json");

  print_header(
      "Figure 7: block matmul execution time (usec) vs N\n"
      "  (columns: pure software, 2x2 blocks, 4x4 blocks)");

  const unsigned kSizes[] = {4u, 8u, 12u, 16u};
  const unsigned kBlocks[] = {0u, 2u, 4u};

  // Pre-built inputs outlive the sweep; the factories read them only.
  std::vector<std::pair<apps::matmul::Matrix, apps::matmul::Matrix>> inputs;
  for (unsigned n : kSizes) {
    inputs.emplace_back(apps::matmul::make_matrix(n, n * 13 + 1),
                        apps::matmul::make_matrix(n, n * 17 + 2));
  }

  sim::Sweep sweep;
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    for (unsigned block : kBlocks) {
      apps::matmul::MatmulRunConfig config;
      config.matrix_size = kSizes[i];
      config.block_size = block;
      const auto* ab = &inputs[i];
      sweep.add("N=" + std::to_string(kSizes[i]) + "/b" +
                    std::to_string(block),
                [config, ab] {
                  return apps::matmul::make_matmul_system(config, ab->first,
                                                          ab->second);
                });
    }
  }

  const unsigned threads =
      std::max(4u, std::thread::hardware_concurrency());
  Stopwatch sweep_watch;
  const auto results = sweep.run({.threads = threads});
  const double sweep_seconds = sweep_watch.elapsed_seconds();

  JsonReport report("fig7_matmul_perf");
  std::printf("%4s %16s %16s %16s %12s %12s\n", "N", "software", "2x2 blocks",
              "4x4 blocks", "2x2 vs sw", "4x4 vs sw");
  print_rule();
  for (std::size_t i = 0; i < std::size(kSizes); ++i) {
    const auto& sw = results[3 * i];
    const auto& hw2 = results[3 * i + 1];
    const auto& hw4 = results[3 * i + 2];
    for (const auto* r : {&sw, &hw2, &hw4}) {
      if (!r->ok) {
        std::printf("point %s FAILED: %s\n", r->label.c_str(),
                    r->error.c_str());
        return 1;
      }
      report.add(r->label, r->stats.cycles, r->sim_wall_seconds);
    }
    std::printf("%4u %16.1f %16.1f %16.1f %11.2fx %11.2fx\n", kSizes[i],
                sw.usec(), hw2.usec(), hw4.usec(), sw.usec() / hw2.usec(),
                sw.usec() / hw4.usec());
  }
  report.write(json_path);

  print_rule();
  std::printf(
      "Paper shape at N = 16: 4x4 blocks ~2.2x faster than software; 2x2\n"
      "blocks ~8.8%% SLOWER than software (speedup below 1.0x) -- the\n"
      "communication-overhead crossover of Section IV-B.\n"
      "Sweep: %zu points on %u worker threads in %.2f s wall-clock.\n",
      results.size(), threads, sweep_seconds);
  return 0;
}
