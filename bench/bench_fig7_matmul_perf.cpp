// Figure 7: time performance of block matrix multiplication —
// application execution time versus matrix size N for pure software,
// 2x2-block hardware and 4x4-block hardware.
//
// Reproduced shape (the paper's crossover result): the 4x4-block design
// beats software by ~2.2x at N = 16, while the 2x2-block design is
// slightly SLOWER than pure software (paper: 8.8% more execution time)
// because the per-word FSL communication overhead exceeds the offloaded
// MAC work.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace mbcosim;
  using namespace mbcosim::bench;

  print_header(
      "Figure 7: block matmul execution time (usec) vs N\n"
      "  (columns: pure software, 2x2 blocks, 4x4 blocks)");
  std::printf("%4s %16s %16s %16s %12s %12s\n", "N", "software", "2x2 blocks",
              "4x4 blocks", "2x2 vs sw", "4x4 vs sw");
  print_rule();

  for (unsigned n : {4u, 8u, 12u, 16u}) {
    const auto a = apps::matmul::make_matrix(n, n * 13 + 1);
    const auto b = apps::matmul::make_matrix(n, n * 17 + 2);
    const double sw = run_matmul_cosim(a, b, 0).usec();
    const double hw2 = run_matmul_cosim(a, b, 2).usec();
    const double hw4 = run_matmul_cosim(a, b, 4).usec();
    std::printf("%4u %16.1f %16.1f %16.1f %11.2fx %11.2fx\n", n, sw, hw2,
                hw4, sw / hw2, sw / hw4);
  }

  print_rule();
  std::printf(
      "Paper shape at N = 16: 4x4 blocks ~2.2x faster than software; 2x2\n"
      "blocks ~8.8%% SLOWER than software (speedup below 1.0x) -- the\n"
      "communication-overhead crossover of Section IV-B.\n");
  return 0;
}
