// Ablation: where the low-level baseline spends its time. The paper's
// argument for high-level co-simulation is that register-transfer-level
// simulation pays for signal events, process activations and delta
// cycles on every clock (Section II). This bench reports those kernel
// statistics per simulated cycle for each design, quantifying the cost
// the high-level environment avoids.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace mbcosim;
using namespace mbcosim::bench;

void report(const char* name, rtlmodels::RtlSystem& rtl, double seconds) {
  const auto& stats = rtl.kernel_stats();
  const double cycles = static_cast<double>(stats.clock_cycles);
  std::printf("%-30s %10llu %8.1f %8.1f %8.1f %8.1f %10.3f\n", name,
              static_cast<unsigned long long>(stats.clock_cycles),
              double(stats.events) / cycles,
              double(stats.process_activations) / cycles,
              double(stats.delta_cycles) / cycles,
              double(stats.assignments) / cycles, seconds);
}

}  // namespace

int main() {
  print_header(
      "Ablation: event-kernel work per simulated clock cycle (RTL "
      "baseline)\n  columns: cycles, events/cyc, activations/cyc, "
      "deltas/cyc, assigns/cyc, wall [s]");
  print_rule();

  const CordicWorkload workload = CordicWorkload::standard(50, 24);
  for (unsigned p : {2u, 4u, 8u}) {
    isa::CpuConfig cpu_config;
    cpu_config.has_barrel_shifter = false;
    const auto program = assembler::assemble_or_throw(
        apps::cordic::hw_driver_program(workload.x, workload.y, 24, p, 5));
    Stopwatch watch;
    rtlmodels::RtlSystem rtl(
        program, cpu_config,
        rtlmodels::RtlPeripheralConfig{
            rtlmodels::RtlPeripheralConfig::Kind::kCordic, p});
    (void)rtl.run(1u << 28);
    const std::string name = "CORDIC P=" + std::to_string(p);
    report(name.c_str(), rtl, watch.elapsed_seconds());
  }

  const auto a = apps::matmul::make_matrix(16, 1);
  const auto b = apps::matmul::make_matrix(16, 2);
  for (unsigned block : {2u, 4u}) {
    isa::CpuConfig cpu_config;
    cpu_config.has_barrel_shifter = false;
    const auto program = assembler::assemble_or_throw(
        apps::matmul::hw_driver_program(a, b, block));
    Stopwatch watch;
    rtlmodels::RtlSystem rtl(
        program, cpu_config,
        rtlmodels::RtlPeripheralConfig{
            rtlmodels::RtlPeripheralConfig::Kind::kMatmul, block},
        256 * 1024);
    (void)rtl.run(1u << 28);
    const std::string name =
        "matmul " + std::to_string(block) + "x" + std::to_string(block);
    report(name.c_str(), rtl, watch.elapsed_seconds());
  }

  print_rule();
  std::printf(
      "Every simulated cycle of the baseline pays for dozens of signal\n"
      "events and process activations (and their delta-cycle scheduling);\n"
      "the high-level environment replaces all of it with one arithmetic\n"
      "evaluation per block -- this is the mechanism behind Table I's\n"
      "simulation-time gap.\n");
  return 0;
}
