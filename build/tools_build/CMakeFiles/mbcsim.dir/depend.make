# Empty dependencies file for mbcsim.
# This may be replaced when dependencies are built.
