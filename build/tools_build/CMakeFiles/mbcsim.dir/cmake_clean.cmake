file(REMOVE_RECURSE
  "../tools/mbcsim"
  "../tools/mbcsim.pdb"
  "CMakeFiles/mbcsim.dir/mbcsim.cpp.o"
  "CMakeFiles/mbcsim.dir/mbcsim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
