# Empty dependencies file for matrix_multiply.
# This may be replaced when dependencies are built.
