# Empty compiler generated dependencies file for custom_peripheral.
# This may be replaced when dependencies are built.
