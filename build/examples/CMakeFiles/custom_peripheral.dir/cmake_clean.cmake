file(REMOVE_RECURSE
  "CMakeFiles/custom_peripheral.dir/custom_peripheral.cpp.o"
  "CMakeFiles/custom_peripheral.dir/custom_peripheral.cpp.o.d"
  "custom_peripheral"
  "custom_peripheral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_peripheral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
