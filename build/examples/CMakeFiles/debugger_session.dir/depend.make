# Empty dependencies file for debugger_session.
# This may be replaced when dependencies are built.
