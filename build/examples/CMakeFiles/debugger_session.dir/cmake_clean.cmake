file(REMOVE_RECURSE
  "CMakeFiles/debugger_session.dir/debugger_session.cpp.o"
  "CMakeFiles/debugger_session.dir/debugger_session.cpp.o.d"
  "debugger_session"
  "debugger_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
