file(REMOVE_RECURSE
  "CMakeFiles/cordic_division.dir/cordic_division.cpp.o"
  "CMakeFiles/cordic_division.dir/cordic_division.cpp.o.d"
  "cordic_division"
  "cordic_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordic_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
