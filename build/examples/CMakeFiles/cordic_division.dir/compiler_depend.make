# Empty compiler generated dependencies file for cordic_division.
# This may be replaced when dependencies are built.
