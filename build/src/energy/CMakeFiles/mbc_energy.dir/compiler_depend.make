# Empty compiler generated dependencies file for mbc_energy.
# This may be replaced when dependencies are built.
