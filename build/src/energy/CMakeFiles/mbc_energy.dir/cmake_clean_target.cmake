file(REMOVE_RECURSE
  "libmbc_energy.a"
)
