file(REMOVE_RECURSE
  "CMakeFiles/mbc_energy.dir/energy_model.cpp.o"
  "CMakeFiles/mbc_energy.dir/energy_model.cpp.o.d"
  "libmbc_energy.a"
  "libmbc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
