file(REMOVE_RECURSE
  "CMakeFiles/mbc_rtlmodels.dir/cordic_rtl.cpp.o"
  "CMakeFiles/mbc_rtlmodels.dir/cordic_rtl.cpp.o.d"
  "CMakeFiles/mbc_rtlmodels.dir/matmul_rtl.cpp.o"
  "CMakeFiles/mbc_rtlmodels.dir/matmul_rtl.cpp.o.d"
  "CMakeFiles/mbc_rtlmodels.dir/mb_core_rtl.cpp.o"
  "CMakeFiles/mbc_rtlmodels.dir/mb_core_rtl.cpp.o.d"
  "CMakeFiles/mbc_rtlmodels.dir/system_rtl.cpp.o"
  "CMakeFiles/mbc_rtlmodels.dir/system_rtl.cpp.o.d"
  "libmbc_rtlmodels.a"
  "libmbc_rtlmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_rtlmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
