file(REMOVE_RECURSE
  "libmbc_rtlmodels.a"
)
