# Empty compiler generated dependencies file for mbc_rtlmodels.
# This may be replaced when dependencies are built.
