# CMake generated Testfile for 
# Source directory: /root/repo/src/rtlmodels
# Build directory: /root/repo/build/src/rtlmodels
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
