file(REMOVE_RECURSE
  "libmbc_bus.a"
)
