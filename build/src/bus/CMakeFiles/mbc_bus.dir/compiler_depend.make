# Empty compiler generated dependencies file for mbc_bus.
# This may be replaced when dependencies are built.
