file(REMOVE_RECURSE
  "CMakeFiles/mbc_bus.dir/opb_bus.cpp.o"
  "CMakeFiles/mbc_bus.dir/opb_bus.cpp.o.d"
  "libmbc_bus.a"
  "libmbc_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
