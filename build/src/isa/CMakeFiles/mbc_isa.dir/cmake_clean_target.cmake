file(REMOVE_RECURSE
  "libmbc_isa.a"
)
