file(REMOVE_RECURSE
  "CMakeFiles/mbc_isa.dir/decode.cpp.o"
  "CMakeFiles/mbc_isa.dir/decode.cpp.o.d"
  "CMakeFiles/mbc_isa.dir/disasm.cpp.o"
  "CMakeFiles/mbc_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/mbc_isa.dir/encode.cpp.o"
  "CMakeFiles/mbc_isa.dir/encode.cpp.o.d"
  "CMakeFiles/mbc_isa.dir/timing.cpp.o"
  "CMakeFiles/mbc_isa.dir/timing.cpp.o.d"
  "libmbc_isa.a"
  "libmbc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
