# Empty dependencies file for mbc_isa.
# This may be replaced when dependencies are built.
