# Empty dependencies file for mbc_fsl.
# This may be replaced when dependencies are built.
