file(REMOVE_RECURSE
  "libmbc_fsl.a"
)
