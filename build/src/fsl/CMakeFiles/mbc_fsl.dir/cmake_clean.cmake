file(REMOVE_RECURSE
  "CMakeFiles/mbc_fsl.dir/fsl_channel.cpp.o"
  "CMakeFiles/mbc_fsl.dir/fsl_channel.cpp.o.d"
  "libmbc_fsl.a"
  "libmbc_fsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_fsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
