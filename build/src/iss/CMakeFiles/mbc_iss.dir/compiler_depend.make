# Empty compiler generated dependencies file for mbc_iss.
# This may be replaced when dependencies are built.
