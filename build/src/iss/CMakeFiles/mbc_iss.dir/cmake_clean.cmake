file(REMOVE_RECURSE
  "CMakeFiles/mbc_iss.dir/debugger.cpp.o"
  "CMakeFiles/mbc_iss.dir/debugger.cpp.o.d"
  "CMakeFiles/mbc_iss.dir/memory.cpp.o"
  "CMakeFiles/mbc_iss.dir/memory.cpp.o.d"
  "CMakeFiles/mbc_iss.dir/processor.cpp.o"
  "CMakeFiles/mbc_iss.dir/processor.cpp.o.d"
  "libmbc_iss.a"
  "libmbc_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
