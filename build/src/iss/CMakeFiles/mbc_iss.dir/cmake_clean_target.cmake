file(REMOVE_RECURSE
  "libmbc_iss.a"
)
