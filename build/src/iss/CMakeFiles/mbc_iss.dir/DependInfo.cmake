
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/debugger.cpp" "src/iss/CMakeFiles/mbc_iss.dir/debugger.cpp.o" "gcc" "src/iss/CMakeFiles/mbc_iss.dir/debugger.cpp.o.d"
  "/root/repo/src/iss/memory.cpp" "src/iss/CMakeFiles/mbc_iss.dir/memory.cpp.o" "gcc" "src/iss/CMakeFiles/mbc_iss.dir/memory.cpp.o.d"
  "/root/repo/src/iss/processor.cpp" "src/iss/CMakeFiles/mbc_iss.dir/processor.cpp.o" "gcc" "src/iss/CMakeFiles/mbc_iss.dir/processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mbc_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/fsl/CMakeFiles/mbc_fsl.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mbc_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
