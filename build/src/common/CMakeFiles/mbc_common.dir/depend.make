# Empty dependencies file for mbc_common.
# This may be replaced when dependencies are built.
