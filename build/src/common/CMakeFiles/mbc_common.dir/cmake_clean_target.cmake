file(REMOVE_RECURSE
  "libmbc_common.a"
)
