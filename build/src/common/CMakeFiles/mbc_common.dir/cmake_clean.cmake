file(REMOVE_RECURSE
  "CMakeFiles/mbc_common.dir/fixed_point.cpp.o"
  "CMakeFiles/mbc_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/mbc_common.dir/log.cpp.o"
  "CMakeFiles/mbc_common.dir/log.cpp.o.d"
  "libmbc_common.a"
  "libmbc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
