# Empty compiler generated dependencies file for mbc_rtl.
# This may be replaced when dependencies are built.
