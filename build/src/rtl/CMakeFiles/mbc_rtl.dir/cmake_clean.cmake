file(REMOVE_RECURSE
  "CMakeFiles/mbc_rtl.dir/kernel.cpp.o"
  "CMakeFiles/mbc_rtl.dir/kernel.cpp.o.d"
  "CMakeFiles/mbc_rtl.dir/primitives.cpp.o"
  "CMakeFiles/mbc_rtl.dir/primitives.cpp.o.d"
  "CMakeFiles/mbc_rtl.dir/vcd.cpp.o"
  "CMakeFiles/mbc_rtl.dir/vcd.cpp.o.d"
  "libmbc_rtl.a"
  "libmbc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
