file(REMOVE_RECURSE
  "libmbc_rtl.a"
)
