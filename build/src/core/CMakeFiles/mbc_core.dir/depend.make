# Empty dependencies file for mbc_core.
# This may be replaced when dependencies are built.
