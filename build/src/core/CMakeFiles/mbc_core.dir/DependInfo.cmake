
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cosim_engine.cpp" "src/core/CMakeFiles/mbc_core.dir/cosim_engine.cpp.o" "gcc" "src/core/CMakeFiles/mbc_core.dir/cosim_engine.cpp.o.d"
  "/root/repo/src/core/fsl_bridge.cpp" "src/core/CMakeFiles/mbc_core.dir/fsl_bridge.cpp.o" "gcc" "src/core/CMakeFiles/mbc_core.dir/fsl_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/mbc_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/sysgen/CMakeFiles/mbc_sysgen.dir/DependInfo.cmake"
  "/root/repo/build/src/fsl/CMakeFiles/mbc_fsl.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mbc_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mbc_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
