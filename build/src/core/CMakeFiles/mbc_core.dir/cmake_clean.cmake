file(REMOVE_RECURSE
  "CMakeFiles/mbc_core.dir/cosim_engine.cpp.o"
  "CMakeFiles/mbc_core.dir/cosim_engine.cpp.o.d"
  "CMakeFiles/mbc_core.dir/fsl_bridge.cpp.o"
  "CMakeFiles/mbc_core.dir/fsl_bridge.cpp.o.d"
  "libmbc_core.a"
  "libmbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
