file(REMOVE_RECURSE
  "libmbc_core.a"
)
