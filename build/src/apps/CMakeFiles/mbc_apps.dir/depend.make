# Empty dependencies file for mbc_apps.
# This may be replaced when dependencies are built.
