file(REMOVE_RECURSE
  "CMakeFiles/mbc_apps.dir/cordic/cordic_app.cpp.o"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_app.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_hw.cpp.o"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_hw.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_reference.cpp.o"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_reference.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_sw.cpp.o"
  "CMakeFiles/mbc_apps.dir/cordic/cordic_sw.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_app.cpp.o"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_app.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_hw.cpp.o"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_hw.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_reference.cpp.o"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_reference.cpp.o.d"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_sw.cpp.o"
  "CMakeFiles/mbc_apps.dir/matmul/matmul_sw.cpp.o.d"
  "libmbc_apps.a"
  "libmbc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
