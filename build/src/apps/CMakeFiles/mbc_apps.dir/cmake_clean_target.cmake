file(REMOVE_RECURSE
  "libmbc_apps.a"
)
