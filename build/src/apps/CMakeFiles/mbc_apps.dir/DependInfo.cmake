
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cordic/cordic_app.cpp" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_app.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_app.cpp.o.d"
  "/root/repo/src/apps/cordic/cordic_hw.cpp" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_hw.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_hw.cpp.o.d"
  "/root/repo/src/apps/cordic/cordic_reference.cpp" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_reference.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_reference.cpp.o.d"
  "/root/repo/src/apps/cordic/cordic_sw.cpp" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_sw.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/cordic/cordic_sw.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul_app.cpp" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_app.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_app.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul_hw.cpp" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_hw.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_hw.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul_reference.cpp" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_reference.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_reference.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul_sw.cpp" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_sw.cpp.o" "gcc" "src/apps/CMakeFiles/mbc_apps.dir/matmul/matmul_sw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mbc_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/mbc_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/sysgen/CMakeFiles/mbc_sysgen.dir/DependInfo.cmake"
  "/root/repo/build/src/fsl/CMakeFiles/mbc_fsl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/mbc_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mbc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mbc_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
