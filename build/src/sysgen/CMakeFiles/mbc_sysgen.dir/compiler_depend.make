# Empty compiler generated dependencies file for mbc_sysgen.
# This may be replaced when dependencies are built.
