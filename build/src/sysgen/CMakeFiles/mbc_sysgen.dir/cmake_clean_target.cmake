file(REMOVE_RECURSE
  "libmbc_sysgen.a"
)
