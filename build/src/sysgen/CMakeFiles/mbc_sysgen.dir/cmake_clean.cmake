file(REMOVE_RECURSE
  "CMakeFiles/mbc_sysgen.dir/model.cpp.o"
  "CMakeFiles/mbc_sysgen.dir/model.cpp.o.d"
  "libmbc_sysgen.a"
  "libmbc_sysgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_sysgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
