file(REMOVE_RECURSE
  "CMakeFiles/mbc_estimate.dir/estimator.cpp.o"
  "CMakeFiles/mbc_estimate.dir/estimator.cpp.o.d"
  "libmbc_estimate.a"
  "libmbc_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
