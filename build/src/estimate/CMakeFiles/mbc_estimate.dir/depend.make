# Empty dependencies file for mbc_estimate.
# This may be replaced when dependencies are built.
