file(REMOVE_RECURSE
  "libmbc_estimate.a"
)
