# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("asm")
subdirs("iss")
subdirs("sysgen")
subdirs("fsl")
subdirs("bus")
subdirs("core")
subdirs("estimate")
subdirs("energy")
subdirs("rtl")
subdirs("rtlmodels")
subdirs("apps")
