file(REMOVE_RECURSE
  "libmbc_asm.a"
)
