file(REMOVE_RECURSE
  "CMakeFiles/mbc_asm.dir/assembler.cpp.o"
  "CMakeFiles/mbc_asm.dir/assembler.cpp.o.d"
  "CMakeFiles/mbc_asm.dir/objdump.cpp.o"
  "CMakeFiles/mbc_asm.dir/objdump.cpp.o.d"
  "libmbc_asm.a"
  "libmbc_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
