# Empty dependencies file for mbc_asm.
# This may be replaced when dependencies are built.
