# Empty compiler generated dependencies file for mbcosim_tests.
# This may be replaced when dependencies are built.
