
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/cordic_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/apps/cordic_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/apps/cordic_test.cpp.o.d"
  "/root/repo/tests/apps/hw_models_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/apps/hw_models_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/apps/hw_models_test.cpp.o.d"
  "/root/repo/tests/apps/matmul_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/apps/matmul_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/apps/matmul_test.cpp.o.d"
  "/root/repo/tests/asm/assembler_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/asm/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/asm/assembler_test.cpp.o.d"
  "/root/repo/tests/asm/objdump_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/asm/objdump_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/asm/objdump_test.cpp.o.d"
  "/root/repo/tests/asm/roundtrip_property_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/asm/roundtrip_property_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/asm/roundtrip_property_test.cpp.o.d"
  "/root/repo/tests/bus/opb_integration_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/bus/opb_integration_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/bus/opb_integration_test.cpp.o.d"
  "/root/repo/tests/bus/opb_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/bus/opb_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/bus/opb_test.cpp.o.d"
  "/root/repo/tests/common/bits_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/common/bits_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/common/bits_test.cpp.o.d"
  "/root/repo/tests/common/fixed_point_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/common/fixed_point_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/common/fixed_point_test.cpp.o.d"
  "/root/repo/tests/common/util_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/common/util_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/common/util_test.cpp.o.d"
  "/root/repo/tests/core/bridge_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/core/bridge_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/core/bridge_test.cpp.o.d"
  "/root/repo/tests/core/cosim_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/core/cosim_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/core/cosim_test.cpp.o.d"
  "/root/repo/tests/core/quiescence_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/core/quiescence_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/core/quiescence_test.cpp.o.d"
  "/root/repo/tests/energy/energy_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/energy/energy_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/energy/energy_test.cpp.o.d"
  "/root/repo/tests/estimate/estimate_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/estimate/estimate_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/estimate/estimate_test.cpp.o.d"
  "/root/repo/tests/fsl/fsl_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/fsl/fsl_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/fsl/fsl_test.cpp.o.d"
  "/root/repo/tests/isa/disasm_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/isa/disasm_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/isa/disasm_test.cpp.o.d"
  "/root/repo/tests/isa/encode_decode_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/isa/encode_decode_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/isa/encode_decode_test.cpp.o.d"
  "/root/repo/tests/isa/timing_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/isa/timing_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/isa/timing_test.cpp.o.d"
  "/root/repo/tests/iss/custom_instruction_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/custom_instruction_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/custom_instruction_test.cpp.o.d"
  "/root/repo/tests/iss/debugger_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/debugger_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/debugger_test.cpp.o.d"
  "/root/repo/tests/iss/processor_alu_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_alu_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_alu_test.cpp.o.d"
  "/root/repo/tests/iss/processor_branch_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_branch_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_branch_test.cpp.o.d"
  "/root/repo/tests/iss/processor_fsl_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_fsl_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_fsl_test.cpp.o.d"
  "/root/repo/tests/iss/processor_mem_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_mem_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_mem_test.cpp.o.d"
  "/root/repo/tests/iss/processor_timing_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_timing_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/processor_timing_test.cpp.o.d"
  "/root/repo/tests/iss/property_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/iss/property_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/iss/property_test.cpp.o.d"
  "/root/repo/tests/rtl/kernel_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtl/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtl/kernel_test.cpp.o.d"
  "/root/repo/tests/rtl/logic_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtl/logic_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtl/logic_test.cpp.o.d"
  "/root/repo/tests/rtl/primitives_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtl/primitives_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtl/primitives_test.cpp.o.d"
  "/root/repo/tests/rtl/vcd_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtl/vcd_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtl/vcd_test.cpp.o.d"
  "/root/repo/tests/rtlmodels/core_rtl_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtlmodels/core_rtl_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtlmodels/core_rtl_test.cpp.o.d"
  "/root/repo/tests/rtlmodels/crossval_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/rtlmodels/crossval_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/rtlmodels/crossval_test.cpp.o.d"
  "/root/repo/tests/sysgen/blocks_memory_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/blocks_memory_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/blocks_memory_test.cpp.o.d"
  "/root/repo/tests/sysgen/blocks_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/blocks_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/blocks_test.cpp.o.d"
  "/root/repo/tests/sysgen/model_test.cpp" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/model_test.cpp.o" "gcc" "tests/CMakeFiles/mbcosim_tests.dir/sysgen/model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtlmodels/CMakeFiles/mbc_rtlmodels.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mbc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mbc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/mbc_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mbc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/mbc_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mbc_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mbc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/fsl/CMakeFiles/mbc_fsl.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/mbc_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sysgen/CMakeFiles/mbc_sysgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mbc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
