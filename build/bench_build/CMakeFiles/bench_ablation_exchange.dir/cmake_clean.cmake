file(REMOVE_RECURSE
  "../bench/bench_ablation_exchange"
  "../bench/bench_ablation_exchange.pdb"
  "CMakeFiles/bench_ablation_exchange.dir/bench_ablation_exchange.cpp.o"
  "CMakeFiles/bench_ablation_exchange.dir/bench_ablation_exchange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
