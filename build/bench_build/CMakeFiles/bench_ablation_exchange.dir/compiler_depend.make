# Empty compiler generated dependencies file for bench_ablation_exchange.
# This may be replaced when dependencies are built.
