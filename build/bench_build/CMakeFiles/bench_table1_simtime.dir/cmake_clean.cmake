file(REMOVE_RECURSE
  "../bench/bench_table1_simtime"
  "../bench/bench_table1_simtime.pdb"
  "CMakeFiles/bench_table1_simtime.dir/bench_table1_simtime.cpp.o"
  "CMakeFiles/bench_table1_simtime.dir/bench_table1_simtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
