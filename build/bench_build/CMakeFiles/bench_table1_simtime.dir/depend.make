# Empty dependencies file for bench_table1_simtime.
# This may be replaced when dependencies are built.
