file(REMOVE_RECURSE
  "../bench/bench_ablation_rtl_cost"
  "../bench/bench_ablation_rtl_cost.pdb"
  "CMakeFiles/bench_ablation_rtl_cost.dir/bench_ablation_rtl_cost.cpp.o"
  "CMakeFiles/bench_ablation_rtl_cost.dir/bench_ablation_rtl_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtl_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
