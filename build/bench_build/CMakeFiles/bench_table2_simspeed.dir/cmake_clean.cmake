file(REMOVE_RECURSE
  "../bench/bench_table2_simspeed"
  "../bench/bench_table2_simspeed.pdb"
  "CMakeFiles/bench_table2_simspeed.dir/bench_table2_simspeed.cpp.o"
  "CMakeFiles/bench_table2_simspeed.dir/bench_table2_simspeed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
