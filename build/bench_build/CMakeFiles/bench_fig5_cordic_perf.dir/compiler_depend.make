# Empty compiler generated dependencies file for bench_fig5_cordic_perf.
# This may be replaced when dependencies are built.
