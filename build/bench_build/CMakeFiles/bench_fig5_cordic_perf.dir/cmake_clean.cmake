file(REMOVE_RECURSE
  "../bench/bench_fig5_cordic_perf"
  "../bench/bench_fig5_cordic_perf.pdb"
  "CMakeFiles/bench_fig5_cordic_perf.dir/bench_fig5_cordic_perf.cpp.o"
  "CMakeFiles/bench_fig5_cordic_perf.dir/bench_fig5_cordic_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cordic_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
