// The paper's first application (Section IV-A): adaptive CORDIC division
// on the soft processor, exploring the pure-software / hardware-assisted
// design space exactly like Figure 5, then validating one configuration
// against the low-level RTL model.
//
// Build & run:   ./build/examples/cordic_division
#include <cstdio>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "asm/assembler.hpp"
#include "rtlmodels/system_rtl.hpp"

using namespace mbcosim;
using namespace mbcosim::apps;

int main() {
  // A batch of divisions b/a, as used to update adaptive-filter weights.
  const unsigned kItems = 20;
  const unsigned kIterations = 24;
  auto [x, y] = cordic::make_cordic_dataset(kItems, /*seed=*/2026);

  std::printf("CORDIC division of %u values, %u iterations\n\n", kItems,
              kIterations);
  std::printf("%6s %12s %12s %10s %12s\n", "P", "cycles", "usec@50MHz",
              "speedup", "slices(est)");

  double software_usec = 0;
  for (unsigned p : {0u, 2u, 4u, 8u}) {
    cordic::CordicRunConfig config;
    config.num_pes = p;
    config.iterations = kIterations;
    config.items = kItems;
    const auto result = cordic::run_cordic(config, x, y);
    if (p == 0) software_usec = result.usec();
    std::printf("%6u %12llu %12.1f %9.2fx %12u\n", p,
                static_cast<unsigned long long>(result.cycles), result.usec(),
                software_usec / result.usec(),
                result.estimated_resources.slices);

    // Every configuration must agree with the bit-exact reference.
    const auto expected = cordic::cordic_expected(config, x, y);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (result.quotients_raw[i] != expected[i]) {
        std::printf("MISMATCH at item %zu!\n", i);
        return 1;
      }
    }
  }

  // Show a few quotients against double-precision division.
  std::printf("\nsample quotients (P = 4):\n");
  cordic::CordicRunConfig config;
  config.num_pes = 4;
  config.iterations = kIterations;
  config.items = kItems;
  const auto result = cordic::run_cordic(config, x, y);
  for (unsigned i = 0; i < 4; ++i) {
    const double a = Fix::from_raw(cordic::kDataFormat, x[i]).to_double();
    const double b = Fix::from_raw(cordic::kDataFormat, y[i]).to_double();
    const double q =
        Fix::from_raw(cordic::kDataFormat, result.quotients_raw[i])
            .to_double();
    std::printf("  %9.5f / %9.5f = %9.6f (exact %9.6f)\n", b, a, q, b / a);
  }

  // Cross-check the co-simulation against the low-level RTL system.
  std::printf("\ncross-validating P = 4 against the RTL baseline... ");
  const auto program = assembler::assemble_or_throw(
      cordic::hw_driver_program(x, y, kIterations, 4, 5));
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  rtlmodels::RtlSystem rtl(
      program, cpu_config,
      rtlmodels::RtlPeripheralConfig{
          rtlmodels::RtlPeripheralConfig::Kind::kCordic, 4});
  rtl.run(1u << 26);
  std::printf("%s (both %llu cycles)\n",
              rtl.cycles() == result.cycles ? "cycle-exact" : "MISMATCH",
              static_cast<unsigned long long>(rtl.cycles()));
  return rtl.cycles() == result.cycles ? 0 : 1;
}
