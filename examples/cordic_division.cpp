// The paper's first application (Section IV-A): adaptive CORDIC division
// on the soft processor, exploring the pure-software / hardware-assisted
// design space exactly like Figure 5 — here as a parallel sim::Sweep over
// the SimSystem facade — then validating one configuration against the
// low-level RTL model.
//
// Build & run:   ./build/examples/cordic_division
#include <cstdio>
#include <string>

#include "apps/cordic/cordic_app.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "asm/assembler.hpp"
#include "rtlmodels/system_rtl.hpp"
#include "sim/sweep.hpp"

using namespace mbcosim;
using namespace mbcosim::apps;

int main() {
  // A batch of divisions b/a, as used to update adaptive-filter weights.
  const unsigned kItems = 20;
  const unsigned kIterations = 24;
  const unsigned kPes[] = {0u, 2u, 4u, 8u};
  auto [x, y] = cordic::make_cordic_dataset(kItems, /*seed=*/2026);

  std::printf("CORDIC division of %u values, %u iterations\n\n", kItems,
              kIterations);

  // One sweep point per pipeline depth; every point also validates its
  // quotients against the bit-exact reference while its memory is live.
  sim::Sweep sweep;
  for (unsigned p : kPes) {
    cordic::CordicRunConfig config;
    config.num_pes = p;
    config.iterations = kIterations;
    config.items = kItems;
    sweep.add(
        "P=" + std::to_string(p),
        [config, &x, &y] { return cordic::make_cordic_system(config, x, y); },
        [config, &x, &y](sim::SimSystem& system, sim::SweepPointResult& r) {
          const auto expected = cordic::cordic_expected(config, x, y);
          for (u32 i = 0; i < expected.size(); ++i) {
            if (static_cast<i32>(system.word("results", i)) != expected[i]) {
              r.ok = false;
              r.error = "quotient mismatch at item " + std::to_string(i);
              return;
            }
          }
        });
  }
  const auto results = sweep.run({.threads = 4});

  std::printf("%6s %12s %12s %10s %12s\n", "P", "cycles", "usec@50MHz",
              "speedup", "slices(est)");
  const double software_usec = results[0].usec();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.ok) {
      std::printf("%6u  FAILED: %s\n", kPes[i], r.error.c_str());
      return 1;
    }
    std::printf("%6u %12llu %12.1f %9.2fx %12u\n", kPes[i],
                static_cast<unsigned long long>(r.stats.cycles), r.usec(),
                software_usec / r.usec(), r.estimated_resources.slices);
  }

  // Show a few quotients against double-precision division.
  std::printf("\nsample quotients (P = 4):\n");
  cordic::CordicRunConfig config;
  config.num_pes = 4;
  config.iterations = kIterations;
  config.items = kItems;
  const auto result = cordic::run_cordic(config, x, y);
  for (unsigned i = 0; i < 4; ++i) {
    const double a = Fix::from_raw(cordic::kDataFormat, x[i]).to_double();
    const double b = Fix::from_raw(cordic::kDataFormat, y[i]).to_double();
    const double q =
        Fix::from_raw(cordic::kDataFormat, result.quotients_raw[i])
            .to_double();
    std::printf("  %9.5f / %9.5f = %9.6f (exact %9.6f)\n", b, a, q, b / a);
  }

  // Cross-check the co-simulation against the low-level RTL system.
  std::printf("\ncross-validating P = 4 against the RTL baseline... ");
  const auto program = assembler::assemble_or_throw(
      cordic::hw_driver_program(x, y, kIterations, 4, 5));
  isa::CpuConfig cpu_config;
  cpu_config.has_barrel_shifter = false;
  rtlmodels::RtlSystem rtl(
      program, cpu_config,
      rtlmodels::RtlPeripheralConfig{
          rtlmodels::RtlPeripheralConfig::Kind::kCordic, 4});
  rtl.run(1u << 26);
  std::printf("%s (both %llu cycles)\n",
              rtl.cycles() == result.cycles ? "cycle-exact" : "MISMATCH",
              static_cast<unsigned long long>(rtl.cycles()));
  return rtl.cycles() == result.cycles ? 0 : 1;
}
