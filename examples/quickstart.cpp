// Quickstart: assemble a small program, build a tiny hardware peripheral
// out of sysgen blocks, hand both to the SimSystem facade and run.
//
// The "application" computes 3 * x + 1 for a few inputs: the multiply
// happens in hardware (one Mult block behind an FSL), the +1 and the
// control flow in software on the soft processor.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "sim/sim_system.hpp"
#include "sysgen/blocks_basic.hpp"

using namespace mbcosim;
namespace sg = mbcosim::sysgen;

int main() {
  // ---- 1. The software: an MB32 assembly program. --------------------------
  // It streams each input word to FSL channel 0, reads back the hardware
  // product, adds 1 and stores the result.
  const char* kSource = R"(
    start:
      la   r5, inputs
      la   r6, outputs
      li   r7, 4              # item count
    loop:
      lwi  r3, r5, 0
      put  r3, rfsl0          # x -> hardware
      get  r4, rfsl0          # 3*x <- hardware (blocking)
      addik r4, r4, 1         # +1 in software
      swi  r4, r6, 0
      addik r5, r5, 4
      addik r6, r6, 4
      addik r7, r7, -1
      bnei r7, loop
      halt
    inputs:  .word 1, 2, 10, 100
    outputs: .space 16
  )";

  // ---- 2. The hardware: a one-multiplier peripheral. ------------------------
  const FixFormat word32 = FixFormat::signed_fix(32, 0);
  const FixFormat boolf = FixFormat::unsigned_fix(1, 0);
  auto hw = std::make_unique<sg::Model>("times_three");
  auto& data_in = hw->add<sg::GatewayIn>("fsl.data", word32);
  auto& exists = hw->add<sg::GatewayIn>("fsl.exists", boolf);
  auto& control = hw->add<sg::GatewayIn>("fsl.control", boolf);
  auto& read_ack = hw->add<sg::GatewayOut>("fsl.read", exists.out());
  auto& three = hw->add<sg::Constant>("three", Fix::from_int(word32, 3));
  auto& product = hw->add<sg::Mult>("mult", data_in.out(), three.out(), word32,
                                    /*latency=*/0);
  auto& data_out = hw->add<sg::GatewayOut>("fsl.dout", product.out());
  auto& write = hw->add<sg::GatewayOut>("fsl.write", exists.out());

  // ---- 3. Hand program + hardware to the facade and run. -------------------
  const sim::FslGateways fsl{.s_data = &data_in, .s_exists = &exists,
                             .s_control = &control, .s_read = &read_ack,
                             .m_data = &data_out, .m_write = &write};
  auto built = sim::SimSystem::Builder().program(kSource)
                   .hardware(std::move(hw)).bind_fsl(0, fsl).build();
  if (!built) { std::fprintf(stderr, "%s\n", built.error().c_str()); return 1; }
  sim::SimSystem system = std::move(built).value();
  const core::StopReason reason = system.run();

  const core::CoSimStats stats = system.stats();
  std::printf("assembled %u bytes of MB32 code+data\n",
              system.program().size_bytes());
  std::printf("co-simulation stopped: %s after %llu cycles (%.1f usec at "
              "50 MHz), %llu instructions\n",
              reason == core::StopReason::kHalted ? "halted" : "error",
              static_cast<unsigned long long>(stats.cycles),
              cycles_to_usec(stats.cycles),
              static_cast<unsigned long long>(stats.instructions));

  for (unsigned i = 0; i < 4; ++i) {
    std::printf("  3 * %3u + 1 = %u\n", system.word("inputs", i),
                system.word("outputs", i));
  }
  return reason == core::StopReason::kHalted ? 0 : 1;
}
