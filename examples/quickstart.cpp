// Quickstart: assemble a small program, build a tiny hardware peripheral
// out of sysgen blocks, wire both into the co-simulation engine and run.
//
// The "application" computes 3 * x + 1 for a few inputs: the multiply
// happens in hardware (one Mult block behind an FSL), the +1 and the
// control flow in software on the soft processor.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "asm/assembler.hpp"
#include "core/cosim_engine.hpp"
#include "sysgen/blocks_basic.hpp"

using namespace mbcosim;
namespace sg = mbcosim::sysgen;

int main() {
  // ---- 1. The software: an MB32 assembly program. --------------------------
  // It streams each input word to FSL channel 0, reads back the hardware
  // product, adds 1 and stores the result.
  const char* kSource = R"(
    start:
      la   r5, inputs
      la   r6, outputs
      li   r7, 4              # item count
    loop:
      lwi  r3, r5, 0
      put  r3, rfsl0          # x -> hardware
      get  r4, rfsl0          # 3*x <- hardware (blocking)
      addik r4, r4, 1         # +1 in software
      swi  r4, r6, 0
      addik r5, r5, 4
      addik r6, r6, 4
      addik r7, r7, -1
      bnei r7, loop
      halt
    inputs:  .word 1, 2, 10, 100
    outputs: .space 16
  )";
  const assembler::Program program = assembler::assemble_or_throw(kSource);
  std::printf("assembled %u bytes of MB32 code+data\n", program.size_bytes());

  // ---- 2. The hardware: a one-multiplier peripheral. ------------------------
  const FixFormat word32 = FixFormat::signed_fix(32, 0);
  const FixFormat boolf = FixFormat::unsigned_fix(1, 0);
  sg::Model hw("times_three");
  auto& data_in = hw.add<sg::GatewayIn>("fsl.data", word32);
  auto& exists = hw.add<sg::GatewayIn>("fsl.exists", boolf);
  auto& control = hw.add<sg::GatewayIn>("fsl.control", boolf);
  auto& read_ack = hw.add<sg::GatewayOut>("fsl.read", exists.out());
  auto& three = hw.add<sg::Constant>("three", Fix::from_int(word32, 3));
  auto& product = hw.add<sg::Mult>("mult", data_in.out(), three.out(), word32,
                                   /*latency=*/0);
  auto& data_out = hw.add<sg::GatewayOut>("fsl.dout", product.out());
  auto& write = hw.add<sg::GatewayOut>("fsl.write", exists.out());

  // ---- 3. Wire processor + hardware through the FSL and run. ---------------
  iss::LmbMemory memory;
  memory.load_program(program);
  fsl::FslHub hub;
  iss::Processor cpu(isa::CpuConfig{}, memory, &hub);
  core::CoSimEngine engine(cpu, hw, hub);

  core::SlaveBinding slave;
  slave.channel = 0;
  slave.data = &data_in;
  slave.exists = &exists;
  slave.control = &control;
  slave.read = &read_ack;
  engine.bridge().bind_slave(slave);
  core::MasterBinding master;
  master.channel = 0;
  master.data = &data_out;
  master.write = &write;
  engine.bridge().bind_master(master);

  engine.reset(program.entry());
  const core::StopReason reason = engine.run();
  const core::CoSimStats stats = engine.stats();

  std::printf("co-simulation stopped: %s after %llu cycles (%.1f usec at "
              "50 MHz), %llu instructions\n",
              reason == core::StopReason::kHalted ? "halted" : "error",
              static_cast<unsigned long long>(stats.cycles),
              cycles_to_usec(stats.cycles),
              static_cast<unsigned long long>(stats.instructions));

  const Addr outputs = program.symbol("outputs");
  const Addr inputs = program.symbol("inputs");
  for (unsigned i = 0; i < 4; ++i) {
    std::printf("  3 * %3u + 1 = %u\n", memory.read_word(inputs + 4 * i),
                memory.read_word(outputs + 4 * i));
  }
  return reason == core::StopReason::kHalted ? 0 : 1;
}
