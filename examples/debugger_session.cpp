// Driving the ISS through the textual debugger interface — the analog of
// the paper's mb-gdb-in-a-TCL-pipe arrangement (Section III-A), where the
// MicroBlaze Simulink block sends commands to inspect and modify the
// processor state while the simulation runs.
//
// Build & run:   ./build/examples/debugger_session
#include <cstdio>

#include "asm/assembler.hpp"
#include "asm/objdump.hpp"
#include "iss/debugger.hpp"

using namespace mbcosim;

int main() {
  const char* kSource = R"(
    start:
      li   r3, 10          # n = 10
      addk r4, r0, r0      # sum = 0
    loop:
      addk r4, r4, r3
      addik r3, r3, -1
      bnei r3, loop
      swi  r4, r0, result
      halt
    result: .space 4
  )";
  const auto program = assembler::assemble_or_throw(kSource);

  std::printf("disassembly (mb-objdump analog):\n%s\n",
              assembler::listing(program).c_str());

  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(isa::CpuConfig{}, memory, nullptr);
  cpu.reset(program.entry());
  iss::Debugger debugger(cpu);

  // A scripted debug session, exactly the command traffic the Simulink
  // block exchanges with the simulator.
  const char* kSession[] = {
      "break 0x8",      // stop at the loop head
      "cont",           // run to it
      "reg r3",         // inspect the counter
      "reg r4",
      "setreg r3 3",    // shorten the loop from the outside
      "delete 0x8",
      "cont",           // run to completion
      "reg r4",         // the (modified) sum
      "cycles",
  };
  for (const char* command : kSession) {
    std::printf("(mb-gdb) %-16s -> %s\n", command,
                debugger.command(command).c_str());
  }

  const Addr result = program.symbol("result");
  std::printf("\nmemory[result] = %u (sum of 3..1 is 6 after the poke)\n",
              memory.read_word(result));
  return 0;
}
