// Building your own customized hardware peripheral: a streaming
// fixed-point moving-average filter (window of 4) attached to the soft
// processor over an FSL, in the style of the paper's design flow —
// describe the datapath with sysgen blocks, bind the FSL gateways, write
// the driver software, co-simulate, and read off the rapid resource
// estimate for the design-space exploration loop.
//
// NOTE: this example deliberately stays on the LOW-LEVEL API — it wires
// LmbMemory, FslHub, Processor and CoSimEngine by hand — to show what
// the sim::SimSystem facade (see examples/quickstart.cpp) does for you
// and which pieces you can rearrange when the facade's shape does not
// fit (extra buses, several processors, custom run loops).
//
// Build & run:   ./build/examples/custom_peripheral
#include <cstdio>
#include <vector>

#include "asm/assembler.hpp"
#include "core/cosim_engine.hpp"
#include "estimate/estimator.hpp"
#include "sysgen/blocks_basic.hpp"

using namespace mbcosim;
namespace sg = mbcosim::sysgen;

namespace {

/// Everything needed to co-simulate the filter.
struct FilterDesign {
  sg::Model model{"moving_average4"};
  sg::GatewayIn* data = nullptr;
  sg::GatewayIn* exists = nullptr;
  sg::GatewayIn* control = nullptr;
  sg::GatewayOut* read = nullptr;
  sg::GatewayOut* dout = nullptr;
  sg::GatewayOut* write = nullptr;
};

/// y[n] = (x[n] + x[n-1] + x[n-2] + x[n-3]) >> 2, in Fix16_8.
void build_filter(FilterDesign& d) {
  sg::Model& m = d.model;
  const FixFormat kSample = FixFormat::signed_fix(16, 8);
  const FixFormat kSum = FixFormat::signed_fix(18, 8);
  const FixFormat kBool = FixFormat::unsigned_fix(1, 0);

  d.data = &m.add<sg::GatewayIn>("fsl.data", kSample);
  d.exists = &m.add<sg::GatewayIn>("fsl.exists", kBool);
  d.control = &m.add<sg::GatewayIn>("fsl.control", kBool);
  d.read = &m.add<sg::GatewayOut>("fsl.read", d.exists->out());

  // Tap delay line, clocked only when a sample arrives (enable = exists).
  const Fix zero = Fix::from_raw(kSample, 0);
  auto& tap1 = m.add<sg::Register>("tap1", d.data->out(), zero,
                                   &d.exists->out());
  auto& tap2 = m.add<sg::Register>("tap2", tap1.out(), zero,
                                   &d.exists->out());
  auto& tap3 = m.add<sg::Register>("tap3", tap2.out(), zero,
                                   &d.exists->out());

  // Adder tree and scale.
  auto& sum01 = m.add<sg::AddSub>("sum01", sg::AddSub::Mode::kAdd,
                                  d.data->out(), tap1.out(), kSum);
  auto& sum23 = m.add<sg::AddSub>("sum23", sg::AddSub::Mode::kAdd, tap2.out(),
                                  tap3.out(), kSum);
  auto& total = m.add<sg::AddSub>("total", sg::AddSub::Mode::kAdd,
                                  sum01.out(), sum23.out(), kSum);
  auto& scaled = m.add<sg::ShiftConst>(
      "scale", total.out(), sg::ShiftConst::Direction::kRightArithmetic, 2);
  auto& out16 = m.add<sg::Convert>("out16", scaled.out(), kSample);

  d.dout = &m.add<sg::GatewayOut>("fsl.dout", out16.out());
  d.write = &m.add<sg::GatewayOut>("fsl.write", d.exists->out());
}

}  // namespace

int main() {
  FilterDesign filter;
  build_filter(filter);

  // Rapid resource estimation before committing to the design (§III-C).
  estimate::SystemDescription system;
  system.fsl_links_used = 2;
  system.peripheral = &filter.model;
  const auto report = estimate::estimate_system(system);
  std::printf("design-space check -- %s:\n%s\n", filter.model.name().c_str(),
              report.to_string().c_str());

  // Driver software: push a step input, read filtered samples back.
  const char* kSource = R"(
    start:
      la r5, samples
      la r6, filtered
      li r7, 12
    loop:
      lwi r3, r5, 0
      put r3, rfsl0
      get r4, rfsl0
      swi r4, r6, 0
      addik r5, r5, 4
      addik r6, r6, 4
      addik r7, r7, -1
      bnei r7, loop
      halt
    # A step from 0 to 256.0 (raw 0x100 << 8 = 0x10000... use 1.0 = 0x100).
    samples: .word 0, 0, 0, 0x100, 0x100, 0x100, 0x100, 0x100, 0x100, 0, 0, 0
    filtered: .space 48
  )";
  const auto program = assembler::assemble_or_throw(kSource);

  iss::LmbMemory memory;
  memory.load_program(program);
  fsl::FslHub hub;
  iss::Processor cpu(isa::CpuConfig{}, memory, &hub);
  core::CoSimEngine engine(cpu, filter.model, hub);

  core::SlaveBinding slave;
  slave.channel = 0;
  slave.data = filter.data;
  slave.exists = filter.exists;
  slave.control = filter.control;
  slave.read = filter.read;
  engine.bridge().bind_slave(slave);
  core::MasterBinding master;
  master.channel = 0;
  master.data = filter.dout;
  master.write = filter.write;
  engine.bridge().bind_master(master);

  engine.reset(program.entry());
  if (engine.run() != core::StopReason::kHalted) {
    std::printf("co-simulation failed\n");
    return 1;
  }

  std::printf("step response of the moving-average filter (Fix16_8):\n  ");
  const Addr filtered = program.symbol("filtered");
  const FixFormat kSample = FixFormat::signed_fix(16, 8);
  for (unsigned i = 0; i < 12; ++i) {
    const auto raw = static_cast<i64>(
        static_cast<i16>(memory.read_word(filtered + 4 * i)));
    std::printf("%.2f ", Fix::from_raw(kSample, raw).to_double());
  }
  std::printf("\n(expected ramp 0, 0, 0, 0.25, 0.5, 0.75, 1.0, ... as the "
              "window fills)\n");
  return 0;
}
