// Nios-style instruction-set customization (paper Section I: "soft
// processors are configurable by allowing the customization of the
// instruction set... The Nios processor allows users to customize up to
// five instructions"). This example accelerates a population-count
// workload by registering a custom popcount datapath and compares it, in
// time and resources, against the software bit loop — the same style of
// trade-off exploration as the paper's peripherals, but on the
// instruction-set axis.
//
// Build & run:   ./build/examples/custom_instruction
#include <bit>
#include <cstdio>

#include "asm/assembler.hpp"
#include "estimate/estimator.hpp"
#include "iss/processor.hpp"

using namespace mbcosim;

namespace {

constexpr unsigned kWords = 64;

std::string data_section();

std::string software_program() {
  return R"(
    start:
      la r10, data
      la r11, counts
      li r12, 64
    word_loop:
      lwi r3, r10, 0
      addk r4, r0, r0
      li r7, 32
    bit_loop:
      andi r5, r3, 1
      addk r4, r4, r5
      srl r3, r3
      addik r7, r7, -1
      bnei r7, bit_loop
      swi r4, r11, 0
      addik r10, r10, 4
      addik r11, r11, 4
      addik r12, r12, -1
      bnei r12, word_loop
      halt
  )" + data_section();
}

std::string custom_program() {
  return R"(
    start:
      la r10, data
      la r11, counts
      li r12, 64
    word_loop:
      lwi r3, r10, 0
      cust0 r4, r3, r0
      swi r4, r11, 0
      addik r10, r10, 4
      addik r11, r11, 4
      addik r12, r12, -1
      bnei r12, word_loop
      halt
  )" + data_section();
}

std::string data_section() {
  std::string out = "data:\n";
  u32 value = 0x13579BDF;
  for (unsigned i = 0; i < kWords; ++i) {
    char line[48];
    std::snprintf(line, sizeof line, "  .word 0x%08x\n", value);
    out += line;
    value = value * 2654435761u + 12345u;
  }
  out += "counts: .space " + std::to_string(kWords * 4) + "\n";
  return out;
}

struct RunOutcome {
  Cycle cycles;
  std::vector<Word> counts;
};

RunOutcome run(const std::string& source, bool with_custom_unit) {
  const auto program = assembler::assemble_or_throw(source);
  iss::LmbMemory memory;
  memory.load_program(program);
  iss::Processor cpu(isa::CpuConfig{}, memory, nullptr);
  if (with_custom_unit) {
    iss::CustomInstruction unit;
    unit.name = "popcount";
    unit.compute = [](Word a, Word) {
      return static_cast<Word>(std::popcount(a));
    };
    unit.latency = 2;                        // adder-tree datapath
    unit.resources = ResourceVec{42, 0, 0};  // ~32 LUT compressor tree
    cpu.register_custom_instruction(0, unit);
  }
  cpu.reset(program.entry());
  if (cpu.run(1u << 26) != iss::Event::kHalted) {
    throw SimError("program did not halt");
  }
  RunOutcome outcome;
  outcome.cycles = cpu.stats().cycles;
  const Addr counts = program.symbol("counts");
  for (unsigned i = 0; i < kWords; ++i) {
    outcome.counts.push_back(memory.read_word(counts + 4 * i));
  }
  return outcome;
}

}  // namespace

int main() {
  const RunOutcome software = run(software_program(), false);
  const RunOutcome custom = run(custom_program(), true);

  if (software.counts != custom.counts) {
    std::printf("MISMATCH between software and custom results!\n");
    return 1;
  }

  std::printf("popcount of %u words on the soft processor:\n", kWords);
  std::printf("  software bit loop:   %8llu cycles (%.1f usec)\n",
              static_cast<unsigned long long>(software.cycles),
              cycles_to_usec(software.cycles));
  std::printf("  cust0 instruction:   %8llu cycles (%.1f usec)  -> %.1fx\n",
              static_cast<unsigned long long>(custom.cycles),
              cycles_to_usec(custom.cycles),
              double(software.cycles) / double(custom.cycles));

  estimate::SystemDescription base;
  estimate::SystemDescription customized = base;
  customized.custom_instructions.push_back(ResourceVec{42, 0, 0});
  std::printf("  resource cost of the unit: %u -> %u slices\n",
              estimate::estimate_system(base).estimated.slices,
              estimate::estimate_system(customized).estimated.slices);
  return 0;
}
