# Worker core of the CORDIC farm (examples/machines/cordic_farm.json).
#
# Hosts the 16-PE CORDIC division pipeline on FSL channel 0 and acts as
# the middle stage of the farm: items arrive from the feeder on the
# cross-linked channel 1, run one pass through the pipeline (16 PEs =
# 16 iterations, so a single pass suffices), and the quotient words
# leave on channel 2 toward the collector.
#
# Items are processed in sets of four so the pipeline's result FIFO
# (three words per item, 16 entries deep) can never overflow while a
# whole set is in flight -- the same sizing rule the single-core driver
# uses (paper Section IV-A).
start:
  li r20, 2               # sets of 4 items
set_loop:
  cput r0, rfsl0          # control word: initial shift amount s0 = 0
  li r5, 4
send_loop:
  get r3, rfsl1           # X from the feeder
  put r3, rfsl0
  get r3, rfsl1           # Y from the feeder
  put r3, rfsl0
  put r0, rfsl0           # Z = 0
  addik r5, r5, -1
  bnei r5, send_loop
  li r5, 4
recv_loop:
  get r3, rfsl0           # X out (discarded)
  get r3, rfsl0           # Y residue (discarded)
  get r3, rfsl0           # Z out = quotient
  put r3, rfsl2           # forward to the collector
  addik r5, r5, -1
  bnei r5, recv_loop
  addik r20, r20, -1
  bnei r20, set_loop
  halt
