# Collector core of the CORDIC farm (examples/machines/cordic_farm.json).
#
# Drains the quotient stream the worker forwards on the cross-linked
# channel 1 and stores it to the `results` array, then halts.
start:
  la r28, results
  li r29, 32              # 8 quotients * 4 bytes
  addk r10, r0, r0
store_loop:
  get r3, rfsl1
  sw r3, r28, r10
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, store_loop
  halt

results: .space 32
