# Feeder core of the CORDIC farm (examples/machines/cordic_farm.json).
#
# Streams eight (X, Y) dividend/divisor pairs in Fix32_24 down FSL
# channel 1, which the machine description cross-links to the worker
# core's slave channel 1. The feeder then halts; the conservative
# quantum scheduler keeps running the other cores until the whole
# machine drains.
start:
  la r21, data_x
  la r22, data_y
  li r29, 32              # 8 items * 4 bytes
  addk r10, r0, r0        # byte offset
item_loop:
  lw r3, r21, r10
  put r3, rfsl1           # X (divisor)
  lw r4, r22, r10
  put r4, rfsl1           # Y (dividend)
  addik r10, r10, 4
  rsub r3, r10, r29
  bnei r3, item_loop
  halt

data_x:                   # divisors, Fix32_24
  .word 0x01000000        # 1.0
  .word 0x02000000        # 2.0
  .word 0x01800000        # 1.5
  .word 0x04000000        # 4.0
  .word 0x01000000        # 1.0
  .word 0x03000000        # 3.0
  .word 0x01400000        # 1.25
  .word 0x02800000        # 2.5
data_y:                   # dividends, Fix32_24
  .word 0x00800000        # 0.5   -> 0.5
  .word 0x03000000        # 3.0   -> 1.5
  .word 0x00c00000        # 0.75  -> 0.5
  .word 0x01000000        # 1.0   -> 0.25
  .word 0xff800000        # -0.5  -> -0.5
  .word 0x02000000        # 2.0   -> 0.667
  .word 0x01000000        # 1.0   -> 0.8
  .word 0x00a00000        # 0.625 -> 0.25
