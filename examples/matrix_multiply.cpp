// The paper's second application (Section IV-B): block matrix
// multiplication with a hardware MAC-array peripheral, reproducing the
// crossover where the 2x2-block design loses to pure software while the
// 4x4-block design wins.
//
// Build & run:   ./build/examples/matrix_multiply
#include <cstdio>

#include "apps/matmul/matmul_app.hpp"

using namespace mbcosim;
using namespace mbcosim::apps::matmul;

int main() {
  const unsigned kSize = 16;
  const Matrix a = make_matrix(kSize, 41);
  const Matrix b = make_matrix(kSize, 43);
  const Matrix expected = multiply_reference(a, b);

  std::printf("%ux%u matrix multiplication on the soft processor\n\n", kSize,
              kSize);
  std::printf("%14s %12s %12s %10s %8s %8s\n", "design", "cycles",
              "usec@50MHz", "vs SW", "mult18", "correct");

  double software_usec = 0;
  for (unsigned block : {0u, 2u, 4u}) {
    MatmulRunConfig config;
    config.matrix_size = kSize;
    config.block_size = block;
    const auto result = run_matmul(config, a, b);
    if (block == 0) software_usec = result.usec();
    const bool correct = result.c.data == expected.data;
    char name[32];
    if (block == 0) {
      std::snprintf(name, sizeof name, "pure software");
    } else {
      std::snprintf(name, sizeof name, "%ux%u blocks", block, block);
    }
    std::printf("%14s %12llu %12.1f %9.2fx %8u %8s\n", name,
                static_cast<unsigned long long>(result.cycles), result.usec(),
                software_usec / result.usec(),
                result.estimated_resources.mult18s, correct ? "yes" : "NO");
    if (!correct) return 1;
  }

  std::printf(
      "\nThe 2x2 design is slightly SLOWER than software (the paper's\n"
      "8.8%% penalty): each streamed word costs more in FSL traffic and\n"
      "addressing than the two MACs it offloads. The 4x4 design amortizes\n"
      "the same traffic over four times the work and wins ~2.2x.\n");
  return 0;
}
