// The paper's second application (Section IV-B): block matrix
// multiplication with a hardware MAC-array peripheral, reproducing the
// crossover where the 2x2-block design loses to pure software while the
// 4x4-block design wins. The three designs run as one parallel
// sim::Sweep over the SimSystem facade; each point checks its product
// against the golden GEMM while its simulated memory is still live.
//
// Build & run:   ./build/examples/matrix_multiply
#include <cstdio>
#include <string>

#include "apps/matmul/matmul_app.hpp"
#include "sim/sweep.hpp"

using namespace mbcosim;
using namespace mbcosim::apps::matmul;

int main() {
  const unsigned kSize = 16;
  const unsigned kBlocks[] = {0u, 2u, 4u};
  const Matrix a = make_matrix(kSize, 41);
  const Matrix b = make_matrix(kSize, 43);
  const Matrix expected = multiply_reference(a, b);

  sim::Sweep sweep;
  for (unsigned block : kBlocks) {
    MatmulRunConfig config;
    config.matrix_size = kSize;
    config.block_size = block;
    const std::string label =
        block == 0 ? "pure software"
                   : std::to_string(block) + "x" + std::to_string(block) +
                         " blocks";
    sweep.add(
        label, [config, &a, &b] { return make_matmul_system(config, a, b); },
        [&expected, kSize](sim::SimSystem& system, sim::SweepPointResult& r) {
          for (u32 i = 0; i < kSize * kSize; ++i) {
            if (static_cast<i32>(system.word("mat_c", i)) !=
                expected.data[i]) {
              r.ok = false;
              r.error = "product mismatch at element " + std::to_string(i);
              return;
            }
          }
        });
  }
  const auto results = sweep.run({.threads = 3});

  std::printf("%ux%u matrix multiplication on the soft processor\n\n", kSize,
              kSize);
  std::printf("%14s %12s %12s %10s %8s %8s\n", "design", "cycles",
              "usec@50MHz", "vs SW", "mult18", "correct");
  const double software_usec = results[0].usec();
  for (const auto& r : results) {
    std::printf("%14s %12llu %12.1f %9.2fx %8u %8s\n", r.label.c_str(),
                static_cast<unsigned long long>(r.stats.cycles), r.usec(),
                software_usec / r.usec(), r.estimated_resources.mult18s,
                r.ok ? "yes" : "NO");
    if (!r.ok) {
      std::printf("  %s\n", r.error.c_str());
      return 1;
    }
  }

  std::printf(
      "\nThe 2x2 design is slightly SLOWER than software (the paper's\n"
      "8.8%% penalty): each streamed word costs more in FSL traffic and\n"
      "addressing than the two MACs it offloads. The 4x4 design amortizes\n"
      "the same traffic over four times the work and wins ~2.2x.\n");
  return 0;
}
