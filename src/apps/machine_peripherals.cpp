#include "apps/machine_peripherals.hpp"

#include <string>
#include <utility>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/matmul/matmul_hw.hpp"
#include "common/status.hpp"
#include "sim/peripheral_registry.hpp"

namespace mbcosim::apps {

namespace {

/// The one integer parameter `key` of the description; throws SimError
/// when it is missing or when the description carries unknown keys (a
/// typo in a machine file should fail loudly, not fall back silently).
long long required_param(const machine::PeripheralDesc& desc,
                         const std::string& key) {
  for (const auto& [name, value] : desc.params) {
    if (name != key) {
      throw SimError("peripheral type '" + desc.type +
                     "' does not take a parameter '" + name + "'");
    }
  }
  const auto it = desc.params.find(key);
  if (it == desc.params.end()) {
    throw SimError("peripheral type '" + desc.type +
                   "' requires the parameter '" + key + "'");
  }
  return it->second;
}

sim::FslGateways to_gateways(const cordic::CordicPipelineIo& io) {
  sim::FslGateways gateways;
  gateways.s_data = io.s_data;
  gateways.s_exists = io.s_exists;
  gateways.s_control = io.s_control;
  gateways.s_read = io.s_read;
  gateways.m_data = io.m_data;
  gateways.m_write = io.m_write;
  gateways.m_full = io.m_full;
  return gateways;
}

sim::FslGateways to_gateways(const matmul::MatmulPeripheralIo& io) {
  sim::FslGateways gateways;
  gateways.s_data = io.s_data;
  gateways.s_exists = io.s_exists;
  gateways.s_control = io.s_control;
  gateways.s_read = io.s_read;
  gateways.m_data = io.m_data;
  gateways.m_write = io.m_write;
  gateways.m_full = io.m_full;
  return gateways;
}

sim::HardwareBundle make_cordic(const machine::PeripheralDesc& desc) {
  const long long num_pes = required_param(desc, "num_pes");
  if (num_pes < 1 || num_pes > 32) {
    throw SimError("cordic peripheral: num_pes must be in [1, 32]");
  }
  cordic::CordicPipeline pipeline =
      cordic::build_cordic_pipeline(static_cast<unsigned>(num_pes));
  sim::HardwareBundle bundle;
  bundle.channels.push_back({desc.channel, to_gateways(pipeline.io)});
  bundle.model = std::move(pipeline.model);
  // Drain bound: P pipeline stages + deserializer/serializer latency
  // (the same window make_cordic_system configures).
  bundle.quiescence = static_cast<Cycle>(num_pes) + 16;
  return bundle;
}

sim::HardwareBundle make_matmul(const machine::PeripheralDesc& desc) {
  const long long block_size = required_param(desc, "block_size");
  if (block_size < 2 || block_size > 4) {
    throw SimError("matmul peripheral: block_size must be in [2, 4]");
  }
  matmul::MatmulPeripheral peripheral =
      matmul::build_matmul_peripheral(static_cast<unsigned>(block_size));
  sim::HardwareBundle bundle;
  bundle.channels.push_back({desc.channel, to_gateways(peripheral.io)});
  bundle.model = std::move(peripheral.model);
  // Drain bound: one block row in the MAC array + the serializer.
  bundle.quiescence = static_cast<Cycle>(2 * block_size) + 16;
  return bundle;
}

}  // namespace

void register_machine_peripherals() {
  sim::PeripheralRegistry& registry = sim::PeripheralRegistry::instance();
  // Duplicate registration is the expected second call; ignore it.
  (void)registry.add("cordic", make_cordic);
  (void)registry.add("matmul", make_matmul);
}

}  // namespace mbcosim::apps
