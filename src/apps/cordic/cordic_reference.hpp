// Golden models for the adaptive CORDIC division application (paper
// Section IV-A). The recurrence (paper Eq. 1/2, rewritten with the
// variable scale C_i so data can be recirculated through the pipeline):
//
//   d_i = +1 if Y_i < 0 else -1
//   Y_{i+1} = Y_i + d_i * (X_i >> s_i)
//   Z_{i+1} = Z_i - d_i * (C >> s_i)          C = 1.0
//   s_{i+1} = s_i + 1
//
// After n iterations Z_n ~= Y_0 / X_0 (for X_0 > 0, |Y_0/X_0| < 2).
// The bit-exact fixed-point model below is the single source of truth
// that the software programs, the sysgen hardware pipeline and the RTL
// baseline are all validated against.
#pragma once

#include "common/fixed_point.hpp"
#include "common/types.hpp"

namespace mbcosim::apps::cordic {

/// Data format used throughout the application: signed 32-bit with a
/// 24-bit fraction (range ±128, resolution 2^-24).
inline constexpr FixFormat kDataFormat =
    FixFormat{Signedness::kSigned, 32, 24};

/// Raw fixed-point representation of 1.0 in kDataFormat.
inline constexpr i32 kOneRaw = 1 << 24;

/// State of one CORDIC item between (partial) iteration batches.
struct CordicState {
  i32 x = 0;
  i32 y = 0;
  i32 z = 0;
};

/// Run `count` iterations starting at shift amount `s0` — bit-exact model
/// of one pass through a pipeline of `count` PEs configured with initial
/// shift `s0`. Arithmetic wraps modulo 2^32, like the hardware adders.
[[nodiscard]] CordicState cordic_iterate(CordicState state, unsigned s0,
                                         unsigned count);

/// Full n-iteration division: returns Z_n raw (quotient y0/x0 in
/// kDataFormat).
[[nodiscard]] i32 cordic_divide_raw(i32 x0_raw, i32 y0_raw,
                                    unsigned iterations);

/// Floating-point convenience wrapper: computes b / a through the
/// fixed-point machinery.
[[nodiscard]] double cordic_divide(double a, double b, unsigned iterations);

/// Worst-case quotient error bound after n iterations: 2^-(n-1) residual
/// plus accumulated rounding of the truncating shifts.
[[nodiscard]] double cordic_error_bound(unsigned iterations);

}  // namespace mbcosim::apps::cordic
