#include "apps/cordic/cordic_hw.hpp"

#include <string>
#include <vector>

#include "apps/common/serializer.hpp"
#include "apps/cordic/cordic_reference.hpp"
#include "common/status.hpp"

namespace mbcosim::apps::cordic {

namespace sg = mbcosim::sysgen;

namespace {

constexpr FixFormat kShiftFormat = FixFormat{Signedness::kUnsigned, 6, 0};
constexpr FixFormat kBoolFormat = FixFormat{Signedness::kUnsigned, 1, 0};
constexpr unsigned kMaxShift = 31;

/// Signals leaving one pipeline stage (all registered).
struct StageOutputs {
  sg::Signal* x = nullptr;
  sg::Signal* y = nullptr;
  sg::Signal* z = nullptr;
  sg::Signal* s = nullptr;
  sg::Signal* valid = nullptr;
};

/// Build one processing element: the combinational CORDIC update followed
/// by the stage registers (paper Figure 4; "All the PEs form a linear
/// pipeline and is fully pipelined between them").
StageOutputs add_pe(sg::Model& m, const std::string& prefix,
                    const StageOutputs& in, sg::Signal& one_const) {
  const FixFormat f = kDataFormat;
  const Fix zero = Fix::from_raw(f, 0);

  // d_i selection: d = +1 when Y < 0.
  auto& zero_c = m.add<sg::Constant>(prefix + ".zero", zero);
  auto& neg = m.add<sg::Relational>(prefix + ".neg", sg::Relational::Op::kLt,
                                    *in.y, zero_c.out());

  // Barrel-shifted operands: X >> s and C >> s (slice shifters, no
  // embedded multipliers -- see Table I).
  auto& xs = m.add<sg::VariableShiftRight>(prefix + ".xs", *in.x, *in.s,
                                           kMaxShift);
  auto& cs = m.add<sg::VariableShiftRight>(prefix + ".cs", one_const, *in.s,
                                           kMaxShift);

  // Y_{i+1} = Y -/+ (X >> s): both sums computed, the sign of Y selects.
  auto& y_plus = m.add<sg::AddSub>(prefix + ".y_plus", sg::AddSub::Mode::kAdd,
                                   *in.y, xs.out(), f);
  auto& y_minus = m.add<sg::AddSub>(prefix + ".y_minus",
                                    sg::AddSub::Mode::kSubtract, *in.y,
                                    xs.out(), f);
  auto& y_next = m.add<sg::Mux>(
      prefix + ".y_next", neg.out(),
      std::vector<sg::Signal*>{&y_minus.out(), &y_plus.out()});

  // Z_{i+1} = Z +/- (C >> s), opposite polarity to Y.
  auto& z_plus = m.add<sg::AddSub>(prefix + ".z_plus", sg::AddSub::Mode::kAdd,
                                   *in.z, cs.out(), f);
  auto& z_minus = m.add<sg::AddSub>(prefix + ".z_minus",
                                    sg::AddSub::Mode::kSubtract, *in.z,
                                    cs.out(), f);
  auto& z_next = m.add<sg::Mux>(
      prefix + ".z_next", neg.out(),
      std::vector<sg::Signal*>{&z_plus.out(), &z_minus.out()});

  // s_{i+1} = s_i + 1 (the C_{i+1} = C_i * 2^-1 propagation).
  auto& one_s =
      m.add<sg::Constant>(prefix + ".one_s", Fix::from_raw(kShiftFormat, 1));
  auto& s_next = m.add<sg::AddSub>(prefix + ".s_next", sg::AddSub::Mode::kAdd,
                                   *in.s, one_s.out(), kShiftFormat);

  // Stage registers.
  auto& xr = m.add<sg::Register>(prefix + ".xr", *in.x, zero);
  auto& yr = m.add<sg::Register>(prefix + ".yr", y_next.out(), zero);
  auto& zr = m.add<sg::Register>(prefix + ".zr", z_next.out(), zero);
  auto& sr = m.add<sg::Register>(prefix + ".sr", s_next.out(),
                                 Fix::from_raw(kShiftFormat, 0));
  auto& vr = m.add<sg::Register>(prefix + ".vr", *in.valid,
                                 Fix::from_raw(kBoolFormat, 0));

  return StageOutputs{&xr.out(), &yr.out(), &zr.out(), &sr.out(), &vr.out()};
}

}  // namespace

CordicPipeline build_cordic_pipeline(unsigned num_pes) {
  if (num_pes == 0 || num_pes > 32) {
    throw SimError("build_cordic_pipeline: P must be in [1, 32]");
  }
  CordicPipeline pipeline;
  pipeline.num_pes = num_pes;
  pipeline.model = std::make_unique<sg::Model>(
      "cordic_div_p" + std::to_string(num_pes));
  sg::Model& m = *pipeline.model;
  const FixFormat f = kDataFormat;

  // ---- FSL slave interface (from the processor). -------------------------
  auto& s_data = m.add<sg::GatewayIn>("fsl_s.data", f);
  auto& s_exists = m.add<sg::GatewayIn>("fsl_s.exists", kBoolFormat);
  auto& s_control = m.add<sg::GatewayIn>("fsl_s.control", kBoolFormat);
  // The interface consumes one word per cycle whenever one exists.
  auto& s_read = m.add<sg::GatewayOut>("fsl_s.read", s_exists.out());

  auto& not_ctrl = m.add<sg::Logical>(
      "deser.not_ctrl", sg::Logical::Op::kNot,
      std::vector<sg::Signal*>{&s_control.out()});
  auto& data_accept = m.add<sg::Logical>(
      "deser.data_accept", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&s_exists.out(), &not_ctrl.out()});
  auto& ctrl_accept = m.add<sg::Logical>(
      "deser.ctrl_accept", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&s_exists.out(), &s_control.out()});

  // Word index within the (X, Y, Z) triple.
  auto& idx = m.add<sg::Counter>("deser.idx",
                                 FixFormat{Signedness::kUnsigned, 2, 0}, 3,
                                 &data_accept.out());
  auto make_idx_eq = [&](const char* name, i64 value) -> sg::Signal& {
    auto& constant = m.add<sg::Constant>(
        std::string("deser.") + name + "_c",
        Fix::from_raw(FixFormat{Signedness::kUnsigned, 2, 0}, value));
    auto& eq = m.add<sg::Relational>(std::string("deser.") + name,
                                     sg::Relational::Op::kEq, idx.out(),
                                     constant.out());
    return eq.out();
  };
  sg::Signal& idx_eq0 = make_idx_eq("idx_eq0", 0);
  sg::Signal& idx_eq1 = make_idx_eq("idx_eq1", 1);
  sg::Signal& idx_eq2 = make_idx_eq("idx_eq2", 2);

  auto& en_x = m.add<sg::Logical>(
      "deser.en_x", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&data_accept.out(), &idx_eq0});
  auto& en_y = m.add<sg::Logical>(
      "deser.en_y", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&data_accept.out(), &idx_eq1});
  auto& valid_in = m.add<sg::Logical>(
      "deser.valid_in", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&data_accept.out(), &idx_eq2});

  const Fix zero = Fix::from_raw(f, 0);
  auto& x_hold = m.add<sg::Register>("deser.x_hold", s_data.out(), zero,
                                     &en_x.out());
  auto& y_hold = m.add<sg::Register>("deser.y_hold", s_data.out(), zero,
                                     &en_y.out());

  // Initial shift amount s0: low bits of the control word (paper: "C_0 is
  // sent out from the MicroBlaze processor to the FSL as a control word").
  auto& s0_bits = m.add<sg::Slice>("deser.s0_bits", s_data.out(), 0, 6);
  auto& s0_hold = m.add<sg::Register>("deser.s0_hold", s0_bits.out(),
                                      Fix::from_raw(kShiftFormat, 0),
                                      &ctrl_accept.out());

  // ---- Linear pipeline of PEs. -------------------------------------------
  auto& one_c = m.add<sg::Constant>("one", Fix::from_raw(f, kOneRaw));
  StageOutputs stage{&x_hold.out(), &y_hold.out(), &s_data.out(),
                     &s0_hold.out(), &valid_in.out()};
  for (unsigned pe = 1; pe <= num_pes; ++pe) {
    stage = add_pe(m, "pe" + std::to_string(pe), stage, one_c.out());
  }

  // ---- FSL master interface (back to the processor). ----------------------
  auto& m_full = m.add<sg::GatewayIn>("fsl_m.full", kBoolFormat);
  auto& serializer = m.add<VectorSerializer>(
      "ser", std::vector<sg::Signal*>{stage.x, stage.y, stage.z},
      *stage.valid, &m_full.out());
  auto& m_data = m.add<sg::GatewayOut>("fsl_m.data", serializer.data());
  auto& m_write = m.add<sg::GatewayOut>("fsl_m.write", serializer.write());

  pipeline.io = CordicPipelineIo{&s_data, &s_exists, &s_control, &s_read,
                                 &m_data, &m_write, &m_full};
  m.elaborate();
  return pipeline;
}

void CordicPipeline::bind(core::FslBridge& bridge, unsigned channel) const {
  core::SlaveBinding slave;
  slave.channel = channel;
  slave.data = io.s_data;
  slave.exists = io.s_exists;
  slave.control = io.s_control;
  slave.read = io.s_read;
  bridge.bind_slave(slave);

  core::MasterBinding master;
  master.channel = channel;
  master.data = io.m_data;
  master.write = io.m_write;
  master.full = io.m_full;
  bridge.bind_master(master);
}

}  // namespace mbcosim::apps::cordic
