#include "apps/cordic/cordic_sw.hpp"

#include <sstream>

#include "apps/cordic/cordic_reference.hpp"
#include "common/status.hpp"

namespace mbcosim::apps::cordic {

namespace {

void emit_word_array(std::ostream& os, const char* label,
                     std::span<const i32> values) {
  os << label << ":\n";
  for (const i32 value : values) {
    os << "  .word 0x" << std::hex << static_cast<u32>(value) << std::dec
       << "\n";
  }
}

void check_items(std::span<const i32> x, std::span<const i32> y) {
  if (x.size() != y.size() || x.empty()) {
    throw SimError("cordic: x/y arrays must be nonempty and equal-sized");
  }
}

}  // namespace

std::string pure_software_program(std::span<const i32> x,
                                  std::span<const i32> y, unsigned iterations,
                                  ShiftStrategy strategy) {
  check_items(x, y);
  if (iterations == 0 || iterations > 32) {
    throw SimError("cordic: iterations must be in [1, 32]");
  }
  std::ostringstream os;
  os << "# Pure-software CORDIC division, " << iterations
     << " iterations per item.\n";
  os << "start:\n";
  os << "  la r21, data_x\n";
  os << "  la r22, data_y\n";
  os << "  la r28, results\n";
  os << "  li r30, 0x01000000      # C = 1.0 in Fix32_24\n";
  os << "  li r31, " << iterations << "\n";
  os << "  li r29, " << x.size() * 4 << "       # total bytes\n";
  os << "  addk r10, r0, r0        # item byte offset\n";
  os << "item_loop:\n";
  os << "  lw r3, r21, r10         # X = a\n";
  os << "  lw r4, r22, r10         # Y = b\n";
  os << "  addk r5, r0, r0         # Z = 0\n";
  os << "  addk r6, r0, r0         # s = 0\n";
  if (strategy == ShiftStrategy::kIncremental) {
    os << "  addk r8, r3, r0         # xs = X\n";
    os << "  addk r9, r30, r0        # cs = C\n";
  }
  os << "  addk r7, r31, r0        # i = iterations\n";
  os << "iter_loop:\n";
  switch (strategy) {
    case ShiftStrategy::kBarrelShifter:
      os << "  bsra r8, r3, r6         # xs = X >> s\n";
      os << "  bsra r9, r30, r6        # cs = C >> s\n";
      break;
    case ShiftStrategy::kShiftLoop:
      os << "  addk r8, r3, r0         # xs = X\n";
      os << "  addk r9, r30, r0        # cs = C\n";
      os << "  addk r14, r6, r0        # k = s\n";
      os << "  beqi r14, shift_done\n";
      os << "shift_loop:\n";
      os << "  sra r8, r8\n";
      os << "  sra r9, r9\n";
      os << "  addik r14, r14, -1\n";
      os << "  bnei r14, shift_loop\n";
      os << "shift_done:\n";
      break;
    case ShiftStrategy::kIncremental:
      break;  // xs/cs already hold X >> s and C >> s
  }
  os << "  blti r4, y_negative\n";
  os << "  rsubk r4, r8, r4        # Y -= xs\n";
  os << "  addk r5, r5, r9         # Z += cs\n";
  os << "  bri iter_tail\n";
  os << "y_negative:\n";
  os << "  addk r4, r4, r8         # Y += xs\n";
  os << "  rsubk r5, r9, r5        # Z -= cs\n";
  os << "iter_tail:\n";
  if (strategy == ShiftStrategy::kIncremental) {
    os << "  sra r8, r8              # xs >>= 1\n";
    os << "  sra r9, r9              # cs >>= 1\n";
  }
  os << "  addik r6, r6, 1         # s += 1\n";
  os << "  addik r7, r7, -1\n";
  os << "  bnei r7, iter_loop\n";
  os << "  sw r5, r28, r10         # results[item] = Z\n";
  os << "  addik r10, r10, 4\n";
  os << "  rsub r3, r10, r29\n";
  os << "  bnei r3, item_loop\n";
  os << "  halt\n\n";
  emit_word_array(os, "data_x", x);
  emit_word_array(os, "data_y", y);
  os << "results: .space " << x.size() * 4 << "\n";
  return os.str();
}

std::string hw_driver_program(std::span<const i32> x, std::span<const i32> y,
                              unsigned iterations, unsigned num_pes,
                              unsigned set_size) {
  check_items(x, y);
  if (num_pes == 0) {
    throw SimError("cordic: hw driver needs at least one PE");
  }
  if (set_size == 0 || set_size > 5) {
    // Three result words per item; the 16-deep FSL FIFO holds at most
    // five complete triples (paper Section IV-A: sets are sized so the
    // results "would not overflow the FIFOs of the data output FSLs").
    throw SimError("cordic: set_size must be in [1, 5]");
  }
  if (x.size() % set_size != 0) {
    throw SimError("cordic: items must be a multiple of set_size");
  }
  const unsigned passes = cordic_passes(iterations, num_pes);

  std::ostringstream os;
  os << "# CORDIC division driver: P=" << num_pes << ", " << iterations
     << " iterations (" << passes << " passes), sets of " << set_size
     << " items.\n";
  os << "start:\n";
  os << "  la r21, data_x\n";
  os << "  la r22, data_y\n";
  os << "  la r24, work_x\n";
  os << "  la r25, work_y\n";
  os << "  la r26, work_z\n";
  os << "  la r28, results\n";
  os << "  li r19, " << set_size << "        # items per set\n";
  os << "  li r27, " << passes << "        # passes per set\n";
  os << "  li r18, " << num_pes << "        # s0 increment per pass\n";
  os << "  li r29, " << x.size() * 4 << "      # total bytes\n";
  os << "  addk r10, r0, r0        # set base byte offset\n";
  os << "set_loop:\n";
  os << "  # load the set into the work buffers, Z cleared\n";
  os << "  addk r5, r19, r0\n";
  os << "  addk r6, r21, r10\n";
  os << "  addk r7, r22, r10\n";
  os << "  addk r8, r24, r0\n";
  os << "  addk r9, r25, r0\n";
  os << "  addk r13, r26, r0\n";
  os << "init_loop:\n";
  os << "  lwi r3, r6, 0\n";
  os << "  swi r3, r8, 0\n";
  os << "  lwi r3, r7, 0\n";
  os << "  swi r3, r9, 0\n";
  os << "  swi r0, r13, 0\n";
  os << "  addik r6, r6, 4\n";
  os << "  addik r7, r7, 4\n";
  os << "  addik r8, r8, 4\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r13, r13, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, init_loop\n";
  os << "  # recirculate the set through the pipeline\n";
  os << "  addk r11, r27, r0       # pass counter\n";
  os << "  addk r12, r0, r0        # s0 = 0\n";
  os << "pass_loop:\n";
  os << "  cput r12, rfsl0         # control word: initial shift amount\n";
  os << "  addk r5, r19, r0\n";
  os << "  addk r8, r24, r0\n";
  os << "  addk r9, r25, r0\n";
  os << "  addk r13, r26, r0\n";
  os << "send_loop:\n";
  os << "  lwi r3, r8, 0\n";
  os << "  put r3, rfsl0           # X\n";
  os << "  lwi r3, r9, 0\n";
  os << "  put r3, rfsl0           # Y\n";
  os << "  lwi r3, r13, 0\n";
  os << "  put r3, rfsl0           # Z\n";
  os << "  addik r8, r8, 4\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r13, r13, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, send_loop\n";
  os << "  addk r5, r19, r0\n";
  os << "  addk r8, r24, r0\n";
  os << "  addk r9, r25, r0\n";
  os << "  addk r13, r26, r0\n";
  os << "recv_loop:\n";
  os << "  get r3, rfsl0           # X out\n";
  os << "  swi r3, r8, 0\n";
  os << "  get r3, rfsl0           # Y out\n";
  os << "  swi r3, r9, 0\n";
  os << "  get r3, rfsl0           # Z out\n";
  os << "  swi r3, r13, 0\n";
  os << "  addik r8, r8, 4\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r13, r13, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, recv_loop\n";
  os << "  addk r12, r12, r18      # s0 += P\n";
  os << "  addik r11, r11, -1\n";
  os << "  bnei r11, pass_loop\n";
  os << "  # store quotients of this set\n";
  os << "  addk r5, r19, r0\n";
  os << "  addk r13, r26, r0\n";
  os << "  addk r6, r28, r10\n";
  os << "store_loop:\n";
  os << "  lwi r3, r13, 0\n";
  os << "  swi r3, r6, 0\n";
  os << "  addik r13, r13, 4\n";
  os << "  addik r6, r6, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, store_loop\n";
  os << "  addik r10, r10, " << set_size * 4 << "\n";
  os << "  rsub r3, r10, r29\n";
  os << "  bnei r3, set_loop\n";
  os << "  halt\n\n";
  emit_word_array(os, "data_x", x);
  emit_word_array(os, "data_y", y);
  os << "work_x: .space " << set_size * 4 << "\n";
  os << "work_y: .space " << set_size * 4 << "\n";
  os << "work_z: .space " << set_size * 4 << "\n";
  os << "results: .space " << x.size() * 4 << "\n";
  return os.str();
}

}  // namespace mbcosim::apps::cordic
