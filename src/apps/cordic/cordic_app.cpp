#include "apps/cordic/cordic_app.hpp"

#include <string>

#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "estimate/estimator.hpp"
#include "iss/memory.hpp"
#include "iss/processor.hpp"

namespace mbcosim::apps::cordic {

std::pair<std::vector<i32>, std::vector<i32>> make_cordic_dataset(
    unsigned items, u64 seed) {
  Rng rng(seed);
  std::vector<i32> x;
  std::vector<i32> y;
  x.reserve(items);
  y.reserve(items);
  for (unsigned i = 0; i < items; ++i) {
    const double a = 0.5 + 1.5 * rng.next_double();          // [0.5, 2)
    const double q = -1.9 + 3.8 * rng.next_double();         // (-1.9, 1.9)
    const double b = a * q;
    x.push_back(static_cast<i32>(Fix::from_double(kDataFormat, a).raw()));
    y.push_back(static_cast<i32>(Fix::from_double(kDataFormat, b).raw()));
  }
  return {std::move(x), std::move(y)};
}

std::vector<i32> cordic_expected(const CordicRunConfig& config,
                                 std::span<const i32> x,
                                 std::span<const i32> y) {
  unsigned iterations = config.iterations;
  if (config.num_pes > 0) {
    iterations = cordic_passes(config.iterations, config.num_pes) *
                 config.num_pes;
  }
  std::vector<i32> expected;
  expected.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    expected.push_back(cordic_divide_raw(x[i], y[i], iterations));
  }
  return expected;
}

CordicRunResult run_cordic(const CordicRunConfig& config,
                           std::span<const i32> x, std::span<const i32> y) {
  if (x.size() != y.size() || x.empty()) {
    throw SimError("run_cordic: bad dataset");
  }
  const bool pure_software = config.num_pes == 0;

  // Software.
  const std::string source =
      pure_software
          ? pure_software_program(x, y, config.iterations, config.sw_strategy)
          : hw_driver_program(x, y, config.iterations, config.num_pes,
                              config.set_size);
  const assembler::Program program = assembler::assemble_or_throw(source);

  // Processor configuration: the pure-software barrel-shifter strategy is
  // the only one that needs the barrel shifter option.
  isa::CpuConfig cpu_config;
  cpu_config.has_multiplier = true;  // baseline MicroBlaze config (3 mults)
  cpu_config.has_barrel_shifter =
      pure_software && config.sw_strategy == ShiftStrategy::kBarrelShifter;

  iss::LmbMemory memory;
  memory.load_program(program);
  fsl::FslHub hub(config.fifo_depth);
  iss::Processor cpu(cpu_config, memory, &hub);

  CordicRunResult result;

  if (pure_software) {
    cpu.reset(program.entry());
    Stopwatch sim_watch;
    const iss::Event final_event = cpu.run(Cycle{1} << 36);
    result.sim_wall_seconds = sim_watch.elapsed_seconds();
    if (final_event != iss::Event::kHalted) {
      throw SimError("run_cordic: pure-software program did not halt");
    }
    result.cycles = cpu.stats().cycles;
    result.instructions = cpu.stats().instructions;

    estimate::SystemDescription system;
    system.cpu = cpu_config;
    system.fsl_links_used = 0;
    system.program = &program;
    const auto report = estimate::estimate_system(system);
    result.estimated_resources = report.estimated;
    result.implemented_resources = report.implemented;
    result.energy = energy::estimate_energy(cpu.stats(), nullptr, 0,
                                            report.implemented);

    const Addr results_addr = program.symbol("results");
    for (std::size_t i = 0; i < x.size(); ++i) {
      result.quotients_raw.push_back(static_cast<i32>(
          memory.read_word(results_addr + static_cast<Addr>(i) * 4)));
    }
    return result;
  }

  // Hardware-accelerated configuration.
  CordicPipeline pipeline = build_cordic_pipeline(config.num_pes);
  core::CoSimEngine engine(cpu, *pipeline.model, hub);
  pipeline.bind(engine.bridge(), /*channel=*/0);
  // Drain bound: P pipeline stages + deserializer/serializer latency.
  engine.set_quiescence_window(config.num_pes + 16);
  engine.reset(program.entry());

  Stopwatch sim_watch;
  const core::StopReason reason = engine.run(Cycle{1} << 36);
  result.sim_wall_seconds = sim_watch.elapsed_seconds();
  if (reason != core::StopReason::kHalted) {
    throw SimError("run_cordic: co-simulation stopped abnormally (reason " +
                   std::to_string(static_cast<int>(reason)) + ")");
  }

  const core::CoSimStats stats = engine.stats();
  result.cycles = stats.cycles;
  result.instructions = stats.instructions;
  result.fsl_stall_cycles = stats.fsl_stall_cycles;
  result.fsl_words = stats.bridge.words_to_hw + stats.bridge.words_from_hw;

  estimate::SystemDescription system;
  system.cpu = cpu_config;
  system.fsl_links_used = 2;  // one input + one output link
  system.peripheral = pipeline.model.get();
  system.program = &program;
  const auto report = estimate::estimate_system(system);
  result.estimated_resources = report.estimated;
  result.implemented_resources = report.implemented;
  result.energy = energy::estimate_energy(cpu.stats(), pipeline.model.get(),
                                          stats.hw_cycles_stepped,
                                          report.implemented);

  const Addr results_addr = program.symbol("results");
  for (std::size_t i = 0; i < x.size(); ++i) {
    result.quotients_raw.push_back(static_cast<i32>(
        memory.read_word(results_addr + static_cast<Addr>(i) * 4)));
  }
  return result;
}

}  // namespace mbcosim::apps::cordic
