#include "apps/cordic/cordic_app.hpp"

#include <string>
#include <utility>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace mbcosim::apps::cordic {

namespace {

sim::FslGateways to_gateways(const CordicPipelineIo& io) {
  sim::FslGateways gateways;
  gateways.s_data = io.s_data;
  gateways.s_exists = io.s_exists;
  gateways.s_control = io.s_control;
  gateways.s_read = io.s_read;
  gateways.m_data = io.m_data;
  gateways.m_write = io.m_write;
  gateways.m_full = io.m_full;
  return gateways;
}

}  // namespace

std::pair<std::vector<i32>, std::vector<i32>> make_cordic_dataset(
    unsigned items, u64 seed) {
  Rng rng(seed);
  std::vector<i32> x;
  std::vector<i32> y;
  x.reserve(items);
  y.reserve(items);
  for (unsigned i = 0; i < items; ++i) {
    const double a = 0.5 + 1.5 * rng.next_double();          // [0.5, 2)
    const double q = -1.9 + 3.8 * rng.next_double();         // (-1.9, 1.9)
    const double b = a * q;
    x.push_back(static_cast<i32>(Fix::from_double(kDataFormat, a).raw()));
    y.push_back(static_cast<i32>(Fix::from_double(kDataFormat, b).raw()));
  }
  return {std::move(x), std::move(y)};
}

std::vector<i32> cordic_expected(const CordicRunConfig& config,
                                 std::span<const i32> x,
                                 std::span<const i32> y) {
  unsigned iterations = config.iterations;
  if (config.num_pes > 0) {
    iterations = cordic_passes(config.iterations, config.num_pes) *
                 config.num_pes;
  }
  std::vector<i32> expected;
  expected.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    expected.push_back(cordic_divide_raw(x[i], y[i], iterations));
  }
  return expected;
}

Expected<sim::SimSystem> make_cordic_system(const CordicRunConfig& config,
                                            std::span<const i32> x,
                                            std::span<const i32> y) {
  if (x.size() != y.size() || x.empty()) {
    return Expected<sim::SimSystem>::failure("make_cordic_system: bad dataset");
  }
  const bool pure_software = config.num_pes == 0;

  // Software.
  const std::string source =
      pure_software
          ? pure_software_program(x, y, config.iterations, config.sw_strategy)
          : hw_driver_program(x, y, config.iterations, config.num_pes,
                              config.set_size);

  // Processor configuration: the pure-software barrel-shifter strategy is
  // the only one that needs the barrel shifter option.
  isa::CpuConfig cpu_config;
  cpu_config.has_multiplier = true;  // baseline MicroBlaze config (3 mults)
  cpu_config.has_barrel_shifter =
      pure_software && config.sw_strategy == ShiftStrategy::kBarrelShifter;

  sim::SimSystem::Builder builder;
  builder.program(source).cpu_config(cpu_config).fifo_depth(config.fifo_depth);
  if (!pure_software) {
    const unsigned num_pes = config.num_pes;
    builder.hardware([num_pes] {
      CordicPipeline pipeline = build_cordic_pipeline(num_pes);
      sim::HardwareBundle bundle;
      bundle.channels.push_back({0, to_gateways(pipeline.io)});
      bundle.model = std::move(pipeline.model);
      return bundle;
    });
    // Drain bound: P pipeline stages + deserializer/serializer latency.
    builder.quiescence(config.num_pes + 16);
  }
  return builder.build();
}

CordicRunResult run_cordic(const CordicRunConfig& config,
                           std::span<const i32> x, std::span<const i32> y) {
  Expected<sim::SimSystem> built = make_cordic_system(config, x, y);
  if (!built) throw SimError("run_cordic: " + built.error());
  sim::SimSystem system = std::move(built).value();

  const core::StopReason reason = system.run(Cycle{1} << 36);
  if (reason != core::StopReason::kHalted) {
    throw SimError("run_cordic: co-simulation stopped abnormally (reason " +
                   std::to_string(static_cast<int>(reason)) + ")");
  }

  CordicRunResult result;
  const core::CoSimStats stats = system.stats();
  result.cycles = stats.cycles;
  result.instructions = stats.instructions;
  result.fsl_stall_cycles = stats.fsl_stall_cycles;
  result.fsl_words = stats.bridge.words_to_hw + stats.bridge.words_from_hw;
  result.sim_wall_seconds = system.run_wall_seconds();

  const estimate::ResourceReport report = system.resource_report();
  result.estimated_resources = report.estimated;
  result.implemented_resources = report.implemented;
  result.energy = system.energy_report(report.implemented);

  for (std::size_t i = 0; i < x.size(); ++i) {
    result.quotients_raw.push_back(
        static_cast<i32>(system.word("results", static_cast<u32>(i))));
  }
  return result;
}

}  // namespace mbcosim::apps::cordic
