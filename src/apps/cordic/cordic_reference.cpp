#include "apps/cordic/cordic_reference.hpp"

#include <cmath>

namespace mbcosim::apps::cordic {

namespace {
/// Arithmetic shift right on the raw code (sign-propagating), matching
/// both the bsra instruction and the hardware barrel shifter.
i32 asr(i32 value, unsigned amount) {
  if (amount >= 31) return value < 0 ? -1 : 0;
  return value >> amount;
}
/// Wrap-around add, as a 32-bit hardware adder.
i32 wadd(i32 a, i32 b) {
  return static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b));
}
}  // namespace

CordicState cordic_iterate(CordicState state, unsigned s0, unsigned count) {
  unsigned s = s0;
  for (unsigned i = 0; i < count; ++i, ++s) {
    const i32 xs = asr(state.x, s);
    const i32 cs = asr(kOneRaw, s);
    if (state.y < 0) {
      state.y = wadd(state.y, xs);
      state.z = wadd(state.z, -cs);
    } else {
      state.y = wadd(state.y, -xs);
      state.z = wadd(state.z, cs);
    }
  }
  return state;
}

i32 cordic_divide_raw(i32 x0_raw, i32 y0_raw, unsigned iterations) {
  const CordicState result =
      cordic_iterate(CordicState{x0_raw, y0_raw, 0}, 0, iterations);
  return result.z;
}

double cordic_divide(double a, double b, unsigned iterations) {
  const i32 x = static_cast<i32>(
      Fix::from_double(kDataFormat, a).raw());
  const i32 y = static_cast<i32>(
      Fix::from_double(kDataFormat, b).raw());
  const i32 z = cordic_divide_raw(x, y, iterations);
  return Fix::from_raw(kDataFormat, z).to_double();
}

double cordic_error_bound(unsigned iterations) {
  // Residual of the iteration itself plus one LSB of truncation per
  // iteration on both shifted operands.
  const double residual = std::ldexp(1.0, -static_cast<int>(
      iterations > 0 ? iterations - 1 : 0));
  const double rounding = 2.0 * static_cast<double>(iterations) *
                          std::ldexp(1.0, -24);
  return residual + rounding;
}

}  // namespace mbcosim::apps::cordic
