// Hardware side of the CORDIC division application: a linear pipeline of
// P processing elements described with sysgen blocks (paper Figure 4),
// fronted by an FSL slave interface that deserializes the (X, Y, Z) word
// triples the software streams down a single FSL channel, and followed by
// a serializer that streams result triples back (Section IV-A: "only one
// FSL is used for sending the data from MicroBlaze to the customized
// hardware peripheral").
//
// The initial shift amount s0 (the paper's C_0, which the software
// derives from the pass number) arrives as a control word; each PE
// increments the shift amount in flight, which is the paper's
// "C_i = C_{i-1} * 2^-1 ... obtained by right shifting C_{i-1} from the
// previous PE" recast as s_i = s_{i-1} + 1.
#pragma once

#include <memory>

#include "core/fsl_bridge.hpp"
#include "sysgen/blocks_basic.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::apps::cordic {

/// Handles to the FSL-facing gateways of the pipeline model.
struct CordicPipelineIo {
  sysgen::GatewayIn* s_data = nullptr;
  sysgen::GatewayIn* s_exists = nullptr;
  sysgen::GatewayIn* s_control = nullptr;
  sysgen::GatewayOut* s_read = nullptr;
  sysgen::GatewayOut* m_data = nullptr;
  sysgen::GatewayOut* m_write = nullptr;
  sysgen::GatewayIn* m_full = nullptr;
};

struct CordicPipeline {
  std::unique_ptr<sysgen::Model> model;
  CordicPipelineIo io;
  unsigned num_pes = 0;

  /// Bind the pipeline onto FSL channel `channel` of a bridge.
  void bind(core::FslBridge& bridge, unsigned channel = 0) const;
};

/// Build the pipeline with `num_pes` processing elements (paper's P).
[[nodiscard]] CordicPipeline build_cordic_pipeline(unsigned num_pes);

}  // namespace mbcosim::apps::cordic
