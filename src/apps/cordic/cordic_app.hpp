// Top-level driver for the CORDIC division application: assembles the
// software, builds the hardware (when P > 0), wires the co-simulation
// engine and runs to completion — the push-button equivalent of the
// design flow in paper Section IV-A.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "apps/cordic/cordic_hw.hpp"
#include "apps/cordic/cordic_reference.hpp"
#include "apps/cordic/cordic_sw.hpp"
#include "common/resources.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "core/cosim_engine.hpp"
#include "energy/energy_model.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::apps::cordic {

struct CordicRunConfig {
  unsigned num_pes = 0;  ///< 0 selects the pure-software implementation
  unsigned iterations = 24;
  unsigned items = 20;
  unsigned set_size = 5;
  unsigned fifo_depth = 16;  ///< FSL FIFO depth (ablation knob)
  ShiftStrategy sw_strategy = ShiftStrategy::kShiftLoop;
};

struct CordicRunResult {
  std::vector<i32> quotients_raw;  ///< Z outputs per item (kDataFormat)
  Cycle cycles = 0;                ///< simulated application cycles
  u64 instructions = 0;
  Cycle fsl_stall_cycles = 0;
  u64 fsl_words = 0;               ///< words exchanged over the FSL
  ResourceVec estimated_resources;
  ResourceVec implemented_resources;
  /// Host wall-clock spent in the simulation loop itself (excludes
  /// assembly, model construction and resource estimation) -- the
  /// quantity Table I's simulation-time comparison uses.
  double sim_wall_seconds = 0.0;
  /// Rapid energy estimate (the paper's Section V extension).
  energy::EnergyReport energy;

  /// Simulated execution time at the paper's 50 MHz system clock.
  [[nodiscard]] double usec() const { return cycles_to_usec(cycles); }
};

/// Deterministic dataset: divisors a in [0.5, 2), dividends b with
/// |b/a| < 1.9 (the CORDIC division convergence region).
[[nodiscard]] std::pair<std::vector<i32>, std::vector<i32>>
make_cordic_dataset(unsigned items, u64 seed);

/// Build (but do not run) the complete simulated system for one design
/// point: software program, processor configuration, and — when
/// num_pes > 0 — the pipeline peripheral wired onto FSL channel 0. This
/// is the factory a design-space sweep (sim::Sweep) instantiates per
/// point.
[[nodiscard]] Expected<sim::SimSystem> make_cordic_system(
    const CordicRunConfig& config, std::span<const i32> x,
    std::span<const i32> y);

/// Run the complete application in the co-simulation environment.
[[nodiscard]] CordicRunResult run_cordic(const CordicRunConfig& config,
                                         std::span<const i32> x,
                                         std::span<const i32> y);

/// Expected quotients from the bit-exact reference, accounting for the
/// driver's rounding of iterations up to a multiple of P.
[[nodiscard]] std::vector<i32> cordic_expected(const CordicRunConfig& config,
                                               std::span<const i32> x,
                                               std::span<const i32> y);

}  // namespace mbcosim::apps::cordic
