// VectorSerializer: a user-defined ("black box") block that streams a
// vector of parallel values into an FSL master interface one word per
// cycle. When `valid` is high it latches all data inputs; on following
// cycles it emits them in order on (data, write), respecting `full`.
// Both applications use it as the hardware-to-processor output stage:
// the CORDIC pipeline emits (X, Y, Z) per result, the matmul peripheral
// emits one row of the block product.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "sysgen/block.hpp"
#include "sysgen/blocks_basic.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::apps {

class VectorSerializer : public sysgen::Block {
 public:
  /// `values` are the parallel inputs (latched when `valid` is high);
  /// `full` is the downstream FIFO's full flag (may be null when the data
  /// sets are sized so the FIFO can never fill, as in the paper §IV-A).
  VectorSerializer(sysgen::Model& model, std::string name,
                   std::vector<sysgen::Signal*> values, sysgen::Signal& valid,
                   sysgen::Signal* full = nullptr)
      : Block(model, std::move(name)),
        word_format_(values.empty() ? FixFormat{} : values.front()->format()),
        data_(make_output("data", word_format_)),
        write_(make_output("write", FixFormat::unsigned_fix(1, 0))) {
    if (values.empty()) {
      throw SimError("VectorSerializer '" + this->name() + "': no inputs");
    }
    for (sysgen::Signal* signal : values) {
      if (signal->format() != word_format_) {
        throw SimError("VectorSerializer '" + this->name() +
                       "': mixed input formats");
      }
      connect_input(*signal);
    }
    width_ = values.size();
    connect_input(valid);  // input index width_
    if (full != nullptr) {
      has_full_ = true;
      connect_input(*full);  // input index width_ + 1
    }
  }

  [[nodiscard]] bool is_sequential() const override { return true; }

  void output_state() override {
    const bool emitting = !queue_.empty();
    data_.drive(emitting ? queue_.front() : Fix::from_raw(word_format_, 0));
    write_.drive_raw(emitting ? 1 : 0);
  }

  void latch() override {
    // The word presented this cycle is consumed unless the FIFO was full.
    const bool stalled = has_full_ && in(width_ + 1).as_bool();
    if (!queue_.empty() && !stalled) queue_.pop_front();
    if (in(width_).as_bool()) {
      for (std::size_t i = 0; i < width_; ++i) {
        queue_.push_back(in(i).value());
      }
    }
  }

  void reset() override { queue_.clear(); }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_u64(queue_.size());
    for (const Fix& word : queue_) writer.write_i64(word.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    const u64 backlog = reader.read_u64();
    if (!reader.ok()) return false;
    queue_.clear();
    for (u64 i = 0; i < backlog; ++i) {
      queue_.push_back(Fix::from_raw(word_format_, reader.read_i64()));
    }
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    // Holding registers for each word plus a small output state machine.
    const auto width_bits = static_cast<u32>(word_format_.word_bits);
    return ResourceVec{
        static_cast<u32>(width_) * sysgen::slices_for_register(width_bits) + 4,
        0, 0};
  }

  [[nodiscard]] sysgen::Signal& data() noexcept { return data_; }
  [[nodiscard]] sysgen::Signal& write() noexcept { return write_; }
  [[nodiscard]] std::size_t backlog() const noexcept { return queue_.size(); }

 private:
  FixFormat word_format_;
  sysgen::Signal& data_;
  sysgen::Signal& write_;
  std::size_t width_ = 0;
  bool has_full_ = false;
  std::deque<Fix> queue_;
};

}  // namespace mbcosim::apps
