// Registration of the built-in application peripherals with the
// machine-description build path: after register_machine_peripherals()
// a machine JSON file can say
//
//   "peripherals": [{"core": "cpu0", "type": "cordic",
//                    "channel": 0, "num_pes": 8}]
//
// and SimSystem::Builder::machine() will stand up the same CORDIC
// pipeline an explicit make_cordic_system() call would. Registration is
// explicit (no static-initialization magic): embeddings that want the
// built-ins call this once at startup, before any builds.
#pragma once

namespace mbcosim::apps {

/// Register "cordic" (parameter num_pes >= 1, quiescence num_pes + 16)
/// and "matmul" (parameter block_size in [2, 4], quiescence
/// 2 * block_size + 16) with sim::PeripheralRegistry. Idempotent:
/// repeated calls leave the first registration in place.
void register_machine_peripherals();

}  // namespace mbcosim::apps
