#include "apps/matmul/matmul_reference.hpp"

#include "common/rng.hpp"
#include "common/status.hpp"

namespace mbcosim::apps::matmul {

Matrix multiply_reference(const Matrix& a, const Matrix& b) {
  if (a.n != b.n) throw SimError("multiply_reference: size mismatch");
  Matrix c(a.n);
  for (unsigned i = 0; i < a.n; ++i) {
    for (unsigned j = 0; j < a.n; ++j) {
      u32 acc = 0;  // unsigned wrap arithmetic, like the 32-bit datapath
      for (unsigned k = 0; k < a.n; ++k) {
        acc += static_cast<u32>(a.at(i, k)) * static_cast<u32>(b.at(k, j));
      }
      c.at(i, j) = static_cast<i32>(acc);
    }
  }
  return c;
}

Matrix make_matrix(unsigned n, u64 seed) {
  Rng rng(seed);
  Matrix m(n);
  for (auto& element : m.data) {
    element = static_cast<i32>(rng.next_in(-50, 50));
  }
  return m;
}

}  // namespace mbcosim::apps::matmul
