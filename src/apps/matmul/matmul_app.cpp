#include "apps/matmul/matmul_app.hpp"

#include <string>
#include <utility>

#include "common/status.hpp"

namespace mbcosim::apps::matmul {

namespace {

sim::FslGateways to_gateways(const MatmulPeripheralIo& io) {
  sim::FslGateways gateways;
  gateways.s_data = io.s_data;
  gateways.s_exists = io.s_exists;
  gateways.s_control = io.s_control;
  gateways.s_read = io.s_read;
  gateways.m_data = io.m_data;
  gateways.m_write = io.m_write;
  gateways.m_full = io.m_full;
  return gateways;
}

}  // namespace

Expected<sim::SimSystem> make_matmul_system(const MatmulRunConfig& config,
                                            const Matrix& a, const Matrix& b) {
  if (a.n != config.matrix_size || b.n != config.matrix_size) {
    return Expected<sim::SimSystem>::failure(
        "make_matmul_system: matrix size mismatch with config");
  }
  const bool pure_software = config.block_size == 0;

  const std::string source =
      pure_software ? pure_software_program(a, b)
                    : hw_driver_program(a, b, config.block_size);

  isa::CpuConfig cpu_config;
  cpu_config.has_multiplier = true;
  cpu_config.has_barrel_shifter = false;

  sim::SimSystem::Builder builder;
  builder.program(source).cpu_config(cpu_config).memory_bytes(256 * 1024);
  if (!pure_software) {
    const unsigned block_size = config.block_size;
    builder.hardware([block_size] {
      MatmulPeripheral peripheral = build_matmul_peripheral(block_size);
      sim::HardwareBundle bundle;
      bundle.channels.push_back({0, to_gateways(peripheral.io)});
      bundle.model = std::move(peripheral.model);
      return bundle;
    });
    // Drain bound: one block row in the MAC array + the serializer.
    builder.quiescence(2 * config.block_size + 16);
  }
  return builder.build();
}

MatmulRunResult run_matmul(const MatmulRunConfig& config, const Matrix& a,
                           const Matrix& b) {
  Expected<sim::SimSystem> built = make_matmul_system(config, a, b);
  if (!built) throw SimError("run_matmul: " + built.error());
  sim::SimSystem system = std::move(built).value();

  const core::StopReason reason = system.run(Cycle{1} << 36);
  if (reason != core::StopReason::kHalted) {
    throw SimError("run_matmul: co-simulation stopped abnormally (reason " +
                   std::to_string(static_cast<int>(reason)) + ")");
  }

  MatmulRunResult result;
  result.c = Matrix(config.matrix_size);
  const core::CoSimStats stats = system.stats();
  result.cycles = stats.cycles;
  result.instructions = stats.instructions;
  result.fsl_stall_cycles = stats.fsl_stall_cycles;
  result.fsl_words = stats.bridge.words_to_hw + stats.bridge.words_from_hw;
  result.sim_wall_seconds = system.run_wall_seconds();

  const estimate::ResourceReport report = system.resource_report();
  result.estimated_resources = report.estimated;
  result.implemented_resources = report.implemented;
  result.energy = system.energy_report(report.implemented);

  for (unsigned i = 0; i < config.matrix_size * config.matrix_size; ++i) {
    result.c.data[i] = static_cast<i32>(system.word("mat_c", i));
  }
  return result;
}

}  // namespace mbcosim::apps::matmul
