#include "apps/matmul/matmul_app.hpp"

#include <string>

#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "common/status.hpp"
#include "core/cosim_engine.hpp"
#include "estimate/estimator.hpp"
#include "iss/memory.hpp"
#include "iss/processor.hpp"

namespace mbcosim::apps::matmul {

MatmulRunResult run_matmul(const MatmulRunConfig& config, const Matrix& a,
                           const Matrix& b) {
  if (a.n != config.matrix_size || b.n != config.matrix_size) {
    throw SimError("run_matmul: matrix size mismatch with config");
  }
  const bool pure_software = config.block_size == 0;

  const std::string source =
      pure_software ? pure_software_program(a, b)
                    : hw_driver_program(a, b, config.block_size);
  const assembler::Program program = assembler::assemble_or_throw(source);

  isa::CpuConfig cpu_config;
  cpu_config.has_multiplier = true;
  cpu_config.has_barrel_shifter = false;

  iss::LmbMemory memory(256 * 1024);
  memory.load_program(program);
  fsl::FslHub hub;
  iss::Processor cpu(cpu_config, memory, &hub);

  MatmulRunResult result;
  result.c = Matrix(config.matrix_size);

  estimate::SystemDescription system;
  system.cpu = cpu_config;
  system.program = &program;

  if (pure_software) {
    cpu.reset(program.entry());
    Stopwatch sim_watch;
    if (cpu.run(Cycle{1} << 36) != iss::Event::kHalted) {
      throw SimError("run_matmul: pure-software program did not halt");
    }
    result.sim_wall_seconds = sim_watch.elapsed_seconds();
    result.cycles = cpu.stats().cycles;
    result.instructions = cpu.stats().instructions;
    const auto report = estimate::estimate_system(system);
    result.estimated_resources = report.estimated;
    result.implemented_resources = report.implemented;
    result.energy = energy::estimate_energy(cpu.stats(), nullptr, 0,
                                            report.implemented);
  } else {
    MatmulPeripheral peripheral = build_matmul_peripheral(config.block_size);
    core::CoSimEngine engine(cpu, *peripheral.model, hub);
    peripheral.bind(engine.bridge(), /*channel=*/0);
    // Drain bound: one block row in the MAC array + the serializer.
    engine.set_quiescence_window(2 * config.block_size + 16);
    engine.reset(program.entry());
    Stopwatch sim_watch;
    const core::StopReason reason = engine.run(Cycle{1} << 36);
    result.sim_wall_seconds = sim_watch.elapsed_seconds();
    if (reason != core::StopReason::kHalted) {
      throw SimError("run_matmul: co-simulation stopped abnormally (reason " +
                     std::to_string(static_cast<int>(reason)) + ")");
    }
    const core::CoSimStats stats = engine.stats();
    result.cycles = stats.cycles;
    result.instructions = stats.instructions;
    result.fsl_stall_cycles = stats.fsl_stall_cycles;
    result.fsl_words = stats.bridge.words_to_hw + stats.bridge.words_from_hw;

    system.fsl_links_used = 2;
    system.peripheral = peripheral.model.get();
    const auto report = estimate::estimate_system(system);
    result.estimated_resources = report.estimated;
    result.implemented_resources = report.implemented;
    result.energy = energy::estimate_energy(cpu.stats(),
                                            peripheral.model.get(),
                                            stats.hw_cycles_stepped,
                                            report.implemented);
  }

  const Addr c_addr = program.symbol("mat_c");
  for (unsigned i = 0; i < config.matrix_size * config.matrix_size; ++i) {
    result.c.data[i] =
        static_cast<i32>(memory.read_word(c_addr + i * 4));
  }
  return result;
}

}  // namespace mbcosim::apps::matmul
