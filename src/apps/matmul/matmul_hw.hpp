// Hardware side of the block matrix multiplication application (paper
// Figure 6): a customized peripheral that multiplies an n x n block of
// matrix B (pre-loaded through FSL control words) by rows of matrix-A
// blocks streamed in as data words, producing one row of the block
// product per n input words.
//
// Dataflow per the paper: "when data is available in the FSL FIFO and
// Out#_control is high, the hardware peripheral puts the input data into
// the corresponding registers. Thus, when the data elements of matrix
// blocks from A come in as normal data words, the multiplication and
// accumulation are performed accordingly."
//
// The streamed element a_k (k-th element of a row of the A block)
// multiplies row k of the stored B block on n parallel MULT18x18
// multipliers; n accumulators build the row of C = A_row x B. After the
// n-th element the accumulated row is handed to the output serializer.
#pragma once

#include <memory>

#include "core/fsl_bridge.hpp"
#include "sysgen/blocks_basic.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::apps::matmul {

struct MatmulPeripheralIo {
  sysgen::GatewayIn* s_data = nullptr;
  sysgen::GatewayIn* s_exists = nullptr;
  sysgen::GatewayIn* s_control = nullptr;
  sysgen::GatewayOut* s_read = nullptr;
  sysgen::GatewayOut* m_data = nullptr;
  sysgen::GatewayOut* m_write = nullptr;
  sysgen::GatewayIn* m_full = nullptr;
};

struct MatmulPeripheral {
  std::unique_ptr<sysgen::Model> model;
  MatmulPeripheralIo io;
  unsigned block_size = 0;  ///< n (paper evaluates n = 2 and n = 4)

  void bind(core::FslBridge& bridge, unsigned channel = 0) const;
};

/// Build the n x n block multiplier (n in [2, 4]).
[[nodiscard]] MatmulPeripheral build_matmul_peripheral(unsigned block_size);

}  // namespace mbcosim::apps::matmul
