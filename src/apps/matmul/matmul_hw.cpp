#include "apps/matmul/matmul_hw.hpp"

#include <string>
#include <vector>

#include "apps/common/serializer.hpp"
#include "common/bits.hpp"
#include "common/status.hpp"

namespace mbcosim::apps::matmul {

namespace sg = mbcosim::sysgen;

namespace {
constexpr FixFormat kElementFormat{Signedness::kSigned, 16, 0};
constexpr FixFormat kProductFormat{Signedness::kSigned, 32, 0};
constexpr FixFormat kAccFormat{Signedness::kSigned, 36, 0};
constexpr FixFormat kWordFormat{Signedness::kSigned, 32, 0};
constexpr FixFormat kBoolFormat{Signedness::kUnsigned, 1, 0};

u8 counter_bits(unsigned limit) {
  u8 bits_needed = 1;
  while ((1u << bits_needed) < limit) ++bits_needed;
  return bits_needed;
}
}  // namespace

MatmulPeripheral build_matmul_peripheral(unsigned block_size) {
  if (block_size < 2 || block_size > 4) {
    throw SimError("build_matmul_peripheral: block size must be in [2, 4]");
  }
  const unsigned n = block_size;
  MatmulPeripheral peripheral;
  peripheral.block_size = n;
  peripheral.model =
      std::make_unique<sg::Model>("matmul_block_" + std::to_string(n) + "x" +
                                  std::to_string(n));
  sg::Model& m = *peripheral.model;

  // ---- FSL slave interface. ------------------------------------------------
  auto& s_data = m.add<sg::GatewayIn>("fsl_s.data", kElementFormat);
  auto& s_exists = m.add<sg::GatewayIn>("fsl_s.exists", kBoolFormat);
  auto& s_control = m.add<sg::GatewayIn>("fsl_s.control", kBoolFormat);
  auto& s_read = m.add<sg::GatewayOut>("fsl_s.read", s_exists.out());

  auto& not_ctrl = m.add<sg::Logical>(
      "ctl.not_ctrl", sg::Logical::Op::kNot,
      std::vector<sg::Signal*>{&s_control.out()});
  auto& data_accept = m.add<sg::Logical>(
      "ctl.data_accept", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&s_exists.out(), &not_ctrl.out()});
  auto& ctrl_accept = m.add<sg::Logical>(
      "ctl.ctrl_accept", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&s_exists.out(), &s_control.out()});

  // ---- B-block register file, loaded by control words (row-major). --------
  const FixFormat b_idx_format{Signedness::kUnsigned, counter_bits(n * n), 0};
  auto& b_idx = m.add<sg::Counter>("bload.idx", b_idx_format,
                                   static_cast<i64>(n) * n,
                                   &ctrl_accept.out());
  std::vector<sg::Signal*> b_regs(n * n, nullptr);
  const Fix element_zero = Fix::from_raw(kElementFormat, 0);
  for (unsigned index = 0; index < n * n; ++index) {
    // Built by append: `"b" + std::to_string(...)` trips a GCC 12
    // -Wrestrict false positive under -Werror.
    std::string tag(1, 'b');
    tag += std::to_string(index / n);
    tag += std::to_string(index % n);
    auto& index_c = m.add<sg::Constant>(
        "bload." + tag + "_idx",
        Fix::from_raw(b_idx_format, static_cast<i64>(index)));
    auto& match = m.add<sg::Relational>("bload." + tag + "_match",
                                        sg::Relational::Op::kEq, b_idx.out(),
                                        index_c.out());
    auto& enable = m.add<sg::Logical>(
        "bload." + tag + "_en", sg::Logical::Op::kAnd,
        std::vector<sg::Signal*>{&ctrl_accept.out(), &match.out()});
    auto& reg = m.add<sg::Register>("bload." + tag, s_data.out(),
                                    element_zero, &enable.out());
    b_regs[index] = &reg.out();
  }

  // ---- Streaming MAC datapath. ---------------------------------------------
  const FixFormat k_format{Signedness::kUnsigned, counter_bits(n), 0};
  auto& k_idx = m.add<sg::Counter>("mac.k", k_format, static_cast<i64>(n),
                                   &data_accept.out());
  auto& zero_k =
      m.add<sg::Constant>("mac.zero_k", Fix::from_raw(k_format, 0));
  auto& last_k = m.add<sg::Constant>(
      "mac.last_k", Fix::from_raw(k_format, static_cast<i64>(n) - 1));
  auto& k_is_first = m.add<sg::Relational>(
      "mac.k_first", sg::Relational::Op::kEq, k_idx.out(), zero_k.out());
  auto& k_is_last = m.add<sg::Relational>(
      "mac.k_last", sg::Relational::Op::kEq, k_idx.out(), last_k.out());
  auto& row_done = m.add<sg::Logical>(
      "mac.row_done", sg::Logical::Op::kAnd,
      std::vector<sg::Signal*>{&data_accept.out(), &k_is_last.out()});

  std::vector<sg::Signal*> row_out(n, nullptr);
  for (unsigned j = 0; j < n; ++j) {
    const std::string tag = "col" + std::to_string(j);
    // Select b[k][j] from column j of the register file.
    std::vector<sg::Signal*> column;
    column.reserve(n);
    for (unsigned k = 0; k < n; ++k) column.push_back(b_regs[k * n + j]);
    auto& b_sel = m.add<sg::Mux>("mac." + tag + ".bsel", k_idx.out(), column);

    // a_k * b[k][j] on one embedded multiplier.
    auto& product = m.add<sg::Mult>("mac." + tag + ".mult", s_data.out(),
                                    b_sel.out(), kProductFormat,
                                    /*latency=*/0);
    auto& product_ext = m.add<sg::Convert>("mac." + tag + ".pext",
                                           product.out(), kAccFormat);

    // Accumulator: restart on k == 0, else add. The loop is closed
    // through the register (feedback form), which legally breaks the
    // combinational cycle.
    auto& acc_reg = m.add<sg::Register>("mac." + tag + ".acc",
                                        Fix::from_raw(kAccFormat, 0),
                                        &data_accept.out());
    auto& sum = m.add<sg::AddSub>("mac." + tag + ".sum",
                                  sg::AddSub::Mode::kAdd, acc_reg.out(),
                                  product_ext.out(), kAccFormat);
    auto& acc_next = m.add<sg::Mux>(
        "mac." + tag + ".next", k_is_first.out(),
        std::vector<sg::Signal*>{&sum.out(), &product_ext.out()});
    acc_reg.connect_d(acc_next.out());
    auto& out32 = m.add<sg::Convert>("mac." + tag + ".out", acc_next.out(),
                                     kWordFormat);
    row_out[j] = &out32.out();
  }

  // ---- FSL master interface. -----------------------------------------------
  auto& m_full = m.add<sg::GatewayIn>("fsl_m.full", kBoolFormat);
  auto& serializer = m.add<VectorSerializer>("ser", row_out, row_done.out(),
                                             &m_full.out());
  auto& m_data = m.add<sg::GatewayOut>("fsl_m.data", serializer.data());
  auto& m_write = m.add<sg::GatewayOut>("fsl_m.write", serializer.write());

  peripheral.io = MatmulPeripheralIo{&s_data, &s_exists, &s_control, &s_read,
                                     &m_data, &m_write, &m_full};
  m.elaborate();
  return peripheral;
}

void MatmulPeripheral::bind(core::FslBridge& bridge, unsigned channel) const {
  core::SlaveBinding slave;
  slave.channel = channel;
  slave.data = io.s_data;
  slave.exists = io.s_exists;
  slave.control = io.s_control;
  slave.read = io.s_read;
  bridge.bind_slave(slave);

  core::MasterBinding master;
  master.channel = channel;
  master.data = io.m_data;
  master.write = io.m_write;
  master.full = io.m_full;
  bridge.bind_master(master);
}

}  // namespace mbcosim::apps::matmul
