// Software side of the block matrix multiplication application: assembly
// program generators for the pure-software GEMM (paper Figure 7's
// '"Pure" software' curve) and for the block-streaming hardware driver.
//
// The driver follows the paper's data schedule: "the matrix blocks of
// matrix A are loaded into the hardware peripheral column by column so
// that each block of matrix B only needs to be loaded into the hardware
// peripheral once" (Section IV-B) — i.e. for every B block (kb, jb) the
// driver loads B once via control words, then streams the rows of every
// A block in block-column kb, accumulating the returned partial rows
// into C in software.
#pragma once

#include <string>

#include "apps/matmul/matmul_reference.hpp"

namespace mbcosim::apps::matmul {

/// Pure-software triple-loop GEMM over the embedded matrices. Results go
/// to the `mat_c` symbol; the program halts when done.
[[nodiscard]] std::string pure_software_program(const Matrix& a,
                                                const Matrix& b);

/// Hardware driver for the n x n block multiplier peripheral.
/// Requires a.n == b.n, divisible by block_size.
[[nodiscard]] std::string hw_driver_program(const Matrix& a, const Matrix& b,
                                            unsigned block_size);

}  // namespace mbcosim::apps::matmul
