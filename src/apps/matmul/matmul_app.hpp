// Top-level driver for the block matrix multiplication application
// (paper Section IV-B): assembles software, builds the peripheral when
// block_size > 0, runs the co-simulation and returns C plus statistics.
#pragma once

#include <vector>

#include "apps/matmul/matmul_hw.hpp"
#include "apps/matmul/matmul_reference.hpp"
#include "apps/matmul/matmul_sw.hpp"
#include "common/resources.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::apps::matmul {

struct MatmulRunConfig {
  unsigned matrix_size = 16;  ///< N (paper evaluates N = 16)
  unsigned block_size = 0;    ///< n: 0 = pure software, else 2..4
};

struct MatmulRunResult {
  Matrix c{0};
  Cycle cycles = 0;
  u64 instructions = 0;
  Cycle fsl_stall_cycles = 0;
  u64 fsl_words = 0;
  ResourceVec estimated_resources;
  ResourceVec implemented_resources;
  /// Host wall-clock spent in the simulation loop itself.
  double sim_wall_seconds = 0.0;
  /// Rapid energy estimate (the paper's Section V extension).
  energy::EnergyReport energy;

  [[nodiscard]] double usec() const { return cycles_to_usec(cycles); }
};

/// Build (but do not run) the complete simulated system for one design
/// point: software program, processor configuration, and — when
/// block_size > 0 — the MAC-array peripheral wired onto FSL channel 0.
/// This is the factory a design-space sweep (sim::Sweep) instantiates
/// per point.
[[nodiscard]] Expected<sim::SimSystem> make_matmul_system(
    const MatmulRunConfig& config, const Matrix& a, const Matrix& b);

[[nodiscard]] MatmulRunResult run_matmul(const MatmulRunConfig& config,
                                         const Matrix& a, const Matrix& b);

}  // namespace mbcosim::apps::matmul
