#include "apps/matmul/matmul_sw.hpp"

#include <sstream>

#include "common/status.hpp"

namespace mbcosim::apps::matmul {

namespace {

void emit_matrix(std::ostream& os, const char* label, const Matrix& m) {
  os << label << ":\n";
  for (const i32 value : m.data) {
    os << "  .word 0x" << std::hex << static_cast<u32>(value) << std::dec
       << "\n";
  }
}

void check_operands(const Matrix& a, const Matrix& b) {
  if (a.n != b.n || a.n == 0) {
    throw SimError("matmul: operand matrices must be same nonzero size");
  }
}

}  // namespace

std::string pure_software_program(const Matrix& a, const Matrix& b) {
  check_operands(a, b);
  const unsigned n = a.n;
  std::ostringstream os;
  os << "# Pure-software " << n << "x" << n << " matrix multiplication.\n";
  os << "start:\n";
  os << "  la r21, mat_a\n";
  os << "  la r22, mat_b\n";
  os << "  la r23, mat_c\n";
  os << "  addk r6, r21, r0        # A row pointer\n";
  os << "  addk r7, r23, r0        # C pointer (row-major walk)\n";
  os << "  li r11, " << n << "          # i counter\n";
  os << "i_loop:\n";
  os << "  li r12, " << n << "          # j counter\n";
  os << "  addk r8, r22, r0        # B column pointer base\n";
  os << "j_loop:\n";
  os << "  addk r9, r6, r0         # a element pointer\n";
  os << "  addk r10, r8, r0        # b element pointer\n";
  os << "  addk r3, r0, r0         # acc = 0\n";
  os << "  li r13, " << n << "          # k counter\n";
  os << "k_loop:\n";
  os << "  lwi r4, r9, 0\n";
  os << "  lwi r5, r10, 0\n";
  os << "  mul r4, r4, r5          # 3-cycle multiply\n";
  os << "  addk r3, r3, r4\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r10, r10, " << n * 4 << "\n";
  os << "  addik r13, r13, -1\n";
  os << "  bnei r13, k_loop\n";
  os << "  swi r3, r7, 0\n";
  os << "  addik r7, r7, 4\n";
  os << "  addik r8, r8, 4\n";
  os << "  addik r12, r12, -1\n";
  os << "  bnei r12, j_loop\n";
  os << "  addik r6, r6, " << n * 4 << "\n";
  os << "  addik r11, r11, -1\n";
  os << "  bnei r11, i_loop\n";
  os << "  halt\n\n";
  emit_matrix(os, "mat_a", a);
  emit_matrix(os, "mat_b", b);
  os << "mat_c: .space " << n * n * 4 << "\n";
  return os.str();
}

std::string hw_driver_program(const Matrix& a, const Matrix& b,
                              unsigned block_size) {
  check_operands(a, b);
  const unsigned n = block_size;
  const unsigned size = a.n;
  if (n < 2 || n > 4 || size % n != 0) {
    throw SimError("matmul: matrix size must be a multiple of the block "
                   "size (2..4)");
  }
  const unsigned nb = size / n;          // blocks per dimension
  const unsigned row_bytes = size * 4;   // one matrix row
  const unsigned block_row_bytes = n * row_bytes;
  const unsigned block_col_bytes = n * 4;

  // The transfer loops are rolled (not unrolled) and the per-row base
  // addresses are recomputed with an index multiply, matching what
  // mb-gcc -O2 emits for 2-D array subscripts around the FSL macros in
  // the paper's C driver. This per-word cost is what makes the 2x2
  // configuration lose to pure software (the paper's crossover result,
  // Section IV-B): the communication overhead per word exceeds the MAC
  // work it offloads.
  std::ostringstream os;
  os << "# Block matmul driver: " << size << "x" << size << " matrices, "
     << n << "x" << n << " blocks.\n";
  os << "start:\n";
  os << "  la r21, mat_a\n";
  os << "  la r22, mat_b\n";
  os << "  la r23, mat_c\n";
  os << "  li r11, " << nb << "          # kb down-counter\n";
  os << "  addk r14, r0, r0        # kb * block_row_bytes\n";
  os << "  addk r17, r0, r0        # kb * block_col_bytes\n";
  os << "kb_loop:\n";
  os << "  li r12, " << nb << "          # jb down-counter\n";
  os << "  addk r15, r0, r0        # jb * block_col_bytes\n";
  os << "jb_loop:\n";
  os << "  # load B block (kb, jb) as control words, row-major\n";
  os << "  addk r8, r22, r14\n";
  os << "  addk r8, r8, r15        # row k = 0 base\n";
  os << "  li r6, " << n << "           # k counter\n";
  os << "bload_k:\n";
  os << "  addk r9, r8, r0\n";
  os << "  li r5, " << n << "           # j counter\n";
  os << "bload_j:\n";
  os << "  lwi r3, r9, 0\n";
  os << "  cput r3, rfsl0\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, bload_j\n";
  os << "  addik r8, r8, " << row_bytes << "\n";
  os << "  addik r6, r6, -1\n";
  os << "  bnei r6, bload_k\n";
  os << "  # stream the A blocks of block-column kb through the MAC array\n";
  os << "  li r13, 0               # ib up-counter\n";
  os << "ib_loop:\n";
  os << "  muli r7, r13, " << block_row_bytes << "   # ib block row offset\n";
  os << "  li r20, 0               # r: row within the block\n";
  os << "row_loop:\n";
  os << "  muli r3, r20, " << row_bytes << "    # row offset (2-D indexing)\n";
  os << "  addk r3, r3, r7\n";
  os << "  addk r9, r21, r3\n";
  os << "  addk r9, r9, r17        # &A[ib*n + r][kb*n]\n";
  os << "  addk r10, r23, r3\n";
  os << "  addk r10, r10, r15      # &C[ib*n + r][jb*n]\n";
  os << "  li r5, " << n << "\n";
  os << "send_loop:\n";
  os << "  lwi r3, r9, 0\n";
  os << "  put r3, rfsl0\n";
  os << "  addik r9, r9, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, send_loop\n";
  os << "  li r5, " << n << "\n";
  os << "recv_loop:\n";
  os << "  get r3, rfsl0\n";
  os << "  lwi r4, r10, 0\n";
  os << "  addk r4, r4, r3\n";
  os << "  swi r4, r10, 0\n";
  os << "  addik r10, r10, 4\n";
  os << "  addik r5, r5, -1\n";
  os << "  bnei r5, recv_loop\n";
  os << "  addik r20, r20, 1\n";
  os << "  rsubik r3, r20, " << n << "\n";
  os << "  bnei r3, row_loop\n";
  os << "  addik r13, r13, 1\n";
  os << "  rsubik r3, r13, " << nb << "\n";
  os << "  bnei r3, ib_loop\n";
  os << "  addik r15, r15, " << block_col_bytes << "\n";
  os << "  addik r12, r12, -1\n";
  os << "  bnei r12, jb_loop\n";
  os << "  addik r14, r14, " << block_row_bytes << "\n";
  os << "  addik r17, r17, " << block_col_bytes << "\n";
  os << "  addik r11, r11, -1\n";
  os << "  bnei r11, kb_loop\n";
  os << "  halt\n\n";
  emit_matrix(os, "mat_a", a);
  emit_matrix(os, "mat_b", b);
  os << "mat_c: .space " << size * size * 4 << "\n";
  return os.str();
}

}  // namespace mbcosim::apps::matmul
