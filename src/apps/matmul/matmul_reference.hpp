// Golden model and dataset helpers for the block matrix multiplication
// application (paper Section IV-B).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace mbcosim::apps::matmul {

/// Row-major square matrix of 32-bit integers (elements are constrained
/// to 16-bit range so the hardware's MULT18x18 path is exact).
struct Matrix {
  unsigned n = 0;
  std::vector<i32> data;

  explicit Matrix(unsigned size) : n(size), data(size * size, 0) {}
  [[nodiscard]] i32& at(unsigned row, unsigned col) {
    return data[row * n + col];
  }
  [[nodiscard]] i32 at(unsigned row, unsigned col) const {
    return data[row * n + col];
  }
};

/// Reference GEMM: C = A * B (plain triple loop, 32-bit wrap arithmetic).
[[nodiscard]] Matrix multiply_reference(const Matrix& a, const Matrix& b);

/// Deterministic random matrix with elements in [-50, 50].
[[nodiscard]] Matrix make_matrix(unsigned n, u64 seed);

}  // namespace mbcosim::apps::matmul
