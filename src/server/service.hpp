// The HTTP surface of the simulation server — the protocol glue
// between http.{hpp,cpp} and the session pool. One instance serves
// every connection thread; all state lives in the SessionManager.
//
//   GET    /healthz              liveness probe
//   POST   /sessions             create (machine JSON in the body)
//   GET    /sessions             list summaries
//   GET    /sessions/N           one summary
//   POST   /sessions/N/run       {"max_cycles":T} absolute target
//   POST   /sessions/N/pause     stop at next control quantum
//   GET    /sessions/N/stats     stats_text() (text/plain)
//   GET    /sessions/N/metrics   metrics snapshot (text/plain)
//   GET    /sessions/N/checkpoint  checkpoint image (octet-stream)
//   POST   /sessions/N/restore   checkpoint image in the body
//   POST   /sessions/N/debug     {"port":P} -> {"port":bound}
//   GET    /sessions/N/stream    chunked JSONL telemetry
//   DELETE /sessions/N           kill
//   POST   /shutdown             stop the daemon
//
// Error responses are {"error":"[srv-*] ..."} with the HTTP status
// derived from the bracketed code (see errors.hpp).
#pragma once

#include <functional>
#include <string>

#include "server/http.hpp"
#include "server/session_manager.hpp"

namespace mbcosim::server {

class Service {
 public:
  struct Options {
    SessionManager::Limits limits;
    /// Default control quantum for sessions that do not set one.
    Cycle control_quantum = 100'000;
    /// Invoked on POST /shutdown (after the response is sent).
    std::function<void()> on_shutdown;
  };

  explicit Service(Options options)
      : options_(std::move(options)), manager_(options_.limits) {}

  /// HttpServer::Handler entry point.
  void handle(const HttpRequest& request, HttpResponseWriter& writer);

  [[nodiscard]] SessionManager& manager() noexcept { return manager_; }

 private:
  void handle_create(const HttpRequest& request, HttpResponseWriter& writer);
  void handle_session(u64 id, const std::string& verb,
                      const HttpRequest& request, HttpResponseWriter& writer);
  void stream_session(Session& session, HttpResponseWriter& writer);

  Options options_;
  SessionManager manager_;
};

/// HTTP status for a "[code] ..." error message (errors.hpp mapping).
[[nodiscard]] int status_for_error(const std::string& message);

}  // namespace mbcosim::server
