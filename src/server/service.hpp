// The HTTP surface of the simulation server — the protocol glue
// between http.{hpp,cpp} and the session pool. One instance serves
// every connection thread; all state lives in the SessionManager.
//
//   GET    /healthz              liveness probe
//   POST   /sessions             create (machine JSON in the body)
//   GET    /sessions             list summaries
//   GET    /sessions/N           one summary
//   POST   /sessions/N/run       {"max_cycles":T} absolute target
//   POST   /sessions/N/pause     stop at next control quantum
//   GET    /sessions/N/stats     stats_text() (text/plain)
//   GET    /sessions/N/metrics   metrics snapshot (text/plain)
//   GET    /sessions/N/checkpoint  checkpoint image (octet-stream)
//   POST   /sessions/N/restore   checkpoint image in the body
//   POST   /sessions/N/debug     {"port":P} -> {"port":bound}
//   GET    /sessions/N/stream    chunked JSONL telemetry
//   DELETE /sessions/N           kill
//   POST   /shutdown             stop the daemon
//
// Error responses are {"error":"[srv-*] ..."} with the HTTP status
// derived from the bracketed code (see errors.hpp).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "server/http.hpp"
#include "server/journal.hpp"
#include "server/session_manager.hpp"

namespace mbcosim::server {

class Service {
 public:
  struct Options {
    SessionManager::Limits limits;
    /// Default control quantum for sessions that do not set one.
    Cycle control_quantum = 100'000;
    /// Invoked on POST /shutdown (after the response is sent).
    std::function<void()> on_shutdown;
    /// Durable session journals live here; "" = no durability.
    std::string state_dir;
    /// With state_dir: rebuild journaled sessions in init().
    bool recover = false;
    /// Bound on how long drain() waits for each running session to stop
    /// at a quantum boundary.
    u64 drain_timeout_ms = 5'000;
  };

  explicit Service(Options options)
      : options_(std::move(options)), manager_(options_.limits) {}

  /// Open the state dir (when configured), attach it to the session
  /// pool and run recovery (when asked). Call once, before serving;
  /// failures carry "[srv-journal-*]" codes.
  [[nodiscard]] Status init(SessionManager::RecoveryReport* report = nullptr);

  /// Graceful shutdown: stop admitting (creates get "[srv-draining]"),
  /// checkpoint and kill every session. Journal dirs survive for
  /// --recover.
  void drain();

  /// HttpServer::Handler entry point.
  void handle(const HttpRequest& request, HttpResponseWriter& writer);

  [[nodiscard]] SessionManager& manager() noexcept { return manager_; }

 private:
  void handle_create(const HttpRequest& request, HttpResponseWriter& writer);
  void handle_session(u64 id, const std::string& verb,
                      const HttpRequest& request, HttpResponseWriter& writer);
  void stream_session(Session& session, HttpResponseWriter& writer);

  Options options_;
  SessionManager manager_;
  std::unique_ptr<JournalStore> store_;
  std::atomic<bool> draining_{false};
};

/// HTTP status for a "[code] ..." error message (errors.hpp mapping).
[[nodiscard]] int status_for_error(const std::string& message);

}  // namespace mbcosim::server
