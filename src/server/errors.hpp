// Stable error codes of the simulation server — the service-level
// counterpart of machine::kDescErrorCodes. Every error body the HTTP
// layer returns, and every failed session operation, starts with one of
// these bracketed codes; clients and tests dispatch on the code, never
// on the prose after it. Add new codes at the end, never rename.
#pragma once

namespace mbcosim::server {

inline constexpr const char* kSrvErrorCodes[] = {
    "[srv-bad-request]",      // malformed HTTP request or request JSON
    "[srv-bad-machine]",      // machine description rejected at build time
    "[srv-busy]",             // admission control: no session/worker capacity
    "[srv-unknown-session]",  // no session with that id (or already killed)
    "[srv-running]",          // operation requires a stopped (idle) session
    "[srv-not-running]",      // pause with no run in flight
    "[srv-never-ran]",        // checkpoint of a session that never ran
    "[srv-ckpt]",             // checkpoint/restore image rejected (wraps ckpt::*)
    "[srv-debug]",            // debug port could not be opened
    "[srv-io]",               // transport I/O failed mid-response
    "[srv-journal-io]",       // state dir / journal file unreadable or unwritable
    "[srv-journal-version]",  // state dir written by an incompatible format
    "[srv-journal-corrupt]",  // journal entry unparseable (skipped at recovery)
    "[srv-deadline]",         // watchdog: wall-clock or cycle deadline exceeded
    "[srv-deadlock]",         // machine deadlock diagnosis (terminal stop state)
    "[srv-draining]",         // daemon is draining; no new work admitted
};

}  // namespace mbcosim::server
