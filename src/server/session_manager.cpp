#include "server/session_manager.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/json.hpp"

namespace mbcosim::server {

namespace {

/// Admission weight of a request, computed before paying for the build.
unsigned weigh(const SessionConfig& config) {
  const std::size_t cores = config.desc.cores.size();
  unsigned cost = 1;
  if (cores > 1) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cost += config.workers != 0
                ? config.workers
                : std::min<unsigned>(hw, static_cast<unsigned>(cores));
  }
  return cost;
}

}  // namespace

SessionManager::~SessionManager() {
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
}

void SessionManager::watchdog_loop() {
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<Session>& session : list()) {
      session->poll_supervision(now);
    }
  }
}

Expected<std::shared_ptr<Session>> SessionManager::create(
    SessionConfig config) {
  using Failure = Expected<std::shared_ptr<Session>>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= limits_.max_sessions) {
    return Failure::failure(
        "[srv-busy] session limit reached (" +
        std::to_string(limits_.max_sessions) + " live sessions)");
  }
  const unsigned cost = weigh(config);
  if (used_budget_ + cost > limits_.worker_budget) {
    return Failure::failure(
        "[srv-busy] worker budget exhausted (" + std::to_string(used_budget_) +
        " of " + std::to_string(limits_.worker_budget) + " in use, need " +
        std::to_string(cost) + ")");
  }
  std::unique_ptr<SessionJournal> journal;
  if (store_ != nullptr) {
    Expected<std::unique_ptr<SessionJournal>> created =
        store_->create_session(next_id_, session_config_to_json(config));
    if (!created) return Failure::failure(created.error());
    journal = std::move(created).value();
  }
  Expected<std::shared_ptr<Session>> built =
      Session::create(next_id_, std::move(config), std::move(journal));
  if (!built) {
    if (store_ != nullptr) (void)store_->remove_session(next_id_);
    return built;
  }
  std::shared_ptr<Session> session = std::move(built).value();
  ++next_id_;
  used_budget_ += session->cost();
  charges_[session->id()] = session->cost();
  sessions_[session->id()] = session;
  session->set_on_expire([this](u64 id) { release_budget(id); });
  return session;
}

Expected<std::shared_ptr<Session>> SessionManager::find(u64 id) {
  using Failure = Expected<std::shared_ptr<Session>>;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Failure::failure("[srv-unknown-session] no session " +
                            std::to_string(id));
  }
  return it->second;
}

void SessionManager::release_budget(u64 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = charges_.find(id);
  if (it == charges_.end()) return;
  used_budget_ -= std::min(used_budget_, it->second);
  charges_.erase(it);
}

std::string SessionManager::kill(u64 id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return "[srv-unknown-session] no session " + std::to_string(id);
    }
    session = std::move(it->second);
    sessions_.erase(it);
    if (const auto charged = charges_.find(id); charged != charges_.end()) {
      used_budget_ -= std::min(used_budget_, charged->second);
      charges_.erase(charged);
    }
  }
  // Outside the lock: the kill joins the worker thread, which may take
  // a control quantum to notice.
  std::string killed = session->kill();
  if (store_ != nullptr) (void)store_->remove_session(id);
  return killed;
}

std::vector<std::shared_ptr<Session>> SessionManager::list() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

void SessionManager::kill_all() {
  std::vector<std::shared_ptr<Session>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) doomed.push_back(std::move(session));
    sessions_.clear();
    charges_.clear();
    used_budget_ = 0;
  }
  for (const std::shared_ptr<Session>& session : doomed) {
    (void)session->kill();
  }
}

SessionManager::RecoveryReport SessionManager::recover() {
  RecoveryReport report;
  if (store_ == nullptr) return report;
  std::vector<JournalStore::ScanEntry> entries = store_->scan(&report.log);
  for (JournalStore::ScanEntry& entry : entries) {
    const std::string tag = "session " + std::to_string(entry.id);
    if (entry.last_event == "deadline") {
      // Terminal: the watchdog killed it; nothing to resume.
      (void)store_->remove_session(entry.id);
      report.log.push_back(tag + ": terminal (" + entry.last_event +
                           "), journal removed");
      continue;
    }
    Expected<common::json::Value> parsed =
        common::json::parse(entry.request_json);
    if (!parsed || !parsed.value().is_object()) {
      report.log.push_back(tag + ": [srv-journal-corrupt] request.json does "
                           "not parse, skipped");
      continue;
    }
    const common::json::Object& request = parsed.value().object();
    const auto machine_it = request.find("machine");
    if (machine_it == request.end()) {
      report.log.push_back(tag + ": [srv-journal-corrupt] request.json has "
                           "no machine, skipped");
      continue;
    }
    Expected<machine::MachineDesc> desc =
        machine::MachineDesc::from_value(machine_it->second);
    if (!desc) {
      report.log.push_back(tag + ": " + desc.error() + ", skipped");
      continue;
    }
    Expected<SessionConfig> config = session_config_from_json(
        request, std::move(desc).value(), SessionConfig{}.control_quantum);
    if (!config) {
      report.log.push_back(tag + ": " + config.error() + ", skipped");
      continue;
    }
    const unsigned cost = weigh(config.value());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      next_id_ = std::max(next_id_, entry.id + 1);
      if (sessions_.size() >= limits_.max_sessions ||
          used_budget_ + cost > limits_.worker_budget) {
        report.log.push_back(tag + ": [srv-busy] over budget, left on disk");
        continue;
      }
    }
    // Restore point first: journaled traces must be cut back before the
    // session reopens them for append.
    std::optional<JournalCheckpoint> checkpoint =
        entry.journal->newest_valid_checkpoint(&report.log);
    const std::size_t cores = config.value().desc.cores.size();
    if (Status truncated = entry.journal->truncate_traces(
            checkpoint ? checkpoint->trace_offsets : std::vector<u64>{},
            config.value().trace ? cores : 0);
        !truncated.ok) {
      report.log.push_back(tag + ": " + truncated.message + ", skipped");
      continue;
    }
    Expected<std::shared_ptr<Session>> built = Session::create(
        entry.id, std::move(config).value(), std::move(entry.journal));
    if (!built) {
      report.log.push_back(tag + ": " + built.error() + ", skipped");
      continue;
    }
    std::shared_ptr<Session> session = std::move(built).value();
    if (checkpoint) {
      if (std::string err = session->adopt_recovery(*checkpoint);
          !err.empty()) {
        report.log.push_back(tag + ": " + err + ", skipped");
        (void)session->kill();
        continue;
      }
      report.log.push_back(tag + ": recovered at cycle " +
                           std::to_string(checkpoint->cycle));
    } else {
      report.log.push_back(tag + ": no valid checkpoint, recovered fresh");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      used_budget_ += session->cost();
      charges_[session->id()] = session->cost();
      sessions_[session->id()] = session;
    }
    session->set_on_expire([this](u64 id) { release_budget(id); });
    ++report.recovered;
  }
  return report;
}

void SessionManager::drain(u64 timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::vector<std::shared_ptr<Session>> draining = list();
  for (const std::shared_ptr<Session>& session : draining) {
    session->drain(deadline);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.clear();
  charges_.clear();
  used_budget_ = 0;
}

}  // namespace mbcosim::server
