#include "server/session_manager.hpp"

#include <algorithm>
#include <utility>

namespace mbcosim::server {

Expected<std::shared_ptr<Session>> SessionManager::create(
    SessionConfig config) {
  using Failure = Expected<std::shared_ptr<Session>>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sessions_.size() >= limits_.max_sessions) {
    return Failure::failure(
        "[srv-busy] session limit reached (" +
        std::to_string(limits_.max_sessions) + " live sessions)");
  }
  // Weigh the request before paying for the build.
  const std::size_t cores = config.desc.cores.size();
  unsigned cost = 1;
  if (cores > 1) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    cost += config.workers != 0
                ? config.workers
                : std::min<unsigned>(hw, static_cast<unsigned>(cores));
  }
  if (used_budget_ + cost > limits_.worker_budget) {
    return Failure::failure(
        "[srv-busy] worker budget exhausted (" + std::to_string(used_budget_) +
        " of " + std::to_string(limits_.worker_budget) + " in use, need " +
        std::to_string(cost) + ")");
  }
  Expected<std::shared_ptr<Session>> built =
      Session::create(next_id_, std::move(config));
  if (!built) return built;
  std::shared_ptr<Session> session = std::move(built).value();
  ++next_id_;
  used_budget_ += session->cost();
  sessions_[session->id()] = session;
  return session;
}

Expected<std::shared_ptr<Session>> SessionManager::find(u64 id) {
  using Failure = Expected<std::shared_ptr<Session>>;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Failure::failure("[srv-unknown-session] no session " +
                            std::to_string(id));
  }
  return it->second;
}

std::string SessionManager::kill(u64 id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return "[srv-unknown-session] no session " + std::to_string(id);
    }
    session = std::move(it->second);
    sessions_.erase(it);
    used_budget_ -= std::min(used_budget_, session->cost());
  }
  // Outside the lock: the kill joins the worker thread, which may take
  // a control quantum to notice.
  return session->kill();
}

std::vector<std::shared_ptr<Session>> SessionManager::list() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

void SessionManager::kill_all() {
  std::vector<std::shared_ptr<Session>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, session] : sessions_) doomed.push_back(std::move(session));
    sessions_.clear();
    used_budget_ = 0;
  }
  for (const std::shared_ptr<Session>& session : doomed) {
    (void)session->kill();
  }
}

}  // namespace mbcosim::server
