#include "server/stream_hub.hpp"

#include <chrono>

namespace mbcosim::server {

std::optional<std::string> StreamSubscription::next(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
    return dropped_pending_ > 0 || !queue_.empty() || closed_;
  });
  if (dropped_pending_ > 0) {
    // Report the gap before the line that follows it.
    const std::string record = "{\"stream\":\"dropped\",\"count\":" +
                               std::to_string(dropped_pending_) +
                               ",\"total\":" + std::to_string(dropped_total_) +
                               "}";
    dropped_pending_ = 0;
    return record;
  }
  if (!queue_.empty()) {
    std::string line = std::move(queue_.front());
    queue_.pop_front();
    return line;
  }
  return std::nullopt;  // timeout, or closed-and-drained (see finished())
}

bool StreamSubscription::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && queue_.empty() && dropped_pending_ == 0;
}

u64 StreamSubscription::dropped_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_total_;
}

std::shared_ptr<StreamSubscription> StreamHub::subscribe() {
  auto subscription = std::make_shared<StreamSubscription>();
  std::lock_guard<std::mutex> lock(mutex_);
  subscription->limit_ = limit_;
  subscription->closed_ = closed_;
  if (!closed_) subscribers_.push_back(subscription);
  return subscription;
}

void StreamHub::publish(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    std::shared_ptr<StreamSubscription> sub = subscribers_[i].lock();
    if (sub == nullptr) continue;  // client went away; prune below
    if (live != i) subscribers_[live] = std::move(subscribers_[i]);
    ++live;
    std::lock_guard<std::mutex> sub_lock(sub->mutex_);
    if (sub->queue_.size() >= sub->limit_) {
      sub->queue_.pop_front();  // drop-oldest: never block the simulation
      ++sub->dropped_pending_;
      ++sub->dropped_total_;
    }
    sub->queue_.push_back(line);
    sub->cv_.notify_all();
  }
  subscribers_.resize(live);
}

void StreamHub::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  for (auto& weak : subscribers_) {
    if (std::shared_ptr<StreamSubscription> sub = weak.lock()) {
      std::lock_guard<std::mutex> sub_lock(sub->mutex_);
      sub->closed_ = true;
      sub->cv_.notify_all();
    }
  }
  subscribers_.clear();
}

void StreamSink::on_event(const obs::TraceEvent& event) {
  jsonl_.on_event(event);
  std::string text = buffer_.str();
  if (text.empty()) return;
  buffer_.str({});
  if (text.back() == '\n') text.pop_back();
  hub_.publish(text);
}

}  // namespace mbcosim::server
