// Streaming telemetry fan-out for one simulation session. The worker
// thread publishes JSONL lines (trace events, metrics snapshots, state
// transitions) into a StreamHub; any number of HTTP stream connections
// subscribe and drain at their own pace.
//
// Backpressure policy: every subscriber queue is bounded. A subscriber
// that cannot keep up loses the *oldest* queued lines — the simulation
// never blocks and the hub never grows without bound — and the loss is
// accounted, not silent: before the next line, the subscriber receives
// a {"stream":"dropped","count":N,"total":M} record. Telemetry is an
// observation channel; dropping it cannot change simulation results
// (determinism is sink-only, DESIGN.md §13).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::server {

/// One subscriber's bounded view of the stream. Handed out as a
/// shared_ptr; the hub keeps only a weak_ptr, so dropping the
/// subscription is how a client unsubscribes.
class StreamSubscription {
 public:
  /// Next line (without trailing newline), waiting at most `timeout_ms`.
  /// nullopt on timeout or once the stream is finished. When lines were
  /// dropped since the last call, the first result is the synthetic
  /// {"stream":"dropped",...} accounting record.
  [[nodiscard]] std::optional<std::string> next(int timeout_ms);

  /// True once the hub closed and every queued line (and drop record)
  /// has been consumed.
  [[nodiscard]] bool finished() const;

  /// Total lines this subscriber has lost to backpressure.
  [[nodiscard]] u64 dropped_total() const;

 private:
  friend class StreamHub;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::size_t limit_ = 0;
  u64 dropped_pending_ = 0;  ///< drops not yet reported in-stream
  u64 dropped_total_ = 0;
  bool closed_ = false;
};

class StreamHub {
 public:
  /// `max_queue_lines` bounds every subscriber's queue (the per-client
  /// memory ceiling).
  explicit StreamHub(std::size_t max_queue_lines)
      : limit_(max_queue_lines == 0 ? 1 : max_queue_lines) {}

  /// New subscriber; sees only lines published after this call. A
  /// subscription obtained after close() is born finished.
  [[nodiscard]] std::shared_ptr<StreamSubscription> subscribe();

  /// Fan one line out to every live subscriber (drop-oldest on full
  /// queues). Expired subscribers are pruned as a side effect.
  void publish(const std::string& line);

  /// End the stream: subscribers finish once they drain what is queued.
  void close();

 private:
  std::mutex mutex_;
  std::vector<std::weak_ptr<StreamSubscription>> subscribers_;
  std::size_t limit_;
  bool closed_ = false;
};

/// TraceSink that renders events exactly as obs::JsonlSink writes them
/// to a --trace file — byte-identical lines, so a streamed trace can be
/// diffed against a batch golden trace — and publishes each line to the
/// hub. Attached per core bus; like any sink, it forces the precise
/// execution fallback while attached (stats are tier-invariant).
class StreamSink : public obs::TraceSink {
 public:
  StreamSink(StreamHub& hub, obs::JsonlSink::Disassembler disassemble)
      : hub_(hub), jsonl_(buffer_) {
    jsonl_.set_disassembler(std::move(disassemble));
  }

  void on_event(const obs::TraceEvent& event) override;
  void flush() override {}
  [[nodiscard]] Status status() const override { return jsonl_.status(); }

 private:
  StreamHub& hub_;
  std::ostringstream buffer_;  // must precede jsonl_, which wraps it
  obs::JsonlSink jsonl_;
};

}  // namespace mbcosim::server
