// One hosted co-simulation: a sim::SimSystem plus the worker thread
// that drives it and the telemetry hub that observes it. Sessions obey
// a small state machine (DESIGN.md §13):
//
//   idle --run_async--> running --(stop|pause|kill)--> idle
//   idle --start_debug--> debug --(detach|kill)------> idle
//   any  --kill--> killed (terminal)
//
// Threading contract: SimSystem is never touched from two threads at
// once. While state is `running` or `debug` the worker thread owns the
// system exclusively; HTTP threads may only touch it under `mutex_`
// with state `idle`. The worker publishes its results and flips the
// state back to idle under the same mutex, so the handover is a proper
// happens-before edge.
//
// Determinism: control points (pause, kill, metrics records) land on
// control-quantum boundaries of run(), which has the same semantics as
// batch checkpoint_every chunking — simulated results are identical to
// an unchunked run (the deadlock blocked-streak counters restart per
// chunk, same caveat as DESIGN.md §11). Telemetry is sink-only, so
// subscribing, lagging or disconnecting clients cannot perturb results.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/machine_desc.hpp"
#include "server/journal.hpp"
#include "server/stream_hub.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::server {

struct SessionConfig {
  machine::MachineDesc desc;
  unsigned workers = 0;   ///< engine worker threads (multi-core machines)
  bool metrics = true;    ///< aggregate counters/histograms
  bool trace = false;     ///< stream every trace event (precise fallback)
  /// Cycles per run() chunk between control points — how often pause
  /// and kill are honoured and metrics records are streamed.
  Cycle control_quantum = 100'000;
  /// Per-subscriber telemetry queue bound (lines) before drop-oldest.
  std::size_t stream_queue = 4096;
  /// Wall-clock budget of one run, in milliseconds; 0 = none. Enforced
  /// at control-quantum boundaries: an overrunning session is killed
  /// with a "[srv-deadline]" terminal state and its budget released.
  u64 deadline_ms = 0;
  /// Lifetime simulated-cycle budget; 0 = none. Same enforcement.
  Cycle max_cycles = 0;
  /// Journal checkpoint interval in cycles (journaled sessions only);
  /// 0 = checkpoint only when a run stops. The worker also checkpoints
  /// on every run exit, so the journal always holds the stopped state.
  Cycle ckpt_every = 1'000'000;
};

/// Canonical JSON form of a create request (sorted keys, machine
/// description inlined) — what the journal records, and what recovery
/// replays through session_config_from_json below. Round-trip exact.
[[nodiscard]] std::string session_config_to_json(const SessionConfig& config);

/// Parse the session fields of a create-request object around an
/// already-resolved machine description. Shared by the HTTP create
/// endpoint and journal recovery, so both accept exactly one dialect.
/// Failure messages carry stable "[srv-bad-request]"/json codes.
[[nodiscard]] Expected<SessionConfig> session_config_from_json(
    const common::json::Object& body, machine::MachineDesc desc,
    Cycle default_control_quantum);

enum class SessionState : u8 { kIdle, kRunning, kDebug, kKilled };

[[nodiscard]] constexpr const char* to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kIdle: return "idle";
    case SessionState::kRunning: return "running";
    case SessionState::kDebug: return "debug";
    case SessionState::kKilled: return "killed";
  }
  return "?";
}

/// The `monitor stats` text of a system, plus per-core breakdown lines
/// ("core.<name>.cycles N" ...) on multi-core machines. Shared by the
/// GET /sessions/N/stats endpoint and batch-equivalence tests, so the
/// two render identically by construction.
[[nodiscard]] std::string stats_text(const sim::SimSystem& system);

class Session {
 public:
  /// Build the simulated system and wrap it in an idle session. Build
  /// failures come back as "[srv-bad-machine] <builder error>". With a
  /// journal the session is durable: lifecycle events and periodic
  /// checkpoints are persisted, and traced sessions write per-core
  /// journal trace files (byte-identical to a batch --trace run).
  [[nodiscard]] static Expected<std::shared_ptr<Session>> create(
      u64 id, SessionConfig config,
      std::unique_ptr<SessionJournal> journal = nullptr);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  /// The manager kills a session before dropping it; the destructor
  /// only has to reap the (finished) worker thread.
  ~Session();

  [[nodiscard]] u64 id() const noexcept { return id_; }
  [[nodiscard]] SessionState state() const;
  /// Admission weight: 1 control thread + engine workers (multi-core).
  [[nodiscard]] unsigned cost() const noexcept { return cost_; }

  // -- operations. String-returning ops yield "" on success or a
  // -- "[srv-*]" message; see errors.hpp.

  /// Start (or resume) running toward the absolute cycle target
  /// `max_cycles` on the worker thread; returns immediately.
  [[nodiscard]] std::string run_async(Cycle max_cycles);
  /// Stop a running session at the next control-quantum boundary and
  /// wait until it is idle.
  [[nodiscard]] std::string pause();
  /// Terminal: interrupt any run or debug session, join the worker,
  /// close the telemetry stream. Idempotent.
  [[nodiscard]] std::string kill();
  /// Snapshot the (idle, has-run) session into a checkpoint image.
  [[nodiscard]] Expected<std::vector<unsigned char>> checkpoint();
  /// Restore a checkpoint image into the (idle) session.
  [[nodiscard]] std::string restore_image(
      const std::vector<unsigned char>& image);
  /// Open an RSP debug port (0 = ephemeral) and serve one client on the
  /// worker thread; returns the bound port. While a client is attached
  /// the session is in `debug` and extra RSP clients get "E.srv-busy".
  [[nodiscard]] Expected<u16> start_debug(u16 port);

  /// Restore the newest valid journal checkpoint into a freshly built
  /// session (recovery path; call before any run). "" on success.
  [[nodiscard]] std::string adopt_recovery(const JournalCheckpoint& record);

  /// Called (off this session's mutex) when the watchdog/deadline path
  /// kills the session from its own worker thread, so the manager can
  /// release its admission budget while keeping it visible in the pool.
  void set_on_expire(std::function<void(u64)> on_expire) {
    on_expire_ = std::move(on_expire);
  }

  /// Watchdog hook: flag a running session whose wall-clock deadline
  /// has passed; the worker kills it at the next quantum boundary.
  void poll_supervision(std::chrono::steady_clock::time_point now);

  /// Graceful-drain step: publish a terminal {"stream":"draining"}
  /// record, stop any run at the next quantum boundary (waiting no
  /// longer than `deadline` for it), journal the drain and kill the
  /// session. The worker's exit checkpoint makes the stop durable.
  void drain(std::chrono::steady_clock::time_point deadline);

  /// Subscribe to the session's telemetry stream.
  [[nodiscard]] std::shared_ptr<StreamSubscription> subscribe() {
    return hub_.subscribe();
  }

  // -- observation (idle sessions only where noted) --

  /// One-object JSON summary: id, state, cores, cycles, last stop.
  [[nodiscard]] std::string info_json() const;
  /// stats_text() of the system; "[srv-running]" unless idle.
  [[nodiscard]] Expected<std::string> stats_page();
  /// metrics_snapshot().to_string(); "[srv-running]" unless idle.
  [[nodiscard]] Expected<std::string> metrics_page();

 private:
  Session(u64 id, SessionConfig config)
      : id_(id), config_(std::move(config)), hub_(config_.stream_queue) {}

  /// Chunked run loop (worker thread).
  void worker_run(Cycle max_cycles);
  /// Accept-and-serve RSP loop (worker thread).
  void worker_debug(rsp::TcpListener listener);
  /// Worker thread, owning system_: persist a checkpoint record (cycle,
  /// trace offsets, metrics state, machine image) to the journal.
  void journal_checkpoint();
  /// Worker thread: terminal [srv-deadline] teardown — the session
  /// kills itself, releases its budget via on_expire_ and stays in the
  /// pool as killed so clients can read the structured stop state.
  void expire_with(const std::string& stop);
  /// Reap a finished worker thread; call with mutex_ held, state idle.
  void reap_worker();
  /// Mutex held: "" when the session is idle and not being torn down,
  /// otherwise the structured busy error for its effective state. Gates
  /// every operation that would touch system_ or spawn a worker.
  [[nodiscard]] std::string gate_idle() const;
  void publish_state(const char* state, Cycle cycles,
                     const std::string& stop);

  const u64 id_;
  SessionConfig config_;
  StreamHub hub_;
  unsigned cost_ = 1;
  std::unique_ptr<SessionJournal> journal_;
  std::function<void(u64)> on_expire_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Journaled per-core trace streams; declared before system_ so the
  /// JsonlSinks inside its trace buses are destroyed first.
  std::vector<std::unique_ptr<std::ofstream>> trace_files_;
  std::optional<sim::SimSystem> system_;
  SessionState state_ = SessionState::kIdle;
  std::thread worker_;
  std::atomic<bool> pause_requested_{false};
  std::atomic<bool> kill_requested_{false};
  /// Watchdog verdict: wall-clock deadline passed while running. The
  /// worker turns it into a [srv-deadline] kill at the next boundary.
  std::atomic<bool> deadline_exceeded_{false};
  /// Deadline of the run in flight (mutex_): set by run_async when
  /// config_.deadline_ms != 0.
  std::optional<std::chrono::steady_clock::time_point> run_deadline_;
  /// Set (under mutex_) by the first kill() before it releases the lock
  /// to join the worker. Guards the window between that release and the
  /// final state_ = kKilled: run_async/start_debug must not spawn a new
  /// worker there, and only the flag-setting kill() owns the handle.
  bool killing_ = false;
  bool has_run_ = false;
  Cycle cached_cycles_ = 0;       ///< last published cycle count
  std::string cached_stop_;       ///< last stop reason ("" before any run)
  std::optional<Cycle> recovered_from_;  ///< journal recovery provenance
  /// Worker-thread only: cycle of the last journaled checkpoint.
  Cycle last_journal_cycle_ = 0;
  bool journal_has_checkpoint_ = false;
};

}  // namespace mbcosim::server
