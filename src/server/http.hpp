// Minimal HTTP/1.1 layer for the simulation server — just enough of the
// protocol for curl and scripted clients: Content-Length bodies in,
// fixed or chunked bodies out, opt-in keep-alive (a client that sends
// "Connection: keep-alive" may issue up to kMaxRequestsPerConnection
// requests on one connection; everyone else gets one request and
// "Connection: close"). It rides on rsp::Transport, so the same parsing
// code is unit-tested over deterministic loopback pairs and serves live
// TCP clients unchanged. No third-party dependency, same as the rest of
// the tree.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "rsp/transport.hpp"

namespace mbcosim::server {

/// Hard ceilings on request size; anything beyond is a
/// "[srv-bad-request]" rejection, not an allocation.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxBodyBytes = 64 * 1024 * 1024;

/// Bound on requests served over one keep-alive connection; the last
/// response carries "Connection: close" so well-behaved clients
/// reconnect instead of stalling.
inline constexpr int kMaxRequestsPerConnection = 64;

/// How long a connection may sit idle between requests (and how long a
/// single request may stall mid-transfer) before it is dropped.
inline constexpr int kRequestTimeoutMs = 10'000;

struct HttpRequest {
  std::string method;  ///< "GET", "POST", "DELETE", ...
  std::string target;  ///< raw request target ("/sessions/3/run")
  std::string path;    ///< target with any "?query" stripped
  /// Header fields, keys lower-cased ("content-length").
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Read one complete request from the transport, waiting at most
/// `timeout_ms` overall. Failure messages start with
/// "[srv-bad-request]", except the internal "[closed]" marker for a
/// connection that went away before sending anything (callers drop
/// those silently).
[[nodiscard]] Expected<HttpRequest> read_request(rsp::Transport& transport,
                                                 int timeout_ms);

/// Keep-alive variant: `carry` holds bytes received past the previous
/// request's body (a pipelined next request); they are consumed before
/// the transport is read, and any surplus past this request's body is
/// stored back. The "went away before sending anything" [closed] case
/// includes an empty carry.
[[nodiscard]] Expected<HttpRequest> read_request(rsp::Transport& transport,
                                                 int timeout_ms,
                                                 std::string& carry);

/// Writes one response — either respond() for a fixed body or
/// begin_chunked()/chunk()/finish_chunked() for a stream. Every method
/// returns false once the client is gone; callers just stop writing.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(rsp::Transport& transport)
      : transport_(transport) {}

  bool respond(int status, std::string_view content_type,
               std::string_view body);
  bool begin_chunked(int status, std::string_view content_type);
  bool chunk(std::string_view data);
  bool finish_chunked();

  /// Whether respond() advertises "Connection: keep-alive". Chunked
  /// streams always close — their length is only delimited by EOF from
  /// the client's point of view once the stream is abandoned.
  void set_keep_alive(bool keep_alive) noexcept { keep_alive_ = keep_alive; }
  [[nodiscard]] bool keep_alive() const noexcept { return keep_alive_; }
  [[nodiscard]] bool chunked() const noexcept { return chunked_; }

  /// Poll the connection: false once the peer has disconnected. Lets a
  /// long-lived stream with nothing to say notice an abandoned client.
  [[nodiscard]] bool client_alive();

  [[nodiscard]] bool responded() const noexcept { return responded_; }

  [[nodiscard]] static const char* status_text(int status) noexcept;

 private:
  rsp::Transport& transport_;
  bool responded_ = false;
  bool keep_alive_ = false;
  bool chunked_ = false;
};

/// One connection's request loop: read requests, run the handler,
/// honour opt-in keep-alive ("Connection: keep-alive" request header)
/// up to kMaxRequestsPerConnection requests, close on anything else —
/// "Connection: close", malformed requests, chunked responses, idle
/// timeout, server shutdown. Factored out of HttpServer so loopback
/// tests drive it without sockets.
void serve_connection(
    rsp::Transport& transport,
    const std::function<void(const HttpRequest&, HttpResponseWriter&)>&
        handler,
    const std::atomic<bool>* stopping = nullptr);

/// Accepts connections on 127.0.0.1:port and runs the handler on one
/// thread per connection (a telemetry stream may occupy its connection
/// for the whole life of a session, so connections must not serialize).
/// Each connection runs serve_connection(): one request unless the
/// client opts into keep-alive.
class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpResponseWriter&)>;

  /// Bind, listen and start accepting. Port 0 picks an ephemeral port;
  /// port() reports the bound one.
  [[nodiscard]] static Expected<std::unique_ptr<HttpServer>> start(
      u16 port, Handler handler);

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer() { stop(); }

  [[nodiscard]] u16 port() const noexcept { return port_; }

  /// Stop accepting and join every connection thread (idempotent).
  /// In-flight handlers run to completion — shut sessions down first so
  /// their streams end.
  void stop();

 private:
  HttpServer(rsp::TcpListener listener, Handler handler);
  void accept_loop();

  rsp::TcpListener listener_;
  Handler handler_;
  u16 port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex mutex_;  ///< guards connections_
  std::vector<std::thread> connections_;
  std::thread acceptor_;
};

}  // namespace mbcosim::server
