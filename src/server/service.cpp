#include "server/service.hpp"

#include <cctype>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace mbcosim::server {

namespace {

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

void respond_error(HttpResponseWriter& writer, const std::string& message) {
  writer.respond(status_for_error(message), "application/json",
                 "{\"error\":\"" + common::json::escape(message) + "\"}");
}

void respond_json(HttpResponseWriter& writer, int status,
                  const std::string& body) {
  writer.respond(status, "application/json", body);
}

/// "/sessions/<id>[/verb]" -> id + verb ("" when absent); false when
/// the path is not of that shape.
bool parse_session_path(const std::string& path, u64& id, std::string& verb) {
  const std::string prefix = "/sessions/";
  if (!starts_with(path, prefix.c_str())) return false;
  std::size_t pos = prefix.size();
  std::size_t end = path.find('/', pos);
  const std::string digits =
      path.substr(pos, end == std::string::npos ? std::string::npos
                                                : end - pos);
  if (digits.empty()) return false;
  u64 value = 0;
  for (const char c : digits) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    value = value * 10 + static_cast<u64>(c - '0');
  }
  id = value;
  verb = end == std::string::npos ? std::string() : path.substr(end + 1);
  return true;
}

/// Parse an optional JSON object body; an empty body is an empty
/// object. Failure message has a stable code already.
Expected<common::json::Object> parse_body_object(const std::string& body) {
  using Failure = Expected<common::json::Object>;
  if (body.empty()) return common::json::Object{};
  Expected<common::json::Value> parsed = common::json::parse(body);
  if (!parsed) return Failure::failure(parsed.error());
  if (!parsed.value().is_object()) {
    return Failure::failure("[srv-bad-request] request body must be a JSON "
                            "object");
  }
  return parsed.value().object();
}

}  // namespace

int status_for_error(const std::string& message) {
  if (starts_with(message, "[srv-unknown-session]")) return 404;
  if (starts_with(message, "[srv-busy]") ||
      starts_with(message, "[srv-draining]")) {
    return 503;
  }
  if (starts_with(message, "[srv-running]") ||
      starts_with(message, "[srv-not-running]") ||
      starts_with(message, "[srv-never-ran]")) {
    return 409;
  }
  if (starts_with(message, "[srv-debug]") ||
      starts_with(message, "[srv-io]") ||
      starts_with(message, "[srv-journal-")) {
    return 500;
  }
  // Everything else bracketed is a client-input problem: srv-bad-request,
  // srv-bad-machine, srv-ckpt and the json/machine description codes.
  if (!message.empty() && message.front() == '[') return 400;
  return 500;
}

Status Service::init(SessionManager::RecoveryReport* report) {
  if (options_.state_dir.empty()) return {};
  Expected<std::unique_ptr<JournalStore>> opened =
      JournalStore::open(options_.state_dir);
  if (!opened) return Status::failure(opened.error());
  store_ = std::move(opened).value();
  manager_.attach_journal(store_.get());
  if (options_.recover) {
    SessionManager::RecoveryReport recovered = manager_.recover();
    if (report != nullptr) *report = std::move(recovered);
  }
  return {};
}

void Service::drain() {
  draining_.store(true, std::memory_order_relaxed);
  manager_.drain(options_.drain_timeout_ms);
}

void Service::handle(const HttpRequest& request, HttpResponseWriter& writer) {
  const std::string& path = request.path;
  if (request.method == "GET" && path == "/healthz") {
    writer.respond(200, "text/plain", "ok\n");
    return;
  }
  if (path == "/sessions") {
    if (request.method == "POST") {
      handle_create(request, writer);
      return;
    }
    if (request.method == "GET") {
      std::string body = "{\"sessions\":[";
      bool first = true;
      for (const std::shared_ptr<Session>& session : manager_.list()) {
        if (!first) body += ",";
        first = false;
        body += session->info_json();
      }
      body += "]}";
      respond_json(writer, 200, body);
      return;
    }
  }
  if (request.method == "POST" && path == "/shutdown") {
    respond_json(writer, 200, "{\"shutdown\":true}");
    if (options_.on_shutdown) options_.on_shutdown();
    return;
  }
  u64 id = 0;
  std::string verb;
  if (parse_session_path(path, id, verb)) {
    handle_session(id, verb, request, writer);
    return;
  }
  respond_error(writer, "[srv-bad-request] no such endpoint: " +
                            request.method + " " + path);
}

void Service::handle_create(const HttpRequest& request,
                            HttpResponseWriter& writer) {
  if (draining_.load(std::memory_order_relaxed)) {
    respond_error(writer,
                  "[srv-draining] daemon is draining; no new sessions");
    return;
  }
  Expected<common::json::Object> parsed = parse_body_object(request.body);
  if (!parsed) {
    respond_error(writer, parsed.error());
    return;
  }
  const common::json::Object& top = parsed.value();

  // The machine: inline object or a server-side file path.
  Expected<machine::MachineDesc> desc = Expected<machine::MachineDesc>::failure(
      "[srv-bad-request] request needs \"machine\" (object) or "
      "\"machine_file\" (string)");
  const auto machine_it = top.find("machine");
  const auto file_it = top.find("machine_file");
  if (machine_it != top.end() && file_it != top.end()) {
    respond_error(writer,
                  "[srv-bad-request] \"machine\" and \"machine_file\" are "
                  "mutually exclusive");
    return;
  }
  if (machine_it != top.end()) {
    desc = machine::MachineDesc::from_value(machine_it->second);
  } else if (file_it != top.end()) {
    if (!file_it->second.is_string()) {
      respond_error(writer,
                    "[srv-bad-request] \"machine_file\" must be a string");
      return;
    }
    desc = machine::MachineDesc::from_file(file_it->second.string());
  }
  if (!desc) {
    respond_error(writer, desc.error());
    return;
  }

  Expected<SessionConfig> config = session_config_from_json(
      top, std::move(desc).value(), options_.control_quantum);
  if (!config) {
    respond_error(writer, config.error());
    return;
  }

  Expected<std::shared_ptr<Session>> session =
      manager_.create(std::move(config).value());
  if (!session) {
    respond_error(writer, session.error());
    return;
  }
  respond_json(writer, 201, session.value()->info_json());
}

void Service::handle_session(u64 id, const std::string& verb,
                             const HttpRequest& request,
                             HttpResponseWriter& writer) {
  // DELETE removes from the pool, so it does not go through find().
  if (verb.empty() && request.method == "DELETE") {
    if (std::string err = manager_.kill(id); !err.empty()) {
      respond_error(writer, err);
      return;
    }
    respond_json(writer, 200,
                 "{\"id\":" + std::to_string(id) + ",\"state\":\"killed\"}");
    return;
  }
  Expected<std::shared_ptr<Session>> found = manager_.find(id);
  if (!found) {
    respond_error(writer, found.error());
    return;
  }
  Session& session = *found.value();

  if (verb.empty() && request.method == "GET") {
    respond_json(writer, 200, session.info_json());
    return;
  }
  if (verb == "run" && request.method == "POST") {
    Expected<common::json::Object> body = parse_body_object(request.body);
    if (!body) {
      respond_error(writer, body.error());
      return;
    }
    long long max_cycles = 0;
    if (std::string err = common::json::get_int(body.value(), "max_cycles",
                                                "run", false, max_cycles);
        !err.empty()) {
      respond_error(writer, err);
      return;
    }
    const Cycle target = max_cycles > 0 ? static_cast<Cycle>(max_cycles)
                                        : Cycle{1} << 36;
    if (std::string err = session.run_async(target); !err.empty()) {
      respond_error(writer, err);
      return;
    }
    respond_json(writer, 200, session.info_json());
    return;
  }
  if (verb == "pause" && request.method == "POST") {
    if (std::string err = session.pause(); !err.empty()) {
      respond_error(writer, err);
      return;
    }
    respond_json(writer, 200, session.info_json());
    return;
  }
  if (verb == "stats" && request.method == "GET") {
    Expected<std::string> text = session.stats_page();
    if (!text) {
      respond_error(writer, text.error());
      return;
    }
    writer.respond(200, "text/plain", text.value());
    return;
  }
  if (verb == "metrics" && request.method == "GET") {
    Expected<std::string> text = session.metrics_page();
    if (!text) {
      respond_error(writer, text.error());
      return;
    }
    writer.respond(200, "text/plain", text.value());
    return;
  }
  if (verb == "checkpoint" && request.method == "GET") {
    Expected<std::vector<unsigned char>> image = session.checkpoint();
    if (!image) {
      respond_error(writer, image.error());
      return;
    }
    const std::string body(image.value().begin(), image.value().end());
    writer.respond(200, "application/octet-stream", body);
    return;
  }
  if (verb == "restore" && request.method == "POST") {
    const std::vector<unsigned char> image(request.body.begin(),
                                           request.body.end());
    if (std::string err = session.restore_image(image); !err.empty()) {
      respond_error(writer, err);
      return;
    }
    respond_json(writer, 200, session.info_json());
    return;
  }
  if (verb == "debug" && request.method == "POST") {
    Expected<common::json::Object> body = parse_body_object(request.body);
    if (!body) {
      respond_error(writer, body.error());
      return;
    }
    long long port = 0;
    if (std::string err = common::json::get_int(body.value(), "port", "debug",
                                                false, port);
        !err.empty()) {
      respond_error(writer, err);
      return;
    }
    if (port < 0 || port > 65535) {
      respond_error(writer, "[srv-bad-request] port must be 0..65535");
      return;
    }
    Expected<u16> bound = session.start_debug(static_cast<u16>(port));
    if (!bound) {
      respond_error(writer, bound.error());
      return;
    }
    respond_json(writer, 200,
                 "{\"id\":" + std::to_string(id) +
                     ",\"port\":" + std::to_string(bound.value()) + "}");
    return;
  }
  if (verb == "stream" && request.method == "GET") {
    stream_session(session, writer);
    return;
  }
  respond_error(writer, "[srv-bad-request] no such endpoint: " +
                            request.method + " " + request.path);
}

void Service::stream_session(Session& session, HttpResponseWriter& writer) {
  const std::shared_ptr<StreamSubscription> subscription = session.subscribe();
  if (!writer.begin_chunked(200, "application/jsonl")) return;
  int idle_polls = 0;
  while (true) {
    const std::optional<std::string> line = subscription->next(250);
    if (line) {
      idle_polls = 0;
      if (!writer.chunk(*line + "\n")) return;  // client gone
      continue;
    }
    if (subscription->finished()) break;
    // Nothing said for a second: probe whether the client is still
    // there, so an abandoned stream of an idle session ends.
    if (++idle_polls >= 4) {
      idle_polls = 0;
      if (!writer.client_alive()) return;
    }
  }
  writer.finish_chunked();
}

}  // namespace mbcosim::server
