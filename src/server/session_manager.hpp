// The session pool: monotonic ids, admission control, lifetime. The
// manager owns every live Session via shared_ptr (HTTP threads hold a
// second reference for the duration of one request, so a concurrent
// DELETE cannot pull a session out from under them).
//
// Admission control is a worker budget, not a session count alone: a
// 3-core machine with 3 engine workers weighs 4, a single-core session
// weighs 1. A create that would overflow either limit is rejected with
// a structured "[srv-busy]" error — the client can retry, nothing
// queues.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "server/session.hpp"

namespace mbcosim::server {

class SessionManager {
 public:
  struct Limits {
    std::size_t max_sessions = 8;
    /// Total admission weight (Session::cost) across live sessions;
    /// 0 = derive from hardware_concurrency.
    unsigned worker_budget = 0;
  };

  explicit SessionManager(Limits limits) : limits_(limits) {
    if (limits_.worker_budget == 0) {
      limits_.worker_budget =
          std::max(4u, 2 * std::thread::hardware_concurrency());
    }
  }

  /// Admit and build a new session. "[srv-busy]" when over budget,
  /// "[srv-bad-machine]" when the build fails.
  [[nodiscard]] Expected<std::shared_ptr<Session>> create(
      SessionConfig config);

  /// "[srv-unknown-session]" when absent (never created, or killed).
  [[nodiscard]] Expected<std::shared_ptr<Session>> find(u64 id);

  /// Remove and kill. Removal under the manager lock serializes kills:
  /// the second DELETE of an id reports "[srv-unknown-session]".
  [[nodiscard]] std::string kill(u64 id);

  /// Live sessions, id order.
  [[nodiscard]] std::vector<std::shared_ptr<Session>> list();

  /// Kill every session (daemon shutdown).
  void kill_all();

  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }

 private:
  Limits limits_;
  std::mutex mutex_;
  std::map<u64, std::shared_ptr<Session>> sessions_;
  u64 next_id_ = 1;
  unsigned used_budget_ = 0;
};

}  // namespace mbcosim::server
