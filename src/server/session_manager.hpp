// The session pool: monotonic ids, admission control, lifetime. The
// manager owns every live Session via shared_ptr (HTTP threads hold a
// second reference for the duration of one request, so a concurrent
// DELETE cannot pull a session out from under them).
//
// Admission control is a worker budget, not a session count alone: a
// 3-core machine with 3 engine workers weighs 4, a single-core session
// weighs 1. A create that would overflow either limit is rejected with
// a structured "[srv-busy]" error — the client can retry, nothing
// queues.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "server/journal.hpp"
#include "server/session.hpp"

namespace mbcosim::server {

class SessionManager {
 public:
  struct Limits {
    std::size_t max_sessions = 8;
    /// Total admission weight (Session::cost) across live sessions;
    /// 0 = derive from hardware_concurrency.
    unsigned worker_budget = 0;
  };

  explicit SessionManager(Limits limits) : limits_(limits) {
    if (limits_.worker_budget == 0) {
      limits_.worker_budget =
          std::max(4u, 2 * std::thread::hardware_concurrency());
    }
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }

  ~SessionManager();

  /// Attach a journal store: every session created from here on is
  /// durable. Call before serving (not thread-safe against create).
  void attach_journal(JournalStore* store) noexcept { store_ = store; }

  /// Admit and build a new session. "[srv-busy]" when over budget,
  /// "[srv-bad-machine]" when the build fails, "[srv-journal-io]" when
  /// its journal cannot be created.
  [[nodiscard]] Expected<std::shared_ptr<Session>> create(
      SessionConfig config);

  /// "[srv-unknown-session]" when absent (never created, or killed).
  [[nodiscard]] Expected<std::shared_ptr<Session>> find(u64 id);

  /// Remove and kill, deleting any journal dir (the session is gone for
  /// good, recovery must not resurrect it). Removal under the manager
  /// lock serializes kills: the second DELETE of an id reports
  /// "[srv-unknown-session]".
  [[nodiscard]] std::string kill(u64 id);

  /// Live sessions, id order.
  [[nodiscard]] std::vector<std::shared_ptr<Session>> list();

  /// Kill every session (daemon shutdown). Journal dirs survive — an
  /// unjournalled shutdown looks like a crash to the next --recover.
  void kill_all();

  /// What recover() did: sessions readmitted, plus one log line per
  /// skipped/cleaned entry (corrupt tails, terminal sessions, budget).
  struct RecoveryReport {
    std::size_t recovered = 0;
    std::vector<std::string> log;
  };

  /// Rebuild sessions from the attached journal store: replay each
  /// journaled create request, restore the newest valid checkpoint
  /// (corrupt/truncated tails skipped with a logged reason), truncate
  /// journaled traces back to it and readmit under the worker budget.
  /// Terminal sessions (killed by deadline) are cleaned up. Call before
  /// serving.
  [[nodiscard]] RecoveryReport recover();

  /// Graceful drain: stop every session at its next quantum boundary
  /// (bounded by `timeout_ms`), let the workers checkpoint their way
  /// out, publish terminal draining records and kill the pool. Journal
  /// dirs survive for --recover.
  void drain(u64 timeout_ms);

  [[nodiscard]] const Limits& limits() const noexcept { return limits_; }

 private:
  /// Idempotent budget release (deadline expiry and DELETE can race).
  void release_budget(u64 id);
  /// Poll running sessions for overdue wall-clock deadlines; the worker
  /// performs the kill on its next quantum boundary.
  void watchdog_loop();

  Limits limits_;
  JournalStore* store_ = nullptr;
  std::mutex mutex_;
  std::map<u64, std::shared_ptr<Session>> sessions_;
  /// Admission weight charged per live session id; absent once
  /// released (expired sessions stay visible but free their budget).
  std::map<u64, unsigned> charges_;
  u64 next_id_ = 1;
  unsigned used_budget_ = 0;
  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_;
};

}  // namespace mbcosim::server
