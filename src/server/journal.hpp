// Durable session journals (DESIGN.md §14). A JournalStore manages one
// --state-dir directory; each hosted session owns a SessionJournal —
// a per-session subdirectory holding everything a restarted daemon
// needs to rebuild it:
//
//   <state-dir>/manifest.json            versioned store manifest
//   <state-dir>/session-<id>/
//     request.json                       the create request, resolved
//     events.jsonl                       lifecycle transitions, appended
//     ckpt-<seq>.ckpt                    sealed checkpoint records
//     trace-<core>.jsonl                 per-core trace (when tracing)
//
// Durability rules: request.json, manifest.json and every checkpoint
// record are written to a ".tmp" sibling and atomically renamed into
// place, so a crash mid-write leaves either the old file or no file —
// never a half-written one that parses. Checkpoint records reuse the
// sealed ckpt image container (FNV-1a checksummed header), so a torn
// write of the payload itself is detected on read and skipped with a
// logged reason; recovery falls back to the next-newest record.
// events.jsonl is append-only; a torn tail line simply fails to parse
// and is ignored.
//
// Error channel: every failure is a Status/Expected whose message
// starts with a stable "[srv-journal-*]" (or wrapped "[ckpt-*]") code
// from errors.hpp — callers and tests dispatch on the code.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::server {

/// Journal store format, recorded in manifest.json. Bump on any layout
/// change; open() rejects other versions with [srv-journal-version].
inline constexpr long long kJournalFormatVersion = 1;

/// One durable checkpoint of a hosted session: the simulated machine
/// image, the exact metrics-registry state, and how many bytes of each
/// per-core trace file were written up to this point (so recovery can
/// truncate a post-checkpoint tail and keep the trace byte-identical).
struct JournalCheckpoint {
  Cycle cycle = 0;
  std::vector<u64> trace_offsets;
  std::vector<unsigned char> metrics;  ///< SimSystem::metrics_state blob
  std::vector<unsigned char> image;    ///< SimSystem::snapshot image
};

/// The per-session journal. Thread-safe: the worker thread writes
/// checkpoints while HTTP threads record lifecycle events.
class SessionJournal {
 public:
  SessionJournal(u64 id, std::string dir)
      : id_(id), dir_(std::move(dir)) {}

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  [[nodiscard]] u64 id() const noexcept { return id_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Append one lifecycle record to events.jsonl:
  ///   {"cycles":N,"event":"running","stop":"..."}
  [[nodiscard]] Status record_event(const std::string& event, Cycle cycles,
                                    const std::string& stop);

  /// Durably write one checkpoint record (tmp + rename, sealed payload)
  /// and prune records older than the previous one — the newest record
  /// plus one fallback survive.
  [[nodiscard]] Status write_checkpoint(const JournalCheckpoint& record);

  /// Newest record that unseals and parses. Damaged or torn records are
  /// skipped, each with a "[srv-journal-corrupt] ..." line appended to
  /// `log`; nullopt when no valid record exists.
  [[nodiscard]] std::optional<JournalCheckpoint> newest_valid_checkpoint(
      std::vector<std::string>* log);

  /// Path of core `index`'s journaled trace file.
  [[nodiscard]] std::string trace_path(std::size_t core_index) const;

  /// Cut every trace file back to the given offsets (missing entries
  /// mean 0), discarding events simulated after the checkpoint being
  /// restored — they will be re-simulated, and re-written, identically.
  [[nodiscard]] Status truncate_traces(const std::vector<u64>& offsets,
                                       std::size_t core_count);

 private:
  [[nodiscard]] std::string checkpoint_path(u64 seq) const;

  const u64 id_;
  const std::string dir_;
  std::mutex mutex_;
  u64 next_seq_ = 0;  ///< 0 = derive from existing records on first use
};

/// The --state-dir directory: creates/validates the manifest, hands out
/// per-session journals, scans for recoverable sessions.
class JournalStore {
 public:
  /// Open (or initialise) a state directory. [srv-journal-io] when it
  /// cannot be created or written, [srv-journal-version] when its
  /// manifest was written by an incompatible format,
  /// [srv-journal-corrupt] when the manifest does not parse.
  [[nodiscard]] static Expected<std::unique_ptr<JournalStore>> open(
      std::string state_dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Create session-<id>/ and durably record the (resolved) create
  /// request; returns the session's journal.
  [[nodiscard]] Expected<std::unique_ptr<SessionJournal>> create_session(
      u64 id, const std::string& request_json);

  /// One recoverable-session candidate found by scan().
  struct ScanEntry {
    u64 id = 0;
    std::string request_json;  ///< contents of request.json
    std::string last_event;    ///< last parseable events.jsonl event, "" if none
    std::unique_ptr<SessionJournal> journal;
  };

  /// Enumerate session directories, id order. Entries whose request
  /// cannot be read are skipped with a "[srv-journal-*]" line in `log`.
  [[nodiscard]] std::vector<ScanEntry> scan(std::vector<std::string>* log);

  /// Remove session-<id>/ recursively (client DELETE, or cleanup of a
  /// terminal session at recovery).
  [[nodiscard]] Status remove_session(u64 id);

 private:
  explicit JournalStore(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
};

}  // namespace mbcosim::server
