#include "server/journal.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "ckpt/ckpt.hpp"
#include "common/json.hpp"

namespace mbcosim::server {

namespace fs = std::filesystem;

namespace {

/// Layout version of one checkpoint record's (sealed) payload.
constexpr u32 kCheckpointRecordVersion = 1;

/// Write a whole file durably: ".tmp" sibling first, then an atomic
/// rename over the final name. A crash leaves the old file (or none),
/// never a short one.
Status atomic_write(const std::string& path, const void* data,
                    std::size_t size) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::failure("[srv-journal-io] cannot open '" + tmp +
                           "' for writing");
  }
  const std::size_t written =
      size == 0 ? 0 : std::fwrite(data, 1, size, file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != size || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::failure("[srv-journal-io] short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::failure("[srv-journal-io] cannot rename '" + tmp +
                           "' into place");
  }
  return {};
}

Expected<std::string> read_text(const std::string& path) {
  using Failure = Expected<std::string>;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Failure::failure("[srv-journal-io] cannot read '" + path + "'");
  }
  std::string text;
  char chunk[4096];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    text.append(chunk, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    return Failure::failure("[srv-journal-io] read error on '" + path + "'");
  }
  return text;
}

/// "session-<digits>" -> id; nullopt for anything else.
std::optional<u64> parse_session_dirname(const std::string& name) {
  const std::string prefix = "session-";
  if (name.rfind(prefix, 0) != 0 || name.size() == prefix.size()) {
    return std::nullopt;
  }
  u64 id = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
      return std::nullopt;
    }
    id = id * 10 + static_cast<u64>(name[i] - '0');
  }
  return id;
}

/// "ckpt-<digits>.ckpt" -> seq; nullopt for anything else (including
/// leftover ".tmp" siblings of an interrupted write).
std::optional<u64> parse_checkpoint_filename(const std::string& name) {
  const std::string prefix = "ckpt-";
  const std::string suffix = ".ckpt";
  if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  u64 seq = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
      return std::nullopt;
    }
    seq = seq * 10 + static_cast<u64>(name[i] - '0');
  }
  return seq;
}

/// Checkpoint records in the directory, ascending seq order.
std::vector<std::pair<u64, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<u64, std::string>> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::optional<u64> seq =
        parse_checkpoint_filename(entry.path().filename().string());
    if (seq) out.emplace_back(*seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<unsigned char> encode_checkpoint(const JournalCheckpoint& record) {
  ckpt::Writer writer;
  writer.write_u32(kCheckpointRecordVersion);
  writer.write_u64(record.cycle);
  writer.write_u32(static_cast<u32>(record.trace_offsets.size()));
  for (const u64 offset : record.trace_offsets) writer.write_u64(offset);
  writer.write_u64(record.metrics.size());
  writer.write_bytes(record.metrics.data(), record.metrics.size());
  writer.write_u64(record.image.size());
  writer.write_bytes(record.image.data(), record.image.size());
  return writer.take();
}

std::optional<JournalCheckpoint> decode_checkpoint(
    const std::vector<unsigned char>& payload, std::string* error) {
  ckpt::Reader reader(payload);
  if (const u32 version = reader.read_u32();
      version != kCheckpointRecordVersion) {
    *error = "record version " + std::to_string(version) + ", expected " +
             std::to_string(kCheckpointRecordVersion);
    return std::nullopt;
  }
  JournalCheckpoint record;
  record.cycle = reader.read_u64();
  const u32 offsets = reader.read_u32();
  for (u32 i = 0; i < offsets && reader.ok(); ++i) {
    record.trace_offsets.push_back(reader.read_u64());
  }
  const u64 metrics_size = reader.read_u64();
  if (!reader.ok() || metrics_size > reader.remaining()) {
    *error = "record payload ends early";
    return std::nullopt;
  }
  record.metrics.resize(static_cast<std::size_t>(metrics_size));
  reader.read_bytes(record.metrics.data(), record.metrics.size());
  const u64 image_size = reader.read_u64();
  if (!reader.ok() || image_size != reader.remaining()) {
    *error = "record payload ends early";
    return std::nullopt;
  }
  record.image.resize(static_cast<std::size_t>(image_size));
  reader.read_bytes(record.image.data(), record.image.size());
  return record;
}

}  // namespace

std::string SessionJournal::checkpoint_path(u64 seq) const {
  return dir_ + "/ckpt-" + std::to_string(seq) + ".ckpt";
}

std::string SessionJournal::trace_path(std::size_t core_index) const {
  return dir_ + "/trace-" + std::to_string(core_index) + ".jsonl";
}

Status SessionJournal::record_event(const std::string& event, Cycle cycles,
                                    const std::string& stop) {
  using common::json::Value;
  common::json::Object record;
  record["cycles"] = Value{static_cast<long long>(cycles)};
  record["event"] = Value{event};
  if (!stop.empty()) record["stop"] = Value{stop};
  const std::string line = common::json::dump(Value{std::move(record)}) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(dir_ + "/events.jsonl", std::ios::binary | std::ios::app);
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
  if (!out.good()) {
    return Status::failure("[srv-journal-io] cannot append to '" + dir_ +
                           "/events.jsonl'");
  }
  return {};
}

Status SessionJournal::write_checkpoint(const JournalCheckpoint& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_seq_ == 0) {
    const auto existing = list_checkpoints(dir_);
    next_seq_ = existing.empty() ? 1 : existing.back().first + 1;
  }
  const u64 seq = next_seq_++;
  const std::vector<unsigned char> image =
      ckpt::seal(encode_checkpoint(record));
  const std::string path = checkpoint_path(seq);
  const std::string tmp = path + ".tmp";
  if (Status written = ckpt::write_file(tmp, image); !written.ok) {
    std::remove(tmp.c_str());
    return Status::failure("[srv-journal-io] " + written.message);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::failure("[srv-journal-io] cannot rename '" + tmp +
                           "' into place");
  }
  // Keep the new record plus one fallback; prune everything older.
  for (const auto& [old_seq, old_path] : list_checkpoints(dir_)) {
    if (old_seq + 1 < seq) std::remove(old_path.c_str());
  }
  return {};
}

std::optional<JournalCheckpoint> SessionJournal::newest_valid_checkpoint(
    std::vector<std::string>* log) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<u64, std::string>> records = list_checkpoints(dir_);
  if (next_seq_ == 0) {
    next_seq_ = records.empty() ? 1 : records.back().first + 1;
  }
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    Expected<std::vector<unsigned char>> payload = ckpt::read_sealed(it->second);
    if (!payload) {
      if (log != nullptr) {
        log->push_back("[srv-journal-corrupt] skipping '" + it->second +
                       "': " + payload.error());
      }
      continue;
    }
    std::string error;
    std::optional<JournalCheckpoint> record =
        decode_checkpoint(payload.value(), &error);
    if (!record) {
      if (log != nullptr) {
        log->push_back("[srv-journal-corrupt] skipping '" + it->second +
                       "': " + error);
      }
      continue;
    }
    return record;
  }
  return std::nullopt;
}

Status SessionJournal::truncate_traces(const std::vector<u64>& offsets,
                                       std::size_t core_count) {
  for (std::size_t i = 0; i < core_count; ++i) {
    const std::string path = trace_path(i);
    const u64 offset = i < offsets.size() ? offsets[i] : 0;
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      if (offset == 0) continue;
      return Status::failure("[srv-journal-io] trace file '" + path +
                             "' is missing");
    }
    fs::resize_file(path, offset, ec);
    if (ec) {
      return Status::failure("[srv-journal-io] cannot truncate '" + path +
                             "': " + ec.message());
    }
  }
  return {};
}

Expected<std::unique_ptr<JournalStore>> JournalStore::open(
    std::string state_dir) {
  using Failure = Expected<std::unique_ptr<JournalStore>>;
  std::error_code ec;
  fs::create_directories(state_dir, ec);
  if (ec) {
    return Failure::failure("[srv-journal-io] cannot create state dir '" +
                            state_dir + "': " + ec.message());
  }
  const std::string manifest_path = state_dir + "/manifest.json";
  if (fs::exists(manifest_path, ec)) {
    Expected<std::string> text = read_text(manifest_path);
    if (!text) return Failure::failure(text.error());
    Expected<common::json::Value> parsed = common::json::parse(text.value());
    if (!parsed || !parsed.value().is_object()) {
      return Failure::failure("[srv-journal-corrupt] manifest '" +
                              manifest_path + "' does not parse");
    }
    long long format = 0;
    if (std::string err = common::json::get_int(
            parsed.value().object(), "format", "manifest", true, format);
        !err.empty()) {
      return Failure::failure("[srv-journal-corrupt] manifest '" +
                              manifest_path + "': " + err);
    }
    if (format != kJournalFormatVersion) {
      return Failure::failure(
          "[srv-journal-version] state dir format " + std::to_string(format) +
          ", this build reads format " +
          std::to_string(kJournalFormatVersion));
    }
  } else {
    const std::string manifest =
        "{\"format\":" + std::to_string(kJournalFormatVersion) + "}\n";
    if (Status written =
            atomic_write(manifest_path, manifest.data(), manifest.size());
        !written.ok) {
      return Failure::failure(written.message);
    }
  }
  return std::unique_ptr<JournalStore>(new JournalStore(std::move(state_dir)));
}

Expected<std::unique_ptr<SessionJournal>> JournalStore::create_session(
    u64 id, const std::string& request_json) {
  using Failure = Expected<std::unique_ptr<SessionJournal>>;
  const std::string dir = dir_ + "/session-" + std::to_string(id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Failure::failure("[srv-journal-io] cannot create '" + dir +
                            "': " + ec.message());
  }
  if (Status written = atomic_write(dir + "/request.json",
                                    request_json.data(), request_json.size());
      !written.ok) {
    return Failure::failure(written.message);
  }
  return std::make_unique<SessionJournal>(id, dir);
}

std::vector<JournalStore::ScanEntry> JournalStore::scan(
    std::vector<std::string>* log) {
  std::vector<ScanEntry> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_directory()) continue;
    const std::optional<u64> id =
        parse_session_dirname(entry.path().filename().string());
    if (!id) continue;
    const std::string dir = entry.path().string();
    Expected<std::string> request = read_text(dir + "/request.json");
    if (!request) {
      if (log != nullptr) {
        log->push_back("[srv-journal-corrupt] skipping session " +
                       std::to_string(*id) + ": " + request.error());
      }
      continue;
    }
    ScanEntry scanned;
    scanned.id = *id;
    scanned.request_json = std::move(request).value();
    // Last parseable lifecycle event; a torn tail line is ignored.
    if (Expected<std::string> events = read_text(dir + "/events.jsonl")) {
      const std::string& text = events.value();
      std::size_t pos = 0;
      while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty()) continue;
        Expected<common::json::Value> parsed = common::json::parse(line);
        if (!parsed || !parsed.value().is_object()) continue;
        std::string event;
        if (common::json::get_string(parsed.value().object(), "event",
                                     "event", true, event)
                .empty()) {
          scanned.last_event = std::move(event);
        }
      }
    }
    scanned.journal = std::make_unique<SessionJournal>(*id, dir);
    out.push_back(std::move(scanned));
  }
  std::sort(out.begin(), out.end(),
            [](const ScanEntry& a, const ScanEntry& b) { return a.id < b.id; });
  return out;
}

Status JournalStore::remove_session(u64 id) {
  const std::string dir = dir_ + "/session-" + std::to_string(id);
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) {
    return Status::failure("[srv-journal-io] cannot remove '" + dir +
                           "': " + ec.message());
  }
  return {};
}

}  // namespace mbcosim::server
