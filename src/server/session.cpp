#include "server/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/json.hpp"
#include "isa/isa.hpp"
#include "obs/jsonl_sink.hpp"

namespace mbcosim::server {

namespace {

std::string busy_message(SessionState state) {
  return std::string("[srv-running] session is ") + to_string(state) +
         "; operation requires an idle session";
}

/// Record a lifecycle event; journal write failures are loud (stderr)
/// but never fail the operation they ride along with.
void journal_event(SessionJournal* journal, u64 id, const char* event,
                   Cycle cycles, const std::string& stop = {}) {
  if (journal == nullptr) return;
  if (Status recorded = journal->record_event(event, cycles, stop);
      !recorded.ok) {
    std::fprintf(stderr, "session %llu: %s\n",
                 static_cast<unsigned long long>(id),
                 recorded.message.c_str());
  }
}

}  // namespace

std::string session_config_to_json(const SessionConfig& config) {
  std::string out = "{\"ckpt_every\":" + std::to_string(config.ckpt_every) +
                    ",\"control_quantum\":" +
                    std::to_string(config.control_quantum) +
                    ",\"deadline_ms\":" + std::to_string(config.deadline_ms) +
                    ",\"machine\":" + config.desc.to_json() +
                    ",\"max_cycles\":" + std::to_string(config.max_cycles) +
                    ",\"metrics\":" + (config.metrics ? "true" : "false") +
                    ",\"stream_queue\":" + std::to_string(config.stream_queue) +
                    ",\"trace\":" + (config.trace ? "true" : "false") +
                    ",\"workers\":" + std::to_string(config.workers) + "}";
  return out;
}

Expected<SessionConfig> session_config_from_json(
    const common::json::Object& body, machine::MachineDesc desc,
    Cycle default_control_quantum) {
  using common::json::get_bool;
  using common::json::get_int;
  using Failure = Expected<SessionConfig>;
  SessionConfig config;
  config.desc = std::move(desc);
  config.control_quantum = default_control_quantum;
  long long workers = 0;
  long long control_quantum = 0;
  long long stream_queue = 0;
  long long deadline_ms = 0;
  long long max_cycles = 0;
  long long ckpt_every = static_cast<long long>(config.ckpt_every);
  std::string err;
  if ((err = get_int(body, "workers", "session", false, workers),
       !err.empty()) ||
      (err = get_bool(body, "metrics", "session", config.metrics),
       !err.empty()) ||
      (err = get_bool(body, "trace", "session", config.trace), !err.empty()) ||
      (err = get_int(body, "control_quantum", "session", false,
                     control_quantum),
       !err.empty()) ||
      (err = get_int(body, "stream_queue", "session", false, stream_queue),
       !err.empty()) ||
      (err = get_int(body, "deadline_ms", "session", false, deadline_ms),
       !err.empty()) ||
      (err = get_int(body, "max_cycles", "session", false, max_cycles),
       !err.empty()) ||
      (err = get_int(body, "ckpt_every", "session", false, ckpt_every),
       !err.empty())) {
    return Failure::failure(err);
  }
  if (workers < 0 || control_quantum < 0 || stream_queue < 0 ||
      deadline_ms < 0 || max_cycles < 0 || ckpt_every < 0) {
    return Failure::failure(
        "[srv-bad-request] workers, control_quantum, stream_queue, "
        "deadline_ms, max_cycles and ckpt_every must be non-negative");
  }
  config.workers = static_cast<unsigned>(workers);
  if (control_quantum > 0) {
    config.control_quantum = static_cast<Cycle>(control_quantum);
  }
  if (stream_queue > 0) {
    config.stream_queue = static_cast<std::size_t>(stream_queue);
  }
  config.deadline_ms = static_cast<u64>(deadline_ms);
  config.max_cycles = static_cast<Cycle>(max_cycles);
  config.ckpt_every = static_cast<Cycle>(ckpt_every);
  return config;
}

std::string stats_text(const sim::SimSystem& system) {
  const core::CoSimStats s = system.stats();
  std::string out;
  out += "cycles " + std::to_string(s.cycles);
  out += "\ninstructions " + std::to_string(s.instructions);
  out += "\nfsl_stall_cycles " + std::to_string(s.fsl_stall_cycles);
  out += "\nhw_cycles_stepped " + std::to_string(s.hw_cycles_stepped);
  out += "\nhw_cycles_skipped " + std::to_string(s.hw_cycles_skipped);
  out += "\nwords_to_hw " + std::to_string(s.bridge.words_to_hw);
  out += "\nwords_from_hw " + std::to_string(s.bridge.words_from_hw);
  const iss::DbtStats dbt = system.dbt_stats();
  out += "\ndbt_blocks_translated " + std::to_string(dbt.blocks_translated);
  out += "\ndbt_block_dispatches " + std::to_string(dbt.block_dispatches);
  out += "\ndbt_smc_retirements " + std::to_string(dbt.smc_retirements);
  out += "\ndbt_fast_path_instructions " + std::to_string(dbt.dbt_instructions);
  if (system.core_count() > 1) {
    for (std::size_t i = 0; i < system.core_count(); ++i) {
      const core::CoSimStats cs = system.core_stats(i);
      const std::string& name = system.core_name(i);
      out += "\ncore." + name + ".cycles " + std::to_string(cs.cycles);
      out += "\ncore." + name + ".instructions " +
             std::to_string(cs.instructions);
      out += "\ncore." + name + ".fsl_stall_cycles " +
             std::to_string(cs.fsl_stall_cycles);
    }
  }
  out += "\n";
  return out;
}

Expected<std::shared_ptr<Session>> Session::create(
    u64 id, SessionConfig config, std::unique_ptr<SessionJournal> journal) {
  using Failure = Expected<std::shared_ptr<Session>>;
  sim::SimSystem::Builder builder;
  builder.machine(config.desc).workers(config.workers);
  if (config.metrics) builder.metrics();
  Expected<sim::SimSystem> built = builder.build();
  if (!built) {
    return Failure::failure("[srv-bad-machine] " + built.error());
  }
  std::shared_ptr<Session> session(new Session(id, std::move(config)));
  session->journal_ = std::move(journal);
  session->system_.emplace(std::move(built).value());
  sim::SimSystem& system = *session->system_;
  if (session->config_.trace) {
    // Same rendering as a batch --trace file: streamed event lines are
    // byte-identical to the golden-trace output.
    for (std::size_t i = 0; i < system.core_count(); ++i) {
      system.trace_bus(i).add_sink(std::make_unique<StreamSink>(
          session->hub_,
          [](Addr, Word raw) { return isa::disassemble(raw); }));
    }
    if (session->journal_ != nullptr) {
      // Journaled sessions additionally persist the trace per core,
      // appending across daemon restarts (recovery truncates back to
      // the restored checkpoint first, so the file stays byte-identical
      // to an uninterrupted batch --trace run).
      for (std::size_t i = 0; i < system.core_count(); ++i) {
        const std::string path = session->journal_->trace_path(i);
        auto stream = std::make_unique<std::ofstream>(
            path, std::ios::binary | std::ios::app);
        if (!stream->good()) {
          return Failure::failure("[srv-journal-io] cannot open trace file '" +
                                  path + "'");
        }
        auto sink = std::make_unique<obs::JsonlSink>(*stream);
        sink->set_disassembler(
            [](Addr, Word raw) { return isa::disassemble(raw); });
        system.trace_bus(i).add_sink(std::move(sink));
        session->trace_files_.push_back(std::move(stream));
      }
    }
  }
  if (system.core_count() > 1) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned engine_workers =
        session->config_.workers != 0
            ? session->config_.workers
            : std::min<unsigned>(
                  hw, static_cast<unsigned>(system.core_count()));
    session->cost_ = 1 + engine_workers;
  }
  journal_event(session->journal_.get(), id, "created", 0);
  return session;
}

Session::~Session() {
  // The manager guarantees kill() ran; this only reaps the thread.
  if (worker_.joinable()) worker_.join();
}

SessionState Session::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void Session::publish_state(const char* state, Cycle cycles,
                            const std::string& stop) {
  using common::json::Value;
  common::json::Object record;
  record["stream"] = Value{std::string("state")};
  record["state"] = Value{std::string(state)};
  record["cycles"] = Value{static_cast<long long>(cycles)};
  if (!stop.empty()) record["stop"] = Value{stop};
  hub_.publish(common::json::dump(Value{std::move(record)}));
}

std::string Session::run_async(Cycle max_cycles) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) return gate;
  reap_worker();
  has_run_ = true;
  pause_requested_.store(false, std::memory_order_relaxed);
  deadline_exceeded_.store(false, std::memory_order_relaxed);
  run_deadline_.reset();
  if (config_.deadline_ms != 0) {
    run_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(config_.deadline_ms);
  }
  state_ = SessionState::kRunning;
  journal_event(journal_.get(), id_, "running", cached_cycles_);
  publish_state("running", cached_cycles_, {});
  worker_ = std::thread([this, max_cycles] { worker_run(max_cycles); });
  return {};
}

void Session::worker_run(Cycle max_cycles) {
  // Exclusive owner of system_ until the state flips back to idle.
  core::StopReason reason = core::StopReason::kCycleLimit;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deadline = run_deadline_;
  }
  std::string expired;  // non-empty: [srv-deadline] terminal teardown
  while (true) {
    const Cycle current = system_->stats().cycles;
    if (current >= max_cycles) break;
    // Supervision, on the quantum boundary: the lifetime cycle budget
    // and the wall-clock deadline (checked here and flagged by the
    // manager's watchdog, which covers long quanta).
    if (config_.max_cycles != 0 && current >= config_.max_cycles) {
      expired = "[srv-deadline] cycle budget exhausted (max_cycles=" +
                std::to_string(config_.max_cycles) + ")";
      break;
    }
    if (deadline_exceeded_.load(std::memory_order_relaxed) ||
        (deadline && std::chrono::steady_clock::now() >= *deadline)) {
      expired = "[srv-deadline] wall-clock deadline exceeded (deadline_ms=" +
                std::to_string(config_.deadline_ms) + ")";
      break;
    }
    Cycle target = std::min(current + config_.control_quantum, max_cycles);
    if (config_.max_cycles != 0) target = std::min(target, config_.max_cycles);
    reason = system_->run(target);
    if (config_.metrics) {
      using common::json::Value;
      common::json::Object record;
      record["stream"] = Value{std::string("metrics")};
      record["cycle"] =
          Value{static_cast<long long>(system_->stats().cycles)};
      common::json::Object counters;
      for (const auto& [key, value] : system_->metrics_snapshot().counters) {
        counters[key] = Value{static_cast<long long>(value)};
      }
      record["counters"] = Value{std::move(counters)};
      hub_.publish(common::json::dump(Value{std::move(record)}));
    }
    if (journal_ != nullptr && config_.ckpt_every != 0 &&
        system_->stats().cycles - last_journal_cycle_ >= config_.ckpt_every) {
      journal_checkpoint();
    }
    if (reason != core::StopReason::kCycleLimit) break;  // terminal stop
    if (pause_requested_.load(std::memory_order_relaxed) ||
        kill_requested_.load(std::memory_order_relaxed)) {
      break;
    }
  }
  if (!expired.empty()) {
    expire_with(expired);
    return;
  }
  const Cycle cycles = system_->stats().cycles;
  std::string stop = core::stop_reason_name(reason);
  if (reason == core::StopReason::kDeadlock) {
    // Structured deadlock state instead of the generic reason name: the
    // diagnosis (channel, direction, PC, occupancy) plus the starved
    // core, dispatchable on the stable [srv-deadlock] code.
    stop = "[srv-deadlock] ";
    const std::optional<core::DeadlockDiagnosis> diagnosis =
        system_->deadlock_diagnosis();
    stop += diagnosis ? diagnosis->to_string()
                      : std::string("deadlock detected (no diagnosis)");
    if (const std::size_t culprit = system_->stop_core();
        culprit < system_->core_count()) {
      stop += " [core " + system_->core_name(culprit) + "]";
    }
  }
  // Every run exit is durable: the journal always holds the stopped
  // state, so a crash between runs recovers to exactly this point.
  if (journal_ != nullptr &&
      (!journal_has_checkpoint_ || cycles != last_journal_cycle_)) {
    journal_checkpoint();
  }
  journal_event(journal_.get(), id_, "idle", cycles, stop);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_cycles_ = cycles;
    cached_stop_ = stop;
    state_ = SessionState::kIdle;
    publish_state("idle", cycles, stop);
  }
  cv_.notify_all();
}

void Session::journal_checkpoint() {
  JournalCheckpoint record;
  record.cycle = system_->stats().cycles;
  for (const std::unique_ptr<std::ofstream>& stream : trace_files_) {
    stream->flush();
    stream->seekp(0, std::ios::end);  // append mode: make tellp the size
    const std::streamoff offset = stream->tellp();
    record.trace_offsets.push_back(
        offset > 0 ? static_cast<u64>(offset) : 0);
  }
  record.metrics = system_->metrics_state();
  record.image = system_->snapshot();
  if (Status written = journal_->write_checkpoint(record); !written.ok) {
    std::fprintf(stderr, "session %llu: %s\n",
                 static_cast<unsigned long long>(id_),
                 written.message.c_str());
    return;
  }
  last_journal_cycle_ = record.cycle;
  journal_has_checkpoint_ = true;
}

void Session::expire_with(const std::string& stop) {
  const Cycle cycles = system_->stats().cycles;
  journal_event(journal_.get(), id_, "deadline", cycles, stop);
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_cycles_ = cycles;
    cached_stop_ = stop;
    if (!killing_) {
      // Terminal self-kill: the session stays in the pool as killed so
      // clients can read the [srv-deadline] stop, but its admission
      // budget is released (on_expire_) for follow-up sessions.
      owner = true;
      state_ = SessionState::kKilled;
      publish_state("killed", cycles, stop);
    } else {
      // A concurrent kill() is joining this thread and owns the
      // terminal transition; hand over as a normal idle exit.
      state_ = SessionState::kIdle;
    }
  }
  cv_.notify_all();
  if (owner) {
    hub_.close();
    if (on_expire_) on_expire_(id_);
  }
}

std::string Session::adopt_recovery(const JournalCheckpoint& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status restored = system_->restore_image(record.image); !restored.ok) {
    return "[srv-ckpt] " + restored.message;
  }
  if (!record.metrics.empty()) {
    if (Status restored = system_->restore_metrics_state(record.metrics);
        !restored.ok) {
      return "[srv-ckpt] " + restored.message;
    }
  }
  has_run_ = true;
  cached_cycles_ = system_->stats().cycles;
  cached_stop_ = "recovered";
  recovered_from_ = record.cycle;
  last_journal_cycle_ = record.cycle;
  journal_has_checkpoint_ = true;
  publish_state("recovered", cached_cycles_, {});
  return {};
}

void Session::poll_supervision(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == SessionState::kRunning && run_deadline_ &&
      now >= *run_deadline_) {
    deadline_exceeded_.store(true, std::memory_order_relaxed);
  }
}

void Session::drain(std::chrono::steady_clock::time_point deadline) {
  hub_.publish("{\"stream\":\"draining\"}");
  Cycle cycles = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ == SessionState::kRunning) {
      pause_requested_.store(true, std::memory_order_relaxed);
      cv_.wait_until(lock, deadline,
                     [this] { return state_ != SessionState::kRunning; });
    }
    cycles = cached_cycles_;
  }
  // The worker checkpointed on its way out; just mark the drain. The
  // journal dir survives (unlike DELETE), so --recover resumes here.
  journal_event(journal_.get(), id_, "drained", cycles);
  (void)kill();
}

std::string Session::pause() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ == SessionState::kDebug) {
    return "[srv-running] a debug client drives this session; detach it "
           "instead of pausing";
  }
  if (state_ != SessionState::kRunning) {
    return "[srv-not-running] no run in progress";
  }
  pause_requested_.store(true, std::memory_order_relaxed);
  cv_.wait(lock, [this] { return state_ != SessionState::kRunning; });
  pause_requested_.store(false, std::memory_order_relaxed);
  return {};
}

std::string Session::kill() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Idempotent, including against a concurrent kill: the caller that
    // set killing_ owns the teardown; everyone else returns at once.
    if (state_ == SessionState::kKilled || killing_) return {};
    killing_ = true;
    kill_requested_.store(true, std::memory_order_relaxed);
    // Take the handle while holding the mutex: run_async/start_debug
    // move-assign worker_ under it, and killing_ keeps them from
    // spawning a replacement while we join outside the lock.
    std::swap(worker, worker_);
  }
  // Join outside the mutex: the worker takes it to flip back to idle.
  if (worker.joinable()) worker.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = SessionState::kKilled;
    publish_state("killed", cached_cycles_, cached_stop_);
  }
  hub_.close();
  return {};
}

Expected<std::vector<unsigned char>> Session::checkpoint() {
  using Failure = Expected<std::vector<unsigned char>>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Failure::failure(std::move(gate));
  }
  if (!has_run_) {
    return Failure::failure(
        "[srv-never-ran] checkpoint requires a session that has run (or "
        "been restored)");
  }
  return system_->snapshot();
}

std::string Session::restore_image(const std::vector<unsigned char>& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) return gate;
  if (const Status restored = system_->restore_image(image); !restored.ok) {
    return "[srv-ckpt] " + restored.message;
  }
  has_run_ = true;
  cached_cycles_ = system_->stats().cycles;
  cached_stop_ = "restored";
  journal_event(journal_.get(), id_, "restored", cached_cycles_);
  publish_state("restored", cached_cycles_, {});
  return {};
}

Expected<u16> Session::start_debug(u16 port) {
  using Failure = Expected<u16>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Failure::failure(std::move(gate));
  }
  Expected<rsp::TcpListener> bound = rsp::TcpListener::listen(port);
  if (!bound) return Failure::failure("[srv-debug] " + bound.error());
  rsp::TcpListener listener = std::move(bound).value();
  const u16 actual = listener.port();
  reap_worker();
  has_run_ = true;  // the client may run the program
  state_ = SessionState::kDebug;
  publish_state("debug", cached_cycles_, {});
  worker_ = std::thread(
      [this, moved = std::move(listener)]() mutable {
        worker_debug(std::move(moved));
      });
  return actual;
}

void Session::worker_debug(rsp::TcpListener listener) {
  std::unique_ptr<rsp::Transport> client;
  while (!kill_requested_.load(std::memory_order_relaxed)) {
    client = listener.accept(100);
    if (client != nullptr) break;
  }
  std::string end = "cancelled";
  if (client != nullptr) {
    sim::SimSystem::GdbServeHooks hooks;
    hooks.busy_listener = &listener;
    hooks.cancel = &kill_requested_;
    const Expected<rsp::SessionEnd> served =
        system_->serve_gdb_on(*client, hooks);
    end = served ? rsp::to_string(served.value()) : served.error();
  }
  const Cycle cycles = system_->stats().cycles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_cycles_ = cycles;
    cached_stop_ = "debug-" + end;
    state_ = SessionState::kIdle;
    publish_state("idle", cycles, cached_stop_);
  }
  cv_.notify_all();
}

void Session::reap_worker() {
  if (worker_.joinable()) worker_.join();
}

std::string Session::gate_idle() const {
  // A session being torn down reports itself as killed even while the
  // worker join is still in flight, so no new worker can slip in.
  if (killing_) return busy_message(SessionState::kKilled);
  if (state_ != SessionState::kIdle) return busy_message(state_);
  return {};
}

std::string Session::info_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"cores\":" + std::to_string(config_.desc.cores.size()) +
                    ",\"cycles\":" + std::to_string(cached_cycles_) +
                    ",\"id\":" + std::to_string(id_);
  if (recovered_from_) {
    out += ",\"recovered_from_cycle\":" + std::to_string(*recovered_from_);
  }
  out += ",\"state\":\"" + std::string(to_string(state_)) + "\",\"stop\":\"" +
         common::json::escape(cached_stop_) + "\"}";
  return out;
}

Expected<std::string> Session::stats_page() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Expected<std::string>::failure(std::move(gate));
  }
  return stats_text(*system_);
}

Expected<std::string> Session::metrics_page() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Expected<std::string>::failure(std::move(gate));
  }
  return system_->metrics_snapshot().to_string();
}

}  // namespace mbcosim::server
