#include "server/session.hpp"

#include <algorithm>
#include <utility>

#include "common/json.hpp"
#include "isa/isa.hpp"

namespace mbcosim::server {

namespace {

std::string busy_message(SessionState state) {
  return std::string("[srv-running] session is ") + to_string(state) +
         "; operation requires an idle session";
}

}  // namespace

std::string stats_text(const sim::SimSystem& system) {
  const core::CoSimStats s = system.stats();
  std::string out;
  out += "cycles " + std::to_string(s.cycles);
  out += "\ninstructions " + std::to_string(s.instructions);
  out += "\nfsl_stall_cycles " + std::to_string(s.fsl_stall_cycles);
  out += "\nhw_cycles_stepped " + std::to_string(s.hw_cycles_stepped);
  out += "\nhw_cycles_skipped " + std::to_string(s.hw_cycles_skipped);
  out += "\nwords_to_hw " + std::to_string(s.bridge.words_to_hw);
  out += "\nwords_from_hw " + std::to_string(s.bridge.words_from_hw);
  const iss::DbtStats dbt = system.dbt_stats();
  out += "\ndbt_blocks_translated " + std::to_string(dbt.blocks_translated);
  out += "\ndbt_block_dispatches " + std::to_string(dbt.block_dispatches);
  out += "\ndbt_smc_retirements " + std::to_string(dbt.smc_retirements);
  out += "\ndbt_fast_path_instructions " + std::to_string(dbt.dbt_instructions);
  if (system.core_count() > 1) {
    for (std::size_t i = 0; i < system.core_count(); ++i) {
      const core::CoSimStats cs = system.core_stats(i);
      const std::string& name = system.core_name(i);
      out += "\ncore." + name + ".cycles " + std::to_string(cs.cycles);
      out += "\ncore." + name + ".instructions " +
             std::to_string(cs.instructions);
      out += "\ncore." + name + ".fsl_stall_cycles " +
             std::to_string(cs.fsl_stall_cycles);
    }
  }
  out += "\n";
  return out;
}

Expected<std::shared_ptr<Session>> Session::create(u64 id,
                                                   SessionConfig config) {
  using Failure = Expected<std::shared_ptr<Session>>;
  sim::SimSystem::Builder builder;
  builder.machine(config.desc).workers(config.workers);
  if (config.metrics) builder.metrics();
  Expected<sim::SimSystem> built = builder.build();
  if (!built) {
    return Failure::failure("[srv-bad-machine] " + built.error());
  }
  std::shared_ptr<Session> session(new Session(id, std::move(config)));
  session->system_.emplace(std::move(built).value());
  sim::SimSystem& system = *session->system_;
  if (session->config_.trace) {
    // Same rendering as a batch --trace file: streamed event lines are
    // byte-identical to the golden-trace output.
    for (std::size_t i = 0; i < system.core_count(); ++i) {
      system.trace_bus(i).add_sink(std::make_unique<StreamSink>(
          session->hub_,
          [](Addr, Word raw) { return isa::disassemble(raw); }));
    }
  }
  if (system.core_count() > 1) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned engine_workers =
        session->config_.workers != 0
            ? session->config_.workers
            : std::min<unsigned>(
                  hw, static_cast<unsigned>(system.core_count()));
    session->cost_ = 1 + engine_workers;
  }
  return session;
}

Session::~Session() {
  // The manager guarantees kill() ran; this only reaps the thread.
  if (worker_.joinable()) worker_.join();
}

SessionState Session::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void Session::publish_state(const char* state, Cycle cycles,
                            const std::string& stop) {
  using common::json::Value;
  common::json::Object record;
  record["stream"] = Value{std::string("state")};
  record["state"] = Value{std::string(state)};
  record["cycles"] = Value{static_cast<long long>(cycles)};
  if (!stop.empty()) record["stop"] = Value{stop};
  hub_.publish(common::json::dump(Value{std::move(record)}));
}

std::string Session::run_async(Cycle max_cycles) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) return gate;
  reap_worker();
  has_run_ = true;
  pause_requested_.store(false, std::memory_order_relaxed);
  state_ = SessionState::kRunning;
  publish_state("running", cached_cycles_, {});
  worker_ = std::thread([this, max_cycles] { worker_run(max_cycles); });
  return {};
}

void Session::worker_run(Cycle max_cycles) {
  // Exclusive owner of system_ until the state flips back to idle.
  core::StopReason reason = core::StopReason::kCycleLimit;
  while (true) {
    const Cycle current = system_->stats().cycles;
    if (current >= max_cycles) break;
    const Cycle target =
        std::min(current + config_.control_quantum, max_cycles);
    reason = system_->run(target);
    if (config_.metrics) {
      using common::json::Value;
      common::json::Object record;
      record["stream"] = Value{std::string("metrics")};
      record["cycle"] =
          Value{static_cast<long long>(system_->stats().cycles)};
      common::json::Object counters;
      for (const auto& [key, value] : system_->metrics_snapshot().counters) {
        counters[key] = Value{static_cast<long long>(value)};
      }
      record["counters"] = Value{std::move(counters)};
      hub_.publish(common::json::dump(Value{std::move(record)}));
    }
    if (reason != core::StopReason::kCycleLimit) break;  // terminal stop
    if (pause_requested_.load(std::memory_order_relaxed) ||
        kill_requested_.load(std::memory_order_relaxed)) {
      break;
    }
  }
  const Cycle cycles = system_->stats().cycles;
  const std::string stop = core::stop_reason_name(reason);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_cycles_ = cycles;
    cached_stop_ = stop;
    state_ = SessionState::kIdle;
    publish_state("idle", cycles, stop);
  }
  cv_.notify_all();
}

std::string Session::pause() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ == SessionState::kDebug) {
    return "[srv-running] a debug client drives this session; detach it "
           "instead of pausing";
  }
  if (state_ != SessionState::kRunning) {
    return "[srv-not-running] no run in progress";
  }
  pause_requested_.store(true, std::memory_order_relaxed);
  cv_.wait(lock, [this] { return state_ != SessionState::kRunning; });
  pause_requested_.store(false, std::memory_order_relaxed);
  return {};
}

std::string Session::kill() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Idempotent, including against a concurrent kill: the caller that
    // set killing_ owns the teardown; everyone else returns at once.
    if (state_ == SessionState::kKilled || killing_) return {};
    killing_ = true;
    kill_requested_.store(true, std::memory_order_relaxed);
    // Take the handle while holding the mutex: run_async/start_debug
    // move-assign worker_ under it, and killing_ keeps them from
    // spawning a replacement while we join outside the lock.
    std::swap(worker, worker_);
  }
  // Join outside the mutex: the worker takes it to flip back to idle.
  if (worker.joinable()) worker.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = SessionState::kKilled;
    publish_state("killed", cached_cycles_, cached_stop_);
  }
  hub_.close();
  return {};
}

Expected<std::vector<unsigned char>> Session::checkpoint() {
  using Failure = Expected<std::vector<unsigned char>>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Failure::failure(std::move(gate));
  }
  if (!has_run_) {
    return Failure::failure(
        "[srv-never-ran] checkpoint requires a session that has run (or "
        "been restored)");
  }
  return system_->snapshot();
}

std::string Session::restore_image(const std::vector<unsigned char>& image) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) return gate;
  if (const Status restored = system_->restore_image(image); !restored.ok) {
    return "[srv-ckpt] " + restored.message;
  }
  has_run_ = true;
  cached_cycles_ = system_->stats().cycles;
  cached_stop_ = "restored";
  publish_state("restored", cached_cycles_, {});
  return {};
}

Expected<u16> Session::start_debug(u16 port) {
  using Failure = Expected<u16>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Failure::failure(std::move(gate));
  }
  Expected<rsp::TcpListener> bound = rsp::TcpListener::listen(port);
  if (!bound) return Failure::failure("[srv-debug] " + bound.error());
  rsp::TcpListener listener = std::move(bound).value();
  const u16 actual = listener.port();
  reap_worker();
  has_run_ = true;  // the client may run the program
  state_ = SessionState::kDebug;
  publish_state("debug", cached_cycles_, {});
  worker_ = std::thread(
      [this, moved = std::move(listener)]() mutable {
        worker_debug(std::move(moved));
      });
  return actual;
}

void Session::worker_debug(rsp::TcpListener listener) {
  std::unique_ptr<rsp::Transport> client;
  while (!kill_requested_.load(std::memory_order_relaxed)) {
    client = listener.accept(100);
    if (client != nullptr) break;
  }
  std::string end = "cancelled";
  if (client != nullptr) {
    sim::SimSystem::GdbServeHooks hooks;
    hooks.busy_listener = &listener;
    hooks.cancel = &kill_requested_;
    const Expected<rsp::SessionEnd> served =
        system_->serve_gdb_on(*client, hooks);
    end = served ? rsp::to_string(served.value()) : served.error();
  }
  const Cycle cycles = system_->stats().cycles;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached_cycles_ = cycles;
    cached_stop_ = "debug-" + end;
    state_ = SessionState::kIdle;
    publish_state("idle", cycles, cached_stop_);
  }
  cv_.notify_all();
}

void Session::reap_worker() {
  if (worker_.joinable()) worker_.join();
}

std::string Session::gate_idle() const {
  // A session being torn down reports itself as killed even while the
  // worker join is still in flight, so no new worker can slip in.
  if (killing_) return busy_message(SessionState::kKilled);
  if (state_ != SessionState::kIdle) return busy_message(state_);
  return {};
}

std::string Session::info_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"cores\":" + std::to_string(config_.desc.cores.size()) +
                    ",\"cycles\":" + std::to_string(cached_cycles_) +
                    ",\"id\":" + std::to_string(id_) + ",\"state\":\"" +
                    to_string(state_) + "\",\"stop\":\"" +
                    common::json::escape(cached_stop_) + "\"}";
  return out;
}

Expected<std::string> Session::stats_page() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Expected<std::string>::failure(std::move(gate));
  }
  return stats_text(*system_);
}

Expected<std::string> Session::metrics_page() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::string gate = gate_idle(); !gate.empty()) {
    return Expected<std::string>::failure(std::move(gate));
  }
  return system_->metrics_snapshot().to_string();
}

}  // namespace mbcosim::server
