#include "server/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "common/json.hpp"

namespace mbcosim::server {

namespace {

/// recv() slice used while assembling a request. Only slices that
/// return no data are charged against the timeout, so the budget bounds
/// *idle* time: a client streaming a large body is never timed out
/// mid-transfer no matter how many 4KB recv() calls it takes, while a
/// stalled request fails after ~timeout_ms of silence. Loopback
/// transports return instantly regardless; empty loopback reads still
/// charge a slice, so a truncated loopback request fails fast instead
/// of looping forever.
constexpr int kRecvSliceMs = 50;

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Parse the header section (everything before the blank line) into the
/// request; empty string on success.
std::string parse_head(const std::string& head, HttpRequest& out) {
  std::size_t pos = 0;
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return "[srv-bad-request] malformed request line";
  }
  out.method = request_line.substr(0, sp1);
  out.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = out.target.find('?');
  out.path = query == std::string::npos ? out.target
                                        : out.target.substr(0, query);
  if (out.method.empty() || out.path.empty() || out.path.front() != '/') {
    return "[srv-bad-request] malformed request line";
  }
  pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return "[srv-bad-request] malformed header line";
    }
    out.headers[lower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
  }
  return {};
}

}  // namespace

Expected<HttpRequest> read_request(rsp::Transport& transport, int timeout_ms) {
  std::string carry;
  return read_request(transport, timeout_ms, carry);
}

Expected<HttpRequest> read_request(rsp::Transport& transport, int timeout_ms,
                                   std::string& carry) {
  using Failure = Expected<HttpRequest>;
  std::string buffer = std::move(carry);
  carry.clear();
  std::size_t head_end = std::string::npos;
  int elapsed = 0;
  // Phase 1: accumulate until the blank line ending the header section.
  while (true) {
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > kMaxHeaderBytes) {
      return Failure::failure("[srv-bad-request] header section too large");
    }
    if (transport.closed()) {
      if (buffer.empty()) return Failure::failure("[closed]");
      return Failure::failure("[srv-bad-request] truncated request");
    }
    if (elapsed >= timeout_ms) {
      if (buffer.empty()) return Failure::failure("[closed]");
      return Failure::failure("[srv-bad-request] timed out reading request");
    }
    const std::string chunk = transport.recv(kRecvSliceMs);
    if (chunk.empty()) elapsed += kRecvSliceMs;
    buffer += chunk;
  }

  HttpRequest request;
  if (std::string err = parse_head(buffer.substr(0, head_end + 2), request);
      !err.empty()) {
    return Failure::failure(err);
  }

  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    try {
      content_length = std::stoull(it->second);
    } catch (const std::exception&) {
      return Failure::failure("[srv-bad-request] bad Content-Length");
    }
  }
  if (content_length > kMaxBodyBytes) {
    return Failure::failure("[srv-bad-request] body too large");
  }

  // Phase 2: the body. Bytes beyond the header section already read
  // count toward it.
  request.body = buffer.substr(head_end + 4);
  while (request.body.size() < content_length) {
    if (transport.closed()) {
      return Failure::failure("[srv-bad-request] truncated request body");
    }
    if (elapsed >= timeout_ms) {
      return Failure::failure("[srv-bad-request] timed out reading body");
    }
    const std::string chunk = transport.recv(kRecvSliceMs);
    if (chunk.empty()) elapsed += kRecvSliceMs;
    request.body += chunk;
  }
  // Bytes past the body belong to the next pipelined request on a
  // keep-alive connection; hand them back instead of dropping them.
  carry = request.body.substr(content_length);
  request.body.resize(content_length);
  return request;
}

const char* HttpResponseWriter::status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 503: return "Service Unavailable";
    case 500:
    default: return "Internal Server Error";
  }
}

bool HttpResponseWriter::respond(int status, std::string_view content_type,
                                 std::string_view body) {
  responded_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     status_text(status) + "\r\nContent-Type: " +
                     std::string(content_type) + "\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\nConnection: " +
                     (keep_alive_ ? "keep-alive" : "close") + "\r\n\r\n";
  head += body;
  return transport_.send(head);
}

bool HttpResponseWriter::begin_chunked(int status,
                                       std::string_view content_type) {
  responded_ = true;
  chunked_ = true;
  keep_alive_ = false;  // a stream occupies its connection until EOF
  const std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                           status_text(status) + "\r\nContent-Type: " +
                           std::string(content_type) +
                           "\r\nTransfer-Encoding: chunked\r\nConnection: "
                           "close\r\n\r\n";
  return transport_.send(head);
}

bool HttpResponseWriter::chunk(std::string_view data) {
  if (data.empty()) return true;  // a zero-size chunk would end the stream
  char size[32];
  std::snprintf(size, sizeof size, "%zx\r\n", data.size());
  std::string frame = size;
  frame += data;
  frame += "\r\n";
  return transport_.send(frame);
}

bool HttpResponseWriter::finish_chunked() {
  return transport_.send("0\r\n\r\n");
}

bool HttpResponseWriter::client_alive() {
  // Only chunked streams probe, and a chunked response pins its
  // connection (keep-alive is forced off): nothing legitimate arrives
  // after the request, so draining is safe and lets closed() observe
  // EOF.
  (void)transport_.recv(0);
  return !transport_.closed();
}

void serve_connection(
    rsp::Transport& transport,
    const std::function<void(const HttpRequest&, HttpResponseWriter&)>&
        handler,
    const std::atomic<bool>* stopping) {
  std::string carry;  // pipelined bytes past one request's body
  for (int served = 1; served <= kMaxRequestsPerConnection; ++served) {
    Expected<HttpRequest> request =
        read_request(transport, kRequestTimeoutMs, carry);
    HttpResponseWriter writer(transport);
    if (!request) {
      // "[closed]" covers both a connection that never spoke and a
      // keep-alive client that hung up (or idled out) between requests.
      if (request.error() != "[closed]") {
        writer.respond(
            400, "application/json",
            "{\"error\":\"" + common::json::escape(request.error()) + "\"}");
      }
      return;
    }
    bool keep = false;
    if (const auto it = request.value().headers.find("connection");
        it != request.value().headers.end()) {
      std::string value = it->second;
      std::transform(value.begin(), value.end(), value.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                     });
      keep = value == "keep-alive";
    }
    if (served == kMaxRequestsPerConnection ||
        (stopping != nullptr &&
         stopping->load(std::memory_order_relaxed))) {
      keep = false;
    }
    writer.set_keep_alive(keep);
    handler(request.value(), writer);
    if (writer.chunked() || !writer.keep_alive()) return;
  }
}

Expected<std::unique_ptr<HttpServer>> HttpServer::start(u16 port,
                                                        Handler handler) {
  using Failure = Expected<std::unique_ptr<HttpServer>>;
  Expected<rsp::TcpListener> bound = rsp::TcpListener::listen(port, 16);
  if (!bound) {
    return Failure::failure("HttpServer: " + bound.error());
  }
  // Constructor is private; no make_unique.
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(bound).value(), std::move(handler)));
  return server;
}

HttpServer::HttpServer(rsp::TcpListener listener, Handler handler)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      port_(listener_.port()) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::unique_ptr<rsp::Transport> client = listener_.accept(100);
    if (client == nullptr) continue;
    // Connection threads accumulate until stop() joins them — fine for
    // the bounded session counts this server admits; a daemon expecting
    // millions of connections would reap finished threads here.
    std::shared_ptr<rsp::Transport> shared = std::move(client);
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.emplace_back([this, shared] {
      serve_connection(*shared, handler_, &stopping_);
    });
  }
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;  // a second caller must not re-join the threads
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
}

}  // namespace mbcosim::server
