#include "rtl/primitives.hpp"

namespace mbcosim::rtl {

namespace {
void check_same_width(const LogicVector& a, const LogicVector& b,
                      const char* what) {
  if (a.width != b.width) {
    throw SimError(std::string(what) + ": operand width mismatch (" +
                   std::to_string(int(a.width)) + " vs " +
                   std::to_string(int(b.width)) + ")");
  }
}
}  // namespace

LogicVector rc_add(const LogicVector& a, const LogicVector& b, Logic carry_in,
                   Logic* carry_out) {
  check_same_width(a, b, "rc_add");
  LogicVector sum = LogicVector::of(a.width, 0);
  Logic carry = carry_in;
  for (unsigned i = 0; i < a.width; ++i) {
    const Logic ai = a.at(i);
    const Logic bi = b.at(i);
    // Full adder: s = a ^ b ^ c; c' = (a & b) | (c & (a ^ b)).
    const Logic axb = logic_xor(ai, bi);
    sum.set(i, logic_xor(axb, carry));
    carry = logic_or(logic_and(ai, bi), logic_and(carry, axb));
  }
  if (carry_out != nullptr) *carry_out = carry;
  return sum;
}

LogicVector rc_sub(const LogicVector& a, const LogicVector& b,
                   Logic* carry_out) {
  return rc_add(a, not_v(b), Logic::k1, carry_out);
}

LogicVector and_v(const LogicVector& a, const LogicVector& b) {
  check_same_width(a, b, "and_v");
  LogicVector out = LogicVector::of(a.width, 0);
  for (unsigned i = 0; i < a.width; ++i) {
    out.set(i, logic_and(a.at(i), b.at(i)));
  }
  return out;
}

LogicVector or_v(const LogicVector& a, const LogicVector& b) {
  check_same_width(a, b, "or_v");
  LogicVector out = LogicVector::of(a.width, 0);
  for (unsigned i = 0; i < a.width; ++i) {
    out.set(i, logic_or(a.at(i), b.at(i)));
  }
  return out;
}

LogicVector xor_v(const LogicVector& a, const LogicVector& b) {
  check_same_width(a, b, "xor_v");
  LogicVector out = LogicVector::of(a.width, 0);
  for (unsigned i = 0; i < a.width; ++i) {
    out.set(i, logic_xor(a.at(i), b.at(i)));
  }
  return out;
}

LogicVector not_v(const LogicVector& a) {
  LogicVector out = LogicVector::of(a.width, 0);
  for (unsigned i = 0; i < a.width; ++i) {
    out.set(i, logic_not(a.at(i)));
  }
  return out;
}

LogicVector mux2(Logic select, const LogicVector& when0,
                 const LogicVector& when1) {
  check_same_width(when0, when1, "mux2");
  if (select == Logic::k0) return when0;
  if (select == Logic::k1) return when1;
  // Unknown select: bits that agree stay known, the rest go X.
  LogicVector out = LogicVector::of(when0.width, 0);
  for (unsigned i = 0; i < when0.width; ++i) {
    const Logic z = when0.at(i);
    const Logic o = when1.at(i);
    out.set(i, z == o ? z : Logic::kX);
  }
  return out;
}

Logic eq_v(const LogicVector& a, const LogicVector& b) {
  check_same_width(a, b, "eq_v");
  Logic all = Logic::k1;
  for (unsigned i = 0; i < a.width; ++i) {
    all = logic_and(all, logic_not(logic_xor(a.at(i), b.at(i))));
    if (all == Logic::k0) return Logic::k0;
  }
  return all;
}

Logic lt_signed(const LogicVector& a, const LogicVector& b) {
  // a < b  <=>  sign(a - b) xor overflow(a - b).
  LogicVector diff = rc_sub(a, b);
  const Logic sa = a.at(a.width - 1);
  const Logic sb = b.at(b.width - 1);
  const Logic sd = diff.at(diff.width - 1);
  // Overflow when the operand signs differ and the result sign differs
  // from the sign of a.
  const Logic overflow =
      logic_and(logic_xor(sa, sb), logic_xor(sa, sd));
  return logic_xor(sd, overflow);
}

namespace {
LogicVector barrel_shift(const LogicVector& a, const LogicVector& amount,
                         bool left, bool arithmetic) {
  LogicVector stage = a;
  const Logic fill_known = arithmetic ? a.at(a.width - 1) : Logic::k0;
  for (unsigned level = 0; level < amount.width; ++level) {
    const unsigned step = 1u << level;
    if (step >= a.width && level > 0) {
      // Remaining levels shift everything out; still evaluate the mux
      // so the cost model matches the hardware depth.
    }
    LogicVector shifted = LogicVector::of(a.width, 0);
    for (unsigned i = 0; i < a.width; ++i) {
      Logic moved;
      if (left) {
        moved = i >= step ? stage.at(i - step) : Logic::k0;
      } else {
        moved = (i + step < a.width) ? stage.at(i + step) : fill_known;
      }
      shifted.set(i, moved);
    }
    stage = mux2(amount.at(level), stage, shifted);
  }
  return stage;
}
}  // namespace

LogicVector barrel_shift_right_arith(const LogicVector& a,
                                     const LogicVector& amount) {
  return barrel_shift(a, amount, /*left=*/false, /*arithmetic=*/true);
}

LogicVector barrel_shift_right_logic(const LogicVector& a,
                                     const LogicVector& amount) {
  return barrel_shift(a, amount, /*left=*/false, /*arithmetic=*/false);
}

LogicVector barrel_shift_left(const LogicVector& a,
                              const LogicVector& amount) {
  return barrel_shift(a, amount, /*left=*/true, /*arithmetic=*/false);
}

LogicVector array_multiply(const LogicVector& a, const LogicVector& b) {
  check_same_width(a, b, "array_multiply");
  // Shift-add array: for each bit of b, conditionally add the shifted a.
  LogicVector acc = LogicVector::of(a.width, 0);
  LogicVector shifted = a;
  for (unsigned i = 0; i < b.width; ++i) {
    const LogicVector summand =
        mux2(b.at(i), LogicVector::of(a.width, 0), shifted);
    acc = rc_add(acc, summand);
    // Shift partial-product operand left by one.
    LogicVector next = LogicVector::of(a.width, 0);
    for (unsigned j = a.width; j-- > 1;) next.set(j, shifted.at(j - 1));
    next.set(0, Logic::k0);
    shifted = next;
  }
  return acc;
}

LogicVector zero_extend(const LogicVector& a, unsigned width) {
  if (width < a.width) throw SimError("zero_extend: narrowing");
  LogicVector out = LogicVector::of(width, 0);
  for (unsigned i = 0; i < a.width; ++i) out.set(i, a.at(i));
  return out;
}

LogicVector sign_extend_v(const LogicVector& a, unsigned width) {
  if (width < a.width) throw SimError("sign_extend_v: narrowing");
  LogicVector out = LogicVector::of(width, 0);
  const Logic sign = a.at(a.width - 1);
  for (unsigned i = 0; i < width; ++i) {
    out.set(i, i < a.width ? a.at(i) : sign);
  }
  return out;
}

LogicVector truncate(const LogicVector& a, unsigned width) {
  if (width > a.width) throw SimError("truncate: widening");
  LogicVector out = LogicVector::of(width, 0);
  for (unsigned i = 0; i < width; ++i) out.set(i, a.at(i));
  return out;
}

LogicVector slice(const LogicVector& a, unsigned low, unsigned width) {
  if (low + width > a.width) throw SimError("slice: out of range");
  LogicVector out = LogicVector::of(width, 0);
  for (unsigned i = 0; i < width; ++i) out.set(i, a.at(low + i));
  return out;
}

LogicVector concat(const LogicVector& high, const LogicVector& low) {
  const unsigned width = high.width + low.width;
  if (width > 64) throw SimError("concat: result exceeds 64 bits");
  LogicVector out = LogicVector::of(width, 0);
  for (unsigned i = 0; i < low.width; ++i) out.set(i, low.at(i));
  for (unsigned i = 0; i < high.width; ++i) {
    out.set(low.width + i, high.at(i));
  }
  return out;
}

}  // namespace mbcosim::rtl
