// Four-valued logic and bit vectors for the low-level (HDL-style)
// simulation kernel — the substrate of the ModelSim-behavioral baseline
// the paper compares against (Section IV, Table I). Values are '0', '1',
// 'X' (unknown) and 'Z' (treated as unknown on reads).
#pragma once

#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::rtl {

enum class Logic : u8 { k0 = 0, k1 = 1, kX = 2, kZ = 3 };

[[nodiscard]] constexpr char logic_char(Logic value) {
  switch (value) {
    case Logic::k0: return '0';
    case Logic::k1: return '1';
    case Logic::kX: return 'X';
    case Logic::kZ: return 'Z';
  }
  return '?';
}

/// A bit vector of up to 64 bits: value bits plus an unknown mask
/// (bit set in `xmask` means that bit is X/Z).
struct LogicVector {
  u64 bits = 0;
  u64 xmask = 0;
  u8 width = 1;

  static LogicVector of(unsigned bit_width, u64 value) {
    check_width(bit_width);
    LogicVector v;
    v.width = static_cast<u8>(bit_width);
    v.bits = value & low_mask64(bit_width);
    v.xmask = 0;
    return v;
  }

  static LogicVector unknown(unsigned bit_width) {
    check_width(bit_width);
    LogicVector v;
    v.width = static_cast<u8>(bit_width);
    v.bits = 0;
    v.xmask = low_mask64(bit_width);
    return v;
  }

  [[nodiscard]] bool is_fully_known() const noexcept { return xmask == 0; }

  /// Known numeric value; throws if any bit is unknown.
  [[nodiscard]] u64 value() const {
    if (!is_fully_known()) {
      throw SimError("LogicVector::value on vector with X bits");
    }
    return bits;
  }

  [[nodiscard]] Logic at(unsigned index) const {
    if (index >= width) {
      throw SimError("LogicVector::at index out of range");
    }
    if ((xmask >> index) & 1u) return Logic::kX;
    return ((bits >> index) & 1u) != 0 ? Logic::k1 : Logic::k0;
  }

  void set(unsigned index, Logic value) {
    if (index >= width) {
      throw SimError("LogicVector::set index out of range");
    }
    const u64 mask = u64{1} << index;
    switch (value) {
      case Logic::k0:
        bits &= ~mask;
        xmask &= ~mask;
        break;
      case Logic::k1:
        bits |= mask;
        xmask &= ~mask;
        break;
      case Logic::kX:
      case Logic::kZ:
        bits &= ~mask;
        xmask |= mask;
        break;
    }
  }

  friend bool operator==(const LogicVector& a, const LogicVector& b) {
    return a.width == b.width && a.bits == b.bits && a.xmask == b.xmask;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    out.reserve(width);
    for (unsigned i = width; i-- > 0;) {
      out.push_back(logic_char(at(i)));
    }
    return out;
  }

 private:
  static void check_width(unsigned bit_width) {
    if (bit_width == 0 || bit_width > 64) {
      throw SimError("LogicVector: width must be in [1, 64]");
    }
  }
};

/// Single-bit helpers with X propagation.
[[nodiscard]] constexpr Logic logic_and(Logic a, Logic b) {
  if (a == Logic::k0 || b == Logic::k0) return Logic::k0;
  if (a == Logic::k1 && b == Logic::k1) return Logic::k1;
  return Logic::kX;
}
[[nodiscard]] constexpr Logic logic_or(Logic a, Logic b) {
  if (a == Logic::k1 || b == Logic::k1) return Logic::k1;
  if (a == Logic::k0 && b == Logic::k0) return Logic::k0;
  return Logic::kX;
}
[[nodiscard]] constexpr Logic logic_xor(Logic a, Logic b) {
  if (a == Logic::kX || a == Logic::kZ || b == Logic::kX || b == Logic::kZ) {
    return Logic::kX;
  }
  return a == b ? Logic::k0 : Logic::k1;
}
[[nodiscard]] constexpr Logic logic_not(Logic a) {
  if (a == Logic::k0) return Logic::k1;
  if (a == Logic::k1) return Logic::k0;
  return Logic::kX;
}

}  // namespace mbcosim::rtl
