// VCD (Value Change Dump) waveform writer for the event-driven kernel —
// what you would get from the baseline simulator's wave window. Attach it
// to a Simulator, call sample() once per clock cycle (or settle point),
// and load the output in GTKWave or any VCD viewer.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rtl/kernel.hpp"

namespace mbcosim::rtl {

class VcdWriter {
 public:
  /// Observe `nets` (all values dumped relative to sample index). The
  /// stream must outlive the writer. Timescale is one simulated clock
  /// cycle per VCD time unit.
  VcdWriter(std::ostream& out, std::vector<const Net*> nets,
            std::string module_name = "mbcosim");

  /// Record the current values at time `time` (monotonically
  /// non-decreasing; usually the clock-cycle count). Only changed nets
  /// are emitted, per the VCD format.
  void sample(u64 time);

  [[nodiscard]] u64 samples_taken() const noexcept { return samples_; }

 private:
  void write_header(const std::string& module_name);
  static std::string identifier(std::size_t index);

  std::ostream& out_;
  std::vector<const Net*> nets_;
  std::vector<LogicVector> last_;
  std::vector<std::string> ids_;
  u64 samples_ = 0;
  bool header_written_ = false;
};

}  // namespace mbcosim::rtl
