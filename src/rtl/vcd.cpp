#include "rtl/vcd.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace mbcosim::rtl {

VcdWriter::VcdWriter(std::ostream& out, std::vector<const Net*> nets,
                     std::string module_name)
    : out_(out), nets_(std::move(nets)) {
  if (nets_.empty()) {
    throw SimError("VcdWriter: no nets to observe");
  }
  last_.reserve(nets_.size());
  ids_.reserve(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    last_.push_back(LogicVector::unknown(nets_[i]->width()));
    ids_.push_back(identifier(i));
  }
  write_header(module_name);
}

std::string VcdWriter::identifier(std::size_t index) {
  // Printable VCD identifier alphabet: '!' (33) .. '~' (126).
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::write_header(const std::string& module_name) {
  out_ << "$date mbcosim $end\n";
  out_ << "$version mbcosim rtl kernel $end\n";
  out_ << "$timescale 1 ns $end\n";
  out_ << "$scope module " << module_name << " $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    std::string name = nets_[i]->name();
    std::replace(name.begin(), name.end(), ' ', '_');
    out_ << "$var wire " << nets_[i]->width() << " " << ids_[i] << " "
         << name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::sample(u64 time) {
  bool time_emitted = false;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const LogicVector& now = nets_[i]->read();
    if (samples_ != 0 && now == last_[i]) continue;
    if (!time_emitted) {
      out_ << "#" << time << "\n";
      time_emitted = true;
    }
    if (nets_[i]->width() == 1) {
      out_ << logic_char(now.at(0)) << ids_[i] << "\n";
    } else {
      out_ << "b" << now.to_string() << " " << ids_[i] << "\n";
    }
    last_[i] = now;
  }
  ++samples_;
}

}  // namespace mbcosim::rtl
