#include "rtl/kernel.hpp"

#include <memory>
#include <utility>

#include "ckpt/ckpt.hpp"

namespace mbcosim::rtl {

Net& Simulator::net(std::string name, unsigned width) {
  nets_.push_back(std::make_unique<Net>(std::move(name), width));
  return *nets_.back();
}

Net& Simulator::net(std::string name, unsigned width, u64 init) {
  Net& n = net(std::move(name), width);
  n.current_ = LogicVector::of(width, init);
  n.previous_ = n.current_;
  return n;
}

Net* Simulator::find_net(std::string_view name) const {
  for (const auto& net : nets_) {
    if (net->name() == name) return net.get();
  }
  return nullptr;
}

void Simulator::process(std::string name, std::vector<Net*> sensitivity,
                        std::function<void()> body) {
  const u32 index = static_cast<u32>(processes_.size());
  processes_.push_back(Process{std::move(name), std::move(body), false});
  for (Net* n : sensitivity) {
    n->sensitive_processes_.push_back(index);
  }
}

void Simulator::assign(Net& target, const LogicVector& value) {
  if (value.width != target.width()) {
    throw SimError("Simulator::assign: width mismatch on net '" +
                   target.name() + "' (" + std::to_string(int(value.width)) +
                   " vs " + std::to_string(target.width()) + ")");
  }
  ++stats_.assignments;
  target.pending_ = value;
  target.has_pending_ = true;
  // Register for commit at the delta boundary (last assignment wins,
  // VHDL signal semantics).
  for (Net* n : pending_nets_) {
    if (n == &target) return;
  }
  pending_nets_.push_back(&target);
}

void Simulator::run_queued_processes() {
  // Drain the current queue; new wake-ups go to the next delta.
  std::vector<u32> queue = std::move(run_queue_);
  run_queue_.clear();
  for (const u32 index : queue) {
    processes_[index].queued = false;
    ++stats_.process_activations;
    processes_[index].body();
  }
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  for (u32 i = 0; i < processes_.size(); ++i) {
    processes_[i].queued = true;
    run_queue_.push_back(i);
  }
  settle();
}

void Simulator::settle() {
  if (!started_) {
    start();
    return;
  }
  u64 deltas = 0;
  while (!run_queue_.empty() || !pending_nets_.empty()) {
    if (++deltas > max_deltas_) {
      throw SimError("Simulator: delta-cycle limit exceeded "
                     "(combinational oscillation?)");
    }
    ++stats_.delta_cycles;
    run_queued_processes();
    // Commit scheduled assignments; changed nets wake their processes.
    std::vector<Net*> pending = std::move(pending_nets_);
    pending_nets_.clear();
    for (Net* n : pending) {
      if (!n->has_pending_) continue;
      n->has_pending_ = false;
      if (n->pending_ == n->current_) continue;
      n->previous_ = n->current_;
      n->current_ = n->pending_;
      ++stats_.events;
      for (const u32 proc : n->sensitive_processes_) {
        if (!processes_[proc].queued) {
          processes_[proc].queued = true;
          run_queue_.push_back(proc);
        }
      }
    }
  }
}

void Simulator::tick(Net& clk) {
  start();
  assign_bit(clk, true);
  settle();
  assign_bit(clk, false);
  settle();
  ++stats_.clock_cycles;
}

void Simulator::save_state(ckpt::Writer& writer) const {
  writer.write_u64(nets_.size());
  for (const auto& n : nets_) {
    writer.write_u8(n->current_.width);
    writer.write_u64(n->current_.bits);
    writer.write_u64(n->current_.xmask);
    writer.write_u64(n->previous_.bits);
    writer.write_u64(n->previous_.xmask);
  }
  writer.write_bool(started_);
  writer.write_u64(stats_.events);
  writer.write_u64(stats_.process_activations);
  writer.write_u64(stats_.delta_cycles);
  writer.write_u64(stats_.assignments);
  writer.write_u64(stats_.clock_cycles);
}

bool Simulator::load_state(ckpt::Reader& reader) {
  if (reader.read_u64() != nets_.size()) return false;
  for (const auto& n : nets_) {
    if (reader.read_u8() != n->current_.width) return false;
    n->current_.bits = reader.read_u64();
    n->current_.xmask = reader.read_u64();
    n->previous_.width = n->current_.width;
    n->previous_.bits = reader.read_u64();
    n->previous_.xmask = reader.read_u64();
    n->has_pending_ = false;
  }
  started_ = reader.read_bool();
  stats_.events = reader.read_u64();
  stats_.process_activations = reader.read_u64();
  stats_.delta_cycles = reader.read_u64();
  stats_.assignments = reader.read_u64();
  stats_.clock_cycles = reader.read_u64();
  return reader.ok();
}

}  // namespace mbcosim::rtl
