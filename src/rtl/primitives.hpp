// Structural arithmetic primitives for the RTL models. Everything is
// computed gate-by-gate over four-valued logic: ripple-carry adders walk
// the carry chain bit by bit, barrel shifters are log-depth trees of
// per-bit 2:1 muxes, the multiplier is a shift-add array. This per-bit
// evaluation is exactly why low-level simulation is slow — it is the
// cost the paper's high-level environment avoids by simulating "only the
// arithmetic aspects of the low-level implementations" (Section I).
#pragma once

#include "rtl/logic.hpp"

namespace mbcosim::rtl {

/// Full-adder based ripple-carry addition: result width = operand width.
/// Returns sum; carry-out written to `carry_out` when non-null.
[[nodiscard]] LogicVector rc_add(const LogicVector& a, const LogicVector& b,
                                 Logic carry_in = Logic::k0,
                                 Logic* carry_out = nullptr);

/// Two's-complement subtraction a - b via a + ~b + 1.
[[nodiscard]] LogicVector rc_sub(const LogicVector& a, const LogicVector& b,
                                 Logic* carry_out = nullptr);

/// Bitwise operations (per-bit gate evaluation).
[[nodiscard]] LogicVector and_v(const LogicVector& a, const LogicVector& b);
[[nodiscard]] LogicVector or_v(const LogicVector& a, const LogicVector& b);
[[nodiscard]] LogicVector xor_v(const LogicVector& a, const LogicVector& b);
[[nodiscard]] LogicVector not_v(const LogicVector& a);

/// Word-wide 2:1 mux (select X poisons the output).
[[nodiscard]] LogicVector mux2(Logic select, const LogicVector& when0,
                               const LogicVector& when1);

/// Equality comparator tree; X anywhere yields X.
[[nodiscard]] Logic eq_v(const LogicVector& a, const LogicVector& b);

/// Signed less-than via subtraction (sign of the difference corrected
/// for overflow).
[[nodiscard]] Logic lt_signed(const LogicVector& a, const LogicVector& b);

/// Logarithmic barrel shifter: arithmetic right shift of `a` by the
/// unsigned amount in `amount` (per-bit mux levels).
[[nodiscard]] LogicVector barrel_shift_right_arith(const LogicVector& a,
                                                   const LogicVector& amount);
[[nodiscard]] LogicVector barrel_shift_right_logic(const LogicVector& a,
                                                   const LogicVector& amount);
[[nodiscard]] LogicVector barrel_shift_left(const LogicVector& a,
                                            const LogicVector& amount);

/// Shift-add array multiplier: low `width(a)` bits of a * b.
[[nodiscard]] LogicVector array_multiply(const LogicVector& a,
                                         const LogicVector& b);

/// Width adapters.
[[nodiscard]] LogicVector zero_extend(const LogicVector& a, unsigned width);
[[nodiscard]] LogicVector sign_extend_v(const LogicVector& a, unsigned width);
[[nodiscard]] LogicVector truncate(const LogicVector& a, unsigned width);
[[nodiscard]] LogicVector slice(const LogicVector& a, unsigned low,
                                unsigned width);
[[nodiscard]] LogicVector concat(const LogicVector& high,
                                 const LogicVector& low);

}  // namespace mbcosim::rtl
