// Event-driven simulation kernel with VHDL semantics: signals (Net),
// processes with sensitivity lists, non-blocking signal assignment and
// delta cycles. This is the engine under the "low-level behavioral
// simulation" baseline (the paper's ModelSim runs, Table I/II): every
// signal update is an event, every event wakes the processes sensitive
// to it, and a simulated clock cycle settles through as many delta
// cycles as the design needs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "rtl/logic.hpp"

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::rtl {

class Simulator;

/// A signal. Reads return the current (committed) value; writes go
/// through Simulator::assign and commit at the next delta boundary.
class Net {
 public:
  Net(std::string name, unsigned width)
      : name_(std::move(name)),
        current_(LogicVector::unknown(width)),
        previous_(LogicVector::unknown(width)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] unsigned width() const noexcept { return current_.width; }
  [[nodiscard]] const LogicVector& read() const noexcept { return current_; }
  [[nodiscard]] u64 value() const { return current_.value(); }

  /// True when the last commit changed a 1-bit net from 0 to 1 / 1 to 0.
  [[nodiscard]] bool rose() const noexcept {
    return previous_.bits == 0 && previous_.xmask == 0 &&
           current_.bits == 1 && current_.xmask == 0;
  }
  [[nodiscard]] bool fell() const noexcept {
    return previous_.bits == 1 && previous_.xmask == 0 &&
           current_.bits == 0 && current_.xmask == 0;
  }

 private:
  friend class Simulator;
  std::string name_;
  LogicVector current_;
  LogicVector previous_;
  LogicVector pending_{};
  bool has_pending_ = false;
  std::vector<u32> sensitive_processes_;
};

/// Kernel statistics — the quantities that make low-level simulation
/// expensive, reported by the Table II bench.
struct KernelStats {
  u64 events = 0;             ///< committed signal value changes
  u64 process_activations = 0;
  u64 delta_cycles = 0;
  u64 assignments = 0;        ///< scheduled signal assignments
  Cycle clock_cycles = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Create a signal. Initial value is all-X, like an unresetted net.
  Net& net(std::string name, unsigned width);
  /// Create a signal initialized to a known value.
  Net& net(std::string name, unsigned width, u64 init);

  /// Register a process. The body runs once at time zero (VHDL initial
  /// activation) and afterwards whenever a signal in `sensitivity`
  /// changes value.
  void process(std::string name, std::vector<Net*> sensitivity,
               std::function<void()> body);

  /// Non-blocking assignment: takes effect at the next delta boundary.
  void assign(Net& target, const LogicVector& value);
  void assign(Net& target, u64 value) {
    assign(target, LogicVector::of(target.width(), value));
  }
  void assign_bit(Net& target, bool value) {
    assign(target, LogicVector::of(1, value ? 1 : 0));
  }

  /// Run delta cycles until no more events are pending.
  void settle();

  /// One full clock cycle on `clk`: rising edge, settle, falling edge,
  /// settle. Counted in stats().clock_cycles.
  void tick(Net& clk);

  /// Initial activation of every process (called lazily by the first
  /// settle/tick, or explicitly).
  void start();

  /// Look up a net by full name (nullptr when absent). Intended for
  /// probes and waveform dumping, not for simulation-time logic.
  [[nodiscard]] Net* find_net(std::string_view name) const;

  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }

  /// Delta-cycle runaway guard (combinational oscillation).
  void set_max_deltas(u64 limit) noexcept { max_deltas_ = limit; }

  /// Checkpoint every net's committed/previous value, the start flag and
  /// the kernel statistics. Only valid at a settled point (no pending
  /// assignments, between tick() calls); restoring into an identically
  /// constructed simulator resumes bit-exactly. load_state returns false
  /// on a net-count or net-width mismatch.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  struct Process {
    std::string name;
    std::function<void()> body;
    bool queued = false;
  };

  void run_queued_processes();

  std::vector<std::unique_ptr<Net>> nets_;
  std::vector<Process> processes_;
  std::vector<u32> run_queue_;
  std::vector<Net*> pending_nets_;
  bool started_ = false;
  u64 max_deltas_ = 10'000;
  KernelStats stats_;
};

}  // namespace mbcosim::rtl
