#include "obs/jsonl_sink.hpp"

#include <cstdio>

namespace mbcosim::obs {

namespace {

void append_hex(std::string& line, const char* key, u32 value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, ",\"%s\":\"0x%08x\"", key, value);
  line += buffer;
}

void append_u64(std::string& line, const char* key, u64 value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  line += buffer;
}

/// JSON string escaping for the few non-literal strings we embed
/// (channel names, disassembly); both alphabets are printable ASCII,
/// but stay safe against quotes/backslashes anyway.
void append_string(std::string& line, const char* key, const std::string& s) {
  line += ",\"";
  line += key;
  line += "\":\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') line += '\\';
    line += c;
  }
  line += '"';
}

}  // namespace

void JsonlSink::on_event(const TraceEvent& event) {
  if (!status_.ok) return;  // stream already failed: stay quietly latched
  std::string line;
  line.reserve(128);
  {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "{\"t\":%llu,\"kind\":\"%s\"",
                  static_cast<unsigned long long>(event.cycle),
                  kind_name(event.kind));
    line += buffer;
  }
  // Multi-core runs scope every record with its originating core; the
  // field is omitted entirely when the event is un-scoped so single-core
  // logs stay byte-identical to earlier releases.
  if (event.origin != nullptr) {
    append_string(line, "core", event.origin);
  }
  switch (event.kind) {
    case EventKind::kInstrRetire:
    case EventKind::kInstrStall:
    case EventKind::kInstrHalt:
    case EventKind::kInstrIllegal:
      append_hex(line, "pc", event.pc);
      append_hex(line, "raw", event.raw);
      append_u64(line, "cycles", event.cycles);
      if (disassemble_) {
        append_string(line, "insn", disassemble_(event.pc, event.raw));
      }
      break;
    case EventKind::kFslPush:
    case EventKind::kFslPop:
    case EventKind::kFslRefused:
      append_string(line, "channel",
                    event.channel != nullptr ? event.channel : "?");
      append_hex(line, "data", event.data);
      append_u64(line, "control", event.control ? 1 : 0);
      append_u64(line, "occupancy", event.occupancy);
      append_u64(line, "depth", event.depth);
      break;
    case EventKind::kOpbRead:
    case EventKind::kOpbWrite:
      append_hex(line, "addr", event.addr);
      append_u64(line, "wait_states", event.wait_states);
      break;
    case EventKind::kQuiesceSkip:
      append_u64(line, "skipped", event.skipped);
      break;
    case EventKind::kDeadlock:
      append_u64(line, "blocked_cycles", event.cycles);
      break;
    case EventKind::kFaultInject:
    case EventKind::kFaultOutcome:
      append_string(line, "label",
                    event.label != nullptr ? event.label : "?");
      if (event.detail != nullptr) {
        append_string(line, "detail", event.detail);
      }
      break;
  }
  line += "}\n";
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
  if (out_->fail() || out_->bad()) {
    status_ = Status::failure(
        "JsonlSink: write failed" +
        (path_.empty() ? std::string() : " on '" + path_ + "'") +
        " after " + std::to_string(events_) + " events (disk full?)");
    return;
  }
  ++events_;
}

void JsonlSink::flush() {
  if (!status_.ok) return;
  out_->flush();
  if (out_->fail() || out_->bad()) {
    status_ = Status::failure(
        "JsonlSink: flush failed" +
        (path_.empty() ? std::string() : " on '" + path_ + "'"));
  }
}

}  // namespace mbcosim::obs
