// VCD waveform sink: turns TraceEvents into GTKWave-loadable waveforms —
// the observability analog of the Simulink scope windows the paper
// attaches to the co-simulated design. Derived signals:
//
//   cpu.pc        [32]  program counter at each instruction step
//   cpu.stall     [1]   high while the processor is FSL-blocked
//   cpu.halted    [1]   high once the program halted (or trapped)
//   fsl.<ch>.occ  [n]   FIFO occupancy after every push/pop/refusal
//   fsl.<ch>.full [1]   FIFO backpressure flag (In#_full)
//   opb.wait      [8]   wait states of the latest OPB transaction
//   engine.qskip  [32]  cumulative quiescence-skipped hardware cycles
//
// Signals register themselves the first time an event mentions them, and
// the VCD header needs the complete signal list, so value changes are
// buffered in memory and the whole file is written at flush(). Timescale
// is one simulated clock cycle per VCD time unit.
#pragma once

#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_bus.hpp"

namespace mbcosim::obs {

class VcdSink : public TraceSink {
 public:
  /// Write to a stream the caller keeps alive (tests).
  explicit VcdSink(std::ostream& out) : out_(&out) {}
  /// Write to a file owned by the sink.
  explicit VcdSink(const std::string& path)
      : file_(path), out_(&file_), path_(path) {}

  [[nodiscard]] bool ok() const noexcept {
    return out_ != &file_ || file_.good();
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void on_event(const TraceEvent& event) override;
  /// Write header + buffered value changes. One-shot: later events are
  /// dropped (flush runs when the observed run completes).
  void flush() override;
  /// I/O health, checked when flush() writes the buffered waveform.
  [[nodiscard]] Status status() const override { return status_; }

  [[nodiscard]] u64 changes_recorded() const noexcept {
    return changes_.size();
  }

 private:
  struct Change {
    Cycle time = 0;
    u32 signal = 0;
    u64 value = 0;
  };

  /// Index of the signal named `name`, registering it (with `width`
  /// bits) on first use.
  u32 signal(const std::string& name, u32 width);
  void record(u32 signal_index, Cycle time, u64 value);
  static std::string identifier(std::size_t index);

  std::ofstream file_;
  std::ostream* out_;
  std::string path_;
  std::map<std::string, u32> index_;  ///< name -> position in names_
  std::vector<std::string> names_;
  std::vector<u32> widths_;
  std::vector<Change> changes_;
  u64 quiesce_skipped_total_ = 0;
  u64 fault_injects_ = 0;
  bool flushed_ = false;
  Status status_;
};

}  // namespace mbcosim::obs
