// Typed observability events — the vocabulary of the TraceBus (see
// trace_bus.hpp). Every instrumented component of the simulator reports
// what it did through one flat, cheap-to-construct TraceEvent; sinks
// (JSONL log, VCD waveform, metrics registry) interpret the fields that
// their kind defines. This is the high-level analog of the Simulink
// scopes the paper attaches to the co-simulated design: the same
// signals — instruction retirement, FSL FIFO handshakes and occupancy,
// OPB wait states, engine fast-forwarding — without dropping to the
// low-level RTL waveforms.
#pragma once

#include "common/types.hpp"

namespace mbcosim::obs {

enum class EventKind : u8 {
  // Instruction-step events (iss::Processor), one per Processor::step.
  kInstrRetire,   ///< instruction completed; pc/raw/cycles valid
  kInstrStall,    ///< blocked blocking FSL access burned one cycle
  kInstrHalt,     ///< the halting branch-to-self retired
  kInstrIllegal,  ///< undecodable word, disabled unit, or fetch fault
  // FSL FIFO events (fsl::FslChannel); channel/occupancy/depth valid.
  kFslPush,       ///< a word entered the FIFO (data/control valid)
  kFslPop,        ///< a word left the FIFO (data/control valid)
  kFslRefused,    ///< a push was refused because the FIFO was full
  // OPB events (bus::OpbBus); addr/wait_states valid.
  kOpbRead,
  kOpbWrite,
  // Engine events (core::CoSimEngine / SimSystem software-only loop).
  kQuiesceSkip,   ///< `skipped` quiescent hardware cycles fast-forwarded
  kDeadlock,      ///< deadlock heuristic fired after `cycles` blocked
  // Fault-injection events (src/fault); `label` carries site/mode or the
  // outcome class, `detail` the human-readable specifics.
  kFaultInject,   ///< a fault fired into the running system
  kFaultOutcome,  ///< an experiment classified its faulted run
};

/// Stable lower-case name of an event kind (used by the JSONL sink and
/// the metrics registry's counter keys).
[[nodiscard]] constexpr const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kInstrRetire: return "retire";
    case EventKind::kInstrStall: return "stall";
    case EventKind::kInstrHalt: return "halt";
    case EventKind::kInstrIllegal: return "illegal";
    case EventKind::kFslPush: return "fsl_push";
    case EventKind::kFslPop: return "fsl_pop";
    case EventKind::kFslRefused: return "fsl_refused";
    case EventKind::kOpbRead: return "opb_read";
    case EventKind::kOpbWrite: return "opb_write";
    case EventKind::kQuiesceSkip: return "quiesce_skip";
    case EventKind::kDeadlock: return "deadlock";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kFaultOutcome: return "fault_outcome";
  }
  return "unknown";
}

/// One observability event. A flat struct rather than a variant so the
/// emitting hot paths pay one aggregate initialization and no
/// allocation; only the fields the kind documents are meaningful.
struct TraceEvent {
  EventKind kind = EventKind::kInstrRetire;
  Cycle cycle = 0;  ///< simulated time the event belongs to

  /// Originating core of the event ("cpu0", "cpu1", ...) on a multi-core
  /// machine; null on single-core systems, where sink output must stay
  /// byte-identical to earlier releases. Stamped centrally by the
  /// emitting core's TraceBus (TraceBus::set_origin), so producers never
  /// set it themselves. Points at storage owned by the machine
  /// description and outlives the sink callback.
  const char* origin = nullptr;

  // Instruction events.
  Addr pc = 0;
  Word raw = 0;      ///< fetched instruction word (0 on a fetch fault)
  Cycle cycles = 0;  ///< cycles this step consumed / blocked streak length

  // FSL events. `channel` points at the channel's own name storage and
  // is valid only for the duration of the sink callback.
  const char* channel = nullptr;
  u32 occupancy = 0;  ///< FIFO occupancy after the operation
  u32 depth = 0;
  Word data = 0;
  bool control = false;

  // OPB events.
  Addr addr = 0;
  Cycle wait_states = 0;

  // Engine events.
  Cycle skipped = 0;  ///< quiescent cycles fast-forwarded in this hop

  // Fault events. Both pointers reference storage with static lifetime
  // (enum-name tables) or storage that outlives the sink callback.
  const char* label = nullptr;   ///< "site/mode" or outcome class name
  const char* detail = nullptr;  ///< human-readable injection specifics
};

}  // namespace mbcosim::obs
