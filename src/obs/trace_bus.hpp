// TraceBus: the spine of the observability layer. Producers (processor,
// FSL channels, OPB bus, co-simulation engine) hold a non-owning
// `TraceBus*` that is null by default; when a user attaches sinks —
// JSONL event log, VCD waveform writer, metrics registry — the bus is
// wired through and every emit() fans the event out to all of them.
//
// Cost contract (the paper's pitch is visibility *at speed*):
//   - not wired (the default): one predictable null-pointer branch per
//     potential event — nothing is constructed;
//   - wired but no sinks ("compiled in but disabled"): one extra
//     enabled() load; still no TraceEvent is built, because producers
//     guard with `bus != nullptr && bus->enabled()`;
//   - wired with sinks: one TraceEvent aggregate init plus one virtual
//     call per sink per event.
// The disabled-mode overhead is asserted by the trace_overhead guard in
// bench/bench_table2_simspeed.
#pragma once

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/event.hpp"

namespace mbcosim::obs {

/// A consumer of TraceEvents. Sinks are owned by the bus; flush() is
/// called when the simulation run they observe completes (sinks that
/// buffer, like the VCD writer, write their output there).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
  /// I/O health of the sink. File-backed sinks latch the first stream
  /// failure (disk full, closed pipe) here instead of silently
  /// truncating their output; in-memory sinks stay ok forever.
  [[nodiscard]] virtual Status status() const { return {}; }
};

class TraceBus {
 public:
  TraceBus() = default;
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Attach a sink; the bus owns it. Returns a reference for callers
  /// that need to keep talking to the sink (e.g. the metrics registry).
  TraceSink& add_sink(std::unique_ptr<TraceSink> sink);

  /// True when at least one sink is attached. Producers must check this
  /// (or hold a null bus pointer) before building a TraceEvent.
  [[nodiscard]] bool enabled() const noexcept { return !sinks_.empty(); }

  void emit(const TraceEvent& event) {
    if (origin_ != nullptr && event.origin == nullptr) {
      TraceEvent scoped = event;
      scoped.origin = origin_;
      for (const auto& sink : sinks_) sink->on_event(scoped);
      return;
    }
    for (const auto& sink : sinks_) sink->on_event(event);
  }

  /// Name of the core every event on this bus originates from ("cpu0",
  /// "cpu1", ...), stamped into TraceEvent::origin at emit() time so
  /// multi-core JSONL/VCD output is unambiguous. Null (the default)
  /// leaves events un-scoped — the single-core byte-identical mode. The
  /// pointed-to storage must outlive the bus (SimSystem keeps it in the
  /// per-core state block).
  void set_origin(const char* origin) noexcept { origin_ = origin; }
  [[nodiscard]] const char* origin() const noexcept { return origin_; }

  /// Simulated-time cursor, advanced by whichever component drives the
  /// clock (the processor per step, the engine per hardware cycle), so
  /// producers that do not track time themselves (FSL channels, OPB
  /// bus) can stamp their events.
  void set_time(Cycle time) noexcept { time_ = time; }
  [[nodiscard]] Cycle time() const noexcept { return time_; }

  void flush();

  /// First failure reported by any attached sink (ok when none failed).
  [[nodiscard]] Status status() const {
    for (const auto& sink : sinks_) {
      if (Status s = sink->status(); !s.ok) return s;
    }
    return {};
  }

 private:
  std::vector<std::unique_ptr<TraceSink>> sinks_;
  Cycle time_ = 0;
  const char* origin_ = nullptr;
};

}  // namespace mbcosim::obs
