#include "obs/trace_bus.hpp"

#include <utility>

#include "common/status.hpp"

namespace mbcosim::obs {

TraceSink& TraceBus::add_sink(std::unique_ptr<TraceSink> sink) {
  if (sink == nullptr) {
    throw SimError("TraceBus::add_sink: null sink");
  }
  sinks_.push_back(std::move(sink));
  return *sinks_.back();
}

void TraceBus::flush() {
  for (const auto& sink : sinks_) sink->flush();
}

}  // namespace mbcosim::obs
