#include "obs/metrics.hpp"

#include <cstdio>

namespace mbcosim::obs {

void Histogram::record(u64 value) noexcept {
  u32 bucket = 0;
  for (u64 v = value; v != 0; v >>= 1) ++bucket;
  if (buckets_.size() <= bucket) buckets_.resize(bucket + 1, 0);
  buckets_[bucket] += 1;
  count_ += 1;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void MetricsRegistry::on_event(const TraceEvent& event) {
  auto& counters = data_.counters;
  auto& histograms = data_.histograms;

  // Stall-run bookkeeping: any non-stall instruction event closes the
  // current run of consecutive blocked cycles.
  const bool instruction_event = event.kind == EventKind::kInstrRetire ||
                                 event.kind == EventKind::kInstrStall ||
                                 event.kind == EventKind::kInstrHalt ||
                                 event.kind == EventKind::kInstrIllegal;
  if (instruction_event) {
    if (event.kind == EventKind::kInstrStall) {
      stall_run_ += event.cycles;
    } else if (stall_run_ != 0) {
      histograms["cpu.stall_run"].record(stall_run_);
      stall_run_ = 0;
    }
  }

  switch (event.kind) {
    case EventKind::kInstrRetire:
      counters["cpu.retired"] += 1;
      break;
    case EventKind::kInstrStall:
      counters["cpu.stall_cycles"] += event.cycles;
      break;
    case EventKind::kInstrHalt:
      counters["cpu.halts"] += 1;
      break;
    case EventKind::kInstrIllegal:
      counters["cpu.illegal"] += 1;
      break;
    case EventKind::kFslPush: {
      const std::string channel = event.channel != nullptr ? event.channel : "?";
      counters["fsl." + channel + ".push"] += 1;
      histograms["fsl." + channel + ".occupancy"].record(event.occupancy);
      break;
    }
    case EventKind::kFslPop: {
      const std::string channel = event.channel != nullptr ? event.channel : "?";
      counters["fsl." + channel + ".pop"] += 1;
      histograms["fsl." + channel + ".occupancy"].record(event.occupancy);
      break;
    }
    case EventKind::kFslRefused: {
      const std::string channel = event.channel != nullptr ? event.channel : "?";
      counters["fsl." + channel + ".refused"] += 1;
      break;
    }
    case EventKind::kOpbRead:
      counters["opb.reads"] += 1;
      counters["opb.wait_cycles"] += event.wait_states;
      histograms["opb.wait"].record(event.wait_states);
      break;
    case EventKind::kOpbWrite:
      counters["opb.writes"] += 1;
      counters["opb.wait_cycles"] += event.wait_states;
      histograms["opb.wait"].record(event.wait_states);
      break;
    case EventKind::kQuiesceSkip:
      counters["engine.quiesce_skipped"] += event.skipped;
      break;
    case EventKind::kDeadlock:
      counters["engine.deadlocks"] += 1;
      break;
    case EventKind::kFaultInject:
      counters["fault.injects"] += 1;
      break;
    case EventKind::kFaultOutcome:
      counters[std::string("fault.outcome.") +
               (event.label != nullptr ? event.label : "?")] += 1;
      break;
  }
}

void MetricsRegistry::flush() {
  if (stall_run_ != 0) {
    data_.histograms["cpu.stall_run"].record(stall_run_);
    stall_run_ = 0;
  }
}

void Histogram::save_state(ckpt::Writer& writer) const {
  writer.write_u64(count_);
  writer.write_u64(sum_);
  writer.write_u64(min_);
  writer.write_u64(max_);
  writer.write_u64(buckets_.size());
  for (const u64 bucket : buckets_) writer.write_u64(bucket);
}

void Histogram::load_state(ckpt::Reader& reader) {
  count_ = reader.read_u64();
  sum_ = reader.read_u64();
  min_ = reader.read_u64();
  max_ = reader.read_u64();
  const u64 buckets = reader.read_u64();
  buckets_.clear();
  if (!reader.ok() || buckets > reader.remaining()) return;  // underrun
  buckets_.reserve(static_cast<std::size_t>(buckets));
  for (u64 i = 0; i < buckets; ++i) buckets_.push_back(reader.read_u64());
}

void MetricsRegistry::save_state(ckpt::Writer& writer) const {
  writer.write_u64(data_.counters.size());
  for (const auto& [name, value] : data_.counters) {
    writer.write_str(name);
    writer.write_u64(value);
  }
  writer.write_u64(data_.histograms.size());
  for (const auto& [name, histogram] : data_.histograms) {
    writer.write_str(name);
    histogram.save_state(writer);
  }
  writer.write_u64(stall_run_);
}

void MetricsRegistry::load_state(ckpt::Reader& reader) {
  data_ = MetricsSnapshot{};
  stall_run_ = 0;
  const u64 counters = reader.read_u64();
  for (u64 i = 0; i < counters && reader.ok(); ++i) {
    std::string name = reader.read_str();
    data_.counters[std::move(name)] = reader.read_u64();
  }
  const u64 histograms = reader.read_u64();
  for (u64 i = 0; i < histograms && reader.ok(); ++i) {
    std::string name = reader.read_str();
    data_.histograms[std::move(name)].load_state(reader);
  }
  stall_run_ = reader.read_u64();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snapshot = data_;
  // Account the in-flight stall run without mutating the registry.
  if (stall_run_ != 0) {
    snapshot.histograms["cpu.stall_run"].record(stall_run_);
  }
  return snapshot;
}

std::string MetricsSnapshot::to_string() const {
  std::string out;
  char buffer[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buffer, sizeof buffer, "%-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buffer;
  }
  for (const auto& [name, histogram] : histograms) {
    std::snprintf(buffer, sizeof buffer,
                  "%-28s count=%llu min=%llu mean=%.1f max=%llu buckets=[",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.min()),
                  histogram.mean(),
                  static_cast<unsigned long long>(histogram.max()));
    out += buffer;
    const auto& buckets = histogram.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      std::snprintf(buffer, sizeof buffer, "%s%llu", i == 0 ? "" : " ",
                    static_cast<unsigned long long>(buckets[i]));
      out += buffer;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace mbcosim::obs
