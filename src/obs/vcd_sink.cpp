#include "obs/vcd_sink.hpp"

#include <algorithm>

namespace mbcosim::obs {

namespace {

u32 bits_for(u64 max_value) {
  u32 bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

void write_binary(std::ostream& out, u64 value, u32 width,
                  const std::string& id) {
  if (width == 1) {
    out << (value & 1u) << id << "\n";
    return;
  }
  std::string digits(width, '0');
  for (u32 bit = 0; bit < width; ++bit) {
    if ((value >> bit) & 1u) digits[width - 1 - bit] = '1';
  }
  out << "b" << digits << " " << id << "\n";
}

}  // namespace

u32 VcdSink::signal(const std::string& name, u32 width) {
  const auto [it, inserted] =
      index_.emplace(name, static_cast<u32>(names_.size()));
  if (inserted) {
    names_.push_back(name);
    widths_.push_back(width);
  }
  return it->second;
}

void VcdSink::record(u32 signal_index, Cycle time, u64 value) {
  changes_.push_back(Change{time, signal_index, value});
}

void VcdSink::on_event(const TraceEvent& event) {
  if (flushed_) return;
  // Events from a multi-core machine carry their core name; scope the
  // derived VCD signals under it ("cpu1.cpu.pc") so the waveforms of
  // different cores never alias. Un-scoped events keep the historical
  // flat names, byte-for-byte.
  const std::string scope =
      event.origin != nullptr ? std::string(event.origin) + "." : std::string();
  switch (event.kind) {
    case EventKind::kInstrRetire:
    case EventKind::kInstrStall:
    case EventKind::kInstrHalt:
    case EventKind::kInstrIllegal: {
      record(signal(scope + "cpu.pc", 32), event.cycle, event.pc);
      record(signal(scope + "cpu.stall", 1), event.cycle,
             event.kind == EventKind::kInstrStall ? 1 : 0);
      record(signal(scope + "cpu.halted", 1), event.cycle,
             event.kind == EventKind::kInstrHalt ||
                     event.kind == EventKind::kInstrIllegal
                 ? 1
                 : 0);
      break;
    }
    case EventKind::kFslPush:
    case EventKind::kFslPop:
    case EventKind::kFslRefused: {
      const std::string base =
          scope + "fsl." + (event.channel != nullptr ? event.channel : "?");
      record(signal(base + ".occ", bits_for(event.depth)), event.cycle,
             event.occupancy);
      record(signal(base + ".full", 1), event.cycle,
             event.occupancy >= event.depth ? 1 : 0);
      break;
    }
    case EventKind::kOpbRead:
    case EventKind::kOpbWrite:
      record(signal(scope + "opb.wait", 8), event.cycle, event.wait_states);
      break;
    case EventKind::kQuiesceSkip:
      quiesce_skipped_total_ += event.skipped;
      record(signal(scope + "engine.qskip", 32), event.cycle,
             quiesce_skipped_total_);
      break;
    case EventKind::kDeadlock:
      record(signal(scope + "engine.deadlock", 1), event.cycle, 1);
      break;
    case EventKind::kFaultInject:
      record(signal(scope + "fault.injects", 16), event.cycle,
             ++fault_injects_);
      break;
    case EventKind::kFaultOutcome:
      break;  // classification is per-experiment, not a waveform signal
  }
}

std::string VcdSink::identifier(std::size_t index) {
  // Printable VCD identifier alphabet: '!' (33) .. '~' (126).
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdSink::flush() {
  if (flushed_) return;
  flushed_ = true;

  std::ostream& out = *out_;
  out << "$date mbcosim $end\n";
  out << "$version mbcosim observability $end\n";
  out << "$timescale 1 ns $end\n";
  out << "$scope module mbcosim $end\n";
  std::vector<std::string> ids(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    ids[i] = identifier(i);
    std::string name = names_[i];
    std::replace(name.begin(), name.end(), ' ', '_');
    out << "$var wire " << widths_[i] << " " << ids[i] << " " << name
        << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  // Initial values: everything unknown until its first recorded change.
  out << "$dumpvars\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (widths_[i] == 1) {
      out << "x" << ids[i] << "\n";
    } else {
      out << "bx " << ids[i] << "\n";
    }
  }
  out << "$end\n";

  // The engine ticks the hardware *after* the processor step that paid
  // the cycles, so hardware-side events can trail the instruction event
  // of the same step; a stable sort restores global time order without
  // reordering same-cycle changes. Then collapse repeated values per
  // signal and emit one #time header per distinct timestamp.
  std::stable_sort(
      changes_.begin(), changes_.end(),
      [](const Change& a, const Change& b) { return a.time < b.time; });
  std::vector<u64> last(names_.size(), ~u64{0});
  std::vector<bool> seen(names_.size(), false);
  bool any_time = false;
  Cycle current_time = 0;
  for (const Change& change : changes_) {
    if (seen[change.signal] && last[change.signal] == change.value) continue;
    if (!any_time || change.time != current_time) {
      out << "#" << change.time << "\n";
      current_time = change.time;
      any_time = true;
    }
    write_binary(out, change.value, widths_[change.signal],
                 ids[change.signal]);
    seen[change.signal] = true;
    last[change.signal] = change.value;
  }
  changes_.clear();
  out.flush();
  if (out.fail() || out.bad()) {
    status_ = Status::failure(
        "VcdSink: write failed" +
        (path_.empty() ? std::string() : " on '" + path_ + "'") +
        " (disk full?)");
  }
}

}  // namespace mbcosim::obs
