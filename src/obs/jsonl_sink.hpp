// JSONL event-log sink: one JSON object per TraceEvent, one per line —
// greppable, diffable (the golden-trace test compares these byte for
// byte) and loadable into any log tooling. Only simulated time is
// recorded, never host time, so the output is fully deterministic.
#pragma once

#include <fstream>
#include <functional>
#include <ostream>
#include <string>

#include "obs/trace_bus.hpp"

namespace mbcosim::obs {

class JsonlSink : public TraceSink {
 public:
  /// Render an instruction word as assembly for the "insn" field. The
  /// obs layer sits below the ISA library, so the disassembler is
  /// injected by whoever wires the bus (SimSystem, mbcsim).
  using Disassembler = std::function<std::string(Addr pc, Word raw)>;

  /// Write to a stream the caller keeps alive (tests, stdout).
  explicit JsonlSink(std::ostream& out) : out_(&out) {}
  /// Write to a file owned by the sink; check ok() (or let the builder
  /// do it) before trusting the output.
  explicit JsonlSink(const std::string& path)
      : file_(path), out_(&file_), path_(path) {}

  [[nodiscard]] bool ok() const noexcept {
    return out_ != &file_ || file_.good();
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void set_disassembler(Disassembler disassemble) {
    disassemble_ = std::move(disassemble);
  }

  void on_event(const TraceEvent& event) override;
  void flush() override;
  /// Latched I/O health: the first write that leaves the stream in
  /// fail()/bad() state records a structured error and stops further
  /// writes (the trace is truncated, but loudly, not silently).
  [[nodiscard]] Status status() const override { return status_; }

  [[nodiscard]] u64 events_written() const noexcept { return events_; }

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::string path_;
  Disassembler disassemble_;
  u64 events_ = 0;
  Status status_;
};

}  // namespace mbcosim::obs
