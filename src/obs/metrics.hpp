// MetricsRegistry: the aggregating sink of the observability layer.
// Instead of logging every event it folds them into named counters and
// histograms — FSL occupancy distribution per channel, stall-run
// lengths, OPB wait states — so a design-space sweep can report *why* a
// configuration point is slow (e.g. "FIFO pegged at depth, long stall
// runs") without storing a trace. Snapshots are plain value types that
// can be copied into sweep result rows and compared across points.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::obs {

/// Log2-bucketed histogram: bucket i counts values whose bit width is i
/// (value 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...). Coarse,
/// but allocation-light and enough to tell "mostly-empty FIFO" from
/// "pegged at depth" or "1-cycle stalls" from "thousand-cycle stalls".
class Histogram {
 public:
  void record(u64 value) noexcept;

  [[nodiscard]] u64 count() const noexcept { return count_; }
  [[nodiscard]] u64 sum() const noexcept { return sum_; }
  [[nodiscard]] u64 min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] u64 max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Bucket counts, index = bit width of the value; trailing zero
  /// buckets trimmed.
  [[nodiscard]] const std::vector<u64>& buckets() const noexcept {
    return buckets_;
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

  /// Exact state round-trip for session journals: a restored histogram
  /// is field-for-field identical (including the untouched-min sentinel),
  /// so recovered metrics render byte-identically.
  void save_state(ckpt::Writer& writer) const;
  void load_state(ckpt::Reader& reader);

 private:
  std::vector<u64> buckets_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~u64{0};
  u64 max_ = 0;
};

/// Copyable point-in-time view of a MetricsRegistry.
struct MetricsSnapshot {
  std::map<std::string, u64> counters;
  std::map<std::string, Histogram> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && histograms.empty();
  }
  [[nodiscard]] u64 counter(const std::string& name) const noexcept {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  /// Human-readable multi-line report (counters then histograms).
  [[nodiscard]] std::string to_string() const;
};

class MetricsRegistry : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override;
  /// Closes the in-flight stall run so its length is counted.
  void flush() override;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Exact registry state (counters, histograms, in-flight stall run)
  /// for full-system checkpoints — a restored registry continues
  /// aggregating exactly where the saved one stopped.
  void save_state(ckpt::Writer& writer) const;
  void load_state(ckpt::Reader& reader);

 private:
  MetricsSnapshot data_;
  Cycle stall_run_ = 0;  ///< length of the current consecutive-stall run
};

}  // namespace mbcosim::obs
