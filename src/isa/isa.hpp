// MB32: a MicroBlaze-class 32-bit soft-processor ISA.
//
// The paper develops its co-simulation environment around the Xilinx
// MicroBlaze. We implement a from-scratch ISA with the same programmer's
// model and the same mnemonics/semantics for everything the paper's
// experiments exercise:
//   - 32 general-purpose registers, r0 hard-wired to zero;
//   - type-A (register-register) and type-B (16-bit immediate) formats;
//   - the IMM prefix instruction for building 32-bit immediates;
//   - 3-cycle multiply, optional 34-cycle divider, optional barrel shifter;
//   - delay-slot branch variants;
//   - LMB loads/stores with single-cycle BRAM access;
//   - the full FSL instruction family: get/put with blocking/non-blocking
//     and data/control variants (Section III-B of the paper).
// Exact opcode bit assignments follow the MicroBlaze layout where
// documented (opcode in bits [31:26], immediate forms = opcode | 0x08) but
// are our own for the FSL family; DESIGN.md records this substitution.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace mbcosim::isa {

inline constexpr unsigned kNumRegisters = 32;
inline constexpr unsigned kLinkRegister = 15;  ///< convention, like MicroBlaze
inline constexpr unsigned kNumFslChannels = 8;  ///< 8 in + 8 out (paper §III-B)

/// Operation families. Register- vs immediate-operand forms of the same
/// operation share an Op; Instruction::imm_form distinguishes them.
enum class Op : u8 {
  // Integer arithmetic.
  kAdd,    ///< rd = ra + opb (+carry-in for C variants, K keeps carry)
  kRsub,   ///< rd = opb - ra
  kAddc,
  kRsubc,
  kAddk,
  kRsubk,
  kCmp,    ///< signed compare: rd = opb - ra with MSB = (opb < ra)
  kCmpu,   ///< unsigned compare
  kMul,    ///< 3-cycle multiply (low 32 bits)
  kIdiv,   ///< optional divider: rd = opb / ra (signed)
  kIdivu,  ///< unsigned divide
  // Barrel shifts (optional barrel shifter).
  kBsll,
  kBsra,
  kBsrl,
  // Logical.
  kOr,
  kAnd,
  kXor,
  kAndn,
  // Single-bit shifts and sign extension.
  kSra,    ///< arithmetic shift right one bit, LSB -> carry
  kSrc,    ///< shift right through carry
  kSrl,    ///< logical shift right one bit
  kSext8,
  kSext16,
  // Immediate prefix.
  kImm,
  // Special registers.
  kMfs,    ///< move from special (PC / MSR)
  kMts,    ///< move to special (MSR)
  // Control flow.
  kBr,     ///< unconditional branch; flags: delay / link / absolute
  kBcc,    ///< conditional branch on ra vs 0; flags: delay; field: cond
  kRtsd,   ///< return: PC = ra + imm, always with delay slot
  // LMB memory accesses.
  kLbu,
  kLhu,
  kLw,
  kSb,
  kSh,
  kSw,
  // FSL (Fast Simplex Link) accesses; flags: nonblocking / control.
  kGet,
  kPut,
  // User-customized instruction (Nios-style ISA customization, paper
  // Section I: "the customization of the instruction set"); the slot
  // selects one of the registered custom datapaths.
  kCustom,
  kIllegal,
};

/// Condition codes for Op::kBcc (tests register ra against zero).
enum class Cond : u8 { kEq = 0, kNe = 1, kLt = 2, kLe = 3, kGt = 4, kGe = 5 };

/// Special-purpose register identifiers for mfs/mts.
enum class SpecialReg : u8 { kPc = 0, kMsr = 1 };

/// Machine Status Register bits.
struct Msr {
  static constexpr Word kCarry = 1u << 0;      ///< arithmetic carry
  static constexpr Word kFslError = 1u << 1;   ///< FSL control-bit mismatch
};

/// A fully decoded instruction. `imm` is already sign-extended to 32 bits
/// (before any IMM-prefix combination, which the ISS applies at run time).
struct Instruction {
  Op op = Op::kIllegal;
  u8 rd = 0;
  u8 ra = 0;
  u8 rb = 0;
  i32 imm = 0;
  bool imm_form = false;   ///< type-B: operand B is the immediate
  bool delay_slot = false; ///< branch executes its delay slot
  bool link = false;       ///< branch writes return address to rd
  bool absolute = false;   ///< branch target is absolute, not PC-relative
  Cond cond = Cond::kEq;
  u8 fsl_id = 0;           ///< FSL channel for kGet/kPut, in [0, 7]
  bool fsl_nonblocking = false;
  bool fsl_control = false;
  u8 custom_slot = 0;      ///< custom-instruction slot for kCustom

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encode a decoded instruction into its 32-bit binary form.
/// Throws SimError when fields are out of range for the format.
[[nodiscard]] Word encode(const Instruction& instruction);

/// Decode a 32-bit word. Undecodable words yield Op::kIllegal (the ISS
/// raises an architectural illegal-opcode event for those, it never throws).
[[nodiscard]] Instruction decode(Word word);

/// Render an instruction in assembler syntax, e.g. "addik r3, r4, 100".
[[nodiscard]] std::string disassemble(const Instruction& instruction);
[[nodiscard]] std::string disassemble(Word word);

/// Mnemonic of the exact instruction variant (e.g. "ncget", "beqid").
[[nodiscard]] std::string mnemonic(const Instruction& instruction);

/// True when the instruction is any branch/return (affects IMM pairing and
/// delay-slot legality checks in the assembler).
[[nodiscard]] bool is_control_flow(const Instruction& instruction);

/// Base latency in cycles on the 3-stage pipeline, excluding dynamic
/// stalls (FSL blocking, bus wait states). `branch_taken` matters only for
/// control flow. This is the timing model the paper calls "high-level
/// cycle-accurate": e.g. multiply takes 3 clock cycles (Section I).
[[nodiscard]] Cycle base_latency(const Instruction& instruction,
                                 bool branch_taken);

/// Both static latencies of an instruction at once — what a predecoder
/// caches so the execution hot loop never re-enters the base_latency
/// switch. For non-control-flow instructions the two values are equal.
struct LatencyPair {
  Cycle taken = 1;      ///< base_latency(in, true)
  Cycle not_taken = 1;  ///< base_latency(in, false)
};
[[nodiscard]] LatencyPair base_latencies(const Instruction& instruction);

/// Hardware configuration options of the soft processor, mirroring the
/// configurability the paper emphasises (Section I).
struct CpuConfig {
  bool has_barrel_shifter = true;
  bool has_multiplier = true;   ///< uses 3 MULT18x18s when enabled
  bool has_divider = false;
  unsigned fsl_links = kNumFslChannels;
};

/// Number of custom-instruction slots the decoder reserves (Nios allows
/// five; we round up to a power of two).
inline constexpr unsigned kNumCustomSlots = 8;

}  // namespace mbcosim::isa
