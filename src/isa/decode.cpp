#include "common/bits.hpp"
#include "isa/isa.hpp"
#include "isa/opcode_map.hpp"

namespace mbcosim::isa {

namespace {

struct Fields {
  u32 opcode;
  u8 rd, ra, rb;
  u32 func;
  i32 imm;
};

Fields split(Word word) {
  Fields f{};
  f.opcode = bits(word, 26, 6);
  f.rd = static_cast<u8>(bits(word, 21, 5));
  f.ra = static_cast<u8>(bits(word, 16, 5));
  f.rb = static_cast<u8>(bits(word, 11, 5));
  f.func = bits(word, 0, 11);
  f.imm = static_cast<i32>(sign_extend(bits(word, 0, 16), 16));
  return f;
}

Instruction simple(Op op, const Fields& f, bool imm_form) {
  Instruction in;
  in.op = op;
  in.rd = f.rd;
  in.ra = f.ra;
  in.imm_form = imm_form;
  if (imm_form) {
    in.imm = f.imm;
  } else {
    in.rb = f.rb;
  }
  return in;
}

Instruction illegal() { return Instruction{}; }

}  // namespace

Instruction decode(Word word) {
  const Fields f = split(word);
  const bool imm_form = (f.opcode & kImmFormBit) != 0;
  const u32 base = f.opcode & ~kImmFormBit;
  switch (f.opcode) {
    case kOpAdd:
    case kOpAdd | kImmFormBit: return simple(Op::kAdd, f, imm_form);
    case kOpRsub:
    case kOpRsub | kImmFormBit: return simple(Op::kRsub, f, imm_form);
    case kOpAddc:
    case kOpAddc | kImmFormBit: return simple(Op::kAddc, f, imm_form);
    case kOpRsubc:
    case kOpRsubc | kImmFormBit: return simple(Op::kRsubc, f, imm_form);
    case kOpAddk:
    case kOpAddk | kImmFormBit: return simple(Op::kAddk, f, imm_form);
    case kOpRsubk:
      if (f.func == 0x001) return simple(Op::kCmp, f, false);
      if (f.func == 0x003) return simple(Op::kCmpu, f, false);
      if (f.func == 0x000) return simple(Op::kRsubk, f, false);
      return illegal();
    case kOpRsubk | kImmFormBit: return simple(Op::kRsubk, f, true);
    case kOpMul:
      if (f.func != 0) return illegal();
      return simple(Op::kMul, f, false);
    case kOpMul | kImmFormBit: return simple(Op::kMul, f, true);
    case kOpIdiv:
      if (f.func == 0x000) return simple(Op::kIdiv, f, false);
      if (f.func == 0x002) return simple(Op::kIdivu, f, false);
      return illegal();
    case kOpBs:
    case kOpBs | kImmFormBit: {
      const u32 kind = bits(word, 9, 2);
      const Op op = kind == 0 ? Op::kBsrl
                  : kind == 1 ? Op::kBsra
                  : kind == 2 ? Op::kBsll
                              : Op::kIllegal;
      if (op == Op::kIllegal) return illegal();
      Instruction in = simple(op, f, imm_form);
      if (imm_form) in.imm = static_cast<i32>(bits(word, 0, 5));
      return in;
    }
    case kOpOr:
    case kOpOr | kImmFormBit: return simple(Op::kOr, f, imm_form);
    case kOpAnd:
    case kOpAnd | kImmFormBit: return simple(Op::kAnd, f, imm_form);
    case kOpXor:
    case kOpXor | kImmFormBit: return simple(Op::kXor, f, imm_form);
    case kOpAndn:
    case kOpAndn | kImmFormBit: return simple(Op::kAndn, f, imm_form);
    case kOpShift: {
      Instruction in;
      in.rd = f.rd;
      in.ra = f.ra;
      switch (bits(word, 0, 16)) {
        case kFuncSra: in.op = Op::kSra; break;
        case kFuncSrc: in.op = Op::kSrc; break;
        case kFuncSrl: in.op = Op::kSrl; break;
        case kFuncSext8: in.op = Op::kSext8; break;
        case kFuncSext16: in.op = Op::kSext16; break;
        default: return illegal();
      }
      return in;
    }
    case kOpMsr: {
      const u32 raw_imm = bits(word, 0, 16);
      if ((raw_imm & kMsrRegMask) > 1) return illegal();  // only rpc/rmsr
      Instruction in;
      in.imm = static_cast<i32>(raw_imm & kMsrRegMask);
      if ((raw_imm & kMsrFlagFrom) != 0) {
        in.op = Op::kMfs;
        in.rd = f.rd;
      } else {
        if ((raw_imm & kMsrRegMask) != 1) return illegal();  // PC not writable
        in.op = Op::kMts;
        in.ra = f.ra;
      }
      return in;
    }
    case kOpBr:
    case kOpBr | kImmFormBit: {
      Instruction in;
      in.op = Op::kBr;
      in.imm_form = imm_form;
      const u32 flags = f.ra;
      in.link = (flags & kBrFlagLink) != 0;
      in.absolute = (flags & kBrFlagAbsolute) != 0;
      in.delay_slot = (flags & kBrFlagDelay) != 0;
      in.rd = in.link ? f.rd : u8{0};  // rd is a don't-care without link
      if (imm_form) {
        in.imm = f.imm;
      } else {
        in.rb = f.rb;
      }
      return in;
    }
    case kOpBcc:
    case kOpBcc | kImmFormBit: {
      Instruction in;
      in.op = Op::kBcc;
      in.imm_form = imm_form;
      in.ra = f.ra;
      const u32 rd_field = f.rd;
      const u32 cond = rd_field & 0x07;
      if (cond > static_cast<u32>(Cond::kGe)) return illegal();
      in.cond = static_cast<Cond>(cond);
      in.delay_slot = (rd_field & kBrFlagDelay) != 0;
      if (imm_form) {
        in.imm = f.imm;
      } else {
        in.rb = f.rb;
      }
      return in;
    }
    case kOpImm: {
      Instruction in;
      in.op = Op::kImm;
      in.imm = f.imm;
      in.imm_form = true;
      return in;
    }
    case kOpRtsd: {
      if (f.rd != 0x10) return illegal();
      Instruction in;
      in.op = Op::kRtsd;
      in.ra = f.ra;
      in.imm = f.imm;
      in.imm_form = true;
      in.delay_slot = true;
      return in;
    }
    case kOpLbu:
    case kOpLbu | kImmFormBit: return simple(Op::kLbu, f, imm_form);
    case kOpLhu:
    case kOpLhu | kImmFormBit: return simple(Op::kLhu, f, imm_form);
    case kOpLw:
    case kOpLw | kImmFormBit: return simple(Op::kLw, f, imm_form);
    case kOpSb:
    case kOpSb | kImmFormBit: return simple(Op::kSb, f, imm_form);
    case kOpSh:
    case kOpSh | kImmFormBit: return simple(Op::kSh, f, imm_form);
    case kOpSw:
    case kOpSw | kImmFormBit: return simple(Op::kSw, f, imm_form);
    case kOpCustom: {
      if (f.func >= kNumCustomSlots) return illegal();
      Instruction in;
      in.op = Op::kCustom;
      in.rd = f.rd;
      in.ra = f.ra;
      in.rb = f.rb;
      in.custom_slot = static_cast<u8>(f.func);
      return in;
    }
    case kOpGet:
    case kOpPut: {
      const u32 raw_imm = bits(word, 0, 16);
      Instruction in;
      in.op = f.opcode == kOpGet ? Op::kGet : Op::kPut;
      in.fsl_id = static_cast<u8>(raw_imm & kFslIdMask);
      if (in.fsl_id >= kNumFslChannels) return illegal();
      in.fsl_control = (raw_imm & kFslFlagControl) != 0;
      in.fsl_nonblocking = (raw_imm & kFslFlagNonblocking) != 0;
      if (in.op == Op::kGet) {
        in.rd = f.rd;
      } else {
        in.ra = f.ra;
      }
      in.imm_form = true;
      return in;
    }
    default:
      (void)base;
      return illegal();
  }
}

}  // namespace mbcosim::isa
