// Base instruction latencies of the 3-stage soft-processor pipeline.
//
// These are the numbers the paper's "high-level cycle-accurate" simulation
// must respect (Section I: "the multiplication instruction requires three
// clock cycles to complete"). Loads/stores assume LMB BRAM access with a
// guaranteed one-cycle latency (Section III-A: processor and the two LMB
// interface controllers run at the same frequency, giving a fixed latency
// of one clock cycle).
#include "isa/isa.hpp"

namespace mbcosim::isa {

Cycle base_latency(const Instruction& in, bool branch_taken) {
  switch (in.op) {
    case Op::kMul:
      return 3;
    case Op::kIdiv:
    case Op::kIdivu:
      return 34;
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLw:
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      return 2;
    case Op::kBr:
      // Unconditional branches are always taken: 3-cycle refill without a
      // delay slot, 2 cycles when the delay slot hides one refill cycle.
      return in.delay_slot ? 2 : 3;
    case Op::kBcc:
      if (!branch_taken) return 1;
      return in.delay_slot ? 2 : 3;
    case Op::kRtsd:
      return 2;
    case Op::kGet:
    case Op::kPut:
      // FSL access itself takes 2 cycles; blocking stalls are accounted
      // dynamically by the ISS (Section III-B).
      return 2;
    case Op::kCustom:
      // Base issue cost; the registered unit's extra latency is charged
      // dynamically by the ISS.
      return 1;
    default:
      return 1;
  }
}

LatencyPair base_latencies(const Instruction& in) {
  return LatencyPair{base_latency(in, true), base_latency(in, false)};
}

}  // namespace mbcosim::isa
