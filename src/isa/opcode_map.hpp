// Shared primary-opcode assignments for the MB32 encoder and decoder.
// Primary opcode lives in bits [31:26]; immediate (type-B) forms are the
// register form's opcode with bit 3 set (| 0x08), as in MicroBlaze.
#pragma once

#include "common/types.hpp"

namespace mbcosim::isa {

inline constexpr u32 kOpAdd = 0x00;
inline constexpr u32 kOpRsub = 0x01;
inline constexpr u32 kOpAddc = 0x02;
inline constexpr u32 kOpRsubc = 0x03;
inline constexpr u32 kOpAddk = 0x04;
inline constexpr u32 kOpRsubk = 0x05;  // func 0 = rsubk, 1 = cmp, 3 = cmpu
inline constexpr u32 kOpMul = 0x10;
inline constexpr u32 kOpBs = 0x11;  // func bits [10:9]: 0 srl, 1 sra, 2 sll
inline constexpr u32 kOpIdiv = 0x12;  // func bit 1 set = unsigned
inline constexpr u32 kOpPut = 0x13;
inline constexpr u32 kOpGet = 0x1B;
inline constexpr u32 kOpCustom = 0x16;  // user-customized instruction
inline constexpr u32 kOpOr = 0x20;
inline constexpr u32 kOpAnd = 0x21;
inline constexpr u32 kOpXor = 0x22;
inline constexpr u32 kOpAndn = 0x23;
inline constexpr u32 kOpShift = 0x24;  // imm selects sra/src/srl/sext8/sext16
inline constexpr u32 kOpMsr = 0x25;    // mfs / mts
inline constexpr u32 kOpBr = 0x26;
inline constexpr u32 kOpBcc = 0x27;
inline constexpr u32 kOpImm = 0x2C;
inline constexpr u32 kOpRtsd = 0x2D;
inline constexpr u32 kOpLbu = 0x30;
inline constexpr u32 kOpLhu = 0x31;
inline constexpr u32 kOpLw = 0x32;
inline constexpr u32 kOpSb = 0x34;
inline constexpr u32 kOpSh = 0x35;
inline constexpr u32 kOpSw = 0x36;

/// OR into the primary opcode for the immediate (type-B) form.
inline constexpr u32 kImmFormBit = 0x08;

// Shift-group function codes (in the immediate field, like MicroBlaze).
inline constexpr u32 kFuncSra = 0x001;
inline constexpr u32 kFuncSrc = 0x021;
inline constexpr u32 kFuncSrl = 0x041;
inline constexpr u32 kFuncSext8 = 0x060;
inline constexpr u32 kFuncSext16 = 0x061;

// Branch flag bits carried in the ra field (unconditional) or rd field
// (conditional) of branch encodings.
inline constexpr u32 kBrFlagLink = 0x04;
inline constexpr u32 kBrFlagAbsolute = 0x08;
inline constexpr u32 kBrFlagDelay = 0x10;

// FSL access flag bits carried in the immediate field.
inline constexpr u32 kFslIdMask = 0x000F;
inline constexpr u32 kFslFlagControl = 0x2000;
inline constexpr u32 kFslFlagNonblocking = 0x4000;

// mfs/mts selector bits in the immediate field.
inline constexpr u32 kMsrFlagFrom = 0x8000;   // set = mfs, clear = mts
inline constexpr u32 kMsrRegMask = 0x0003;

}  // namespace mbcosim::isa
