#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "isa/isa.hpp"
#include "isa/opcode_map.hpp"

namespace mbcosim::isa {

namespace {

void check_reg(u8 reg, const char* what) {
  if (reg >= kNumRegisters) {
    throw SimError(std::string("encode: register out of range for ") + what +
                   ": r" + std::to_string(int(reg)));
  }
}

void check_imm16(i32 imm) {
  if (imm < -32768 || imm > 32767) {
    throw SimError("encode: immediate does not fit in 16 bits: " +
                   std::to_string(imm) + " (use an IMM prefix)");
  }
}

Word type_a(u32 opcode, u8 rd, u8 ra, u8 rb, u32 func = 0) {
  Word word = 0;
  word = insert_bits(word, 26, 6, opcode);
  word = insert_bits(word, 21, 5, rd);
  word = insert_bits(word, 16, 5, ra);
  word = insert_bits(word, 11, 5, rb);
  word = insert_bits(word, 0, 11, func);
  return word;
}

Word type_b(u32 opcode, u8 rd, u8 ra, i32 imm) {
  check_imm16(imm);
  Word word = 0;
  word = insert_bits(word, 26, 6, opcode);
  word = insert_bits(word, 21, 5, rd);
  word = insert_bits(word, 16, 5, ra);
  word = insert_bits(word, 0, 16, static_cast<u32>(imm) & 0xFFFFu);
  return word;
}

/// Encode an op that has both register and immediate forms whose opcodes
/// differ by kImmFormBit.
Word reg_or_imm(const Instruction& in, u32 reg_opcode) {
  if (in.imm_form) return type_b(reg_opcode | kImmFormBit, in.rd, in.ra, in.imm);
  return type_a(reg_opcode, in.rd, in.ra, in.rb);
}

u32 branch_flags(const Instruction& in) {
  u32 flags = 0;
  if (in.link) flags |= kBrFlagLink;
  if (in.absolute) flags |= kBrFlagAbsolute;
  if (in.delay_slot) flags |= kBrFlagDelay;
  return flags;
}

}  // namespace

Word encode(const Instruction& in) {
  check_reg(in.rd, "rd");
  check_reg(in.ra, "ra");
  check_reg(in.rb, "rb");
  switch (in.op) {
    case Op::kAdd: return reg_or_imm(in, kOpAdd);
    case Op::kRsub: return reg_or_imm(in, kOpRsub);
    case Op::kAddc: return reg_or_imm(in, kOpAddc);
    case Op::kRsubc: return reg_or_imm(in, kOpRsubc);
    case Op::kAddk: return reg_or_imm(in, kOpAddk);
    case Op::kRsubk: return reg_or_imm(in, kOpRsubk);
    case Op::kCmp:
      if (in.imm_form) throw SimError("encode: cmp has no immediate form");
      return type_a(kOpRsubk, in.rd, in.ra, in.rb, 0x001);
    case Op::kCmpu:
      if (in.imm_form) throw SimError("encode: cmpu has no immediate form");
      return type_a(kOpRsubk, in.rd, in.ra, in.rb, 0x003);
    case Op::kMul: return reg_or_imm(in, kOpMul);
    case Op::kIdiv:
      if (in.imm_form) throw SimError("encode: idiv has no immediate form");
      return type_a(kOpIdiv, in.rd, in.ra, in.rb, 0x000);
    case Op::kIdivu:
      if (in.imm_form) throw SimError("encode: idivu has no immediate form");
      return type_a(kOpIdiv, in.rd, in.ra, in.rb, 0x002);
    case Op::kBsrl:
    case Op::kBsra:
    case Op::kBsll: {
      const u32 kind = in.op == Op::kBsrl ? 0u : in.op == Op::kBsra ? 1u : 2u;
      if (in.imm_form) {
        if (in.imm < 0 || in.imm > 31) {
          throw SimError("encode: barrel shift amount must be in [0, 31]");
        }
        Word word = type_b(kOpBs | kImmFormBit, in.rd, in.ra, in.imm);
        return insert_bits(word, 9, 2, kind);
      }
      return type_a(kOpBs, in.rd, in.ra, in.rb, kind << 9);
    }
    case Op::kOr: return reg_or_imm(in, kOpOr);
    case Op::kAnd: return reg_or_imm(in, kOpAnd);
    case Op::kXor: return reg_or_imm(in, kOpXor);
    case Op::kAndn: return reg_or_imm(in, kOpAndn);
    case Op::kSra: return type_b(kOpShift, in.rd, in.ra, i32(kFuncSra));
    case Op::kSrc: return type_b(kOpShift, in.rd, in.ra, i32(kFuncSrc));
    case Op::kSrl: return type_b(kOpShift, in.rd, in.ra, i32(kFuncSrl));
    case Op::kSext8: return type_b(kOpShift, in.rd, in.ra, i32(kFuncSext8));
    case Op::kSext16: return type_b(kOpShift, in.rd, in.ra, i32(kFuncSext16));
    case Op::kImm: return type_b(kOpImm, 0, 0, in.imm);
    case Op::kMfs: {
      // The selector field uses bit 15, outside the signed imm16 range;
      // build the word directly.
      Word word = type_a(kOpMsr, in.rd, 0, 0);
      word = insert_bits(word, 0, 16, kMsrFlagFrom | (u32(in.imm) & kMsrRegMask));
      return word;
    }
    case Op::kMts: {
      Word word = type_a(kOpMsr, 0, in.ra, 0);
      word = insert_bits(word, 0, 16, u32(in.imm) & kMsrRegMask);
      return word;
    }
    case Op::kBr: {
      const u32 flags = branch_flags(in);
      if (in.imm_form) {
        Word word = type_b(kOpBr | kImmFormBit, in.rd, 0, in.imm);
        return insert_bits(word, 16, 5, flags);
      }
      return type_a(kOpBr, in.rd, static_cast<u8>(flags), in.rb);
    }
    case Op::kBcc: {
      u32 rd_field = static_cast<u32>(in.cond);
      if (in.delay_slot) rd_field |= kBrFlagDelay;
      if (in.imm_form) {
        Word word = type_b(kOpBcc | kImmFormBit, 0, in.ra, in.imm);
        return insert_bits(word, 21, 5, rd_field);
      }
      return type_a(kOpBcc, static_cast<u8>(rd_field), in.ra, in.rb);
    }
    case Op::kRtsd: return type_b(kOpRtsd, 0x10, in.ra, in.imm);
    case Op::kLbu: return reg_or_imm(in, kOpLbu);
    case Op::kLhu: return reg_or_imm(in, kOpLhu);
    case Op::kLw: return reg_or_imm(in, kOpLw);
    case Op::kSb: return reg_or_imm(in, kOpSb);
    case Op::kSh: return reg_or_imm(in, kOpSh);
    case Op::kSw: return reg_or_imm(in, kOpSw);
    case Op::kGet:
    case Op::kPut: {
      if (in.fsl_id >= kNumFslChannels) {
        throw SimError("encode: FSL channel out of range: " +
                       std::to_string(int(in.fsl_id)));
      }
      u32 imm = in.fsl_id & kFslIdMask;
      if (in.fsl_control) imm |= kFslFlagControl;
      if (in.fsl_nonblocking) imm |= kFslFlagNonblocking;
      if (in.op == Op::kGet) return type_b(kOpGet, in.rd, 0, i32(imm));
      return type_b(kOpPut, 0, in.ra, i32(imm));
    }
    case Op::kCustom:
      if (in.custom_slot >= kNumCustomSlots) {
        throw SimError("encode: custom slot out of range: " +
                       std::to_string(int(in.custom_slot)));
      }
      return type_a(kOpCustom, in.rd, in.ra, in.rb, in.custom_slot);
    case Op::kIllegal:
      throw SimError("encode: cannot encode Op::kIllegal");
  }
  throw SimError("encode: unhandled op");
}

}  // namespace mbcosim::isa
