#include <sstream>

#include "isa/isa.hpp"

namespace mbcosim::isa {

namespace {

const char* cond_name(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
  }
  return "?";
}

// Built by append rather than `"r" + std::to_string(...)`: the rvalue
// operator+ overload trips a GCC 12 -Wrestrict false positive here.
std::string reg(u8 index) {
  std::string name(1, 'r');
  name += std::to_string(int(index));
  return name;
}

}  // namespace

std::string mnemonic(const Instruction& in) {
  auto base_imm = [&in](const char* base) {
    return std::string(base) + (in.imm_form ? "i" : "");
  };
  switch (in.op) {
    case Op::kAdd: return base_imm("add");
    case Op::kRsub: return base_imm("rsub");
    case Op::kAddc: return in.imm_form ? "addic" : "addc";
    case Op::kRsubc: return in.imm_form ? "rsubic" : "rsubc";
    case Op::kAddk: return in.imm_form ? "addik" : "addk";
    case Op::kRsubk: return in.imm_form ? "rsubik" : "rsubk";
    case Op::kCmp: return "cmp";
    case Op::kCmpu: return "cmpu";
    case Op::kMul: return base_imm("mul");
    case Op::kIdiv: return "idiv";
    case Op::kIdivu: return "idivu";
    case Op::kBsll: return base_imm("bsll");
    case Op::kBsra: return base_imm("bsra");
    case Op::kBsrl: return base_imm("bsrl");
    case Op::kOr: return base_imm("or");
    case Op::kAnd: return base_imm("and");
    case Op::kXor: return base_imm("xor");
    case Op::kAndn: return base_imm("andn");
    case Op::kSra: return "sra";
    case Op::kSrc: return "src";
    case Op::kSrl: return "srl";
    case Op::kSext8: return "sext8";
    case Op::kSext16: return "sext16";
    case Op::kImm: return "imm";
    case Op::kMfs: return "mfs";
    case Op::kMts: return "mts";
    case Op::kBr: {
      std::string name = "br";
      if (in.absolute) name += "a";
      if (in.link) name += "l";
      if (in.delay_slot) name += "d";
      if (in.imm_form) name += "i";
      // Conventional MicroBlaze spellings put the trailing i before d for
      // brid/brlid; we follow suit.
      if (in.imm_form && in.delay_slot) {
        name = std::string("br") + (in.absolute ? "a" : "") +
               (in.link ? "l" : "") + "id";
      }
      return name;
    }
    case Op::kBcc: {
      std::string name = std::string("b") + cond_name(in.cond);
      if (in.imm_form) name += "i";
      if (in.delay_slot) name += "d";
      return name;
    }
    case Op::kRtsd: return "rtsd";
    case Op::kLbu: return base_imm("lbu");
    case Op::kLhu: return base_imm("lhu");
    case Op::kLw: return base_imm("lw");
    case Op::kSb: return base_imm("sb");
    case Op::kSh: return base_imm("sh");
    case Op::kSw: return base_imm("sw");
    case Op::kGet:
    case Op::kPut: {
      std::string name;
      if (in.fsl_nonblocking) name += "n";
      if (in.fsl_control) name += "c";
      name += in.op == Op::kGet ? "get" : "put";
      return name;
    }
    case Op::kCustom: return "cust" + std::to_string(int(in.custom_slot));
    case Op::kIllegal: return "<illegal>";
  }
  return "?";
}

bool is_control_flow(const Instruction& in) {
  return in.op == Op::kBr || in.op == Op::kBcc || in.op == Op::kRtsd;
}

std::string disassemble(const Instruction& in) {
  std::ostringstream os;
  os << mnemonic(in);
  auto operand_b = [&in]() {
    return in.imm_form ? std::to_string(in.imm) : reg(in.rb);
  };
  switch (in.op) {
    case Op::kAdd:
    case Op::kRsub:
    case Op::kAddc:
    case Op::kRsubc:
    case Op::kAddk:
    case Op::kRsubk:
    case Op::kCmp:
    case Op::kCmpu:
    case Op::kMul:
    case Op::kIdiv:
    case Op::kIdivu:
    case Op::kBsll:
    case Op::kBsra:
    case Op::kBsrl:
    case Op::kOr:
    case Op::kAnd:
    case Op::kXor:
    case Op::kAndn:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLw:
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kCustom:
      os << " " << reg(in.rd) << ", " << reg(in.ra) << ", " << operand_b();
      break;
    case Op::kSra:
    case Op::kSrc:
    case Op::kSrl:
    case Op::kSext8:
    case Op::kSext16:
      os << " " << reg(in.rd) << ", " << reg(in.ra);
      break;
    case Op::kImm:
      os << " " << in.imm;
      break;
    case Op::kMfs:
      os << " " << reg(in.rd) << ", " << (in.imm == 0 ? "rpc" : "rmsr");
      break;
    case Op::kMts:
      os << " " << (in.imm == 0 ? "rpc" : "rmsr") << ", " << reg(in.ra);
      break;
    case Op::kBr:
      if (in.link) os << " " << reg(in.rd) << ",";
      os << " " << operand_b();
      break;
    case Op::kBcc:
      os << " " << reg(in.ra) << ", " << operand_b();
      break;
    case Op::kRtsd:
      os << " " << reg(in.ra) << ", " << in.imm;
      break;
    case Op::kGet:
      os << " " << reg(in.rd) << ", rfsl" << int(in.fsl_id);
      break;
    case Op::kPut:
      os << " " << reg(in.ra) << ", rfsl" << int(in.fsl_id);
      break;
    case Op::kIllegal:
      break;
  }
  return os.str();
}

std::string disassemble(Word word) { return disassemble(decode(word)); }

}  // namespace mbcosim::isa
