// Rapid resource estimation (paper Section III-C). Four contributions are
// summed, exactly as in the paper:
//   1. the soft processor (+ its two LMB controllers): data-sheet table;
//   2. the customized hardware peripherals: per-block estimates from the
//      sysgen model (the System Generator resource-estimator analog);
//   3. the communication interface: per-FSL-link cost;
//   4. storage of the software program: image size (mb-objdump analog)
//      divided into BRAM blocks.
//
// Two numbers are produced per design, mirroring Table I:
//   - `estimated`: the sum-of-parts rapid estimate;
//   - `implemented`: a deterministic model of the post-place-and-route
//     report (.par file analog), which trims logic that synthesis can
//     absorb across block boundaries. Routing/control structures (muxes,
//     registers, delay lines) trim far more than carry-chain arithmetic,
//     which is why the paper's matmul designs (mux/control heavy) lose
//     ~16% of their estimated slices while the CORDIC pipelines (adder
//     heavy) lose ~1%.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/resources.hpp"
#include "isa/isa.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::estimate {

/// Everything that occupies FPGA resources in one design.
struct SystemDescription {
  isa::CpuConfig cpu;
  unsigned fsl_links_used = 0;
  const sysgen::Model* peripheral = nullptr;        ///< may be null (pure SW)
  const assembler::Program* program = nullptr;      ///< may be null
  /// Resources of registered custom-instruction units (Nios-style ISA
  /// customization), one entry per occupied slot.
  std::vector<ResourceVec> custom_instructions;
};

/// One line of a resource report.
struct ResourcePart {
  std::string name;
  ResourceVec estimated;
};

struct ResourceReport {
  std::vector<ResourcePart> parts;
  ResourceVec estimated;    ///< sum of parts (the rapid estimate)
  ResourceVec implemented;  ///< post-implementation model (".par" analog)

  [[nodiscard]] std::string to_string() const;
};

/// Produce the full estimated/implemented report for a design.
[[nodiscard]] ResourceReport estimate_system(const SystemDescription& system);

/// The trimming model applied to a peripheral: returns the implemented
/// (post-PAR) resources for a sysgen model. Exposed for tests.
[[nodiscard]] ResourceVec implemented_peripheral_resources(
    const sysgen::Model& model);

}  // namespace mbcosim::estimate
