#include "estimate/estimator.hpp"

#include <cmath>
#include <sstream>

#include "asm/objdump.hpp"
#include "estimate/datasheet.hpp"
#include "sysgen/blocks_basic.hpp"
#include "sysgen/blocks_memory.hpp"

namespace mbcosim::estimate {

namespace {

/// Fraction of a block's estimated slices that survives implementation.
/// Carry-chain arithmetic maps essentially one-to-one; routing and state
/// structures get absorbed into neighbouring logic by the mapper.
double survival_factor(const sysgen::Block& block) {
  using namespace mbcosim::sysgen;
  if (dynamic_cast<const AddSub*>(&block) != nullptr ||
      dynamic_cast<const Negate*>(&block) != nullptr ||
      dynamic_cast<const Relational*>(&block) != nullptr) {
    return 0.99;  // dedicated carry chains
  }
  if (dynamic_cast<const Mult*>(&block) != nullptr) {
    return 0.95;  // embedded multiplier + small correction logic
  }
  if (dynamic_cast<const VariableShiftRight*>(&block) != nullptr) {
    return 0.92;  // mux tree, partially absorbed
  }
  if (dynamic_cast<const Mux*>(&block) != nullptr ||
      dynamic_cast<const Logical*>(&block) != nullptr ||
      dynamic_cast<const Slice*>(&block) != nullptr ||
      dynamic_cast<const Convert*>(&block) != nullptr) {
    return 0.70;  // pure LUT logic, heavily merged with consumers
  }
  if (dynamic_cast<const Register*>(&block) != nullptr ||
      dynamic_cast<const Delay*>(&block) != nullptr ||
      dynamic_cast<const Counter*>(&block) != nullptr) {
    return 0.80;  // flip-flops packed into the slices of their drivers
  }
  return 0.85;  // memories, custom blocks: mild packing gains
}

}  // namespace

ResourceVec implemented_peripheral_resources(const sysgen::Model& model) {
  double slices = 0.0;
  ResourceVec fixed;  // BRAMs and multipliers never trim
  for (const auto& block : model.blocks()) {
    const ResourceVec r = block->resources();
    slices += r.slices * survival_factor(*block);
    fixed.brams += r.brams;
    fixed.mult18s += r.mult18s;
  }
  ResourceVec result = fixed;
  result.slices = static_cast<u32>(std::lround(slices));
  return result;
}

ResourceReport estimate_system(const SystemDescription& system) {
  ResourceReport report;

  ResourceVec cpu = cpu_resources(system.cpu, system.fsl_links_used);
  for (const ResourceVec& unit : system.custom_instructions) cpu += unit;
  report.parts.push_back(
      {system.custom_instructions.empty()
           ? std::string("soft processor + LMB + FSL links")
           : std::string("soft processor + LMB + FSL links + ") +
                 std::to_string(system.custom_instructions.size()) +
                 " custom instruction unit(s)",
       cpu});

  ResourceVec peripheral_estimated;
  ResourceVec peripheral_implemented;
  if (system.peripheral != nullptr) {
    peripheral_estimated = system.peripheral->resources();
    peripheral_implemented =
        implemented_peripheral_resources(*system.peripheral);
    report.parts.push_back({"customized hardware peripheral (" +
                                system.peripheral->name() + ")",
                            peripheral_estimated});
  }

  ResourceVec program;
  if (system.program != nullptr) {
    program.brams =
        assembler::brams_for_program(*system.program, kBramProgramBytes);
    report.parts.push_back({"software program storage", program});
  }

  report.estimated = cpu + peripheral_estimated + program;
  // The processor macro and BRAMs are pre-implemented; only the
  // peripheral's estimate moves between estimation and implementation.
  report.implemented = cpu + peripheral_implemented + program;
  return report;
}

std::string ResourceReport::to_string() const {
  std::ostringstream os;
  for (const ResourcePart& part : parts) {
    os << "  " << part.name << ": " << part.estimated.to_string() << "\n";
  }
  os << "  estimated:   " << estimated.to_string() << "\n";
  os << "  implemented: " << implemented.to_string() << "\n";
  return os.str();
}

}  // namespace mbcosim::estimate
