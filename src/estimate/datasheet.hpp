// Data-sheet resource figures for the fixed system components, standing in
// for the Xilinx data sheets the paper consults: "Resource usage of the
// MicroBlaze processor and the two LMB interface controllers is obtained
// from the Xilinx data sheet" (Section III-C). Figures approximate a
// MicroBlaze v4-class core on Virtex-II Pro.
#pragma once

#include "common/resources.hpp"
#include "isa/isa.hpp"

namespace mbcosim::estimate {

/// Base soft-processor core (3-stage pipeline, 32 GPRs, LMB interfaces
/// excluded), without optional units.
inline constexpr ResourceVec kCpuBase{400, 0, 0};

/// Optional hardware multiplier: a 32x32 multiply built from three
/// MULT18x18 primitives (this is where Table I's baseline "3 multipliers"
/// comes from).
inline constexpr ResourceVec kCpuMultiplier{30, 0, 3};

/// Optional barrel shifter.
inline constexpr ResourceVec kCpuBarrelShifter{90, 0, 0};

/// Optional serial divider.
inline constexpr ResourceVec kCpuDivider{85, 0, 0};

/// One LMB interface controller (the configuration uses two: instruction
/// side and data side).
inline constexpr ResourceVec kLmbController{10, 0, 0};

/// One FSL link (FIFO + handshake), 16 x 33 bits in SRL16s.
inline constexpr ResourceVec kFslLink{24, 0, 0};

/// Resources of a soft-processor configuration (core + optional units +
/// the two LMB controllers).
[[nodiscard]] inline ResourceVec cpu_resources(const isa::CpuConfig& config,
                                               unsigned fsl_links_used) {
  ResourceVec total = kCpuBase;
  if (config.has_multiplier) total += kCpuMultiplier;
  if (config.has_barrel_shifter) total += kCpuBarrelShifter;
  if (config.has_divider) total += kCpuDivider;
  total += kLmbController;  // instruction-side LMB controller
  total += kLmbController;  // data-side LMB controller
  for (unsigned i = 0; i < fsl_links_used; ++i) total += kFslLink;
  return total;
}

/// Virtex-II Pro block RAM: 18 Kbit. Configured 32 bits wide it stores
/// 2 KiB of program image (paper Section III-C sizing rule).
inline constexpr u32 kBramProgramBytes = 2048;

}  // namespace mbcosim::estimate
