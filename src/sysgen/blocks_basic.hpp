// Standard block set: the arithmetic, routing and state primitives our
// applications are assembled from — the analog of the System Generator
// block set (Constant, AddSub, Mult, Mux, Relational, Logical, Shift,
// Delay, Register, Counter, Convert, Slice, Gateway In/Out).
//
// Per-block resource figures approximate a Virtex-II Pro mapping (two
// 4-input LUTs per slice); they feed the rapid resource estimator.
#pragma once

#include <algorithm>
#include <deque>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "common/bits.hpp"
#include "sysgen/block.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::sysgen {

/// Slices for a W-bit ripple-carry add/sub/compare datapath.
constexpr u32 slices_for_adder(unsigned width) {
  return (width + 1) / 2;
}
/// Slices for W-bit registers (two flip-flops per slice).
constexpr u32 slices_for_register(unsigned width) {
  return (width + 1) / 2;
}

// ---------------------------------------------------------------------------
// Sources and sinks
// ---------------------------------------------------------------------------

/// Constant: drives a fixed value forever.
class Constant : public Block {
 public:
  Constant(Model& model, std::string name, Fix value)
      : Block(model, std::move(name)),
        value_(value),
        out_(make_output("out", value.format())) {}

  void propagate() override { out_.drive(value_); }
  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  Fix value_;
  Signal& out_;
};

/// Gateway In: the boundary through which the surrounding environment
/// (testbench or co-simulation engine) injects values into the hardware
/// design — System Generator's "Gateway In" block (paper Section III-A).
class GatewayIn : public Block {
 public:
  GatewayIn(Model& model, std::string name, FixFormat format)
      : Block(model, std::move(name)),
        format_(format),
        pending_(Fix::from_raw(format, 0)),
        out_(make_output("out", format)) {}

  /// Set the value presented during the next step(). Doubles are
  /// quantized like a hardware gateway (round, saturate).
  void set(double value) { pending_ = Fix::from_double(format_, value); }
  void set_raw(i64 raw_code) { pending_ = Fix::from_raw(format_, raw_code); }
  void set_fix(const Fix& value) {
    pending_ = value.cast(format_, Quantization::kRoundHalfUp,
                          Overflow::kSaturate);
  }
  void set_bool(bool value) { pending_ = Fix::from_raw(format_, value ? 1 : 0); }

  void propagate() override { out_.drive(pending_); }
  void reset() override { pending_ = Fix::from_raw(format_, 0); }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_i64(pending_.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    pending_ = Fix::from_raw(format_, reader.read_i64());
    return reader.ok();
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  FixFormat format_;
  Fix pending_;
  Signal& out_;
};

/// Gateway Out: exposes an internal signal to the environment.
class GatewayOut : public Block {
 public:
  GatewayOut(Model& model, std::string name, Signal& source)
      : Block(model, std::move(name)) {
    connect_input(source);
  }

  [[nodiscard]] const Fix& read() const { return in(0).value(); }
  [[nodiscard]] i64 read_raw() const { return in(0).raw(); }
  [[nodiscard]] bool read_bool() const { return in(0).as_bool(); }
};

// ---------------------------------------------------------------------------
// Pipelined function base
// ---------------------------------------------------------------------------

/// Common machinery for arithmetic blocks with a configurable pipeline
/// latency: latency 0 is combinational; latency L >= 1 inserts L output
/// registers (like the "latency" parameter on System Generator blocks).
class PipelinedFunction : public Block {
 public:
  [[nodiscard]] bool is_sequential() const override { return latency_ > 0; }

  void output_state() override { out_.drive(pipe_.front()); }
  void propagate() override { out_.drive(compute()); }
  void latch() override {
    pipe_.push_back(compute());
    pipe_.pop_front();
  }
  void reset() override {
    for (auto& stage : pipe_) stage = Fix::from_raw(out_.format(), 0);
  }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_u32(latency_);
    for (const Fix& stage : pipe_) writer.write_i64(stage.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    if (reader.read_u32() != latency_) return false;
    for (Fix& stage : pipe_) {
      stage = Fix::from_raw(out_.format(), reader.read_i64());
    }
    return reader.ok();
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }
  [[nodiscard]] unsigned latency() const noexcept { return latency_; }

 protected:
  PipelinedFunction(Model& model, std::string name, FixFormat out_format,
                    unsigned latency)
      : Block(model, std::move(name)),
        latency_(latency),
        out_(make_output("out", out_format)) {
    pipe_.assign(latency_, Fix::from_raw(out_format, 0));
  }

  /// Evaluate the combinational function from the current inputs.
  [[nodiscard]] virtual Fix compute() const = 0;

 private:
  unsigned latency_;
  Signal& out_;
  std::deque<Fix> pipe_;
};

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

/// AddSub: rd = a +/- b, cast into the configured output format.
class AddSub : public PipelinedFunction {
 public:
  enum class Mode { kAdd, kSubtract };

  AddSub(Model& model, std::string name, Mode mode, Signal& a, Signal& b,
         FixFormat out_format, unsigned latency = 0,
         Quantization quantization = Quantization::kTruncate,
         Overflow overflow = Overflow::kWrap)
      : PipelinedFunction(model, std::move(name), out_format, latency),
        mode_(mode),
        quantization_(quantization),
        overflow_(overflow) {
    connect_input(a);
    connect_input(b);
  }

  [[nodiscard]] ResourceVec resources() const override {
    const unsigned width = std::max(in(0).format().word_bits,
                                    in(1).format().word_bits);
    ResourceVec r{slices_for_adder(width), 0, 0};
    if (latency() > 0) {
      r.slices += slices_for_register(outputs()[0]->format().word_bits);
    }
    return r;
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const Fix full = mode_ == Mode::kAdd ? in(0).value().add_full(in(1).value())
                                         : in(0).value().sub_full(in(1).value());
    return full.cast(outputs()[0]->format(), quantization_, overflow_);
  }

  Mode mode_;
  Quantization quantization_;
  Overflow overflow_;
};

/// Mult: full-precision multiply cast to the output format. Maps to
/// embedded MULT18x18 primitives when the operands fit, as on Virtex-II.
class Mult : public PipelinedFunction {
 public:
  Mult(Model& model, std::string name, Signal& a, Signal& b,
       FixFormat out_format, unsigned latency = 1,
       Quantization quantization = Quantization::kTruncate,
       Overflow overflow = Overflow::kWrap)
      : PipelinedFunction(model, std::move(name), out_format, latency),
        quantization_(quantization),
        overflow_(overflow) {
    connect_input(a);
    connect_input(b);
  }

  [[nodiscard]] ResourceVec resources() const override {
    const unsigned wa = in(0).format().word_bits;
    const unsigned wb = in(1).format().word_bits;
    ResourceVec r;
    r.mult18s = ceil_div(wa, 18u) * ceil_div(wb, 18u);
    r.slices = 2 + (latency() > 0
                        ? slices_for_register(outputs()[0]->format().word_bits)
                        : 0);
    return r;
  }

 private:
  [[nodiscard]] Fix compute() const override {
    return in(0).value().mul_full(in(1).value()).cast(
        outputs()[0]->format(), quantization_, overflow_);
  }

  Quantization quantization_;
  Overflow overflow_;
};

/// Negate: two's-complement negation.
class Negate : public PipelinedFunction {
 public:
  Negate(Model& model, std::string name, Signal& a, FixFormat out_format,
         unsigned latency = 0)
      : PipelinedFunction(model, std::move(name), out_format, latency) {
    connect_input(a);
  }

  [[nodiscard]] ResourceVec resources() const override {
    return ResourceVec{slices_for_adder(in(0).format().word_bits), 0, 0};
  }

 private:
  [[nodiscard]] Fix compute() const override {
    return in(0).value().negate_full().cast(outputs()[0]->format());
  }
};

/// Convert: pure format conversion (System Generator "Convert" block).
class Convert : public PipelinedFunction {
 public:
  Convert(Model& model, std::string name, Signal& a, FixFormat out_format,
          Quantization quantization = Quantization::kTruncate,
          Overflow overflow = Overflow::kWrap, unsigned latency = 0)
      : PipelinedFunction(model, std::move(name), out_format, latency),
        quantization_(quantization),
        overflow_(overflow) {
    connect_input(a);
  }

  [[nodiscard]] ResourceVec resources() const override {
    // Rounding needs an adder stage; truncation is free wiring.
    ResourceVec r;
    if (quantization_ == Quantization::kRoundHalfUp) {
      r.slices += slices_for_adder(outputs()[0]->format().word_bits);
    }
    return r;
  }

 private:
  [[nodiscard]] Fix compute() const override {
    return in(0).value().cast(outputs()[0]->format(), quantization_,
                              overflow_);
  }

  Quantization quantization_;
  Overflow overflow_;
};

/// Constant-amount shift, binary point fixed (hardware wiring shift).
class ShiftConst : public PipelinedFunction {
 public:
  enum class Direction { kLeft, kRightArithmetic };

  ShiftConst(Model& model, std::string name, Signal& a, Direction direction,
             unsigned amount, unsigned latency = 0)
      : PipelinedFunction(model, std::move(name), a.format(), latency),
        direction_(direction),
        amount_(amount) {
    connect_input(a);
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const Fix& a = in(0).value();
    if (direction_ == Direction::kRightArithmetic) {
      return a.shift_right_keep_format(amount_);
    }
    return Fix::from_raw(a.format(), a.raw() << amount_);
  }

  Direction direction_;
  unsigned amount_;
};

/// Variable arithmetic right shift: a >> amount, format preserved. Models
/// a slice-based barrel shifter — this is how the CORDIC PEs scale by the
/// variable power of two C_i without consuming embedded multipliers
/// (paper Section IV-A and Table I, which reports no extra multipliers
/// for the CORDIC peripheral).
class VariableShiftRight : public PipelinedFunction {
 public:
  VariableShiftRight(Model& model, std::string name, Signal& a,
                     Signal& amount, unsigned max_shift, unsigned latency = 0)
      : PipelinedFunction(model, std::move(name), a.format(), latency),
        max_shift_(max_shift) {
    connect_input(a);
    connect_input(amount);
  }

  [[nodiscard]] ResourceVec resources() const override {
    // One 2:1 mux level per shift-amount bit, one LUT per data bit per
    // level, two LUTs per slice.
    const unsigned width = in(0).format().word_bits;
    unsigned levels = 0;
    while ((1u << levels) <= max_shift_) ++levels;
    return ResourceVec{ceil_div(width * levels, 2u), 0, 0};
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const auto amount = static_cast<u64>(in(1).raw());
    const unsigned clamped =
        static_cast<unsigned>(std::min<u64>(amount, max_shift_));
    return in(0).value().shift_right_keep_format(clamped);
  }

  unsigned max_shift_;
};

// ---------------------------------------------------------------------------
// Routing and comparison
// ---------------------------------------------------------------------------

/// Mux: data inputs selected by an unsigned select input.
class Mux : public PipelinedFunction {
 public:
  Mux(Model& model, std::string name, Signal& select,
      std::vector<Signal*> data, unsigned latency = 0)
      : PipelinedFunction(model, std::move(name),
                          data.empty() ? FixFormat{} : data.front()->format(),
                          latency),
        fan_in_(static_cast<unsigned>(data.size())) {
    if (data.empty()) {
      throw SimError("Mux '" + this->name() + "': needs at least one input");
    }
    for (const Signal* signal : data) {
      if (signal->format() != data.front()->format()) {
        throw SimError("Mux '" + this->name() +
                       "': all data inputs must share a format");
      }
    }
    connect_input(select);
    for (Signal* signal : data) connect_input(*signal);
  }

  [[nodiscard]] ResourceVec resources() const override {
    const unsigned width = outputs()[0]->format().word_bits;
    return ResourceVec{ceil_div(width * (fan_in_ - 1), 2u), 0, 0};
  }

 private:
  [[nodiscard]] Fix compute() const override {
    auto index = static_cast<u64>(in(0).raw());
    if (index >= fan_in_) index = fan_in_ - 1;  // clamp like the HW core
    return in(1 + static_cast<std::size_t>(index)).value();
  }

  unsigned fan_in_;
};

/// Relational: boolean (UFix1_0) comparison of two inputs.
class Relational : public PipelinedFunction {
 public:
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  Relational(Model& model, std::string name, Op op, Signal& a, Signal& b,
             unsigned latency = 0)
      : PipelinedFunction(model, std::move(name),
                          FixFormat::unsigned_fix(1, 0), latency),
        op_(op) {
    connect_input(a);
    connect_input(b);
  }

  [[nodiscard]] ResourceVec resources() const override {
    const unsigned width = std::max(in(0).format().word_bits,
                                    in(1).format().word_bits);
    return ResourceVec{slices_for_adder(width), 0, 0};
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const auto ordering = in(0).value().compare(in(1).value());
    bool result = false;
    switch (op_) {
      case Op::kEq: result = ordering == std::strong_ordering::equal; break;
      case Op::kNe: result = ordering != std::strong_ordering::equal; break;
      case Op::kLt: result = ordering == std::strong_ordering::less; break;
      case Op::kLe: result = ordering != std::strong_ordering::greater; break;
      case Op::kGt: result = ordering == std::strong_ordering::greater; break;
      case Op::kGe: result = ordering != std::strong_ordering::less; break;
    }
    return Fix::from_raw(FixFormat::unsigned_fix(1, 0), result ? 1 : 0);
  }

  Op op_;
};

/// Logical: bitwise AND/OR/XOR of N same-format inputs (NOT of one).
class Logical : public PipelinedFunction {
 public:
  enum class Op { kAnd, kOr, kXor, kNot };

  Logical(Model& model, std::string name, Op op, std::vector<Signal*> inputs,
          unsigned latency = 0)
      : PipelinedFunction(model, std::move(name),
                          inputs.empty() ? FixFormat{}
                                         : inputs.front()->format(),
                          latency),
        op_(op) {
    if (inputs.empty() || (op == Op::kNot && inputs.size() != 1)) {
      throw SimError("Logical '" + this->name() + "': bad input count");
    }
    for (Signal* signal : inputs) connect_input(*signal);
  }

  [[nodiscard]] ResourceVec resources() const override {
    const unsigned width = outputs()[0]->format().word_bits;
    const auto fan_in = static_cast<unsigned>(inputs().size());
    return ResourceVec{ceil_div(width * std::max(1u, fan_in - 1), 2u), 0, 0};
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const FixFormat fmt = outputs()[0]->format();
    const u64 mask = low_mask64(fmt.word_bits);
    u64 acc = static_cast<u64>(in(0).raw()) & mask;
    if (op_ == Op::kNot) {
      return Fix::from_raw(fmt, static_cast<i64>(~acc & mask));
    }
    for (std::size_t i = 1; i < inputs().size(); ++i) {
      const u64 operand = static_cast<u64>(in(i).raw()) & mask;
      switch (op_) {
        case Op::kAnd: acc &= operand; break;
        case Op::kOr: acc |= operand; break;
        case Op::kXor: acc ^= operand; break;
        case Op::kNot: break;
      }
    }
    return Fix::from_raw(fmt, static_cast<i64>(acc));
  }

  Op op_;
};

/// Slice: extract bits [low, low + width) as an unsigned integer.
class Slice : public PipelinedFunction {
 public:
  Slice(Model& model, std::string name, Signal& a, unsigned low,
        unsigned width, unsigned latency = 0)
      : PipelinedFunction(model, std::move(name),
                          FixFormat::unsigned_fix(static_cast<u8>(width), 0),
                          latency),
        low_(low) {
    if (width == 0 || low + width > a.format().word_bits) {
      throw SimError("Slice '" + this->name() + "': range [" +
                     std::to_string(low) + ", " + std::to_string(low + width) +
                     ") outside " + a.format().to_string());
    }
    connect_input(a);
  }

 private:
  [[nodiscard]] Fix compute() const override {
    const u64 raw_value = static_cast<u64>(in(0).raw()) >> low_;
    return Fix::from_raw(outputs()[0]->format(),
                         static_cast<i64>(raw_value));
  }

  unsigned low_;
};

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// Register: one-cycle delay with initial value and optional enable.
/// The feedback-form constructor leaves the data input unconnected so
/// accumulator loops can be closed after the downstream logic exists
/// (sequential blocks legally break combinational cycles).
class Register : public Block {
 public:
  Register(Model& model, std::string name, Signal& d, Fix init,
           Signal* enable = nullptr)
      : Register(model, std::move(name), init, enable) {
    connect_d(d);
  }

  /// Feedback form: call connect_d() before the first simulation step.
  Register(Model& model, std::string name, Fix init, Signal* enable = nullptr)
      : Block(model, std::move(name)),
        init_(init),
        state_(init),
        out_(make_output("q", init.format())) {
    if (enable != nullptr) {
      enable_index_ = static_cast<int>(inputs().size());
      connect_input(*enable);
    }
  }

  void connect_d(Signal& d) {
    if (d_index_ >= 0) {
      throw SimError("Register '" + name() + "': data input already bound");
    }
    d_index_ = static_cast<int>(inputs().size());
    connect_input(d);
  }

  [[nodiscard]] bool is_sequential() const override { return true; }
  void check() const override {
    if (d_index_ < 0) {
      throw SimError("Register '" + name() + "': data input never connected");
    }
  }
  void output_state() override { out_.drive(state_); }
  void latch() override {
    if (enable_index_ >= 0 &&
        !in(static_cast<std::size_t>(enable_index_)).as_bool()) {
      return;
    }
    state_ = in(static_cast<std::size_t>(d_index_)).value().cast(
        init_.format());
  }
  void reset() override { state_ = init_; }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_i64(state_.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    state_ = Fix::from_raw(init_.format(), reader.read_i64());
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    return ResourceVec{slices_for_register(init_.format().word_bits), 0, 0};
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  Fix init_;
  Fix state_;
  int d_index_ = -1;
  int enable_index_ = -1;
  Signal& out_;
};

/// Delay: N-cycle delay line (SRL16-mapped in hardware).
class Delay : public Block {
 public:
  Delay(Model& model, std::string name, Signal& d, unsigned cycles)
      : Block(model, std::move(name)),
        cycles_(cycles),
        out_(make_output("out", d.format())) {
    if (cycles == 0) {
      throw SimError("Delay '" + this->name() +
                     "': zero-cycle delay is a wire, use the signal");
    }
    connect_input(d);
    line_.assign(cycles_, Fix::from_raw(d.format(), 0));
  }

  [[nodiscard]] bool is_sequential() const override { return true; }
  void output_state() override { out_.drive(line_.front()); }
  void latch() override {
    line_.push_back(in(0).value());
    line_.pop_front();
  }
  void reset() override {
    for (auto& stage : line_) stage = Fix::from_raw(out_.format(), 0);
  }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_u32(cycles_);
    for (const Fix& stage : line_) writer.write_i64(stage.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    if (reader.read_u32() != cycles_) return false;
    for (Fix& stage : line_) {
      stage = Fix::from_raw(out_.format(), reader.read_i64());
    }
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    // SRL16: one LUT per bit covers up to 16 stages.
    const unsigned width = out_.format().word_bits;
    return ResourceVec{ceil_div(width * ceil_div(cycles_, 16u), 2u), 0, 0};
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  unsigned cycles_;
  Signal& out_;
  std::deque<Fix> line_;
};

/// Counter: free-running or enabled up-counter with wrap-around.
class Counter : public Block {
 public:
  Counter(Model& model, std::string name, FixFormat format, i64 limit,
          Signal* enable = nullptr, Signal* sync_reset = nullptr)
      : Block(model, std::move(name)),
        format_(format),
        limit_(limit),
        out_(make_output("count", format)) {
    format_.validate();
    if (limit_ <= 0 || limit_ > format_.max_raw() + 1) {
      throw SimError("Counter '" + this->name() + "': bad limit");
    }
    if (enable != nullptr) {
      enable_index_ = static_cast<int>(inputs().size());
      connect_input(*enable);
    }
    if (sync_reset != nullptr) {
      reset_index_ = static_cast<int>(inputs().size());
      connect_input(*sync_reset);
    }
  }

  [[nodiscard]] bool is_sequential() const override { return true; }
  void output_state() override { out_.drive_raw(value_); }
  void latch() override {
    if (reset_index_ >= 0 && in(static_cast<std::size_t>(reset_index_)).as_bool()) {
      value_ = 0;
      return;
    }
    if (enable_index_ >= 0 &&
        !in(static_cast<std::size_t>(enable_index_)).as_bool()) {
      return;
    }
    value_ = (value_ + 1) % limit_;
  }
  void reset() override { value_ = 0; }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_i64(value_);
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    const i64 value = reader.read_i64();
    if (value < 0 || value >= limit_) return false;
    value_ = value;
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    return ResourceVec{slices_for_adder(format_.word_bits), 0, 0};
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  FixFormat format_;
  i64 limit_;
  i64 value_ = 0;
  int enable_index_ = -1;
  int reset_index_ = -1;
  Signal& out_;
};

}  // namespace mbcosim::sysgen
