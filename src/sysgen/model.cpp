#include "sysgen/model.hpp"

#include <algorithm>
#include <unordered_map>

#include "ckpt/ckpt.hpp"

namespace mbcosim::sysgen {

// ----- Block base ----------------------------------------------------------

Block::Block(Model& model, std::string name)
    : model_(model), name_(std::move(name)) {}

Signal& Block::make_output(const std::string& suffix, FixFormat format) {
  Signal& signal = model_.make_signal(name_ + "." + suffix, format);
  signal.set_driver(this);
  outputs_.push_back(&signal);
  return signal;
}

const Signal& Block::in(std::size_t index) const {
  if (index >= inputs_.size()) {
    throw SimError("Block '" + name_ + "': input index " +
                   std::to_string(index) + " out of range (" +
                   std::to_string(inputs_.size()) + " inputs)");
  }
  return *inputs_[index];
}

// ----- Model ----------------------------------------------------------------

Signal& Model::make_signal(std::string signal_name, FixFormat format) {
  if (find_signal(signal_name) != nullptr) {
    throw SimError("Model '" + name_ + "': duplicate signal '" + signal_name +
                   "'");
  }
  signals_.emplace_back(std::move(signal_name), format);
  return signals_.back();
}

void Model::elaborate() {
  if (elaborated_) return;
  for (const auto& block : blocks_) block->check();
  sequential_.clear();
  combinational_order_.clear();

  std::vector<Block*> combinational;
  for (const auto& block : blocks_) {
    if (block->is_sequential()) {
      sequential_.push_back(block.get());
    } else {
      combinational.push_back(block.get());
    }
  }

  // Kahn's algorithm over the combinational dependency graph: an edge
  // A -> B exists when combinational block B reads a signal driven by
  // combinational block A. Sequential drivers impose no ordering (their
  // outputs are valid from phase 0).
  std::unordered_map<Block*, std::vector<Block*>> consumers;
  std::unordered_map<Block*, unsigned> pending;
  for (Block* block : combinational) pending[block] = 0;
  for (Block* block : combinational) {
    for (const Signal* input : block->inputs()) {
      Block* driver = input->driver();
      if (driver != nullptr && !driver->is_sequential()) {
        consumers[driver].push_back(block);
        pending[block] += 1;
      }
    }
  }
  std::vector<Block*> ready;
  for (Block* block : combinational) {
    if (pending[block] == 0) ready.push_back(block);
  }
  while (!ready.empty()) {
    Block* block = ready.back();
    ready.pop_back();
    combinational_order_.push_back(block);
    for (Block* next : consumers[block]) {
      if (--pending[next] == 0) ready.push_back(next);
    }
  }
  if (combinational_order_.size() != combinational.size()) {
    std::string cycle_members;
    for (Block* block : combinational) {
      if (pending[block] != 0) {
        if (!cycle_members.empty()) cycle_members += ", ";
        cycle_members += block->name();
      }
    }
    throw SimError("Model '" + name_ +
                   "': algebraic loop through combinational blocks: " +
                   cycle_members + " (insert a Delay or Register)");
  }
  elaborated_ = true;
}

void Model::reset() {
  for (auto& signal : signals_) signal.reset();
  for (const auto& block : blocks_) block->reset();
  cycle_ = 0;
}

void Model::step() {
  if (!elaborated_) elaborate();
  for (Block* block : sequential_) block->output_state();
  for (Block* block : combinational_order_) block->propagate();
  for (Block* block : sequential_) block->latch();
  ++cycle_;
}

void Model::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

ResourceVec Model::resources() const {
  ResourceVec total;
  for (const auto& block : blocks_) total += block->resources();
  return total;
}

Block* Model::find_block(const std::string& block_name) const {
  const auto it = std::find_if(
      blocks_.begin(), blocks_.end(),
      [&](const auto& block) { return block->name() == block_name; });
  return it == blocks_.end() ? nullptr : it->get();
}

void Model::save_state(ckpt::Writer& writer) const {
  writer.write_u64(cycle_);
  writer.write_u64(signals_.size());
  for (const Signal& signal : signals_) writer.write_i64(signal.raw());
  writer.write_u64(blocks_.size());
  for (const auto& block : blocks_) block->save_state(writer);
}

bool Model::load_state(ckpt::Reader& reader) {
  cycle_ = reader.read_u64();
  if (reader.read_u64() != signals_.size()) return false;
  for (Signal& signal : signals_) signal.drive_raw(reader.read_i64());
  if (reader.read_u64() != blocks_.size()) return false;
  for (const auto& block : blocks_) {
    if (!block->load_state(reader)) return false;
  }
  return reader.ok();
}

Signal* Model::find_signal(const std::string& signal_name) const {
  for (const auto& signal : signals_) {
    if (signal.name() == signal_name) {
      return const_cast<Signal*>(&signal);
    }
  }
  return nullptr;
}

}  // namespace mbcosim::sysgen
