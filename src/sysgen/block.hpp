// Base class of every hardware block in the sysgen framework — the analog
// of a System Generator block-set element (paper Section II: designers
// "assemble designs by dragging and dropping the blocks from the block
// set ... and connecting them"). Our API replaces the GUI with builder
// code; the simulation semantics are the same synchronous cycle-based
// dataflow:
//
//   phase 0  output_state(): sequential blocks drive their outputs from
//            internal state (registers are Moore machines);
//   phase 1  propagate():    combinational blocks evaluate in topological
//            order (algebraic loops are rejected at elaboration);
//   phase 2  latch():        sequential blocks capture their inputs.
//
// A block is sequential iff is_sequential() returns true; it then
// participates in phases 0/2 and must not implement propagate().
#pragma once

#include <string>
#include <vector>

#include "common/resources.hpp"
#include "sysgen/signal.hpp"

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::sysgen {

class Model;

class Block {
 public:
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;
  virtual ~Block() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] virtual bool is_sequential() const { return false; }

  /// Phase 0: drive outputs from state (sequential blocks only).
  virtual void output_state() {}
  /// Phase 1: combinational evaluation (combinational blocks only).
  virtual void propagate() {}
  /// Phase 2: capture inputs into state (sequential blocks only).
  virtual void latch() {}
  /// Return all state to power-on values.
  virtual void reset() {}

  /// Structural validation hook, run at elaboration; throw SimError to
  /// reject an incompletely wired block.
  virtual void check() const {}

  /// Estimated FPGA resources of the low-level implementation this block
  /// abstracts; the per-block figures feed the rapid resource estimator
  /// (paper Section III-C).
  [[nodiscard]] virtual ResourceVec resources() const { return {}; }

  /// Checkpoint hooks (DESIGN.md §11). Blocks whose behaviour depends on
  /// anything beyond their input signals — register contents, pipeline
  /// stages, FIFO queues, counters — must serialize that state here;
  /// purely combinational blocks inherit the empty defaults. Model
  /// serializes signal values and calls the blocks in creation order.
  virtual void save_state(ckpt::Writer&) const {}
  [[nodiscard]] virtual bool load_state(ckpt::Reader&) { return true; }

  [[nodiscard]] const std::vector<Signal*>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<Signal*>& outputs() const noexcept {
    return outputs_;
  }

 protected:
  Block(Model& model, std::string name);

  /// Create and take ownership of an output signal named
  /// "<block>.<suffix>".
  Signal& make_output(const std::string& suffix, FixFormat format);

  /// Register an input connection.
  void connect_input(Signal& signal) { inputs_.push_back(&signal); }

  /// Input accessor with a bounds check that reports the block name.
  [[nodiscard]] const Signal& in(std::size_t index) const;

  Model& model_;

 private:
  std::string name_;
  std::vector<Signal*> inputs_;
  std::vector<Signal*> outputs_;
};

}  // namespace mbcosim::sysgen
