// Model: a complete hardware design (the contents of one System Generator
// sheet) plus its cycle-based scheduler. The co-simulation engine drives
// the customized hardware peripherals by calling step() once per simulated
// clock cycle (paper Section III-A: "whenever there is data coming from
// the processor, simulation of these hardware designs is carried out
// within the Simulink modeling environment").
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/resources.hpp"
#include "common/types.hpp"
#include "sysgen/block.hpp"
#include "sysgen/signal.hpp"

namespace mbcosim::sysgen {

class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Construct a block in place; the model owns it.
  template <typename BlockType, typename... Args>
  BlockType& add(Args&&... args) {
    if (elaborated_) {
      throw SimError("Model '" + name_ + "': cannot add blocks after "
                     "elaboration");
    }
    auto block = std::make_unique<BlockType>(*this, std::forward<Args>(args)...);
    BlockType& ref = *block;
    blocks_.push_back(std::move(block));
    return ref;
  }

  /// Create a named signal owned by the model (blocks normally create
  /// their outputs through Block::make_output, which calls this).
  Signal& make_signal(std::string signal_name, FixFormat format);

  /// Freeze the graph: order combinational blocks topologically and
  /// reject algebraic loops. Called automatically by the first step().
  void elaborate();
  [[nodiscard]] bool elaborated() const noexcept { return elaborated_; }

  /// Reset every block and signal; keeps the elaboration.
  void reset();

  /// Advance one clock cycle (phases 0/1/2 over all blocks).
  void step();
  /// Advance n cycles.
  void run(Cycle cycles);

  [[nodiscard]] Cycle cycle() const noexcept { return cycle_; }

  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t signal_count() const noexcept {
    return signals_.size();
  }

  /// Sum of the per-block resource estimates (the System Generator
  /// "resource estimator" analog, paper Section II).
  [[nodiscard]] ResourceVec resources() const;

  /// Look up a block / signal by full name; nullptr when absent.
  [[nodiscard]] Block* find_block(const std::string& block_name) const;
  [[nodiscard]] Signal* find_signal(const std::string& signal_name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Block>>& blocks()
      const noexcept {
    return blocks_;
  }

  /// Checkpoint the model: clock cycle, every signal's raw value and
  /// every block's internal state, in creation order (block and signal
  /// counts double as shape checks). load_state returns false when the
  /// snapshot was taken from a differently-shaped design.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::deque<Signal> signals_;  // deque: stable addresses
  std::vector<Block*> sequential_;
  std::vector<Block*> combinational_order_;
  bool elaborated_ = false;
  Cycle cycle_ = 0;
};

}  // namespace mbcosim::sysgen
