// Memory blocks: ROM, single-port RAM and a synchronous FIFO — the BRAM-
// backed members of the block set. Resource figures model Virtex-II Pro
// 18 Kbit block RAMs; small memories map to distributed (slice) RAM.
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "common/bits.hpp"
#include "sysgen/block.hpp"
#include "sysgen/blocks_basic.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::sysgen {

namespace detail {
/// BRAMs for a depth x width memory; memories of at most 64 entries map
/// to distributed RAM (reported as slices instead).
inline ResourceVec memory_resources(std::size_t depth, unsigned width_bits) {
  ResourceVec r;
  if (depth <= 64) {
    r.slices = ceil_div(static_cast<u32>(depth * width_bits), 32u);
    return r;
  }
  constexpr u32 kBramBits = 18 * 1024;
  r.brams = ceil_div(static_cast<u32>(depth * width_bits), kBramBits);
  return r;
}
}  // namespace detail

/// ROM: synchronous read, one-cycle latency (BRAM output register).
class Rom : public Block {
 public:
  Rom(Model& model, std::string name, Signal& address,
      std::vector<Fix> contents)
      : Block(model, std::move(name)),
        contents_(std::move(contents)),
        out_(make_output("data",
                         contents_.empty() ? FixFormat{}
                                           : contents_.front().format())),
        pending_(Fix::from_raw(out_.format(), 0)),
        state_(pending_) {
    if (contents_.empty()) {
      throw SimError("Rom '" + this->name() + "': empty contents");
    }
    for (const Fix& word : contents_) {
      if (word.format() != contents_.front().format()) {
        throw SimError("Rom '" + this->name() + "': mixed word formats");
      }
    }
    connect_input(address);
  }

  [[nodiscard]] bool is_sequential() const override { return true; }
  void output_state() override { out_.drive(state_); }
  void latch() override {
    auto index = static_cast<u64>(in(0).raw());
    if (index >= contents_.size()) index = contents_.size() - 1;
    state_ = contents_[static_cast<std::size_t>(index)];
  }
  void reset() override { state_ = Fix::from_raw(out_.format(), 0); }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_i64(state_.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    state_ = Fix::from_raw(out_.format(), reader.read_i64());
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    return detail::memory_resources(contents_.size(),
                                    out_.format().word_bits);
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }

 private:
  std::vector<Fix> contents_;
  Signal& out_;
  Fix pending_;
  Fix state_;
};

/// Single-port RAM: synchronous write, synchronous read (read-before-
/// write port behaviour, like a BRAM in READ_FIRST mode).
class SinglePortRam : public Block {
 public:
  SinglePortRam(Model& model, std::string name, std::size_t depth,
                FixFormat word_format, Signal& address, Signal& data_in,
                Signal& write_enable)
      : Block(model, std::move(name)),
        word_format_(word_format),
        cells_(depth, Fix::from_raw(word_format, 0)),
        out_(make_output("data", word_format)),
        state_(Fix::from_raw(word_format, 0)) {
    if (depth == 0) {
      throw SimError("SinglePortRam '" + this->name() + "': zero depth");
    }
    connect_input(address);
    connect_input(data_in);
    connect_input(write_enable);
  }

  [[nodiscard]] bool is_sequential() const override { return true; }
  void output_state() override { out_.drive(state_); }
  void latch() override {
    auto index = static_cast<u64>(in(0).raw());
    if (index >= cells_.size()) index = cells_.size() - 1;
    const auto slot = static_cast<std::size_t>(index);
    state_ = cells_[slot];  // read-before-write
    if (in(2).as_bool()) {
      cells_[slot] = in(1).value().cast(word_format_);
    }
  }
  void reset() override {
    for (auto& cell : cells_) cell = Fix::from_raw(word_format_, 0);
    state_ = Fix::from_raw(word_format_, 0);
  }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_u64(cells_.size());
    for (const Fix& cell : cells_) writer.write_i64(cell.raw());
    writer.write_i64(state_.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    if (reader.read_u64() != cells_.size()) return false;
    for (Fix& cell : cells_) {
      cell = Fix::from_raw(word_format_, reader.read_i64());
    }
    state_ = Fix::from_raw(word_format_, reader.read_i64());
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    return detail::memory_resources(cells_.size(), word_format_.word_bits);
  }

  [[nodiscard]] Signal& out() noexcept { return out_; }
  /// Debug peek for tests.
  [[nodiscard]] const Fix& cell(std::size_t index) const {
    return cells_.at(index);
  }

 private:
  FixFormat word_format_;
  std::vector<Fix> cells_;
  Signal& out_;
  Fix state_;
};

/// Synchronous FIFO with write/read enables and full/empty flags — the
/// hardware-side equivalent of the FSL FIFO buffer.
class FifoBlock : public Block {
 public:
  FifoBlock(Model& model, std::string name, std::size_t depth,
            FixFormat word_format, Signal& data_in, Signal& write_enable,
            Signal& read_enable)
      : Block(model, std::move(name)),
        depth_(depth),
        word_format_(word_format),
        data_out_(make_output("dout", word_format)),
        empty_(make_output("empty", FixFormat::unsigned_fix(1, 0))),
        full_(make_output("full", FixFormat::unsigned_fix(1, 0))),
        head_(Fix::from_raw(word_format, 0)) {
    if (depth_ == 0) {
      throw SimError("FifoBlock '" + this->name() + "': zero depth");
    }
    connect_input(data_in);
    connect_input(write_enable);
    connect_input(read_enable);
  }

  [[nodiscard]] bool is_sequential() const override { return true; }

  void output_state() override {
    data_out_.drive(fifo_.empty() ? head_ : fifo_.front());
    empty_.drive_raw(fifo_.empty() ? 1 : 0);
    full_.drive_raw(fifo_.size() >= depth_ ? 1 : 0);
  }
  void latch() override {
    if (in(2).as_bool() && !fifo_.empty()) fifo_.pop_front();
    if (in(1).as_bool() && fifo_.size() < depth_) {
      fifo_.push_back(in(0).value().cast(word_format_));
    }
  }
  void reset() override { fifo_.clear(); }

  void save_state(ckpt::Writer& writer) const override {
    writer.write_u64(fifo_.size());
    for (const Fix& word : fifo_) writer.write_i64(word.raw());
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    const u64 occupancy = reader.read_u64();
    if (!reader.ok() || occupancy > depth_) return false;
    fifo_.clear();
    for (u64 i = 0; i < occupancy; ++i) {
      fifo_.push_back(Fix::from_raw(word_format_, reader.read_i64()));
    }
    return reader.ok();
  }

  [[nodiscard]] ResourceVec resources() const override {
    ResourceVec r = detail::memory_resources(depth_, word_format_.word_bits);
    r.slices += slices_for_adder(8) * 2;  // read/write pointers + compare
    return r;
  }

  [[nodiscard]] Signal& data_out() noexcept { return data_out_; }
  [[nodiscard]] Signal& empty() noexcept { return empty_; }
  [[nodiscard]] Signal& full() noexcept { return full_; }
  [[nodiscard]] std::size_t occupancy() const noexcept { return fifo_.size(); }

 private:
  std::size_t depth_;
  FixFormat word_format_;
  Signal& data_out_;
  Signal& empty_;
  Signal& full_;
  Fix head_;
  std::deque<Fix> fifo_;
};

}  // namespace mbcosim::sysgen
