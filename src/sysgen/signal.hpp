// A Signal is a typed wire between block ports: it carries one Fix value
// per simulated clock cycle. Exactly one block output drives each signal.
#pragma once

#include <string>
#include <utility>

#include "common/fixed_point.hpp"
#include "common/status.hpp"

namespace mbcosim::sysgen {

class Block;

class Signal {
 public:
  Signal(std::string name, FixFormat format)
      : name_(std::move(name)),
        format_(format),
        value_(Fix::from_raw(format, 0)) {
    format_.validate();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const FixFormat& format() const noexcept { return format_; }
  [[nodiscard]] const Fix& value() const noexcept { return value_; }

  /// Convenience readers used all over the block library.
  [[nodiscard]] i64 raw() const noexcept { return value_.raw(); }
  [[nodiscard]] bool as_bool() const noexcept { return value_.raw() != 0; }
  [[nodiscard]] double as_double() const noexcept {
    return value_.to_double();
  }

  /// Drive the wire. The value must already be in the signal's format —
  /// blocks cast their results explicitly, exactly like the hardware they
  /// abstract (there are no implicit width conversions on an FPGA net).
  void drive(const Fix& value) {
    if (value.format() != format_) {
      throw SimError("Signal '" + name_ + "': driven with format " +
                     value.format().to_string() + ", expected " +
                     format_.to_string());
    }
    value_ = value;
  }

  /// Drive from a raw code (masked into the format).
  void drive_raw(i64 raw_code) { value_ = Fix::from_raw(format_, raw_code); }

  [[nodiscard]] Block* driver() const noexcept { return driver_; }
  void set_driver(Block* block) {
    if (driver_ != nullptr && block != nullptr) {
      throw SimError("Signal '" + name_ + "' already has a driver");
    }
    driver_ = block;
  }

  void reset() { value_ = Fix::from_raw(format_, 0); }

 private:
  std::string name_;
  FixFormat format_;
  Fix value_;
  Block* driver_ = nullptr;
};

}  // namespace mbcosim::sysgen
