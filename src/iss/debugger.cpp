#include "iss/debugger.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "isa/isa.hpp"

namespace mbcosim::iss {

StepResult Debugger::step_over_stalls(Cycle max_stall_cycles) {
  Cycle burned = 0;
  while (true) {
    const StepResult result = cpu_.step();
    if (result.event != Event::kFslStall) return result;
    burned += result.cycles;
    if (burned >= max_stall_cycles) return result;
  }
}

StopCause Debugger::cont(Cycle max_cycles) {
  const Cycle start = cpu_.cycle();
  while (cpu_.cycle() - start < max_cycles) {
    if (!breakpoints_.empty() && breakpoints_.count(cpu_.pc()) != 0) {
      return StopCause::kBreakpoint;
    }
    const StepResult result = cpu_.step();
    switch (result.event) {
      case Event::kHalted: return StopCause::kHalted;
      case Event::kIllegal: return StopCause::kIllegal;
      case Event::kFslStall: return StopCause::kFslStalled;
      case Event::kRetired: break;
    }
  }
  return StopCause::kCycleLimit;
}

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

bool parse_u64(const std::string& text, u64& out) {
  int base = 10;
  std::string_view body = text;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body.remove_prefix(2);
  }
  const auto* end = body.data() + body.size();
  const auto result = std::from_chars(body.data(), end, out, base);
  return result.ec == std::errc{} && result.ptr == end;
}

std::string hex(u64 value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

}  // namespace

std::string Debugger::command(std::string_view line) {
  const auto tokens = tokenize(line);
  if (tokens.empty()) return "error: empty command";
  const std::string& verb = tokens[0];
  auto arg_value = [&](size_t index, u64& out) {
    return index < tokens.size() && parse_u64(tokens[index], out);
  };
  // Every verb takes an exact argument count (cont's budget is the one
  // optional argument); extra trailing tokens are rejected rather than
  // silently ignored, so a typo like `setmem 0x100 1 2` cannot write an
  // unintended location.
  auto wants = [&](std::size_t count) { return tokens.size() == count; };

  if (verb == "reg") {
    u64 index = 0;
    std::string name = tokens.size() > 1 ? tokens[1] : "";
    if (!name.empty() && name[0] == 'r') name.erase(0, 1);
    if (!wants(2) || !parse_u64(name, index) || index >= isa::kNumRegisters) {
      return "error: reg <0..31>";
    }
    return hex(cpu_.reg(static_cast<unsigned>(index)));
  }
  if (verb == "setreg") {
    u64 index = 0;
    u64 value = 0;
    std::string name = tokens.size() > 1 ? tokens[1] : "";
    if (!name.empty() && name[0] == 'r') name.erase(0, 1);
    if (!wants(3) || !parse_u64(name, index) || index >= isa::kNumRegisters ||
        !arg_value(2, value)) {
      return "error: setreg <0..31> <value>";
    }
    cpu_.set_reg(static_cast<unsigned>(index), static_cast<Word>(value));
    return "ok";
  }
  if (verb == "pc") {
    return wants(1) ? hex(cpu_.pc()) : "error: pc takes no arguments";
  }
  if (verb == "msr") {
    return wants(1) ? hex(cpu_.msr()) : "error: msr takes no arguments";
  }
  if (verb == "cycles") {
    return wants(1) ? std::to_string(cpu_.cycle())
                    : "error: cycles takes no arguments";
  }
  if (verb == "mem") {
    u64 addr = 0;
    if (!wants(2) || !arg_value(1, addr)) return "error: mem <addr>";
    if (!cpu_.memory().contains(static_cast<Addr>(addr) & ~Addr{3}, 4)) {
      return "error: address out of range";
    }
    return hex(cpu_.memory().read_word(static_cast<Addr>(addr)));
  }
  if (verb == "setmem") {
    u64 addr = 0;
    u64 value = 0;
    if (!wants(3) || !arg_value(1, addr) || !arg_value(2, value)) {
      return "error: setmem <addr> <value>";
    }
    if (!cpu_.memory().contains(static_cast<Addr>(addr) & ~Addr{3}, 4)) {
      return "error: address out of range";
    }
    cpu_.memory().write_word(static_cast<Addr>(addr),
                             static_cast<Word>(value));
    // Poking instruction memory from outside the processor must drop the
    // predecoded entry, or the next fetch would execute the stale word.
    cpu_.invalidate_predecode(static_cast<Addr>(addr));
    return "ok";
  }
  if (verb == "step") {
    if (!wants(1)) return "error: step takes no arguments";
    const StepResult result = step_over_stalls();
    switch (result.event) {
      case Event::kRetired: return "stopped pc=" + hex(cpu_.pc());
      case Event::kHalted: return "halted";
      case Event::kIllegal: return "illegal";
      case Event::kFslStall: return "stalled";
    }
    return "error: unreachable";
  }
  if (verb == "cont") {
    u64 budget = ~u64{0};
    if (tokens.size() > 2 || (tokens.size() == 2 && !arg_value(1, budget))) {
      return "error: cont [cycles]";
    }
    switch (cont(budget)) {
      case StopCause::kBreakpoint: return "breakpoint pc=" + hex(cpu_.pc());
      case StopCause::kHalted: return "halted";
      case StopCause::kIllegal: return "illegal";
      case StopCause::kCycleLimit: return "cycle-limit";
      case StopCause::kFslStalled: return "stalled";
    }
    return "error: unreachable";
  }
  if (verb == "break" || verb == "delete") {
    u64 addr = 0;
    if (!wants(2) || !arg_value(1, addr)) return "error: " + verb + " <addr>";
    if (verb == "break") {
      add_breakpoint(static_cast<Addr>(addr));
    } else {
      remove_breakpoint(static_cast<Addr>(addr));
    }
    return "ok";
  }
  if (verb == "disasm") {
    if (!wants(1)) return "error: disasm takes no arguments";
    if (!cpu_.memory().contains(cpu_.pc(), 4)) return "error: pc out of range";
    return isa::disassemble(cpu_.memory().read_word(cpu_.pc()));
  }
  return "error: unknown command '" + verb + "'";
}

}  // namespace mbcosim::iss
