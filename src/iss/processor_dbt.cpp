// Superblock translation tier (ExecTier::kDbt, DESIGN.md §12).
//
// Basic blocks whose head crosses the promotion threshold are stitched
// into token-threaded code: every instruction becomes one DbtOp whose
// `id` indexes a computed-goto label table, with all operand fields and
// both static latencies pre-extracted at translation time. A dispatch
// then executes the whole block — and, via block chaining at the
// terminators, any already-translated successor blocks — without
// touching the decoder, the predecode cache, or the per-step dispatch
// machinery of run_batch.
//
// The accounting contract is absolute: CpuStats and architectural state
// after any number of block dispatches are bit-identical to the same
// instruction sequence under the precise or predecode tiers. Everything
// that could diverge is shared (load_data/store_data) or checked per
// instruction (the cycle budget, so a quantum boundary lands on exactly
// the same instruction as the per-step path).
#include <cstddef>

#include "common/bits.hpp"
#include "iss/processor.hpp"

namespace mbcosim::iss {

using isa::Instruction;
using isa::Op;

namespace {

/// Block-head executions before a basic block is translated. Low enough
/// that hot loops promote almost immediately, high enough that
/// straight-line init code never pays translation cost.
constexpr u16 kPromoteThreshold = 8;
/// Heat sentinel for heads whose leading instruction cannot be stitched
/// (disabled unit, illegal word): never try to translate again (a store
/// into the word resets the heat, so SMC re-earns translation).
constexpr u16 kNeverTranslate = 0xFFFF;
/// Text-page granularity: blocks never span a page boundary, bounding
/// how much text one block can cover.
constexpr Addr kPageBytes = 1024;
/// Body-length bound per superblock (terminator excluded).
constexpr std::size_t kMaxBlockOps = 64;

/// Handler selectors — indexes into the computed-goto label table in
/// Processor::exec_block. The order here and the label order there must
/// match exactly (a static_assert pins the count). Register/immediate
/// operand-b variants are adjacent so translation can do `base +
/// imm_form`; the six static conditional branches are laid out in
/// isa::Cond order for the same reason.
enum DbtHandler : u8 {
  kAddRR, kAddRI, kAddcRR, kAddcRI, kAddkRR, kAddkRI,
  kRsubRR, kRsubRI, kRsubcRR, kRsubcRI, kRsubkRR, kRsubkRI,
  kCmp, kCmpu,
  kMulRR, kMulRI, kIdiv, kIdivu,
  kBsllRR, kBsllRI, kBsraRR, kBsraRI, kBsrlRR, kBsrlRI,
  kOrRR, kOrRI, kAndRR, kAndRI, kXorRR, kXorRI, kAndnRR, kAndnRI,
  kSra, kSrl, kSrc, kSext8, kSext16,
  kMfsPc, kMfsMsr, kMts,
  kLbuRR, kLbuRI, kLhuRR, kLhuRI, kLwRR, kLwRI,
  kSbRR, kSbRI, kShRR, kShRI, kSwRR, kSwRI,
  // Terminators: exactly one per block, always the last op.
  kTermFall,      ///< block ended without control flow; pc = resume addr
  kTermHalt,      ///< static branch-to-self (program end)
  kTermBrStatic,  ///< unconditional, target resolved at translation
  kTermBrDyn,     ///< unconditional register branch
  kTermBeq, kTermBne, kTermBlt, kTermBle, kTermBgt, kTermBge,
  kTermBccDyn,    ///< conditional register branch; cond in flags >> 4
  kTermRtsd,      ///< return (always delay slot)
  kHandlerCount,
};

/// DbtOp::flags bits (terminators only).
constexpr u8 kFlagLink = 1;
constexpr u8 kFlagDelay = 2;
constexpr u8 kFlagAbsolute = 4;

}  // namespace

Processor::DbtRun Processor::dbt_enter(Cycle max_cycles) {
  if (dbt_index_.empty()) {
    const std::size_t words = memory_.size_bytes() / 4;
    dbt_index_.assign(words, 0);
    dbt_heat_.assign(words, 0);
    dbt_cover_.assign(words, 0);
  }
  const std::size_t word = pc_ >> 2;
  if (word >= dbt_index_.size()) return DbtRun::kNoBlock;

  if (const u32 slot = dbt_index_[word]; slot != 0) {
    const Superblock& block = dbt_blocks_[slot - 1];
    // The start check guards against an unaligned jump landing inside
    // the 4-byte word that heads a (differently-aligned) block.
    if (block.gen == dbt_gen_ && block.start == pc_) {
      return exec_block(block, max_cycles);
    }
  }

  u16& heat = dbt_heat_[word];
  if (heat == kNeverTranslate) return DbtRun::kNoBlock;
  if (++heat < kPromoteThreshold) return DbtRun::kNoBlock;
  heat = 0;
  if (!translate_block(pc_)) {
    heat = kNeverTranslate;
    return DbtRun::kNoBlock;
  }
  return exec_block(dbt_blocks_[dbt_index_[word] - 1], max_cycles);
}

bool Processor::translate_block(Addr start) {
  const Addr page_end = (start & ~Addr{kPageBytes - 1}) + kPageBytes;
  std::vector<DbtOp> ops;
  u32 words = 0;
  Addr pc = start;
  bool terminated = false;

  while (!terminated && ops.size() < kMaxBlockOps && pc < page_end &&
         memory_.contains(pc, 4)) {
    const Predecoded& entry = predecode_fetch(pc);
    // FSL, IMM-prefix and custom-slot instructions need the precise
    // path (and FSL accesses are co-simulation sync points).
    if (entry.tag != DispatchTag::kFast) break;
    const Instruction& in = entry.in;

    DbtOp op;
    op.pc = pc;
    op.imm = static_cast<u32>(in.imm);
    op.rd = in.rd;
    op.ra = in.ra;
    op.rb = in.rb;
    op.lat = static_cast<u8>(entry.lat_not_taken);
    op.lat_taken = static_cast<u8>(entry.lat_taken);
    const u8 ri = in.imm_form ? 1 : 0;
    bool supported = true;

    switch (in.op) {
      case Op::kAdd: op.id = static_cast<u8>(kAddRR + ri); break;
      case Op::kAddc: op.id = static_cast<u8>(kAddcRR + ri); break;
      case Op::kAddk: op.id = static_cast<u8>(kAddkRR + ri); break;
      case Op::kRsub: op.id = static_cast<u8>(kRsubRR + ri); break;
      case Op::kRsubc: op.id = static_cast<u8>(kRsubcRR + ri); break;
      case Op::kRsubk: op.id = static_cast<u8>(kRsubkRR + ri); break;
      // cmp/cmpu read both operands from registers in every form.
      case Op::kCmp: op.id = kCmp; break;
      case Op::kCmpu: op.id = kCmpu; break;
      case Op::kMul:
        // Disabled-unit instructions trap; end the block before them so
        // the per-instruction path raises the architectural event.
        supported = config_.has_multiplier;
        op.id = static_cast<u8>(kMulRR + ri);
        break;
      case Op::kIdiv:
        supported = config_.has_divider;
        op.id = kIdiv;
        break;
      case Op::kIdivu:
        supported = config_.has_divider;
        op.id = kIdivu;
        break;
      case Op::kBsll:
        supported = config_.has_barrel_shifter;
        op.id = static_cast<u8>(kBsllRR + ri);
        break;
      case Op::kBsra:
        supported = config_.has_barrel_shifter;
        op.id = static_cast<u8>(kBsraRR + ri);
        break;
      case Op::kBsrl:
        supported = config_.has_barrel_shifter;
        op.id = static_cast<u8>(kBsrlRR + ri);
        break;
      case Op::kOr: op.id = static_cast<u8>(kOrRR + ri); break;
      case Op::kAnd: op.id = static_cast<u8>(kAndRR + ri); break;
      case Op::kXor: op.id = static_cast<u8>(kXorRR + ri); break;
      case Op::kAndn: op.id = static_cast<u8>(kAndnRR + ri); break;
      case Op::kSra: op.id = kSra; break;
      case Op::kSrl: op.id = kSrl; break;
      case Op::kSrc: op.id = kSrc; break;
      case Op::kSext8: op.id = kSext8; break;
      case Op::kSext16: op.id = kSext16; break;
      case Op::kMfs: op.id = in.imm == 0 ? kMfsPc : kMfsMsr; break;
      case Op::kMts: op.id = kMts; break;
      case Op::kLbu: op.id = static_cast<u8>(kLbuRR + ri); break;
      case Op::kLhu: op.id = static_cast<u8>(kLhuRR + ri); break;
      case Op::kLw: op.id = static_cast<u8>(kLwRR + ri); break;
      case Op::kSb: op.id = static_cast<u8>(kSbRR + ri); break;
      case Op::kSh: op.id = static_cast<u8>(kShRR + ri); break;
      case Op::kSw: op.id = static_cast<u8>(kSwRR + ri); break;
      case Op::kBr: {
        op.flags = static_cast<u8>((in.link ? kFlagLink : 0) |
                                   (in.delay_slot ? kFlagDelay : 0) |
                                   (in.absolute ? kFlagAbsolute : 0));
        if (in.imm_form) {
          const u32 disp = static_cast<u32>(in.imm);
          const Addr target = in.absolute ? disp : pc + disp;
          if (target == pc && !in.link) {
            op.id = kTermHalt;
          } else {
            op.id = kTermBrStatic;
            op.imm = target;
          }
        } else {
          op.id = kTermBrDyn;
        }
        terminated = true;
        break;
      }
      case Op::kBcc: {
        if (in.imm_form) {
          op.id = static_cast<u8>(kTermBeq + static_cast<u8>(in.cond));
          op.imm = pc + static_cast<u32>(in.imm);  // resolved target
          op.flags = in.delay_slot ? kFlagDelay : 0;
        } else {
          op.id = kTermBccDyn;
          op.flags = static_cast<u8>((in.delay_slot ? kFlagDelay : 0) |
                                     (static_cast<u8>(in.cond) << 4));
        }
        terminated = true;
        break;
      }
      case Op::kRtsd:
        op.id = kTermRtsd;
        terminated = true;
        break;
      // kFast covers undecodable words too; they trap on the precise path.
      default:
        supported = false;
        break;
    }
    if (!supported) break;
    ops.push_back(op);
    words += 1;
    pc += 4;
  }

  if (ops.empty()) return false;
  if (!terminated) {
    // Page boundary / length bound / unsupported successor: fall back
    // into the batch loop at the resume address.
    DbtOp fall;
    fall.pc = pc;
    fall.id = kTermFall;
    ops.push_back(fall);
  }

  for (u32 i = 0; i < words; ++i) dbt_cover_[(start >> 2) + i] = dbt_gen_;

  // Slots are stable: a head that was translated before (then retired)
  // reuses its slot, so dbt_index_ entries stay valid across
  // generations and storage growth is bounded by distinct heads.
  u32 slot = dbt_index_[start >> 2];
  if (slot == 0) {
    dbt_blocks_.emplace_back();
    slot = static_cast<u32>(dbt_blocks_.size());
    dbt_index_[start >> 2] = slot;
  }
  Superblock& block = dbt_blocks_[slot - 1];
  block.ops = std::move(ops);
  block.start = start;
  block.words = words;
  block.gen = dbt_gen_;
  dbt_stats_.blocks_translated += 1;
  return true;
}

Processor::DbtRun Processor::exec_block(const Superblock& block,
                                        Cycle max_cycles) {
  // Token-threaded dispatch: the label table is indexed by DbtOp::id.
  // Order must match DbtHandler exactly.
  static const void* const kLabels[] = {
      &&lab_AddRR, &&lab_AddRI, &&lab_AddcRR, &&lab_AddcRI,
      &&lab_AddkRR, &&lab_AddkRI,
      &&lab_RsubRR, &&lab_RsubRI, &&lab_RsubcRR, &&lab_RsubcRI,
      &&lab_RsubkRR, &&lab_RsubkRI,
      &&lab_Cmp, &&lab_Cmpu,
      &&lab_MulRR, &&lab_MulRI, &&lab_Idiv, &&lab_Idivu,
      &&lab_BsllRR, &&lab_BsllRI, &&lab_BsraRR, &&lab_BsraRI,
      &&lab_BsrlRR, &&lab_BsrlRI,
      &&lab_OrRR, &&lab_OrRI, &&lab_AndRR, &&lab_AndRI,
      &&lab_XorRR, &&lab_XorRI, &&lab_AndnRR, &&lab_AndnRI,
      &&lab_Sra, &&lab_Srl, &&lab_Src, &&lab_Sext8, &&lab_Sext16,
      &&lab_MfsPc, &&lab_MfsMsr, &&lab_Mts,
      &&lab_LbuRR, &&lab_LbuRI, &&lab_LhuRR, &&lab_LhuRI,
      &&lab_LwRR, &&lab_LwRI,
      &&lab_SbRR, &&lab_SbRI, &&lab_ShRR, &&lab_ShRI,
      &&lab_SwRR, &&lab_SwRI,
      &&lab_TermFall, &&lab_TermHalt, &&lab_TermBrStatic, &&lab_TermBrDyn,
      &&lab_TermBeq, &&lab_TermBne, &&lab_TermBlt, &&lab_TermBle,
      &&lab_TermBgt, &&lab_TermBge,
      &&lab_TermBccDyn, &&lab_TermRtsd,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kHandlerCount);

  const Superblock* blk = &block;
  const DbtOp* ip = blk->ops.data();
  Word* const regs = regs_;
  // Hot counters live in locals for the duration of the dispatch and
  // are synced back at every exit (sync_out).
  Cycle cycles = stats_.cycles;
  u64 instrs = stats_.instructions;
  const u64 instrs_at_entry = instrs;
  u64 dispatches = 1;
  DbtRun result = DbtRun::kContinue;
  Addr target = 0;

// Advance to the next op of the block. The per-instruction budget check
// makes a quantum boundary land on exactly the same instruction as the
// per-step path — required for deterministic multi-core quanta.
#define MBC_NEXT()                          \
  do {                                      \
    ++ip;                                   \
    if (cycles >= max_cycles) goto budget_out; \
    goto* kLabels[ip->id];                  \
  } while (0)
#define MBC_RETIRE()   \
  do {                 \
    cycles += ip->lat; \
    ++instrs;          \
  } while (0)
#define MBC_WR(r, v)                    \
  do {                                  \
    if ((r) != 0) regs[(r)] = (v);      \
  } while (0)

  goto* kLabels[ip->id];

  // ---- Arithmetic (semantics mirror Processor::add_family). --------
#define MBC_ADDX(name, a_expr, opb_expr, cin_expr, keep_carry)       \
  lab_##name : {                                                     \
    const u64 sum = u64(a_expr) + u64(opb_expr) + u64(cin_expr);     \
    MBC_WR(ip->rd, static_cast<Word>(sum));                          \
    if (!(keep_carry)) set_carry((sum >> 32) != 0);                  \
    MBC_RETIRE();                                                    \
    MBC_NEXT();                                                      \
  }

  MBC_ADDX(AddRR, regs[ip->ra], regs[ip->rb], 0, false)
  MBC_ADDX(AddRI, regs[ip->ra], ip->imm, 0, false)
  MBC_ADDX(AddcRR, regs[ip->ra], regs[ip->rb], carry() ? 1 : 0, false)
  MBC_ADDX(AddcRI, regs[ip->ra], ip->imm, carry() ? 1 : 0, false)
  MBC_ADDX(AddkRR, regs[ip->ra], regs[ip->rb], 0, true)
  MBC_ADDX(AddkRI, regs[ip->ra], ip->imm, 0, true)
  MBC_ADDX(RsubRR, ~regs[ip->ra], regs[ip->rb], 1, false)
  MBC_ADDX(RsubRI, ~regs[ip->ra], ip->imm, 1, false)
  MBC_ADDX(RsubcRR, ~regs[ip->ra], regs[ip->rb], carry() ? 1 : 0, false)
  MBC_ADDX(RsubcRI, ~regs[ip->ra], ip->imm, carry() ? 1 : 0, false)
  MBC_ADDX(RsubkRR, ~regs[ip->ra], regs[ip->rb], 1, true)
  MBC_ADDX(RsubkRI, ~regs[ip->ra], ip->imm, 1, true)
#undef MBC_ADDX

lab_Cmp: {
  const u32 a = regs[ip->ra];
  const u32 b = regs[ip->rb];
  Word r = b - a;
  r = insert_bits(r, 31, 1,
                  static_cast<i32>(b) < static_cast<i32>(a) ? 1u : 0u);
  MBC_WR(ip->rd, r);
  MBC_RETIRE();
  MBC_NEXT();
}
lab_Cmpu: {
  const u32 a = regs[ip->ra];
  const u32 b = regs[ip->rb];
  Word r = b - a;
  r = insert_bits(r, 31, 1, b < a ? 1u : 0u);
  MBC_WR(ip->rd, r);
  MBC_RETIRE();
  MBC_NEXT();
}

#define MBC_MUL(name, opb_expr)                              \
  lab_##name : {                                             \
    const u64 product = u64(regs[ip->ra]) * u64(opb_expr);   \
    MBC_WR(ip->rd, static_cast<Word>(product));              \
    stats_.multiplies += 1;                                  \
    MBC_RETIRE();                                            \
    MBC_NEXT();                                              \
  }
  MBC_MUL(MulRR, regs[ip->rb])
  MBC_MUL(MulRI, ip->imm)
#undef MBC_MUL

lab_Idiv: {
  const u32 divisor = regs[ip->ra];
  const u32 dividend = regs[ip->rb];
  if (divisor == 0) {
    MBC_WR(ip->rd, 0);
  } else {
    MBC_WR(ip->rd, static_cast<Word>(static_cast<i32>(dividend) /
                                     static_cast<i32>(divisor)));
  }
  MBC_RETIRE();
  MBC_NEXT();
}
lab_Idivu: {
  const u32 divisor = regs[ip->ra];
  MBC_WR(ip->rd, divisor == 0 ? 0u : regs[ip->rb] / divisor);
  MBC_RETIRE();
  MBC_NEXT();
}

  // ---- Barrel shifts and logicals. ---------------------------------
#define MBC_BS(name, opb_expr, shift_expr)          \
  lab_##name : {                                    \
    const unsigned amount = (opb_expr)&31u;         \
    const u32 v = regs[ip->ra];                     \
    MBC_WR(ip->rd, (shift_expr));                   \
    MBC_RETIRE();                                   \
    MBC_NEXT();                                     \
  }
  MBC_BS(BsllRR, regs[ip->rb], v << amount)
  MBC_BS(BsllRI, ip->imm, v << amount)
  MBC_BS(BsraRR, regs[ip->rb],
         static_cast<u32>(static_cast<i32>(v) >> amount))
  MBC_BS(BsraRI, ip->imm, static_cast<u32>(static_cast<i32>(v) >> amount))
  MBC_BS(BsrlRR, regs[ip->rb], v >> amount)
  MBC_BS(BsrlRI, ip->imm, v >> amount)
#undef MBC_BS

#define MBC_LOGIC(name, expr)   \
  lab_##name : {                \
    MBC_WR(ip->rd, (expr));     \
    MBC_RETIRE();               \
    MBC_NEXT();                 \
  }
  MBC_LOGIC(OrRR, regs[ip->ra] | regs[ip->rb])
  MBC_LOGIC(OrRI, regs[ip->ra] | ip->imm)
  MBC_LOGIC(AndRR, regs[ip->ra] & regs[ip->rb])
  MBC_LOGIC(AndRI, regs[ip->ra] & ip->imm)
  MBC_LOGIC(XorRR, regs[ip->ra] ^ regs[ip->rb])
  MBC_LOGIC(XorRI, regs[ip->ra] ^ ip->imm)
  MBC_LOGIC(AndnRR, regs[ip->ra] & ~regs[ip->rb])
  MBC_LOGIC(AndnRI, regs[ip->ra] & ~ip->imm)
#undef MBC_LOGIC

lab_Sra: {
  const u32 v = regs[ip->ra];
  MBC_WR(ip->rd, static_cast<u32>(static_cast<i32>(v) >> 1));
  set_carry((v & 1u) != 0);
  MBC_RETIRE();
  MBC_NEXT();
}
lab_Srl: {
  const u32 v = regs[ip->ra];
  MBC_WR(ip->rd, v >> 1);
  set_carry((v & 1u) != 0);
  MBC_RETIRE();
  MBC_NEXT();
}
lab_Src: {
  const u32 v = regs[ip->ra];
  MBC_WR(ip->rd, (v >> 1) | (carry() ? 0x80000000u : 0u));
  set_carry((v & 1u) != 0);
  MBC_RETIRE();
  MBC_NEXT();
}
lab_Sext8:
  MBC_WR(ip->rd, sign_extend(regs[ip->ra], 8));
  MBC_RETIRE();
  MBC_NEXT();
lab_Sext16:
  MBC_WR(ip->rd, sign_extend(regs[ip->ra], 16));
  MBC_RETIRE();
  MBC_NEXT();

  // ---- Special registers. pc_ is stale inside a block, so mfs-from-pc
  // uses the op's own translated address.
lab_MfsPc:
  MBC_WR(ip->rd, ip->pc);
  MBC_RETIRE();
  MBC_NEXT();
lab_MfsMsr:
  MBC_WR(ip->rd, msr_);
  MBC_RETIRE();
  MBC_NEXT();
lab_Mts:
  msr_ = regs[ip->ra];
  MBC_RETIRE();
  MBC_NEXT();

  // ---- Memory. The whole data path (LMB/OPB decode, wait states,
  // error traps, SMC invalidation) is the shared load_data/store_data,
  // so tiers cannot diverge on memory semantics.
#define MBC_LOAD(name, opb_expr, nbytes)                            \
  lab_##name : {                                                    \
    const Addr a = regs[ip->ra] + (opb_expr);                       \
    Word v = 0;                                                     \
    if (load_data(a, nbytes, v) == Event::kIllegal) goto illegal_out; \
    MBC_WR(ip->rd, v);                                              \
    Cycle c = ip->lat;                                              \
    if (pending_wait_states_ != 0) {                                \
      c += pending_wait_states_;                                    \
      pending_wait_states_ = 0;                                     \
    }                                                               \
    cycles += c;                                                    \
    ++instrs;                                                       \
    MBC_NEXT();                                                     \
  }
  MBC_LOAD(LbuRR, regs[ip->rb], 1)
  MBC_LOAD(LbuRI, ip->imm, 1)
  MBC_LOAD(LhuRR, regs[ip->rb], 2)
  MBC_LOAD(LhuRI, ip->imm, 2)
  MBC_LOAD(LwRR, regs[ip->rb], 4)
  MBC_LOAD(LwRI, ip->imm, 4)
#undef MBC_LOAD

  // A store that lands on translated text bumps dbt_gen_ (inside
  // store_data → invalidate_predecode), retiring every block including
  // the one being executed: the store may have rewritten a *later*
  // instruction of this very block, so exit to the batch loop at the
  // next instruction instead of running stale tokens.
#define MBC_STORE(name, opb_expr, nbytes)                           \
  lab_##name : {                                                    \
    const Addr a = regs[ip->ra] + (opb_expr);                       \
    if (store_data(a, nbytes, regs[ip->rd]) == Event::kIllegal) {   \
      goto illegal_out;                                             \
    }                                                               \
    Cycle c = ip->lat;                                              \
    if (pending_wait_states_ != 0) {                                \
      c += pending_wait_states_;                                    \
      pending_wait_states_ = 0;                                     \
    }                                                               \
    cycles += c;                                                    \
    ++instrs;                                                       \
    if (blk->gen != dbt_gen_) {                                     \
      pc_ = ip->pc + 4;                                             \
      goto sync_out;                                                \
    }                                                               \
    MBC_NEXT();                                                     \
  }
  MBC_STORE(SbRR, regs[ip->rb], 1)
  MBC_STORE(SbRI, ip->imm, 1)
  MBC_STORE(ShRR, regs[ip->rb], 2)
  MBC_STORE(ShRI, ip->imm, 2)
  MBC_STORE(SwRR, regs[ip->rb], 4)
  MBC_STORE(SwRI, ip->imm, 4)
#undef MBC_STORE

  // ---- Terminators. ------------------------------------------------
lab_TermFall:
  pc_ = ip->pc;  // resume address, precomputed at translation
  goto chain;

lab_TermHalt:
  stats_.branches += 1;
  stats_.branches_taken += 1;
  cycles += ip->lat_taken;
  ++instrs;
  halted_ = true;
  pc_ = ip->pc;
  result = DbtRun::kHalted;
  goto sync_out;

lab_TermBrStatic:
  stats_.branches += 1;
  stats_.branches_taken += 1;
  if (ip->flags & kFlagLink) MBC_WR(ip->rd, ip->pc);
  cycles += ip->lat_taken;
  ++instrs;
  target = ip->imm;
  goto branch_go;

lab_TermBrDyn: {
  stats_.branches += 1;
  stats_.branches_taken += 1;
  const u32 disp = regs[ip->rb];
  target = (ip->flags & kFlagAbsolute) ? disp : ip->pc + disp;
  if (ip->flags & kFlagLink) {
    MBC_WR(ip->rd, ip->pc);
  } else if (target == ip->pc) {
    // Dynamic branch-to-self: program end, like the static form.
    cycles += ip->lat_taken;
    ++instrs;
    halted_ = true;
    pc_ = ip->pc;
    result = DbtRun::kHalted;
    goto sync_out;
  }
  cycles += ip->lat_taken;
  ++instrs;
  goto branch_go;
}

#define MBC_BCC(name, cond_expr)                  \
  lab_##name : {                                  \
    stats_.branches += 1;                         \
    const i32 v = static_cast<i32>(regs[ip->ra]); \
    if (cond_expr) {                              \
      stats_.branches_taken += 1;                 \
      cycles += ip->lat_taken;                    \
      ++instrs;                                   \
      target = ip->imm;                           \
      goto branch_go;                             \
    }                                             \
    cycles += ip->lat;                            \
    ++instrs;                                     \
    pc_ = ip->pc + 4;                             \
    goto chain;                                   \
  }
  MBC_BCC(TermBeq, v == 0)
  MBC_BCC(TermBne, v != 0)
  MBC_BCC(TermBlt, v < 0)
  MBC_BCC(TermBle, v <= 0)
  MBC_BCC(TermBgt, v > 0)
  MBC_BCC(TermBge, v >= 0)
#undef MBC_BCC

lab_TermBccDyn: {
  stats_.branches += 1;
  const i32 v = static_cast<i32>(regs[ip->ra]);
  bool taken = false;
  switch (static_cast<isa::Cond>(ip->flags >> 4)) {
    case isa::Cond::kEq: taken = v == 0; break;
    case isa::Cond::kNe: taken = v != 0; break;
    case isa::Cond::kLt: taken = v < 0; break;
    case isa::Cond::kLe: taken = v <= 0; break;
    case isa::Cond::kGt: taken = v > 0; break;
    case isa::Cond::kGe: taken = v >= 0; break;
  }
  if (taken) {
    stats_.branches_taken += 1;
    cycles += ip->lat_taken;
    ++instrs;
    target = ip->pc + regs[ip->rb];
    goto branch_go;
  }
  cycles += ip->lat;
  ++instrs;
  pc_ = ip->pc + 4;
  goto chain;
}

lab_TermRtsd:
  stats_.branches += 1;
  stats_.branches_taken += 1;
  cycles += ip->lat_taken;
  ++instrs;
  delay_target_ = regs[ip->ra] + ip->imm;
  pc_ = ip->pc + 4;
  goto sync_out;  // the batch loop runs the delay slot precisely

branch_go:
  // Taken branch with a resolved target. A delay-slot form hands the
  // slot instruction back to the batch loop's precise path (exactly the
  // step() accounting); a plain form chains straight into the target.
  if (ip->flags & kFlagDelay) {
    delay_target_ = target;
    pc_ = ip->pc + 4;
    goto sync_out;
  }
  pc_ = target;
  goto chain;

chain:
  // Block chaining: if the successor is already translated, dispatch
  // into it without surfacing to the batch loop. The budget check here
  // plays the role of the loop's `stats_.cycles < max_cycles` guard.
  if (cycles < max_cycles) {
    const std::size_t word = pc_ >> 2;
    if (word < dbt_index_.size()) {
      if (const u32 slot = dbt_index_[word]; slot != 0) {
        const Superblock& next = dbt_blocks_[slot - 1];
        if (next.gen == dbt_gen_ && next.start == pc_) {
          blk = &next;
          ip = blk->ops.data();
          ++dispatches;
          goto* kLabels[ip->id];
        }
      }
    }
  }
  goto sync_out;

budget_out:
  // ip already points at the next (unexecuted) op; for the kTermFall
  // pseudo-op its pc field is the fall-through address, for every other
  // op it is the op's own guest address — either way the resume pc.
  pc_ = ip->pc;
  goto sync_out;

illegal_out:
  // Mirrors step()/run_batch: the trap occupies one cycle, retires
  // nothing, and preempts any queued OPB wait states.
  halted_ = true;
  pending_wait_states_ = 0;
  cycles += 1;
  pc_ = ip->pc;
  result = DbtRun::kIllegal;
  goto sync_out;

sync_out:
  stats_.cycles = cycles;
  stats_.instructions = instrs;
  dbt_stats_.dbt_instructions += instrs - instrs_at_entry;
  dbt_stats_.block_dispatches += dispatches;
  return result;

#undef MBC_NEXT
#undef MBC_RETIRE
#undef MBC_WR
}

}  // namespace mbcosim::iss
