// Execution-tier selector shared by the processor, the SimSystem
// builder, machine descriptions and the command-line tools. Lives in
// its own header so declarative layers (machine::CoreDesc) can name a
// tier without pulling in the full processor definition.
#pragma once

#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace mbcosim::iss {

/// The three execution tiers of iss::Processor (DESIGN.md §12). Every
/// tier retires the same instruction stream with bit-identical
/// architectural state and CpuStats; they only trade decode/dispatch
/// overhead for speed:
///   kPrecise    decode every word on every step() — the path every
///               observer (trace hook, enabled trace bus) sees;
///   kPredecode  cached decode + batched dispatch (the PR 3 fast path);
///   kDbt        superblock translation: hot basic blocks stitched into
///               threaded code and executed whole (the default).
enum class ExecTier : u8 { kPrecise = 0, kPredecode = 1, kDbt = 2 };

[[nodiscard]] constexpr const char* to_string(ExecTier tier) noexcept {
  switch (tier) {
    case ExecTier::kPrecise: return "precise";
    case ExecTier::kPredecode: return "predecode";
    case ExecTier::kDbt: return "dbt";
  }
  return "?";
}

/// Parse the `--exec-tier` / machine-JSON vocabulary:
/// "precise" | "predecode" | "dbt".
[[nodiscard]] inline std::optional<ExecTier> parse_exec_tier(
    std::string_view name) noexcept {
  if (name == "precise") return ExecTier::kPrecise;
  if (name == "predecode") return ExecTier::kPredecode;
  if (name == "dbt") return ExecTier::kDbt;
  return std::nullopt;
}

}  // namespace mbcosim::iss
