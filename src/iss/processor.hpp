// Cycle-accurate instruction-set simulator for the MB32 soft processor —
// the analog of the Xilinx MicroBlaze cycle-accurate simulator the paper
// integrates for "simulation of the software execution platform"
// (Section III-A). The simulator charges the base pipeline latency of
// every instruction (isa::base_latency) plus dynamic stall cycles for
// blocking FSL accesses, so the cycle counts it reports are the ones the
// paper plots in Figures 5 and 7.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bus/opb_bus.hpp"
#include "common/resources.hpp"
#include "common/types.hpp"
#include "fsl/fsl_hub.hpp"
#include "isa/isa.hpp"
#include "iss/exec_tier.hpp"
#include "iss/memory.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::iss {

/// Why a step / run returned.
enum class Event : u8 {
  kRetired,   ///< one instruction completed
  kFslStall,  ///< blocked on a full/empty FSL this cycle; PC unchanged
  kHalted,    ///< branch-to-self reached (program end)
  kIllegal,   ///< undecodable word or disabled functional unit
};

struct StepResult {
  Event event = Event::kRetired;
  Cycle cycles = 0;  ///< cycles consumed by this step (>= 1 unless halted)
};

/// Why Processor::run_batch returned control to its caller.
enum class BatchStop : u8 {
  kBudget,      ///< cycle budget reached; every batched instruction retired
  kFslPending,  ///< next instruction is an FSL access, NOT executed — the
                ///< co-simulation engine must bring the hardware to cycle
                ///< parity before stepping it (stop_before_fsl mode only)
  kFslStall,    ///< an FSL access executed precisely and blocked (one stall
                ///< cycle charged, PC unchanged)
  kHalted,      ///< branch-to-self retired; processor is halted
  kIllegal,     ///< architectural error; processor is halted
  kPrecise,     ///< the fast path is unavailable (trace hook or enabled
                ///< trace bus attached, or predecode disabled); nothing ran
};

struct BatchResult {
  BatchStop stop = BatchStop::kPrecise;
  Cycle cycles = 0;  ///< cycles consumed by this batch
};

/// Execution statistics accumulated since reset.
struct CpuStats {
  u64 instructions = 0;
  Cycle cycles = 0;
  Cycle fsl_stall_cycles = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 fsl_reads = 0;
  u64 fsl_writes = 0;
  u64 branches = 0;
  u64 branches_taken = 0;
  u64 multiplies = 0;
  u64 opb_accesses = 0;
  Cycle opb_wait_cycles = 0;
};

/// Counters of the superblock (dbt) execution tier. Deliberately *not*
/// part of CpuStats: CpuStats is bit-identical across execution tiers,
/// while these describe the translation machinery itself. They are not
/// checkpointed either — a restore drops every translation (the cached
/// text belongs to the pre-restore image), and the counters restart
/// with the regenerated blocks.
struct DbtStats {
  u64 blocks_translated = 0;  ///< superblocks stitched (incl. re-translations)
  u64 block_dispatches = 0;   ///< block entries, incl. block-to-block chaining
  u64 smc_retirements = 0;    ///< stores into translated text retiring blocks
  u64 dbt_instructions = 0;   ///< instructions retired inside block dispatch
                              ///< (fast-path share = this / instructions)
};

/// Record passed to the optional trace hook after every processor step:
/// retired instructions, FSL stall cycles, the final halting branch and
/// illegal/fetch-fault events all reach the hook, distinguished by
/// `event` (so a trace shows *why* a simulation stopped or stalled, not
/// just the happy path). On an instruction-fetch fault `raw` is 0 and
/// `instruction` is default-constructed.
struct TraceRecord {
  Addr pc = 0;
  Word raw = 0;
  isa::Instruction instruction;
  Cycle cycles = 0;
  Cycle total_cycles = 0;
  Event event = Event::kRetired;
};

/// A user-customized instruction datapath (Nios-style ISA customization,
/// paper Section I). The compute function sees the two source operands
/// and returns the result written to rd; `latency` is the unit's total
/// pipeline occupancy in cycles; `resources` feeds the rapid estimator.
struct CustomInstruction {
  std::string name;
  std::function<Word(Word ra, Word rb)> compute;
  Cycle latency = 1;
  ResourceVec resources;
};

class Processor {
 public:
  /// The processor aliases (does not own) its LMB memory; an optional
  /// FslHub connects it to customized hardware peripherals.
  Processor(isa::CpuConfig config, LmbMemory& memory,
            fsl::FslHub* fsl_hub = nullptr);

  /// Attach a memory-mapped OPB bus; data accesses whose addresses fall
  /// outside the LMB memory decode on it (and pay its wait states).
  void attach_opb(bus::OpbBus* opb) noexcept { opb_ = opb; }

  /// Install a custom instruction in `slot` (0..kNumCustomSlots-1);
  /// cust<slot> rd, ra, rb then executes it. Executing an empty slot is
  /// an architectural illegal-opcode event. Throws SimError on a bad
  /// slot, missing compute function or zero latency.
  void register_custom_instruction(unsigned slot, CustomInstruction unit);
  [[nodiscard]] const CustomInstruction* custom_instruction(
      unsigned slot) const;

  void reset(Addr pc = 0);

  /// Execute (at most) one instruction. A blocked blocking FSL access
  /// consumes exactly one cycle and leaves the PC unchanged, so a
  /// co-simulation engine can advance the hardware model in lock step —
  /// this is how "the processor gets stalled until In#_full becomes low"
  /// (Section III-B) is realised.
  StepResult step();

  /// Convenience runner for processor-only workloads: steps until the
  /// program halts or the cycle budget is exhausted. Returns the final
  /// event (kHalted, kIllegal, or kFslStall/kRetired when out of budget).
  /// Internally uses the batched fast path whenever it is available.
  Event run(Cycle max_cycles);

  /// Batched fast-path execution: run straight-line/branchy code in a
  /// tight loop with the per-step trace-hook, trace-bus and dispatch
  /// overhead hoisted out, using the predecode cache. Stats are charged
  /// bit-identically to an equivalent sequence of step() calls. Falls
  /// back to the precise step() inside the batch for instructions that
  /// need it (IMM prefix pending, delay slot, custom slot, FSL access
  /// when `stop_before_fsl` is false). Returns immediately with
  /// BatchStop::kPrecise (zero cycles) when a trace hook or an enabled
  /// trace bus is attached or the predecode cache is disabled.
  ///
  /// With `stop_before_fsl` a pending FSL access is *not* executed:
  /// control returns with BatchStop::kFslPending so a co-simulation
  /// engine can first advance the hardware model to cycle parity — this
  /// is what keeps multi-cycle CPU quanta cycle-accurate at every FIFO
  /// boundary.
  BatchResult run_batch(Cycle max_cycles, bool stop_before_fsl);

  /// True when run_batch would make progress: predecode on, no trace
  /// hook, no enabled trace bus.
  [[nodiscard]] bool fast_path_available() const noexcept {
    return predecode_enabled_ && !trace_ &&
           (trace_bus_ == nullptr || !trace_bus_->enabled());
  }

  /// Select the execution tier (default: ExecTier::kDbt). Dropping to
  /// kPredecode retires every superblock; dropping to kPrecise also
  /// releases the predecode cache and restores decode-per-step
  /// execution. All three tiers are bit-identical in architectural
  /// state and CpuStats (DESIGN.md §12).
  void set_exec_tier(ExecTier tier);
  [[nodiscard]] ExecTier exec_tier() const noexcept { return exec_tier_; }

  /// Counters of the superblock tier (all zero below ExecTier::kDbt).
  [[nodiscard]] const DbtStats& dbt_stats() const noexcept {
    return dbt_stats_;
  }

  /// Legacy on/off knob, kept for the `--no-predecode` era: `true`
  /// selects the default tier (kDbt), `false` selects kPrecise.
  void set_predecode(bool enabled);
  [[nodiscard]] bool predecode_enabled() const noexcept {
    return predecode_enabled_;
  }

  /// Drop every predecoded entry and retire every translated
  /// superblock. Required after writing instruction memory from
  /// *outside* the processor while a program is in flight (stores
  /// executed by the program itself, reset() and the debugger's setmem
  /// invalidate automatically).
  void invalidate_predecode() noexcept {
    ++predecode_gen_;
    ++dbt_gen_;  // every superblock stitched from that text dies with it
  }
  /// Drop the single entry covering `addr` (cheaper targeted form).
  /// When a translated superblock covers the word, *all* blocks retire
  /// (generation bump) — the self-modifying-code rule of DESIGN.md §12.
  void invalidate_predecode(Addr addr) noexcept {
    const std::size_t index = addr >> 2;
    if (index < predecode_.size()) predecode_[index].gen = 0;
    if (index < dbt_cover_.size() && dbt_cover_[index] == dbt_gen_) {
      ++dbt_gen_;
      dbt_stats_.smc_retirements += 1;
      dbt_heat_[index] = 0;  // the rewritten word re-earns its promotion
    }
  }

  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] Addr pc() const noexcept { return pc_; }
  /// Debugger-level jump: move the PC without executing a branch. Any
  /// pending IMM prefix or delay-slot target belongs to the abandoned
  /// instruction stream and is discarded, and a halted processor becomes
  /// runnable again (the halt was a property of the old PC).
  void set_pc(Addr pc) noexcept {
    pc_ = pc;
    imm_prefix_.reset();
    delay_target_.reset();
    halted_ = false;
  }
  [[nodiscard]] Word msr() const noexcept { return msr_; }
  void set_msr(Word value) noexcept { msr_ = value; }

  [[nodiscard]] Word reg(unsigned index) const;
  void set_reg(unsigned index, Word value);

  [[nodiscard]] const CpuStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Cycle cycle() const noexcept { return stats_.cycles; }

  /// Checkpoint the architectural state and statistics (not the memory,
  /// which the owner serializes separately; see DESIGN.md §11). Restoring
  /// invalidates the predecode cache — the cached text belongs to the
  /// pre-restore memory image. load_state returns false on a shape or
  /// payload mismatch.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

  [[nodiscard]] LmbMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const LmbMemory& memory() const noexcept { return memory_; }
  [[nodiscard]] const isa::CpuConfig& config() const noexcept {
    return config_;
  }

  /// Install a per-step trace hook (empty function to remove); fires on
  /// every step result, see TraceRecord.
  void set_trace(std::function<void(const TraceRecord&)> hook) {
    trace_ = std::move(hook);
  }

  /// Attach the observability bus (nullptr to detach). The processor
  /// emits instruction retire/stall/halt/illegal events and drives the
  /// bus's simulated-time cursor; when the bus is null (the default)
  /// the only cost is one branch per step.
  void set_trace_bus(obs::TraceBus* bus) noexcept { trace_bus_ = bus; }
  [[nodiscard]] obs::TraceBus* trace_bus() const noexcept {
    return trace_bus_;
  }

 private:
  struct ExecOutcome {
    Event event = Event::kRetired;
    bool branch_taken = false;
  };

  /// Compact dispatch tag of a predecoded instruction, chosen once at
  /// predecode time so the batched loop classifies with one compare.
  enum class DispatchTag : u8 {
    kFast,  ///< run_batch may execute it inline
    kSlow,  ///< needs the precise step() (IMM prefix, custom slot)
    kFsl,   ///< FSL access: a co-simulation must sync hardware first
  };

  /// One predecoded instruction word: the decoded form plus everything
  /// step() would otherwise recompute on every execution. An entry is
  /// valid iff `gen == predecode_gen_`; stores into cached text clear
  /// `gen`, reset() bumps `predecode_gen_` (O(1) full invalidation).
  struct Predecoded {
    isa::Instruction in;
    Word raw = 0;
    u64 gen = 0;
    u8 lat_taken = 1;      ///< isa::base_latency(in, true), <= 34
    u8 lat_not_taken = 1;  ///< isa::base_latency(in, false)
    DispatchTag tag = DispatchTag::kSlow;
    /// Control flow (kBr/kBcc/kRtsd): the next PC starts a basic block,
    /// so the dbt tier only counts promotion heat after these.
    bool boundary = false;
  };

  /// One token-threaded instruction of a translated superblock: the
  /// handler selector plus every pre-extracted field the dispatch loop
  /// needs, so executing it touches neither the decoder nor the
  /// predecode cache. `imm` holds the sign-extended operand-b immediate
  /// (or, for static branch terminators, the resolved target address).
  struct DbtOp {
    Addr pc = 0;       ///< guest address (terminator kTermFall: resume pc)
    u32 imm = 0;
    u8 id = 0;         ///< DbtHandler index (processor_dbt.cpp)
    u8 rd = 0;
    u8 ra = 0;
    u8 rb = 0;
    u8 lat = 1;        ///< base latency (not-taken for the terminator)
    u8 lat_taken = 1;  ///< taken latency (terminators only)
    u8 flags = 0;      ///< link/delay/absolute + cond (terminators only)
  };

  /// A translated basic block: straight-line kFast instructions ending
  /// at the first control flow, FSL access, IMM/custom instruction or
  /// text-page boundary. Valid iff `gen == dbt_gen_`; retirement is a
  /// generation bump, storage is reused on re-translation.
  struct Superblock {
    std::vector<DbtOp> ops;  ///< body + exactly one terminator
    Addr start = 0;
    u32 words = 0;  ///< instruction words covered (SMC retirement range)
    u64 gen = 0;
  };

  /// Why stitched execution returned to the batch loop.
  enum class DbtRun : u8 {
    kNoBlock,   ///< nothing translated here (yet); use the per-step path
    kContinue,  ///< block(s) executed; resume the batch loop at pc_
    kHalted,
    kIllegal,
  };

  /// Decode the word at `pc` into its cache slot and return the entry.
  /// Pre: predecode enabled, memory_.contains(pc, 4).
  Predecoded& predecode_fetch(Addr pc);

  /// Superblock tier entry point: execute the block at pc_ if one is
  /// translated, otherwise accumulate promotion heat and translate once
  /// the threshold is crossed. Pre: kDbt tier, fast path available,
  /// memory_.contains(pc_, 4), no pending IMM prefix or delay slot.
  DbtRun dbt_enter(Cycle max_cycles);
  /// Build the superblock starting at `start`; false when the leading
  /// instruction cannot be stitched (the head is then blacklisted).
  bool translate_block(Addr start);
  /// Token-threaded dispatch over `block` (and, via chaining, any
  /// already-translated successor blocks). Accounting is bit-identical
  /// to the equivalent step() sequence.
  DbtRun exec_block(const Superblock& block, Cycle max_cycles);

  /// Shared data-side memory paths (LMB fast case, OPB wait states and
  /// error traps, SMC invalidation on stores): both execute() and the
  /// stitched load/store handlers funnel through these, so the tiers
  /// cannot diverge on memory semantics. Return kRetired or kIllegal;
  /// they charge loads/stores/opb_* stats on success.
  Event load_data(Addr addr, unsigned bytes, Word& value);
  Event store_data(Addr addr, unsigned bytes, Word value);

  ExecOutcome execute(const isa::Instruction& in);
  /// Deliver one step result to the trace hook and the trace bus.
  void record_step(Event event, Addr pc, Word raw, const isa::Instruction& in,
                   Cycle cycles);
  [[nodiscard]] u32 operand_b(const isa::Instruction& in) const;
  void write_rd(u8 rd, Word value);
  void add_family(const isa::Instruction& in, bool subtract, bool use_carry,
                  bool keep_carry);
  [[nodiscard]] bool carry() const noexcept {
    return (msr_ & isa::Msr::kCarry) != 0;
  }
  void set_carry(bool value) noexcept {
    msr_ = value ? (msr_ | isa::Msr::kCarry) : (msr_ & ~isa::Msr::kCarry);
  }

  isa::CpuConfig config_;
  LmbMemory& memory_;
  fsl::FslHub* fsl_hub_;
  bus::OpbBus* opb_ = nullptr;
  /// Wait states from the last OPB transaction, charged by step().
  Cycle pending_wait_states_ = 0;

  Word regs_[isa::kNumRegisters] = {};
  Addr pc_ = 0;
  Word msr_ = 0;
  bool halted_ = false;
  /// High half captured by an IMM prefix, pending for the next type-B.
  std::optional<u16> imm_prefix_;
  /// Branch target to apply after the current delay-slot instruction.
  std::optional<Addr> delay_target_;

  /// Predecode cache, indexed by pc >> 2 over the LMB program region
  /// (sized lazily to the memory on first use; ~40 B per word).
  std::vector<Predecoded> predecode_;
  u64 predecode_gen_ = 1;  ///< entries with a different gen are invalid
  bool predecode_enabled_ = true;

  ExecTier exec_tier_ = ExecTier::kDbt;
  /// Superblock storage: slots are stable (blocks are only ever
  /// overwritten in place on re-translation, never erased), so the
  /// word-indexed maps below can cache slot numbers across retirements.
  std::vector<Superblock> dbt_blocks_;
  std::vector<u32> dbt_index_;  ///< word -> slot + 1 (0 = no block starts here)
  std::vector<u16> dbt_heat_;   ///< word -> promotion counter / blacklist
  std::vector<u64> dbt_cover_;  ///< word -> dbt_gen_ when covered by a block
  u64 dbt_gen_ = 1;             ///< blocks with a different gen are retired
  DbtStats dbt_stats_;

  CpuStats stats_;
  std::function<void(const TraceRecord&)> trace_;
  obs::TraceBus* trace_bus_ = nullptr;
  std::array<std::optional<CustomInstruction>, isa::kNumCustomSlots>
      custom_units_;
};

}  // namespace mbcosim::iss
