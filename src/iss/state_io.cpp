// Checkpoint serialization for the ISS: processor architectural state
// and the LMB memory image. Layouts are fixed-width little-endian via
// ckpt::Writer/Reader; every count doubles as a shape check so a
// snapshot of a differently-configured core is refused, not misread.
#include "ckpt/ckpt.hpp"
#include "iss/memory.hpp"
#include "iss/processor.hpp"

namespace mbcosim::iss {

void Processor::save_state(ckpt::Writer& writer) const {
  writer.write_u32(static_cast<u32>(isa::kNumRegisters));
  for (const Word reg : regs_) writer.write_u32(reg);
  writer.write_u32(pc_);
  writer.write_u32(msr_);
  writer.write_bool(halted_);
  writer.write_bool(imm_prefix_.has_value());
  writer.write_u16(imm_prefix_.value_or(0));
  writer.write_bool(delay_target_.has_value());
  writer.write_u32(delay_target_.value_or(0));
  writer.write_u64(pending_wait_states_);
  writer.write_u64(stats_.instructions);
  writer.write_u64(stats_.cycles);
  writer.write_u64(stats_.fsl_stall_cycles);
  writer.write_u64(stats_.loads);
  writer.write_u64(stats_.stores);
  writer.write_u64(stats_.fsl_reads);
  writer.write_u64(stats_.fsl_writes);
  writer.write_u64(stats_.branches);
  writer.write_u64(stats_.branches_taken);
  writer.write_u64(stats_.multiplies);
  writer.write_u64(stats_.opb_accesses);
  writer.write_u64(stats_.opb_wait_cycles);
}

bool Processor::load_state(ckpt::Reader& reader) {
  if (reader.read_u32() != static_cast<u32>(isa::kNumRegisters)) return false;
  for (Word& reg : regs_) reg = reader.read_u32();
  pc_ = reader.read_u32();
  msr_ = reader.read_u32();
  halted_ = reader.read_bool();
  const bool has_imm = reader.read_bool();
  const u16 imm = reader.read_u16();
  imm_prefix_ = has_imm ? std::optional<u16>(imm) : std::nullopt;
  const bool has_delay = reader.read_bool();
  const Addr delay = reader.read_u32();
  delay_target_ = has_delay ? std::optional<Addr>(delay) : std::nullopt;
  pending_wait_states_ = reader.read_u64();
  stats_.instructions = reader.read_u64();
  stats_.cycles = reader.read_u64();
  stats_.fsl_stall_cycles = reader.read_u64();
  stats_.loads = reader.read_u64();
  stats_.stores = reader.read_u64();
  stats_.fsl_reads = reader.read_u64();
  stats_.fsl_writes = reader.read_u64();
  stats_.branches = reader.read_u64();
  stats_.branches_taken = reader.read_u64();
  stats_.multiplies = reader.read_u64();
  stats_.opb_accesses = reader.read_u64();
  stats_.opb_wait_cycles = reader.read_u64();
  // The predecode cache and every superblock mirror instruction memory,
  // which the owner restores around this call; all cached decode work is
  // stale now. The dbt counters restart with the regenerated blocks
  // (they describe the translation machinery, not the architecture).
  invalidate_predecode();
  dbt_stats_ = DbtStats{};
  return reader.ok();
}

void LmbMemory::save_state(ckpt::Writer& writer) const {
  writer.write_u64(bytes_.size());
  writer.write_bytes(bytes_.data(), bytes_.size());
}

bool LmbMemory::load_state(ckpt::Reader& reader) {
  if (reader.read_u64() != bytes_.size()) return false;
  return reader.read_bytes(bytes_.data(), bytes_.size());
}

}  // namespace mbcosim::iss
