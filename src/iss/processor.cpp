#include "iss/processor.hpp"

#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace mbcosim::iss {

using isa::Instruction;
using isa::Op;

Processor::Processor(isa::CpuConfig config, LmbMemory& memory,
                     fsl::FslHub* fsl_hub)
    : config_(config), memory_(memory), fsl_hub_(fsl_hub) {}

void Processor::reset(Addr pc) {
  for (auto& reg : regs_) reg = 0;
  pc_ = pc;
  msr_ = 0;
  halted_ = false;
  imm_prefix_.reset();
  delay_target_.reset();
  pending_wait_states_ = 0;
  stats_ = CpuStats{};
  // A reset usually follows a program (re)load: drop every predecoded
  // entry in O(1) by bumping the generation.
  invalidate_predecode();
}

void Processor::set_predecode(bool enabled) {
  set_exec_tier(enabled ? ExecTier::kDbt : ExecTier::kPrecise);
}

void Processor::set_exec_tier(ExecTier tier) {
  if (exec_tier_ == tier) return;
  exec_tier_ = tier;
  predecode_enabled_ = tier != ExecTier::kPrecise;
  if (!predecode_enabled_) {
    predecode_.clear();
    predecode_.shrink_to_fit();
  }
  if (tier != ExecTier::kDbt) {
    // Retire and release every superblock; promotion heat restarts from
    // zero if the tier is ever re-enabled.
    ++dbt_gen_;
    dbt_blocks_.clear();
    dbt_blocks_.shrink_to_fit();
    dbt_index_.clear();
    dbt_index_.shrink_to_fit();
    dbt_heat_.clear();
    dbt_heat_.shrink_to_fit();
    dbt_cover_.clear();
    dbt_cover_.shrink_to_fit();
  }
}

Processor::Predecoded& Processor::predecode_fetch(Addr pc) {
  if (predecode_.empty()) predecode_.resize(memory_.size_bytes() / 4);
  Predecoded& entry = predecode_[pc >> 2];
  if (entry.gen == predecode_gen_) return entry;
  entry.raw = memory_.read_word(pc);
  entry.in = isa::decode(entry.raw);
  const isa::LatencyPair latency = isa::base_latencies(entry.in);
  entry.lat_taken = static_cast<u8>(latency.taken);
  entry.lat_not_taken = static_cast<u8>(latency.not_taken);
  switch (entry.in.op) {
    case Op::kGet:
    case Op::kPut:
      entry.tag = DispatchTag::kFsl;
      break;
    case Op::kImm:
    case Op::kCustom:
      entry.tag = DispatchTag::kSlow;
      break;
    default:
      entry.tag = DispatchTag::kFast;
      break;
  }
  entry.boundary = entry.in.op == Op::kBr || entry.in.op == Op::kBcc ||
                   entry.in.op == Op::kRtsd;
  entry.gen = predecode_gen_;
  return entry;
}

Word Processor::reg(unsigned index) const {
  if (index >= isa::kNumRegisters) {
    throw SimError("Processor::reg out of range: " + std::to_string(index));
  }
  return regs_[index];
}

void Processor::set_reg(unsigned index, Word value) {
  if (index >= isa::kNumRegisters) {
    throw SimError("Processor::set_reg out of range: " + std::to_string(index));
  }
  if (index == 0) return;  // r0 is hard-wired to zero
  regs_[index] = value;
}

void Processor::write_rd(u8 rd, Word value) {
  if (rd != 0) regs_[rd] = value;
}

void Processor::register_custom_instruction(unsigned slot,
                                            CustomInstruction unit) {
  if (slot >= isa::kNumCustomSlots) {
    throw SimError("register_custom_instruction: slot out of range: " +
                   std::to_string(slot));
  }
  if (!unit.compute) {
    throw SimError("register_custom_instruction: '" + unit.name +
                   "' has no compute function");
  }
  if (unit.latency == 0) {
    throw SimError("register_custom_instruction: '" + unit.name +
                   "' must take at least one cycle");
  }
  custom_units_[slot] = std::move(unit);
}

const CustomInstruction* Processor::custom_instruction(unsigned slot) const {
  if (slot >= isa::kNumCustomSlots || !custom_units_[slot]) return nullptr;
  return &*custom_units_[slot];
}

u32 Processor::operand_b(const Instruction& in) const {
  if (!in.imm_form) return regs_[in.rb];
  // An IMM prefix supplies the high half; otherwise sign-extend imm16.
  if (imm_prefix_) {
    return (u32(*imm_prefix_) << 16) | (static_cast<u32>(in.imm) & 0xFFFFu);
  }
  return static_cast<u32>(in.imm);
}

void Processor::add_family(const Instruction& in, bool subtract,
                           bool use_carry, bool keep_carry) {
  const u32 opb = operand_b(in);
  const u32 a = subtract ? ~regs_[in.ra] : regs_[in.ra];
  u64 cin = 0;
  if (subtract && !use_carry) {
    cin = 1;  // rsub: rd = opb + ~ra + 1
  } else if (use_carry) {
    cin = carry() ? 1 : 0;
  }
  const u64 sum = u64(a) + u64(opb) + cin;
  write_rd(in.rd, static_cast<Word>(sum));
  if (!keep_carry) set_carry((sum >> 32) != 0);
}

// The data-side memory paths are shared verbatim between execute() and
// the superblock tier's stitched load/store handlers: one body, so the
// execution tiers cannot diverge on LMB/OPB semantics or accounting.

Event Processor::load_data(Addr addr, unsigned bytes, Word& value) {
  if (memory_.contains(addr & ~Addr{bytes - 1}, bytes)) {
    value = bytes == 1   ? memory_.read_byte(addr)
            : bytes == 2 ? memory_.read_half(addr)
                         : memory_.read_word(addr);
  } else if (opb_ != nullptr && opb_->decodes(addr)) {
    const bus::BusResponse response = opb_->read(addr);
    pending_wait_states_ = response.wait_states;
    stats_.opb_accesses += 1;
    stats_.opb_wait_cycles += response.wait_states;
    // An OPB error acknowledge or arbiter timeout raises the
    // MicroBlaze data-bus-error exception; the ISS models it as a
    // trap after charging the cycles the failed transfer consumed.
    if (!response.ok) return Event::kIllegal;
    // Sub-word OPB reads extract the addressed lanes of the word.
    value = response.data >> (8u * (addr & 3u));
    if (bytes == 1) value &= 0xFFu;
    if (bytes == 2) value &= 0xFFFFu;
  } else {
    return Event::kIllegal;
  }
  stats_.loads += 1;
  return Event::kRetired;
}

Event Processor::store_data(Addr addr, unsigned bytes, Word value) {
  if (memory_.contains(addr & ~Addr{bytes - 1}, bytes)) {
    if (bytes == 1) {
      memory_.write_byte(addr, static_cast<u8>(value));
    } else if (bytes == 2) {
      memory_.write_half(addr, static_cast<u16>(value));
    } else {
      memory_.write_word(addr, value);
    }
    // Self-modifying code: a store landing on cached text must force a
    // re-decode at the next fetch of that word (and retire any
    // superblock covering it — invalidate_predecode does both).
    if (!predecode_.empty()) invalidate_predecode(addr);
  } else if (opb_ != nullptr && opb_->decodes(addr)) {
    // OPB writes are full-word; sub-word stores replicate the value
    // onto the addressed lanes (byte-enable behaviour).
    const bus::BusResponse response = opb_->write(addr, value);
    pending_wait_states_ = response.wait_states;
    stats_.opb_accesses += 1;
    stats_.opb_wait_cycles += response.wait_states;
    // Error acknowledge / timeout → data-bus-error trap (see load).
    if (!response.ok) return Event::kIllegal;
  } else {
    return Event::kIllegal;
  }
  stats_.stores += 1;
  return Event::kRetired;
}

void Processor::record_step(Event event, Addr pc, Word raw,
                            const Instruction& in, Cycle cycles) {
  if (trace_) {
    trace_(TraceRecord{pc, raw, in, cycles, stats_.cycles, event});
  }
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    obs::TraceEvent out;
    switch (event) {
      case Event::kRetired: out.kind = obs::EventKind::kInstrRetire; break;
      case Event::kFslStall: out.kind = obs::EventKind::kInstrStall; break;
      case Event::kHalted: out.kind = obs::EventKind::kInstrHalt; break;
      case Event::kIllegal: out.kind = obs::EventKind::kInstrIllegal; break;
    }
    out.cycle = stats_.cycles;
    out.pc = pc;
    out.raw = raw;
    out.cycles = cycles;
    trace_bus_->emit(out);
  }
}

StepResult Processor::step() {
  if (halted_) return StepResult{Event::kHalted, 0};

  // Keep the bus's simulated-time cursor at the step's start cycle so
  // FSL/OPB events emitted while executing carry the right timestamp.
  if (trace_bus_ != nullptr) trace_bus_->set_time(stats_.cycles);

  if (!memory_.contains(pc_, 4)) {
    // An instruction-fetch fault occupies the pipeline for one cycle,
    // exactly like the execute-stage illegal path below.
    halted_ = true;
    stats_.cycles += 1;
    record_step(Event::kIllegal, pc_, 0, Instruction{}, 1);
    return StepResult{Event::kIllegal, 1};
  }
  const Addr fetch_pc = pc_;
  // First fetch of a PC decodes into the predecode cache; every later
  // fetch is a table lookup (stores into cached text invalidate, so
  // self-modifying code still sees its new instruction words).
  Word raw;
  Instruction in;
  if (predecode_enabled_) {
    const Predecoded& entry = predecode_fetch(fetch_pc);
    raw = entry.raw;
    in = entry.in;
  } else {
    raw = memory_.read_word(fetch_pc);
    in = isa::decode(raw);
  }

  const ExecOutcome outcome = execute(in);
  if (outcome.event == Event::kFslStall) {
    // Blocked blocking FSL access: burn one cycle, PC unchanged, so the
    // hardware model can advance and eventually unblock us.
    stats_.cycles += 1;
    stats_.fsl_stall_cycles += 1;
    record_step(Event::kFslStall, fetch_pc, raw, in, 1);
    return StepResult{Event::kFslStall, 1};
  }
  if (outcome.event == Event::kIllegal) {
    halted_ = true;
    // A faulting OPB access may have queued wait states; the trap
    // preempts them (and they must not leak into a post-reset step).
    pending_wait_states_ = 0;
    stats_.cycles += 1;
    record_step(Event::kIllegal, fetch_pc, raw, in, 1);
    return StepResult{Event::kIllegal, 1};
  }
  if (outcome.event == Event::kHalted) {
    halted_ = true;
    // The halting branch (bri 0) still occupies the pipeline; charge it.
    const Cycle cycles = isa::base_latency(in, true);
    stats_.cycles += cycles;
    stats_.instructions += 1;
    record_step(Event::kHalted, fetch_pc, raw, in, cycles);
    return StepResult{Event::kHalted, cycles};
  }

  Cycle cycles = isa::base_latency(in, outcome.branch_taken);
  if (pending_wait_states_ != 0) {
    // Dynamic extra cycles: OPB wait states or a custom unit's latency.
    cycles += pending_wait_states_;
    pending_wait_states_ = 0;
  }
  stats_.cycles += cycles;
  stats_.instructions += 1;
  record_step(Event::kRetired, fetch_pc, raw, in, cycles);
  return StepResult{Event::kRetired, cycles};
}

Processor::ExecOutcome Processor::execute(const Instruction& in) {
  ExecOutcome out;
  const Addr this_pc = pc_;
  // True when this instruction sits in the delay slot of the branch that
  // set delay_target_ on the previous step.
  const bool in_delay_slot = delay_target_.has_value();
  Addr next_pc = pc_ + 4;
  bool consume_imm_prefix = true;

  switch (in.op) {
    case Op::kAdd:
      add_family(in, false, false, false);
      break;
    case Op::kAddc:
      add_family(in, false, true, false);
      break;
    case Op::kAddk:
      add_family(in, false, false, true);
      break;
    case Op::kRsub:
      add_family(in, true, false, false);
      break;
    case Op::kRsubc:
      add_family(in, true, true, false);
      break;
    case Op::kRsubk:
      add_family(in, true, false, true);
      break;
    case Op::kCmp: {
      const i32 a = static_cast<i32>(regs_[in.ra]);
      const i32 b = static_cast<i32>(regs_[in.rb]);
      Word result = regs_[in.rb] - regs_[in.ra];
      // MSB reflects the true signed comparison: set iff rb < ra.
      result = insert_bits(result, 31, 1, b < a ? 1u : 0u);
      write_rd(in.rd, result);
      break;
    }
    case Op::kCmpu: {
      const u32 a = regs_[in.ra];
      const u32 b = regs_[in.rb];
      Word result = b - a;
      result = insert_bits(result, 31, 1, b < a ? 1u : 0u);
      write_rd(in.rd, result);
      break;
    }
    case Op::kMul: {
      if (!config_.has_multiplier) return {Event::kIllegal, false};
      const u64 product = u64(regs_[in.ra]) * u64(operand_b(in));
      write_rd(in.rd, static_cast<Word>(product));
      stats_.multiplies += 1;
      break;
    }
    case Op::kIdiv:
    case Op::kIdivu: {
      if (!config_.has_divider) return {Event::kIllegal, false};
      const u32 divisor = regs_[in.ra];
      const u32 dividend = regs_[in.rb];
      if (divisor == 0) {
        write_rd(in.rd, 0);
      } else if (in.op == Op::kIdiv) {
        write_rd(in.rd, static_cast<Word>(static_cast<i32>(dividend) /
                                          static_cast<i32>(divisor)));
      } else {
        write_rd(in.rd, dividend / divisor);
      }
      break;
    }
    case Op::kBsll:
    case Op::kBsra:
    case Op::kBsrl: {
      if (!config_.has_barrel_shifter) return {Event::kIllegal, false};
      const unsigned amount = operand_b(in) & 31u;
      const u32 value = regs_[in.ra];
      Word result;
      if (in.op == Op::kBsll) {
        result = value << amount;
      } else if (in.op == Op::kBsrl) {
        result = value >> amount;
      } else {
        result = static_cast<u32>(static_cast<i32>(value) >> amount);
      }
      write_rd(in.rd, result);
      break;
    }
    case Op::kOr:
      write_rd(in.rd, regs_[in.ra] | operand_b(in));
      break;
    case Op::kAnd:
      write_rd(in.rd, regs_[in.ra] & operand_b(in));
      break;
    case Op::kXor:
      write_rd(in.rd, regs_[in.ra] ^ operand_b(in));
      break;
    case Op::kAndn:
      write_rd(in.rd, regs_[in.ra] & ~operand_b(in));
      break;
    case Op::kSra: {
      const u32 value = regs_[in.ra];
      write_rd(in.rd, static_cast<u32>(static_cast<i32>(value) >> 1));
      set_carry((value & 1u) != 0);
      break;
    }
    case Op::kSrl: {
      const u32 value = regs_[in.ra];
      write_rd(in.rd, value >> 1);
      set_carry((value & 1u) != 0);
      break;
    }
    case Op::kSrc: {
      const u32 value = regs_[in.ra];
      write_rd(in.rd, (value >> 1) | (carry() ? 0x80000000u : 0u));
      set_carry((value & 1u) != 0);
      break;
    }
    case Op::kSext8:
      write_rd(in.rd, sign_extend(regs_[in.ra], 8));
      break;
    case Op::kSext16:
      write_rd(in.rd, sign_extend(regs_[in.ra], 16));
      break;
    case Op::kImm:
      imm_prefix_ = static_cast<u16>(static_cast<u32>(in.imm) & 0xFFFFu);
      consume_imm_prefix = false;
      break;
    case Op::kMfs:
      write_rd(in.rd, in.imm == 0 ? pc_ : msr_);
      break;
    case Op::kMts:
      msr_ = regs_[in.ra];
      break;
    case Op::kBr: {
      stats_.branches += 1;
      stats_.branches_taken += 1;
      out.branch_taken = true;
      const u32 disp = operand_b(in);
      const Addr target = in.absolute ? disp : this_pc + disp;
      if (in.link) write_rd(in.rd, this_pc);
      if (target == this_pc && !in.link) {
        // Branch-to-self: the conventional end-of-program idle loop.
        return {Event::kHalted, true};
      }
      if (in_delay_slot) return {Event::kIllegal, false};
      if (in.delay_slot) {
        delay_target_ = target;
      } else {
        next_pc = target;
      }
      break;
    }
    case Op::kBcc: {
      stats_.branches += 1;
      const i32 value = static_cast<i32>(regs_[in.ra]);
      bool taken = false;
      switch (in.cond) {
        case isa::Cond::kEq: taken = value == 0; break;
        case isa::Cond::kNe: taken = value != 0; break;
        case isa::Cond::kLt: taken = value < 0; break;
        case isa::Cond::kLe: taken = value <= 0; break;
        case isa::Cond::kGt: taken = value > 0; break;
        case isa::Cond::kGe: taken = value >= 0; break;
      }
      out.branch_taken = taken;
      if (taken) {
        stats_.branches_taken += 1;
        const Addr target = this_pc + operand_b(in);
        if (in_delay_slot) return {Event::kIllegal, false};
        if (in.delay_slot) {
          delay_target_ = target;
        } else {
          next_pc = target;
        }
      }
      break;
    }
    case Op::kRtsd: {
      stats_.branches += 1;
      stats_.branches_taken += 1;
      out.branch_taken = true;
      const Addr target = regs_[in.ra] + static_cast<u32>(in.imm);
      if (in_delay_slot) return {Event::kIllegal, false};
      delay_target_ = target;
      break;
    }
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLw: {
      const Addr addr = regs_[in.ra] + operand_b(in);
      const unsigned bytes =
          in.op == Op::kLbu ? 1u : in.op == Op::kLhu ? 2u : 4u;
      Word value = 0;
      if (load_data(addr, bytes, value) == Event::kIllegal) {
        return {Event::kIllegal, false};
      }
      write_rd(in.rd, value);
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      const Addr addr = regs_[in.ra] + operand_b(in);
      const unsigned bytes = in.op == Op::kSb ? 1u : in.op == Op::kSh ? 2u : 4u;
      if (store_data(addr, bytes, regs_[in.rd]) == Event::kIllegal) {
        return {Event::kIllegal, false};
      }
      break;
    }
    case Op::kGet: {
      if (fsl_hub_ == nullptr || in.fsl_id >= config_.fsl_links) {
        return {Event::kIllegal, false};
      }
      auto& channel = fsl_hub_->from_hw(in.fsl_id);
      if (!channel.exists()) {
        if (in.fsl_nonblocking) {
          set_carry(true);  // no data: carry flags the failed nget/ncget
          break;
        }
        return {Event::kFslStall, false};
      }
      const auto entry = channel.try_read();
      write_rd(in.rd, entry->data);
      if (entry->control != in.fsl_control) {
        msr_ |= isa::Msr::kFslError;  // control-bit mismatch (Section III-B)
      }
      if (in.fsl_nonblocking) set_carry(false);
      stats_.fsl_reads += 1;
      break;
    }
    case Op::kPut: {
      if (fsl_hub_ == nullptr || in.fsl_id >= config_.fsl_links) {
        return {Event::kIllegal, false};
      }
      auto& channel = fsl_hub_->to_hw(in.fsl_id);
      if (channel.full()) {
        if (in.fsl_nonblocking) {
          set_carry(true);  // FIFO full: carry flags the failed nput/ncput
          break;
        }
        return {Event::kFslStall, false};
      }
      channel.try_write(regs_[in.ra], in.fsl_control);
      if (in.fsl_nonblocking) set_carry(false);
      stats_.fsl_writes += 1;
      break;
    }
    case Op::kCustom: {
      const auto& unit = custom_units_[in.custom_slot];
      if (!unit) return {Event::kIllegal, false};
      write_rd(in.rd, unit->compute(regs_[in.ra], regs_[in.rb]));
      // Charge the unit's latency beyond the 1-cycle base issue cost.
      pending_wait_states_ += unit->latency - 1;
      break;
    }
    case Op::kIllegal:
      return {Event::kIllegal, false};
  }

  if (consume_imm_prefix) imm_prefix_.reset();

  if (in_delay_slot) {
    // This instruction was the delay slot: control now transfers to the
    // branch target recorded on the previous step.
    pc_ = *delay_target_;
    delay_target_.reset();
  } else {
    pc_ = next_pc;
  }
  return out;
}

BatchResult Processor::run_batch(Cycle max_cycles, bool stop_before_fsl) {
  if (!fast_path_available()) return BatchResult{BatchStop::kPrecise, 0};
  const Cycle start_cycles = stats_.cycles;
  const auto consumed = [&] { return stats_.cycles - start_cycles; };
  const bool dbt = exec_tier_ == ExecTier::kDbt;
  // Superblocks start where control flow lands: the batch entry point,
  // branch successors and block exits. Tracking that with one flag
  // confines promotion-heat counting to genuine block-head words.
  bool at_head = true;

  while (!halted_ && stats_.cycles < max_cycles) {
    if (!memory_.contains(pc_, 4)) {
      step();  // charges and records the instruction-fetch fault
      return BatchResult{BatchStop::kIllegal, consumed()};
    }
    const Predecoded& entry = predecode_fetch(pc_);
    if (entry.tag == DispatchTag::kFsl && stop_before_fsl) {
      // Do not execute: the co-simulation engine first brings the
      // hardware model to cycle parity, then steps the FSL access in
      // lock step (covers FSL accesses sitting in a delay slot too).
      return BatchResult{BatchStop::kFslPending, consumed()};
    }
    if (entry.tag != DispatchTag::kFast || imm_prefix_ || delay_target_)
        [[unlikely]] {
      // The precise path — with no hook/bus attached (the fast-path
      // precondition) it is bit-identical, just slower.
      at_head = true;  // conservatively: heat counting is timing-neutral
      switch (step().event) {
        case Event::kRetired:
          continue;
        case Event::kFslStall:
          return BatchResult{BatchStop::kFslStall, consumed()};
        case Event::kHalted:
          return BatchResult{BatchStop::kHalted, consumed()};
        case Event::kIllegal:
          return BatchResult{BatchStop::kIllegal, consumed()};
      }
      continue;
    }

    if (dbt && at_head) {
      // Third tier: whole-superblock dispatch (DESIGN.md §12). Exits
      // land on block heads, so at_head stays true after kContinue.
      switch (dbt_enter(max_cycles)) {
        case DbtRun::kNoBlock:
          break;  // not (yet) translated: per-instruction fast path
        case DbtRun::kContinue:
          continue;
        case DbtRun::kHalted:
          return BatchResult{BatchStop::kHalted, consumed()};
        case DbtRun::kIllegal:
          return BatchResult{BatchStop::kIllegal, consumed()};
      }
    }

    // Fast path: predecoded plain instruction, no prefix/delay state.
    // Accounting mirrors step() exactly, minus the no-op trace calls.
    const ExecOutcome outcome = execute(entry.in);
    if (outcome.event == Event::kRetired) [[likely]] {
      Cycle cycles =
          outcome.branch_taken ? entry.lat_taken : entry.lat_not_taken;
      if (pending_wait_states_ != 0) {
        cycles += pending_wait_states_;
        pending_wait_states_ = 0;
      }
      stats_.cycles += cycles;
      stats_.instructions += 1;
      at_head = entry.boundary;
      continue;
    }
    if (outcome.event == Event::kHalted) {
      halted_ = true;
      stats_.cycles += entry.lat_taken;  // the halting branch is taken
      stats_.instructions += 1;
      return BatchResult{BatchStop::kHalted, consumed()};
    }
    // Event::kIllegal (disabled unit, bad data address, branch in a
    // delay slot); kFslStall is impossible here (FSL ops are not kFast).
    halted_ = true;
    // A faulting OPB access may have queued wait states; the trap
    // preempts them, exactly as in step().
    pending_wait_states_ = 0;
    stats_.cycles += 1;
    return BatchResult{BatchStop::kIllegal, consumed()};
  }
  return BatchResult{BatchStop::kBudget, consumed()};
}

Event Processor::run(Cycle max_cycles) {
  Event last = Event::kRetired;
  while (!halted_ && stats_.cycles < max_cycles) {
    if (fast_path_available()) {
      const BatchResult batch = run_batch(max_cycles, false);
      switch (batch.stop) {
        case BatchStop::kHalted:
          return Event::kHalted;
        case BatchStop::kIllegal:
          return Event::kIllegal;
        case BatchStop::kFslStall:
          last = Event::kFslStall;
          if (fsl_hub_ == nullptr) return last;
          continue;  // keep burning stall cycles, as the step loop does
        case BatchStop::kBudget:
          last = Event::kRetired;
          continue;
        case BatchStop::kFslPending:
        case BatchStop::kPrecise:
          break;  // fall through to the precise step below
      }
    }
    last = step().event;
    if (last == Event::kIllegal || last == Event::kHalted) return last;
    if (last == Event::kFslStall && fsl_hub_ == nullptr) return last;
  }
  return halted_ ? Event::kHalted : last;
}

}  // namespace mbcosim::iss
