// LMB BRAM memory model. The paper's configuration stores both the
// instructions and the data of the software program in on-chip BRAMs
// reached through two LMB interface controllers with a guaranteed
// one-cycle access latency (Section III-A); the latency itself is charged
// by the instruction timing model (isa::base_latency), so this class only
// models state.
#pragma once

#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"

namespace mbcosim::ckpt {
class Writer;
class Reader;
}  // namespace mbcosim::ckpt

namespace mbcosim::iss {

class LmbMemory {
 public:
  /// Default size: 64 KiB, i.e. 32 BRAM blocks — ample for the paper's
  /// applications.
  explicit LmbMemory(u32 size_bytes = 64 * 1024);

  [[nodiscard]] u32 size_bytes() const noexcept {
    return static_cast<u32>(bytes_.size());
  }

  /// True when [addr, addr + bytes) lies inside the memory.
  [[nodiscard]] bool contains(Addr addr, u32 bytes) const noexcept;

  // Aligned accessors. Unaligned word/halfword addresses are truncated to
  // alignment, matching LMB behaviour (the low address bits select byte
  // lanes, they do not shift the access).
  [[nodiscard]] Word read_word(Addr addr) const;
  [[nodiscard]] u16 read_half(Addr addr) const;
  [[nodiscard]] u8 read_byte(Addr addr) const;
  void write_word(Addr addr, Word value);
  void write_half(Addr addr, u16 value);
  void write_byte(Addr addr, u8 value);

  /// Copy an assembled image into memory at its origin.
  void load_program(const assembler::Program& program);

  void fill(u8 value);

  /// Checkpoint the full byte image. load_state refuses (returns false)
  /// when the snapshot was taken from a memory of a different size.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  void check(Addr addr, u32 bytes) const;
  std::vector<u8> bytes_;
};

}  // namespace mbcosim::iss
