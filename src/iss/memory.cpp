#include "iss/memory.hpp"

#include <algorithm>
#include <string>

#include "common/status.hpp"

namespace mbcosim::iss {

LmbMemory::LmbMemory(u32 size_bytes) : bytes_(size_bytes, 0) {
  if (size_bytes == 0 || (size_bytes % 4) != 0) {
    throw SimError("LmbMemory: size must be a nonzero multiple of 4");
  }
}

bool LmbMemory::contains(Addr addr, u32 bytes) const noexcept {
  return addr <= bytes_.size() && bytes <= bytes_.size() - addr;
}

void LmbMemory::check(Addr addr, u32 bytes) const {
  if (!contains(addr, bytes)) {
    throw SimError("LmbMemory: access at 0x" + std::to_string(addr) +
                   " outside " + std::to_string(bytes_.size()) + " bytes");
  }
}

Word LmbMemory::read_word(Addr addr) const {
  addr &= ~Addr{3};
  check(addr, 4);
  // Little-endian host layout; endianness is invisible to the programs
  // because word accesses dominate and the assembler emits whole words.
  return Word(bytes_[addr]) | Word(bytes_[addr + 1]) << 8 |
         Word(bytes_[addr + 2]) << 16 | Word(bytes_[addr + 3]) << 24;
}

u16 LmbMemory::read_half(Addr addr) const {
  addr &= ~Addr{1};
  check(addr, 2);
  return static_cast<u16>(u16(bytes_[addr]) | u16(bytes_[addr + 1]) << 8);
}

u8 LmbMemory::read_byte(Addr addr) const {
  check(addr, 1);
  return bytes_[addr];
}

void LmbMemory::write_word(Addr addr, Word value) {
  addr &= ~Addr{3};
  check(addr, 4);
  bytes_[addr] = static_cast<u8>(value);
  bytes_[addr + 1] = static_cast<u8>(value >> 8);
  bytes_[addr + 2] = static_cast<u8>(value >> 16);
  bytes_[addr + 3] = static_cast<u8>(value >> 24);
}

void LmbMemory::write_half(Addr addr, u16 value) {
  addr &= ~Addr{1};
  check(addr, 2);
  bytes_[addr] = static_cast<u8>(value);
  bytes_[addr + 1] = static_cast<u8>(value >> 8);
}

void LmbMemory::write_byte(Addr addr, u8 value) {
  check(addr, 1);
  bytes_[addr] = value;
}

void LmbMemory::load_program(const assembler::Program& program) {
  check(program.origin, program.size_bytes());
  Addr addr = program.origin;
  for (const Word word : program.words) {
    write_word(addr, word);
    addr += 4;
  }
}

void LmbMemory::fill(u8 value) {
  std::fill(bytes_.begin(), bytes_.end(), value);
}

}  // namespace mbcosim::iss
