// Run-control front end for the ISS — the analog of mb-gdb in the paper's
// architecture (Figure 2). The paper drives the Xilinx cycle-accurate
// simulator through mb-gdb inside a bidirectional software pipe that
// "accepts commands ... and interactively runs the software programs",
// and through which the MicroBlaze Simulink block "changes the status of
// the registers of the processor based on the results from the customized
// hardware designs". This class provides the same two faces:
//   - a programmatic API (breakpoints, stepping, register/memory access);
//   - a line-oriented textual command interface (`command`) standing in
//     for the TCL pipe protocol.
#pragma once

#include <set>
#include <string>
#include <string_view>

#include "iss/processor.hpp"

namespace mbcosim::iss {

enum class StopCause : u8 {
  kBreakpoint,
  kHalted,
  kIllegal,
  kCycleLimit,
  kFslStalled,  ///< run stopped on an FSL stall (co-sim engine's turn)
};

class Debugger {
 public:
  explicit Debugger(Processor& cpu) : cpu_(cpu) {}

  void add_breakpoint(Addr addr) { breakpoints_.insert(addr); }
  void remove_breakpoint(Addr addr) { breakpoints_.erase(addr); }
  [[nodiscard]] bool has_breakpoint(Addr addr) const {
    return breakpoints_.count(addr) != 0;
  }
  [[nodiscard]] const std::set<Addr>& breakpoints() const {
    return breakpoints_;
  }

  /// Step exactly one instruction (FSL stalls retry until it completes or
  /// the cycle budget is gone).
  StepResult step_over_stalls(Cycle max_stall_cycles = 1'000'000);

  /// Run until a breakpoint, halt, illegal event, FSL stall, or the cycle
  /// budget is exhausted.
  StopCause cont(Cycle max_cycles = ~Cycle{0});

  [[nodiscard]] Processor& cpu() noexcept { return cpu_; }

  /// Execute one textual command and return its reply. Supported verbs:
  ///   reg <n>            -> register value
  ///   setreg <n> <value> -> write register
  ///   pc                 -> current PC
  ///   msr                -> machine status register
  ///   mem <addr>         -> word at addr
  ///   setmem <addr> <v>  -> write word
  ///   step               -> one instruction
  ///   cont [cycles]      -> run (optionally bounded)
  ///   break <addr>       -> set breakpoint
  ///   delete <addr>      -> clear breakpoint
  ///   cycles             -> cycle counter
  ///   disasm             -> disassemble at PC
  /// Unknown input returns "error: ...".
  std::string command(std::string_view line);

 private:
  Processor& cpu_;
  std::set<Addr> breakpoints_;
};

}  // namespace mbcosim::iss
