#include "fault/experiment.hpp"

#include <cstdio>
#include <utility>

#include "fault/injector.hpp"
#include "obs/event.hpp"

namespace mbcosim::fault {

const char* outcome_name(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "sdc";
    case Outcome::kHang: return "hang";
    case Outcome::kTrap: return "trap";
  }
  return "unknown";
}

Expected<GoldenReference> run_golden(const SystemFactory& factory,
                                     const OutputExtractor& extract,
                                     Cycle max_cycles) {
  auto built = factory(nullptr);
  if (!built.ok()) {
    return Expected<GoldenReference>::failure("golden build failed: " +
                                              built.error());
  }
  sim::SimSystem system = std::move(built).value();
  GoldenReference golden;
  golden.stop = system.run(max_cycles);
  if (golden.stop != core::StopReason::kHalted) {
    return Expected<GoldenReference>::failure(
        std::string("golden run did not halt: stopped on ") +
        core::stop_reason_name(golden.stop));
  }
  golden.cycles = system.cpu().cycle();
  golden.outputs = extract(system);
  return golden;
}

namespace {

// First index at which the faulted outputs differ from the golden ones
// (size mismatch counts as a difference at the shorter length).
[[nodiscard]] std::string describe_sdc(const std::vector<Word>& golden,
                                       const std::vector<Word>& faulted) {
  char buf[96];
  if (golden.size() != faulted.size()) {
    std::snprintf(buf, sizeof buf, "output count %zu != golden %zu",
                  faulted.size(), golden.size());
    return buf;
  }
  for (std::size_t i = 0; i < golden.size(); ++i) {
    if (faulted[i] != golden[i]) {
      std::snprintf(buf, sizeof buf,
                    "output[%zu] = 0x%08x, golden 0x%08x", i,
                    static_cast<unsigned>(faulted[i]),
                    static_cast<unsigned>(golden[i]));
      return buf;
    }
  }
  return "outputs differ";
}

}  // namespace

ExperimentResult run_experiment(const SystemFactory& factory,
                                const OutputExtractor& extract,
                                const FaultPlan& plan,
                                const GoldenReference& golden,
                                Cycle max_cycles,
                                const std::vector<unsigned char>* fork_image) {
  ExperimentResult result;
  result.plan = plan;

  auto built = factory(&plan);
  if (!built.ok()) {
    result.error = built.error();
    result.outcome = Outcome::kMasked;  // never ran; counted separately
    return result;
  }
  sim::SimSystem system = std::move(built).value();

  if (fork_image != nullptr) {
    // Skip the shared fault-free prefix: resume from the base image.
    // run() then carries the clocks from the restored point to the
    // trigger and onward, exactly as a full run would have.
    if (const Status restored = system.restore_image(*fork_image);
        !restored.ok) {
      system.reset();  // fall back to the full run; correct, just slower
    }
  }

  result.stop = system.run(max_cycles);
  result.cycles = system.cpu().cycle();
  if (const Injector* injector = system.fault_injector();
      injector != nullptr) {
    result.injected = injector->applied();
    result.detail = injector->detail();
  }

  auto append_detail = [&result](const std::string& text) {
    if (text.empty()) return;
    if (!result.detail.empty()) result.detail += "; ";
    result.detail += text;
  };

  switch (result.stop) {
    case core::StopReason::kHalted: {
      const std::vector<Word> outputs = extract(system);
      if (outputs == golden.outputs) {
        result.outcome = Outcome::kMasked;
      } else {
        result.outcome = Outcome::kSdc;
        append_detail(describe_sdc(golden.outputs, outputs));
      }
      break;
    }
    case core::StopReason::kDeadlock:
    case core::StopReason::kCycleLimit:
      result.outcome = Outcome::kHang;
      if (const auto diagnosis = system.deadlock_diagnosis(); diagnosis) {
        append_detail(diagnosis->to_string());
      } else if (result.stop == core::StopReason::kCycleLimit) {
        append_detail("cycle budget exhausted");
      }
      break;
    case core::StopReason::kIllegal:
      result.outcome = Outcome::kTrap;
      break;
  }

  if (obs::TraceBus& bus = system.trace_bus(); bus.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kFaultOutcome;
    event.cycle = result.cycles;
    event.label = outcome_name(result.outcome);
    event.detail = result.detail.empty() ? nullptr : result.detail.c_str();
    bus.emit(event);
    bus.flush();
  }
  return result;
}

}  // namespace mbcosim::fault
