// fault::Experiment: run one FaultPlan against a design and classify
// what the fault did. The caller provides a *factory* that builds a
// fresh sim::SimSystem — with the plan armed when given one, fault-free
// for the golden reference — plus an *extractor* that reads the
// design's architectural outputs (e.g. the result array in guest
// memory) once the run stops. Classification follows the standard
// SEU-campaign taxonomy:
//
//   masked  the faulted run halted and its outputs equal the golden run
//   sdc     silent data corruption: halted, but the outputs differ
//   hang    the deadlock watchdog fired or the cycle budget ran out
//   trap    an architectural error (illegal instruction, bus fault)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/cosim_engine.hpp"
#include "fault/fault_plan.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::fault {

enum class Outcome : u8 { kMasked, kSdc, kHang, kTrap };

[[nodiscard]] const char* outcome_name(Outcome outcome) noexcept;

/// Builds one fresh system. `plan` is null for the golden reference and
/// points at the experiment's plan for a faulted build (pass it to
/// SimSystem::Builder::fault). Runs on campaign worker threads: factories
/// must not share mutable state.
using SystemFactory =
    std::function<Expected<sim::SimSystem>(const FaultPlan* plan)>;

/// Reads the design's outputs after a run (whatever "the result" means
/// for the application — typically a memory region via SimSystem::word).
using OutputExtractor = std::function<std::vector<Word>(sim::SimSystem&)>;

/// The fault-free reference execution a campaign's experiments compare
/// against. Computed once and shared (read-only) across experiments.
struct GoldenReference {
  std::vector<Word> outputs;
  Cycle cycles = 0;
  core::StopReason stop = core::StopReason::kHalted;
};

[[nodiscard]] Expected<GoldenReference> run_golden(
    const SystemFactory& factory, const OutputExtractor& extract,
    Cycle max_cycles);

struct ExperimentResult {
  FaultPlan plan;
  Outcome outcome = Outcome::kMasked;
  core::StopReason stop = core::StopReason::kHalted;
  Cycle cycles = 0;      ///< faulted-run cycles at the stop
  bool injected = false; ///< the fault actually mutated state / armed
  std::string detail;    ///< injection + classification cause
  std::string error;     ///< nonempty when the faulted build failed
};

/// Build the faulted system, run it under `max_cycles`, classify
/// against `golden`. A factory failure is reported in
/// ExperimentResult::error (never thrown) so one broken plan cannot
/// poison a campaign. The classification is also emitted as a
/// kFaultOutcome event on the faulted system's trace bus.
///
/// `fork_image`, when given, is a SimSystem::snapshot() of the
/// fault-free base stopped at or before the plan's cycle trigger; the
/// freshly-built faulted system restores it and resumes from there
/// instead of re-simulating the shared prefix. Only valid for
/// cycle-triggered plans (their injector arms no component state before
/// firing). A restore failure falls back to a full run from reset —
/// slower, never wrong.
[[nodiscard]] ExperimentResult run_experiment(
    const SystemFactory& factory, const OutputExtractor& extract,
    const FaultPlan& plan, const GoldenReference& golden, Cycle max_cycles,
    const std::vector<unsigned char>* fork_image = nullptr);

}  // namespace mbcosim::fault
