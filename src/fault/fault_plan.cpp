#include "fault/fault_plan.hpp"

#include <cstdio>
#include <iterator>

namespace mbcosim::fault {

namespace {

[[nodiscard]] bool is_stream_mode(FaultMode mode) noexcept {
  return mode == FaultMode::kCorruptWord || mode == FaultMode::kDropWord ||
         mode == FaultMode::kDuplicateWord || mode == FaultMode::kFlipControl;
}

[[nodiscard]] bool is_stuck_mode(FaultMode mode) noexcept {
  return mode == FaultMode::kStuckFull || mode == FaultMode::kStuckEmpty;
}

[[nodiscard]] bool is_flip_mode(FaultMode mode) noexcept {
  return mode == FaultMode::kBitFlip || mode == FaultMode::kMultiBitFlip;
}

[[nodiscard]] bool is_bus_mode(FaultMode mode) noexcept {
  return mode == FaultMode::kBusError || mode == FaultMode::kBusTimeout;
}

std::string hex32(u32 value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%x", value);
  return buffer;
}

}  // namespace

const char* site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kMemory: return "mem";
    case FaultSite::kRegister: return "reg";
    case FaultSite::kFslToHw: return "fsl-to-hw";
    case FaultSite::kFslFromHw: return "fsl-from-hw";
    case FaultSite::kOpb: return "opb";
  }
  return "?";
}

const char* mode_name(FaultMode mode) noexcept {
  switch (mode) {
    case FaultMode::kBitFlip: return "bitflip";
    case FaultMode::kMultiBitFlip: return "multibitflip";
    case FaultMode::kCorruptWord: return "corrupt";
    case FaultMode::kDropWord: return "drop";
    case FaultMode::kDuplicateWord: return "dup";
    case FaultMode::kFlipControl: return "flipctl";
    case FaultMode::kStuckFull: return "stuckfull";
    case FaultMode::kStuckEmpty: return "stuckempty";
    case FaultMode::kBusError: return "buserror";
    case FaultMode::kBusTimeout: return "timeout";
  }
  return "?";
}

const char* trigger_name(TriggerKind kind) noexcept {
  switch (kind) {
    case TriggerKind::kCycle: return "cycle";
    case TriggerKind::kPc: return "pc";
    case TriggerKind::kCount: return "count";
  }
  return "?";
}

Word FaultPlan::effective_mask() const noexcept {
  if (mask != 0) return mask;
  // Derive from the plan seed; one private stream per plan keeps the
  // choice independent of everything else the campaign sampled.
  Rng rng(seed ^ 0xfa317eed5eedull);
  if (mode == FaultMode::kMultiBitFlip) {
    const unsigned flips = 2 + static_cast<unsigned>(rng.next_below(3));
    Word derived = 0;
    while (static_cast<unsigned>(__builtin_popcount(derived)) < flips) {
      derived |= Word{1} << rng.next_below(32);
    }
    return derived;
  }
  return Word{1} << rng.next_below(32);
}

std::string FaultPlan::to_spec() const {
  std::string spec;
  spec += "site=";
  spec += site_name(site);
  spec += ",mode=";
  spec += mode_name(mode);
  spec += ",";
  spec += trigger_name(trigger);
  spec += "=";
  spec += trigger == TriggerKind::kPc
              ? hex32(static_cast<u32>(trigger_value))
              : std::to_string(trigger_value);
  switch (site) {
    case FaultSite::kMemory:
      spec += ",addr=" + hex32(address);
      break;
    case FaultSite::kRegister:
      spec += ",reg=" + std::to_string(reg);
      break;
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw:
      spec += ",chan=" + std::to_string(channel);
      break;
    case FaultSite::kOpb:
      break;
  }
  if (mask != 0) spec += ",mask=" + hex32(mask);
  if (seed != 1) spec += ",seed=" + std::to_string(seed);
  if (core != 0) spec += ",core=" + std::to_string(core);
  return spec;
}

std::string FaultPlan::to_string() const {
  std::string out = std::string(mode_name(mode)) + " at " + site_name(site);
  switch (site) {
    case FaultSite::kMemory:
      out += '[';
      out += hex32(address);
      out += ']';
      break;
    case FaultSite::kRegister:
      out += "[r";
      out += std::to_string(reg);
      out += ']';
      break;
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw:
      out += '[';
      out += std::to_string(channel);
      out += ']';
      break;
    case FaultSite::kOpb:
      break;
  }
  out += ", trigger ";
  out += trigger_name(trigger);
  out += " ";
  out += trigger == TriggerKind::kPc ? hex32(static_cast<u32>(trigger_value))
                                     : std::to_string(trigger_value);
  if (is_flip_mode(mode) || mode == FaultMode::kCorruptWord) {
    out += ", mask " + hex32(effective_mask());
  }
  if (core != 0) out += ", core " + std::to_string(core);
  return out;
}

Status validate_plan(const FaultPlan& plan) {
  const auto fail = [&](const std::string& why) {
    return Status::failure("FaultPlan (" + std::string(site_name(plan.site)) +
                           "/" + mode_name(plan.mode) + "): " + why);
  };
  switch (plan.site) {
    case FaultSite::kMemory:
    case FaultSite::kRegister:
      if (!is_flip_mode(plan.mode)) {
        return fail("memory/register sites take bitflip or multibitflip");
      }
      if (plan.trigger == TriggerKind::kCount) {
        return fail("state flips need a cycle or pc trigger");
      }
      if (plan.site == FaultSite::kRegister &&
          (plan.reg == 0 || plan.reg >= 32)) {
        return fail("register must be r1..r31 (r0 is hardwired zero)");
      }
      break;
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw:
      if (!is_stream_mode(plan.mode) && !is_stuck_mode(plan.mode)) {
        return fail("FSL sites take stream or stuck-flag modes");
      }
      if (is_stuck_mode(plan.mode) && plan.trigger == TriggerKind::kCount) {
        return fail("stuck flags are persistent; use a cycle or pc trigger");
      }
      if (is_stream_mode(plan.mode) && plan.trigger == TriggerKind::kPc) {
        return fail("stream faults trigger on cycle or the N-th write");
      }
      if (plan.channel >= 8) {
        return fail("FSL channel must be 0..7");
      }
      break;
    case FaultSite::kOpb:
      if (!is_bus_mode(plan.mode)) {
        return fail("the OPB site takes buserror or timeout");
      }
      if (plan.trigger == TriggerKind::kPc) {
        return fail("bus faults trigger on cycle or the N-th transaction");
      }
      break;
  }
  if (plan.trigger == TriggerKind::kCycle && plan.trigger_value == 0) {
    return fail("cycle trigger must be nonzero");
  }
  return {};
}

Expected<FaultPlan> parse_plan(const std::string& spec, u64 seed) {
  using Failure = Expected<FaultPlan>;
  FaultPlan plan;
  plan.seed = seed;
  bool trigger_set = false;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Failure::failure("fault spec: '" + item +
                              "' is not a key=value pair");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto parse_u64 = [&](u64& out) -> bool {
      try {
        std::size_t used = 0;
        out = std::stoull(value, &used, 0);  // base 0: decimal or 0x...
        return used == value.size();
      } catch (const std::exception&) {
        return false;
      }
    };
    u64 number = 0;
    if (key == "site") {
      bool found = false;
      for (const FaultSite site :
           {FaultSite::kMemory, FaultSite::kRegister, FaultSite::kFslToHw,
            FaultSite::kFslFromHw, FaultSite::kOpb}) {
        if (value == site_name(site)) {
          plan.site = site;
          found = true;
        }
      }
      if (!found) {
        return Failure::failure("fault spec: unknown site '" + value + "'");
      }
    } else if (key == "mode") {
      bool found = false;
      for (const FaultMode mode :
           {FaultMode::kBitFlip, FaultMode::kMultiBitFlip,
            FaultMode::kCorruptWord, FaultMode::kDropWord,
            FaultMode::kDuplicateWord, FaultMode::kFlipControl,
            FaultMode::kStuckFull, FaultMode::kStuckEmpty,
            FaultMode::kBusError, FaultMode::kBusTimeout}) {
        if (value == mode_name(mode)) {
          plan.mode = mode;
          found = true;
        }
      }
      if (!found) {
        return Failure::failure("fault spec: unknown mode '" + value + "'");
      }
    } else if (key == "cycle" || key == "pc" || key == "count") {
      if (trigger_set) {
        return Failure::failure(
            "fault spec: only one of cycle=/pc=/count= may be given");
      }
      if (!parse_u64(number)) {
        return Failure::failure("fault spec: bad trigger value '" + value +
                                "'");
      }
      plan.trigger = key == "cycle"  ? TriggerKind::kCycle
                     : key == "pc"   ? TriggerKind::kPc
                                     : TriggerKind::kCount;
      plan.trigger_value = number;
      trigger_set = true;
    } else if (key == "addr") {
      if (!parse_u64(number)) {
        return Failure::failure("fault spec: bad addr '" + value + "'");
      }
      plan.address = static_cast<Addr>(number);
    } else if (key == "reg") {
      if (!parse_u64(number) || number >= 32) {
        return Failure::failure("fault spec: bad reg '" + value + "'");
      }
      plan.reg = static_cast<unsigned>(number);
    } else if (key == "chan") {
      if (!parse_u64(number) || number >= 8) {
        return Failure::failure("fault spec: bad chan '" + value + "'");
      }
      plan.channel = static_cast<unsigned>(number);
    } else if (key == "mask") {
      if (!parse_u64(number)) {
        return Failure::failure("fault spec: bad mask '" + value + "'");
      }
      plan.mask = static_cast<Word>(number);
    } else if (key == "seed") {
      if (!parse_u64(number)) {
        return Failure::failure("fault spec: bad seed '" + value + "'");
      }
      plan.seed = number;
    } else if (key == "core") {
      if (!parse_u64(number)) {
        return Failure::failure("fault spec: bad core '" + value + "'");
      }
      plan.core = static_cast<unsigned>(number);
    } else {
      return Failure::failure("fault spec: unknown key '" + key + "'");
    }
  }
  if (!trigger_set) {
    return Failure::failure(
        "fault spec: a trigger (cycle=N, pc=ADDR or count=N) is required");
  }
  if (const Status status = validate_plan(plan); !status.ok) {
    return Failure::failure(status.message);
  }
  return plan;
}

FaultPlan sample_plan(Rng& rng, const PlanSpace& space) {
  std::vector<FaultSite> sites;
  if (space.mem_bytes >= 4) sites.push_back(FaultSite::kMemory);
  if (space.registers >= 2) sites.push_back(FaultSite::kRegister);
  if (!space.to_hw_channels.empty()) sites.push_back(FaultSite::kFslToHw);
  if (!space.from_hw_channels.empty()) sites.push_back(FaultSite::kFslFromHw);
  if (space.opb) sites.push_back(FaultSite::kOpb);
  if (sites.empty()) {
    throw SimError("PlanSpace: no fault site is enabled");
  }
  if (space.max_trigger_cycle == 0) {
    throw SimError("PlanSpace: max_trigger_cycle must be nonzero");
  }
  if (space.min_trigger_cycle == 0 ||
      space.min_trigger_cycle > space.max_trigger_cycle) {
    throw SimError(
        "PlanSpace: min_trigger_cycle must be in [1, max_trigger_cycle]");
  }

  FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.site = sites[rng.next_below(sites.size())];
  switch (plan.site) {
    case FaultSite::kMemory:
      plan.mode = rng.next_below(2) == 0 ? FaultMode::kBitFlip
                                         : FaultMode::kMultiBitFlip;
      plan.address =
          space.mem_base + 4 * static_cast<Addr>(
                                   rng.next_below(space.mem_bytes / 4));
      break;
    case FaultSite::kRegister:
      plan.mode = rng.next_below(2) == 0 ? FaultMode::kBitFlip
                                         : FaultMode::kMultiBitFlip;
      plan.reg = 1 + static_cast<unsigned>(rng.next_below(space.registers - 1));
      break;
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw: {
      static constexpr FaultMode kFslModes[] = {
          FaultMode::kCorruptWord, FaultMode::kDropWord,
          FaultMode::kDuplicateWord, FaultMode::kFlipControl,
          FaultMode::kStuckFull, FaultMode::kStuckEmpty};
      plan.mode = kFslModes[rng.next_below(std::size(kFslModes))];
      const auto& channels = plan.site == FaultSite::kFslToHw
                                 ? space.to_hw_channels
                                 : space.from_hw_channels;
      plan.channel = channels[rng.next_below(channels.size())];
      break;
    }
    case FaultSite::kOpb:
      plan.mode = rng.next_below(2) == 0 ? FaultMode::kBusError
                                         : FaultMode::kBusTimeout;
      break;
  }
  // Stream and bus faults count operations at the site; state flips and
  // stuck flags fire at a sampled cycle.
  if (is_stream_mode(plan.mode) || is_bus_mode(plan.mode)) {
    plan.trigger = TriggerKind::kCount;
    plan.trigger_value = rng.next_below(space.max_trigger_count);
  } else {
    plan.trigger = TriggerKind::kCycle;
    // Window draw. For the default min of 1 this is the same stream of
    // draws (and values) as the historical 1 + next_below(max).
    plan.trigger_value =
        space.min_trigger_cycle +
        rng.next_below(space.max_trigger_cycle - space.min_trigger_cycle + 1);
  }
  return plan;
}

}  // namespace mbcosim::fault
