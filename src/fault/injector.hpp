// Injector: applies one FaultPlan to the live components of a simulated
// system. Count-triggered faults (the N-th FSL write, the N-th OPB
// transaction) are *armed* into the component's own fault controls
// before the run starts — the component counts its operations and fires
// the fault itself, keeping the run loop untouched. Point-triggered
// faults (bit flips at a cycle or PC, stuck handshake flags) are *fired*
// by the run orchestration (sim::SimSystem::run) once the simulation has
// been brought to the trigger point.
//
// Zero-cost contract: with no plan armed, none of the hooked components
// (iss::Processor, fsl::FslChannel, bus::OpbBus) pays more than a
// null-pointer branch, the predecode fast path stays available, and
// every statistic and golden trace is bit-identical to a build without
// this subsystem.
#pragma once

#include <string>

#include "bus/opb_bus.hpp"
#include "fault/fault_plan.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/processor.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::fault {

class Injector {
 public:
  explicit Injector(FaultPlan plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// True when the plan must be fired at a stopped trigger point
  /// (cycle/pc) by the run orchestration; false when arm() alone
  /// installs it (count-triggered channel/bus faults).
  [[nodiscard]] bool needs_point_trigger() const noexcept {
    return plan_.trigger != TriggerKind::kCount;
  }

  /// Install count-triggered faults into the components and clear any
  /// previous arming. Call once per run, after reset.
  void arm(fsl::FslHub* hub, bus::OpbBus* opb);

  /// Fire a point-triggered fault now. `trace` (nullable) receives a
  /// kFaultInject event. Records whether the fault actually landed
  /// (a flip into unmapped memory is masked by construction).
  void fire(iss::Processor& cpu, fsl::FslHub* hub, bus::OpbBus* opb,
            obs::TraceBus* trace);

  /// True once fire() ran (or arm() installed a count-triggered fault).
  [[nodiscard]] bool armed_or_fired() const noexcept { return engaged_; }
  /// True when the injection mutated state / armed a control for real.
  [[nodiscard]] bool applied() const noexcept { return applied_; }
  /// Human-readable description of what the injection did.
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  void emit_inject(obs::TraceBus* trace, Cycle cycle) const;

  FaultPlan plan_;
  bool engaged_ = false;
  bool applied_ = false;
  std::string detail_;
};

}  // namespace mbcosim::fault
