#include "fault/campaign.hpp"

#include <cstdio>
#include <utility>

#include "sim/sweep.hpp"

namespace mbcosim::fault {

namespace {

constexpr std::array<Outcome, 4> kOutcomes = {
    Outcome::kMasked, Outcome::kSdc, Outcome::kHang, Outcome::kTrap};

/// Minimal JSON string escaper for detail/error text (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_histogram(
    std::string& out, const char* key,
    const std::map<std::string, std::array<u32, 4>>& histogram) {
  out += "  \"";
  out += key;
  out += "\": {";
  bool first_row = true;
  for (const auto& [name, counts] : histogram) {
    out += first_row ? "\n" : ",\n";
    first_row = false;
    out += "    \"" + name + "\": {";
    bool first_cell = true;
    for (const Outcome outcome : kOutcomes) {
      if (!first_cell) out += ", ";
      first_cell = false;
      char buf[48];
      std::snprintf(buf, sizeof buf, "\"%s\": %u", outcome_name(outcome),
                    counts[static_cast<std::size_t>(outcome)]);
      out += buf;
    }
    out += "}";
  }
  out += first_row ? "}" : "\n  }";
}

}  // namespace

std::string CampaignReport::to_json() const {
  std::string out;
  out.reserve(256 + results.size() * 192);
  char buf[256];

  out += "{\n";
  std::snprintf(buf, sizeof buf,
                "  \"seed\": %llu,\n  \"experiments\": %zu,\n"
                "  \"golden_cycles\": %llu,\n  \"build_failures\": %u,\n",
                static_cast<unsigned long long>(seed), results.size(),
                static_cast<unsigned long long>(golden_cycles),
                build_failures);
  out += buf;

  out += "  \"outcomes\": {";
  for (const Outcome outcome : kOutcomes) {
    std::snprintf(buf, sizeof buf, "%s\"%s\": %u",
                  outcome == Outcome::kMasked ? "" : ", ",
                  outcome_name(outcome), total(outcome));
    out += buf;
  }
  out += "},\n";

  append_histogram(out, "by_site", by_site);
  out += ",\n";
  append_histogram(out, "by_mode", by_mode);
  out += ",\n";

  out += "  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& row = results[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof buf,
                  "    {\"index\": %zu, \"plan\": \"%s\", \"seed\": %llu, "
                  "\"outcome\": \"%s\", \"stop\": \"%s\", \"cycles\": %llu, "
                  "\"injected\": %s",
                  i, row.plan.to_spec().c_str(),
                  static_cast<unsigned long long>(row.plan.seed),
                  outcome_name(row.outcome), core::stop_reason_name(row.stop),
                  static_cast<unsigned long long>(row.cycles),
                  row.injected ? "true" : "false");
    out += buf;
    if (!row.detail.empty()) {
      out += ", \"detail\": \"" + json_escape(row.detail) + "\"";
    }
    if (!row.error.empty()) {
      out += ", \"error\": \"" + json_escape(row.error) + "\"";
    }
    out += "}";
  }
  out += results.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Expected<CampaignReport> run_campaign(const CampaignConfig& config,
                                      const SystemFactory& factory,
                                      const OutputExtractor& extract) {
  auto golden = run_golden(factory, extract, config.max_cycles);
  if (!golden.ok()) {
    return Expected<CampaignReport>::failure(golden.error());
  }

  CampaignReport report;
  report.seed = config.seed;
  report.golden_cycles = golden.value().cycles;

  // Draw every plan up front on this thread: the plan list is a pure
  // function of (seed, experiments, space), independent of the pool.
  Rng rng(config.seed);
  std::vector<FaultPlan> plans;
  plans.reserve(config.experiments);
  for (u32 i = 0; i < config.experiments; ++i) {
    plans.push_back(sample_plan(rng, config.space));
  }

  // Fork-from-checkpoint: every cycle-triggered experiment replays the
  // identical fault-free prefix up to its trigger. Run that prefix once
  // — to the earliest trigger any sampled plan uses — snapshot it, and
  // let those experiments resume from the image. The image never feeds
  // count-triggered plans (their faults arm at build and count traffic
  // from cycle 0) and never appears in the report, which stays
  // byte-identical with forking on or off.
  std::vector<unsigned char> fork_image;
  bool have_fork = false;
  if (config.fork) {
    Cycle earliest = 0;
    for (const FaultPlan& plan : plans) {
      if (plan.trigger != TriggerKind::kCycle) continue;
      if (earliest == 0 || plan.trigger_value < earliest) {
        earliest = plan.trigger_value;
      }
    }
    if (earliest > 1 && earliest < config.max_cycles) {
      if (auto base = factory(nullptr); base.ok()) {
        sim::SimSystem system = std::move(base).value();
        Cycle fork_cycle = earliest;
        if (const core::ManyCoreEngine* engine = system.machine_engine()) {
          // Machine rounds transfer the cross-links at quantum
          // barriers. Snapshot on a barrier, so the resumed run's
          // rounds fall on the same cycles an unforked run's would.
          fork_cycle = earliest - earliest % engine->quantum();
        }
        // The prefix must still be running at the fork point; a base
        // that halts or faults first makes forking pointless (every
        // faulted run reaches the same terminal state before firing).
        if (fork_cycle > 1 &&
            system.run(fork_cycle) == core::StopReason::kCycleLimit) {
          fork_image = system.snapshot();
          have_fork = true;
        }
      }
    }
  }

  report.results.resize(plans.size());
  {
    sim::ThreadPool pool(config.threads);
    const GoldenReference& reference = golden.value();
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const std::vector<unsigned char>* image =
          have_fork && plans[i].trigger == TriggerKind::kCycle ? &fork_image
                                                               : nullptr;
      pool.submit([&, i, image] {
        report.results[i] = run_experiment(factory, extract, plans[i],
                                           reference, config.max_cycles,
                                           image);
      });
    }
    pool.wait_idle();
  }

  for (const ExperimentResult& row : report.results) {
    if (!row.error.empty()) {
      ++report.build_failures;
      continue;
    }
    const auto slot = static_cast<std::size_t>(row.outcome);
    ++report.outcome_totals[slot];
    ++report.by_site[site_name(row.plan.site)][slot];
    ++report.by_mode[mode_name(row.plan.mode)][slot];
  }
  return report;
}

}  // namespace mbcosim::fault
