// fault::Campaign: a Monte Carlo fault-injection campaign. One seeded
// RNG samples N FaultPlans from a PlanSpace, each plan becomes one
// fault::Experiment against a shared golden reference, and the
// experiments fan out on a sim::ThreadPool (every SimSystem is
// self-contained, so experiments are embarrassingly parallel). The
// report — outcome totals plus per-site and per-mode histograms — is
// the design's vulnerability profile, the co-simulation analog of a
// radiation-test SEU cross-section table.
//
// Determinism contract: all N plans are drawn up front from Rng(seed)
// on the calling thread, results land in pre-sized rows indexed by
// experiment number, and the JSON report is rendered in index order
// after the pool drains — so the same (seed, experiments, space)
// produces a byte-identical report at any worker count.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "fault/experiment.hpp"
#include "fault/fault_plan.hpp"

namespace mbcosim::fault {

struct CampaignConfig {
  u64 seed = 1;               ///< samples the plan list (and nothing else)
  u32 experiments = 100;      ///< number of sampled plans / experiments
  unsigned threads = 0;       ///< worker threads; 0 = hardware concurrency
  Cycle max_cycles = Cycle{1} << 24;  ///< per-run budget (hang bound)
  /// Fork-from-checkpoint acceleration: run the fault-free base once to
  /// just before the earliest cycle trigger, snapshot it, and start
  /// every cycle-triggered experiment from that image instead of from
  /// cycle 0. Cycle-triggered plans are inert until their trigger (the
  /// injector arms nothing component-level beforehand), so the shared
  /// prefix is bit-identical to each experiment's own — the report is
  /// byte-for-byte the same with forking on or off, only faster.
  /// Count-triggered experiments always run the full path.
  bool fork = true;
  PlanSpace space;
};

struct CampaignReport {
  u64 seed = 0;
  Cycle golden_cycles = 0;
  std::vector<ExperimentResult> results;  ///< one row per plan, in order
  std::array<u32, 4> outcome_totals{};    ///< indexed by Outcome
  u32 build_failures = 0;                 ///< rows with a nonempty error
  /// "site/mode" -> per-outcome counts, e.g. by_site["mem"][kSdc].
  std::map<std::string, std::array<u32, 4>> by_site;
  std::map<std::string, std::array<u32, 4>> by_mode;

  [[nodiscard]] u32 total(Outcome outcome) const noexcept {
    return outcome_totals[static_cast<std::size_t>(outcome)];
  }
  /// The full vulnerability report as pretty-printed JSON. Deterministic:
  /// byte-identical for identical campaign inputs.
  [[nodiscard]] std::string to_json() const;
};

/// Run the campaign: golden run first (its failure is the returned
/// error), then `experiments` sampled plans on `threads` workers.
[[nodiscard]] Expected<CampaignReport> run_campaign(
    const CampaignConfig& config, const SystemFactory& factory,
    const OutputExtractor& extract);

}  // namespace mbcosim::fault
