// FaultPlan: the deterministic description of one fault to inject into a
// simulated system. A plan says *where* (site: guest BRAM, the GPR file,
// an FSL channel, the OPB bus), *what* (mode: bit flips, corrupted /
// dropped / duplicated words, stuck handshake flags, bus error or
// timeout) and *when* (trigger: a simulated cycle, a PC match, or the
// N-th operation at the site). Everything a plan leaves open — which
// bit flips, which address is hit — is derived from the plan's own seed,
// so re-running the same plan reproduces the same fault bit-for-bit.
//
// Plans are the unit of work of fault::Campaign: a seeded RNG samples N
// plans from a PlanSpace (the set of sites/modes/trigger windows that
// make sense for one design) and each plan becomes one experiment.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::fault {

/// Where the fault lands.
enum class FaultSite : u8 {
  kMemory,     ///< LMB BRAM word (models a configuration/data SEU)
  kRegister,   ///< one GPR of the processor
  kFslToHw,    ///< processor -> hardware FSL channel
  kFslFromHw,  ///< hardware -> processor FSL channel
  kOpb,        ///< the memory-mapped OPB bus
};

/// What happens at the site.
enum class FaultMode : u8 {
  // Memory / register modes.
  kBitFlip,        ///< XOR one seed-chosen bit
  kMultiBitFlip,   ///< XOR several seed-chosen bits (MBU)
  // FSL stream modes (one word in flight is affected).
  kCorruptWord,    ///< XOR the payload with a seed-chosen mask
  kDropWord,       ///< the word is silently lost on the link
  kDuplicateWord,  ///< the word arrives twice
  kFlipControl,    ///< the control bit is inverted
  // FSL handshake-flag modes (persistent stuck-at faults).
  kStuckFull,      ///< In#_full stuck high: every write refused
  kStuckEmpty,     ///< Out#_exists stuck low: reads never see data
  // OPB modes (one transaction is affected).
  kBusError,       ///< slave error acknowledge
  kBusTimeout,     ///< arbiter watchdog timeout (extra wait states)
};

/// When the fault fires.
enum class TriggerKind : u8 {
  kCycle,  ///< at the first stopping point at/after simulated cycle N
  kPc,     ///< when the processor is about to execute PC == N
  kCount,  ///< at the N-th operation at the site (FSL write / OPB access)
};

[[nodiscard]] const char* site_name(FaultSite site) noexcept;
[[nodiscard]] const char* mode_name(FaultMode mode) noexcept;
[[nodiscard]] const char* trigger_name(TriggerKind kind) noexcept;

struct FaultPlan {
  u64 seed = 1;  ///< derives the open parameters (bit choice, mask)
  TriggerKind trigger = TriggerKind::kCycle;
  u64 trigger_value = 0;  ///< cycle number, PC address, or operation count
  FaultSite site = FaultSite::kMemory;
  FaultMode mode = FaultMode::kBitFlip;
  Addr address = 0;      ///< target byte address (kMemory; word-aligned use)
  unsigned reg = 1;      ///< target GPR (kRegister; r0 is hardwired zero)
  unsigned channel = 0;  ///< FSL channel id (kFslToHw / kFslFromHw)
  Word mask = 0;         ///< XOR mask; 0 = derive from `seed`
  /// Core the fault lands on, by machine-description index. 0 — the
  /// only core — on single-core systems; sim::SimSystem rejects plans
  /// addressing a core the machine does not have.
  unsigned core = 0;

  /// The XOR mask this plan actually applies: `mask` when nonzero,
  /// otherwise derived deterministically from `seed` (one bit for
  /// kBitFlip/kCorruptWord/..., 2-4 bits for kMultiBitFlip).
  [[nodiscard]] Word effective_mask() const noexcept;

  /// Spec-string round trip of parse_plan ("site=mem,mode=bitflip,...").
  [[nodiscard]] std::string to_spec() const;
  /// One-line human-readable description.
  [[nodiscard]] std::string to_string() const;
};

/// Check site/mode/trigger consistency (e.g. kStuckFull needs an FSL
/// site and a cycle/pc trigger; kBitFlip needs memory or a register).
/// Returns ok, or a failure explaining the inconsistency.
[[nodiscard]] Status validate_plan(const FaultPlan& plan);

/// Parse a plan from its comma-separated key=value spec, e.g.
///   site=mem,mode=bitflip,cycle=1000,addr=0x120
///   site=fsl-to-hw,mode=drop,count=3,chan=0
///   site=opb,mode=timeout,count=1
///   site=reg,mode=multibitflip,pc=0x48,reg=5,mask=0x11
/// Exactly one of cycle=/pc=/count= selects the trigger. Unset fields
/// keep their defaults; `seed` seeds the derived parameters. The parsed
/// plan is validated before being returned.
[[nodiscard]] Expected<FaultPlan> parse_plan(const std::string& spec,
                                             u64 seed = 1);

/// The sampling space of a campaign: which sites exist in the design and
/// the windows the triggers are drawn from. sample_plan() consumes a
/// deterministic number of RNG draws per call, so a campaign's plan list
/// is a pure function of (campaign seed, experiment count, space).
struct PlanSpace {
  Addr mem_base = 0;  ///< data region targeted by memory faults
  u32 mem_bytes = 0;  ///< 0 disables the memory site
  unsigned registers = 32;  ///< GPRs r1..registers-1 targeted; <2 disables
  std::vector<unsigned> to_hw_channels;    ///< FSL links with CPU->HW traffic
  std::vector<unsigned> from_hw_channels;  ///< FSL links with HW->CPU traffic
  bool opb = false;                        ///< an OPB bus is attached
  /// Cycle triggers are drawn from [min, max]. Raising `min` models a
  /// vulnerability window late in the workload — and directly lengthens
  /// the fault-free prefix a forking campaign shares across experiments
  /// (fault::run_campaign snapshots just before the earliest trigger).
  Cycle min_trigger_cycle = 1;
  Cycle max_trigger_cycle = 0;   ///< cycle triggers drawn from [min, max]
  u64 max_trigger_count = 32;    ///< count triggers drawn from [0, max)
};

/// Draw one random-but-reproducible plan. Throws SimError when the
/// space enables no site at all or max_trigger_cycle is 0.
[[nodiscard]] FaultPlan sample_plan(Rng& rng, const PlanSpace& space);

}  // namespace mbcosim::fault
