#include "fault/injector.hpp"

#include <cstdio>

namespace mbcosim::fault {

namespace {

std::string hex32(u32 value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%x", value);
  return buffer;
}

[[nodiscard]] fsl::FslChannel* select_channel(const FaultPlan& plan,
                                              fsl::FslHub* hub) {
  if (hub == nullptr) return nullptr;
  return plan.site == FaultSite::kFslToHw ? &hub->to_hw(plan.channel)
                                          : &hub->from_hw(plan.channel);
}

[[nodiscard]] fsl::FslFaultControls stream_controls(const FaultPlan& plan,
                                                    u64 countdown) {
  fsl::FslFaultControls controls;
  switch (plan.mode) {
    case FaultMode::kCorruptWord:
      controls.stream = fsl::FslFaultControls::Stream::kCorrupt;
      controls.mask = plan.effective_mask();
      break;
    case FaultMode::kDropWord:
      controls.stream = fsl::FslFaultControls::Stream::kDrop;
      break;
    case FaultMode::kDuplicateWord:
      controls.stream = fsl::FslFaultControls::Stream::kDuplicate;
      break;
    case FaultMode::kFlipControl:
      controls.stream = fsl::FslFaultControls::Stream::kFlipControl;
      break;
    default:
      break;
  }
  controls.countdown = countdown;
  return controls;
}

}  // namespace

void Injector::arm(fsl::FslHub* hub, bus::OpbBus* opb) {
  if (plan_.trigger != TriggerKind::kCount) return;
  switch (plan_.site) {
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw: {
      fsl::FslChannel* channel = select_channel(plan_, hub);
      if (channel == nullptr) {
        detail_ = "no FSL hub: " + plan_.to_string() + " cannot arm";
        return;
      }
      channel->arm_fault(stream_controls(plan_, plan_.trigger_value));
      detail_ = "armed on " + channel->name() + ": " + plan_.to_string();
      break;
    }
    case FaultSite::kOpb: {
      if (opb == nullptr) {
        detail_ = "no OPB bus: " + plan_.to_string() + " cannot arm";
        return;
      }
      bus::OpbFaultControls controls;
      controls.mode = plan_.mode == FaultMode::kBusError
                          ? bus::OpbFaultControls::Mode::kError
                          : bus::OpbFaultControls::Mode::kTimeout;
      controls.countdown = plan_.trigger_value;
      opb->arm_fault(controls);
      detail_ = "armed on opb: " + plan_.to_string();
      break;
    }
    case FaultSite::kMemory:
    case FaultSite::kRegister:
      // validate_plan rejects count triggers for state flips.
      break;
  }
  engaged_ = true;
  applied_ = true;
}

void Injector::fire(iss::Processor& cpu, fsl::FslHub* hub, bus::OpbBus* opb,
                    obs::TraceBus* trace) {
  engaged_ = true;
  switch (plan_.site) {
    case FaultSite::kMemory: {
      const Addr addr = plan_.address & ~Addr{3};
      if (!cpu.memory().contains(addr, 4)) {
        detail_ = "masked: address " + hex32(plan_.address) +
                  " is outside the LMB memory";
        break;
      }
      const Word mask = plan_.effective_mask();
      const Word before = cpu.memory().read_word(addr);
      cpu.memory().write_word(addr, before ^ mask);
      // The flip may have landed on instruction memory: force a
      // re-decode exactly like a self-modifying store would.
      cpu.invalidate_predecode(addr);
      applied_ = true;
      detail_ = "flipped mem[" + hex32(addr) + "] " + hex32(before) +
                " -> " + hex32(before ^ mask);
      break;
    }
    case FaultSite::kRegister: {
      const Word mask = plan_.effective_mask();
      const Word before = cpu.reg(plan_.reg);
      cpu.set_reg(plan_.reg, before ^ mask);
      applied_ = true;
      detail_ = "flipped r" + std::to_string(plan_.reg) + " " +
                hex32(before) + " -> " + hex32(before ^ mask);
      break;
    }
    case FaultSite::kFslToHw:
    case FaultSite::kFslFromHw: {
      fsl::FslChannel* channel = select_channel(plan_, hub);
      if (channel == nullptr) {
        detail_ = "masked: no FSL hub to inject into";
        break;
      }
      if (plan_.mode == FaultMode::kStuckFull ||
          plan_.mode == FaultMode::kStuckEmpty) {
        fsl::FslFaultControls controls;
        controls.stuck_full = plan_.mode == FaultMode::kStuckFull;
        controls.stuck_empty = plan_.mode == FaultMode::kStuckEmpty;
        channel->arm_fault(controls);
        applied_ = true;
        detail_ = std::string(mode_name(plan_.mode)) + " on " +
                  channel->name();
      } else {
        // Cycle-triggered stream fault: hit the next word in flight.
        channel->arm_fault(stream_controls(plan_, 0));
        applied_ = true;
        detail_ = "armed next-write " + std::string(mode_name(plan_.mode)) +
                  " on " + channel->name();
      }
      break;
    }
    case FaultSite::kOpb: {
      if (opb == nullptr) {
        detail_ = "masked: no OPB bus to inject into";
        break;
      }
      bus::OpbFaultControls controls;
      controls.mode = plan_.mode == FaultMode::kBusError
                          ? bus::OpbFaultControls::Mode::kError
                          : bus::OpbFaultControls::Mode::kTimeout;
      controls.countdown = 0;
      opb->arm_fault(controls);
      applied_ = true;
      detail_ = "armed next-transaction " +
                std::string(mode_name(plan_.mode)) + " on opb";
    }
  }
  emit_inject(trace, cpu.cycle());
}

void Injector::emit_inject(obs::TraceBus* trace, Cycle cycle) const {
  if (trace == nullptr || !trace->enabled()) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::kFaultInject;
  event.cycle = cycle;
  event.label = mode_name(plan_.mode);
  event.detail = detail_.c_str();
  trace->emit(event);
}

}  // namespace mbcosim::fault
