// SimSystem: the single-entry facade over the high-level co-simulation
// environment. The unit of construction is a declarative machine
// description (machine::MachineDesc): one or more soft processors, the
// peripherals on their FSL channels, and the cross-core FSL links. One
// SimSystem owns everything the described machine needs — per core the
// assembled program, the LMB BRAM, the FSL hub, the cycle-accurate
// processor, the sysgen hardware model and the lock-step CoSimEngine;
// for multi-core machines also the core::ManyCoreEngine that advances
// the cores in deterministic parallel quanta:
//
//   auto desc = machine::MachineDesc::from_file("machines/farm.json");
//   auto built = sim::SimSystem::Builder()
//                    .machine(std::move(desc).value())
//                    .workers(4)                      // host threads
//                    .build();                        // Expected<SimSystem>
//   sim::SimSystem system = std::move(built).value();
//   system.run();
//
// The historical single-core surface is a thin preset over the same
// machinery and remains fully supported (deprecated in spirit, not in
// ABI): program()/hardware()/bind_fsl() describe the one core of a
// machine::MachineDesc::single_core machine, and their outputs — stats,
// traces, waveforms — are byte-identical to earlier releases:
//
//   auto built = sim::SimSystem::Builder()
//                    .program(source)                 // MB32 assembly
//                    .hardware(std::move(model))      // or a factory
//                    .bind_fsl(0, gateways)
//                    .build();
//
// Construction problems (missing program, assembly errors, bad FSL
// bindings, invalid machine topologies) come back through the Expected
// error channel instead of throwing from deep inside component
// constructors, so a design-space sweep can report a broken
// configuration point and keep going. Machine-description problems keep
// their stable "[code]" prefixes (machine::kDescErrorCodes).
//
// Thread-safety contract: a SimSystem is self-contained. Different
// SimSystem instances share no mutable state, so any number of them may
// run concurrently on different threads (this is what sim::Sweep does);
// one instance must never be touched from two threads at once. A
// multi-core run uses worker threads *internally*, but every simulated
// component is only ever touched by one thread between barriers, and
// results are byte-identical at every worker count.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asm/program.hpp"
#include "bus/opb_bus.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "core/cosim_engine.hpp"
#include "core/manycore.hpp"
#include "energy/energy_model.hpp"
#include "estimate/estimator.hpp"
#include "fault/fault_plan.hpp"
#include "fsl/fsl_channel.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/processor.hpp"
#include "machine/machine_desc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_bus.hpp"
#include "rsp/server.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::fault {
class Injector;
}  // namespace mbcosim::fault

namespace mbcosim::sim {

/// The FSL-facing gateways of one hardware peripheral on one channel —
/// the slave side (processor -> hardware) and/or the master side
/// (hardware -> processor). Unused pointers stay null: a peripheral may
/// bind only one direction. Required when any slave gateway is set:
/// s_data, s_exists, s_read; required for the master side: m_data,
/// m_write.
struct FslGateways {
  sysgen::GatewayIn* s_data = nullptr;     ///< FSL_S_Data
  sysgen::GatewayIn* s_exists = nullptr;   ///< FSL_S_Exists
  sysgen::GatewayIn* s_control = nullptr;  ///< FSL_S_Control (optional)
  sysgen::GatewayOut* s_read = nullptr;    ///< FSL_S_Read ack
  sysgen::GatewayOut* m_data = nullptr;    ///< FSL_M_Data
  sysgen::GatewayOut* m_control = nullptr; ///< FSL_M_Control (optional)
  sysgen::GatewayOut* m_write = nullptr;   ///< FSL_M_Write
  sysgen::GatewayIn* m_full = nullptr;     ///< FSL_M_Full (optional)

  [[nodiscard]] bool has_slave() const noexcept {
    return s_data != nullptr || s_exists != nullptr || s_control != nullptr ||
           s_read != nullptr;
  }
  [[nodiscard]] bool has_master() const noexcept {
    return m_data != nullptr || m_control != nullptr || m_write != nullptr ||
           m_full != nullptr;
  }
};

/// A hardware model together with its FSL channel bindings — what a
/// hardware factory hands to the builder (the factory form exists so a
/// sweep can stamp out one fresh model per configuration point).
struct HardwareBundle {
  struct ChannelBinding {
    unsigned channel = 0;
    FslGateways io;
  };
  std::unique_ptr<sysgen::Model> model;
  std::vector<ChannelBinding> channels;
  /// Quiescence fast-forward window this peripheral is safe with (an
  /// upper bound on its pipeline drain time); 0 = never fast-forward.
  /// Used by the machine-description build path, where no explicit
  /// Builder::quiescence call exists per core.
  Cycle quiescence = 0;
};

using HardwareFactory = std::function<HardwareBundle()>;

class SimSystem {
 public:
  class Builder;

  SimSystem(SimSystem&&) noexcept;
  SimSystem& operator=(SimSystem&&) noexcept;
  SimSystem(const SimSystem&) = delete;
  SimSystem& operator=(const SimSystem&) = delete;
  ~SimSystem();

  /// Run until the software halts, an architectural error occurs, the
  /// deadlock heuristic fires, or the cycle budget runs out. The system
  /// is reset at build time; call reset() before re-running.
  core::StopReason run(Cycle max_cycles = Cycle{1} << 36);

  /// Reset processor, hardware model and FIFOs back to the program entry.
  void reset();

  /// Combined statistics (hardware/bridge fields are zero for a
  /// software-only system).
  [[nodiscard]] core::CoSimStats stats() const;

  /// Superblock-tier counters summed over every core (all zero below
  /// iss::ExecTier::kDbt or while the precise fallback is active).
  [[nodiscard]] iss::DbtStats dbt_stats() const;

  /// Host wall-clock seconds spent inside the most recent run() loop —
  /// the quantity Table I's simulation-time comparison uses.
  [[nodiscard]] double run_wall_seconds() const noexcept;

  /// Rapid resource estimate of the whole design (paper Section III-C):
  /// processor + peripheral + FSL links + program BRAMs.
  [[nodiscard]] estimate::ResourceReport resource_report() const;

  /// Rapid energy estimate of the finished run (paper Section V).
  [[nodiscard]] energy::EnergyReport energy_report() const;
  /// Same, reusing an already-computed implemented-resource vector.
  [[nodiscard]] energy::EnergyReport energy_report(
      const ResourceVec& implemented) const;

  /// Aggregated observability metrics of the run so far. Empty unless
  /// the system was built with Builder::metrics().
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// The observability bus every component of this system reports into.
  /// Carries no sinks (and costs one branch per would-be event) unless
  /// the builder attached some.
  [[nodiscard]] obs::TraceBus& trace_bus() noexcept;

  // -- component access ------------------------------------------------
  // The no-index accessors refer to core 0 — for a single-core machine
  // (every legacy build) that is the whole system, which keeps all
  // historical call sites working unchanged.
  [[nodiscard]] iss::Processor& cpu() noexcept;
  [[nodiscard]] const iss::Processor& cpu() const noexcept;
  [[nodiscard]] iss::LmbMemory& memory() noexcept;
  [[nodiscard]] const iss::LmbMemory& memory() const noexcept;
  [[nodiscard]] const assembler::Program& program() const noexcept;
  /// Hardware model; nullptr for a software-only system.
  [[nodiscard]] sysgen::Model* hardware() noexcept;
  [[nodiscard]] const sysgen::Model* hardware() const noexcept;
  /// Co-simulation engine; nullptr for a software-only system.
  [[nodiscard]] core::CoSimEngine* engine() noexcept;
  /// The processor's FSL channel hub (always present).
  [[nodiscard]] fsl::FslHub& fsl_hub() noexcept;
  /// Memory-mapped OPB bus; nullptr unless Builder::opb attached one.
  [[nodiscard]] bus::OpbBus* opb() noexcept;

  // -- machine (multi-core) access -------------------------------------
  /// Number of cores in the machine (1 for every legacy build).
  [[nodiscard]] std::size_t core_count() const noexcept;
  /// Name of core `index` as declared in the machine description.
  [[nodiscard]] const std::string& core_name(std::size_t index) const;
  /// Per-core accessors (index must be < core_count()).
  [[nodiscard]] iss::Processor& cpu(std::size_t index);
  [[nodiscard]] const assembler::Program& program(std::size_t index) const;
  /// Statistics of one core alone (stats() aggregates the machine).
  [[nodiscard]] core::CoSimStats core_stats(std::size_t index) const;
  /// Observability bus of core `index` (trace_bus() is core 0's).
  [[nodiscard]] obs::TraceBus& trace_bus(std::size_t index);
  /// The machine-level engine; nullptr for single-core systems, which
  /// run through their lone CoSimEngine exactly as before.
  [[nodiscard]] core::ManyCoreEngine* machine_engine() noexcept;
  /// Core a terminal StopReason of the last run() refers to — the
  /// culprit for kIllegal/kDeadlock, the last core to halt for kHalted;
  /// core::MachineStop::kNoCore when no core is attributable. 0 for
  /// single-core systems.
  [[nodiscard]] std::size_t stop_core() const noexcept;
  /// The machine description this system was built from (synthesized
  /// for legacy single-core builds).
  [[nodiscard]] const machine::MachineDesc& machine_desc() const noexcept;
  /// Address of a symbol in core `index`'s program / the `word_index`-th
  /// word of the array there (throws SimError if undefined).
  [[nodiscard]] Addr symbol_on(std::size_t index, const std::string& name) const;
  [[nodiscard]] Word word_on(std::size_t index, const std::string& name,
                             u32 word_index = 0) const;

  // -- fault injection -------------------------------------------------
  /// Arm (or replace) a fault plan on the running system. Count-
  /// triggered faults install into the target component immediately;
  /// cycle/pc-triggered faults fire at the trigger point of the next
  /// run() — unless `immediate`, which fires them right now at the
  /// current stop (the RSP `monitor fault` semantics).
  [[nodiscard]] Status arm_fault(const fault::FaultPlan& plan,
                                 bool immediate = false);
  /// The armed injector, or nullptr when the system runs fault-free.
  [[nodiscard]] const fault::Injector* fault_injector() const noexcept;

  /// Diagnosis of the most recent StopReason::kDeadlock (engine or
  /// software-only run); empty until a deadlock has been detected.
  [[nodiscard]] std::optional<core::DeadlockDiagnosis> deadlock_diagnosis()
      const;

  /// First I/O failure reported by any attached trace sink (ok when
  /// none failed). Check after run() when the trace matters.
  [[nodiscard]] Status sink_status() const;

  // -- checkpoint / restore --------------------------------------------
  /// Serialize the full simulated machine into a sealed checkpoint image
  /// (ckpt on-disk format, DESIGN.md §11): every processor, memory, FSL
  /// FIFO, hardware model, OPB bus, lock-step engine and — multi-core —
  /// the machine engine's round progress. The image embeds a fingerprint
  /// of the machine description, so restoring into a differently-shaped
  /// system is rejected. Valid at any stopped point (between run()s,
  /// at a debugger stop, mid-machine-quantum after debug_step).
  [[nodiscard]] std::vector<unsigned char> snapshot() const;
  /// Restore a snapshot() image into this (identically-built) system.
  /// Failures come back with the stable "[code]" prefixes of
  /// ckpt::kCkptErrorCodes and leave the system in need of reset() —
  /// a partially-applied image is never silently run.
  [[nodiscard]] Status restore_image(const std::vector<unsigned char>& image);
  /// snapshot() straight to a file.
  [[nodiscard]] Status save_checkpoint(const std::string& path) const;
  /// restore_image() straight from a file.
  [[nodiscard]] Status restore(const std::string& path);
  /// Exact state of every per-core MetricsRegistry (empty blob when the
  /// system was built without Builder::metrics). A snapshot() image
  /// deliberately excludes observability state; session journals carry
  /// this blob next to the image so a recovered session's metrics page
  /// stays byte-identical to an uninterrupted run.
  [[nodiscard]] std::vector<unsigned char> metrics_state() const;
  /// Restore a metrics_state() blob; [ckpt-shape] when the blob was
  /// taken from a differently-shaped system, [ckpt-truncated] when it
  /// ends early.
  [[nodiscard]] Status restore_metrics_state(
      const std::vector<unsigned char>& state);

  // -- remote debug ----------------------------------------------------
  /// Serve one GDB Remote Serial Protocol session on 127.0.0.1:`port`
  /// (0 picks an ephemeral port). Blocks until the client detaches,
  /// kills the session or disconnects; continue/step advance the full
  /// co-simulation engine cycle-accurately. `on_listen`, if set, is
  /// called with the bound port before accepting — this is how a caller
  /// learns an ephemeral port (and when it is safe to connect).
  [[nodiscard]] Expected<rsp::SessionEnd> serve_gdb(
      u16 port, std::function<void(u16)> on_listen = {});
  /// Same, on the port configured with Builder::gdb_server.
  [[nodiscard]] Expected<rsp::SessionEnd> serve_gdb();

  /// Embedding hooks for serve_gdb_on: a listener whose late-arriving
  /// clients get a framed "E.srv-busy" rejection while the session is
  /// live, and an external cancellation flag that ends the session at
  /// the next packet/resume-quantum boundary. Both optional, both must
  /// outlive the call.
  struct GdbServeHooks {
    rsp::TcpListener* busy_listener = nullptr;
    const std::atomic<bool>* cancel = nullptr;
  };
  /// Serve one RSP session on an already-connected transport — the
  /// accept-free core of serve_gdb(), for embeddings that own the
  /// listener themselves (the simulation server's per-session debug
  /// ports, loopback tests). Blocks until the session ends.
  [[nodiscard]] Expected<rsp::SessionEnd> serve_gdb_on(
      rsp::Transport& transport, const GdbServeHooks& hooks);
  [[nodiscard]] Expected<rsp::SessionEnd> serve_gdb_on(
      rsp::Transport& transport) {
    return serve_gdb_on(transport, GdbServeHooks{});
  }
  /// Port configured with Builder::gdb_server, if any.
  [[nodiscard]] std::optional<u16> gdb_port() const noexcept;

  /// Address of a program symbol (throws SimError if undefined).
  [[nodiscard]] Addr symbol(const std::string& name) const;
  /// The `index`-th word of the array at program symbol `name`.
  [[nodiscard]] Word word(const std::string& name, u32 index = 0) const;

 private:
  struct State;
  explicit SimSystem(std::unique_ptr<State> state);

  core::StopReason run_software_only(Cycle max_cycles);
  /// Fault-free dispatch: machine engine or lone-core segment.
  core::StopReason run_unfaulted(Cycle max_cycles);
  /// run_unfaulted chunked at Builder::checkpoint_every boundaries,
  /// writing "<prefix>NNNNNN.ckpt" at each one.
  core::StopReason run_checkpointed(Cycle max_cycles);
  /// Engine or software-only run, without the wall-clock / flush
  /// bookkeeping of run() (used for the segments of a faulted run).
  core::StopReason run_segment(Cycle max_cycles);
  /// Run-to-trigger, fire the injection, continue — the orchestration
  /// of a cycle/pc point-triggered fault plan.
  core::StopReason run_faulted(Cycle max_cycles);
  /// Same orchestration for the multi-core engine (cycle triggers only).
  core::StopReason run_machine_faulted(Cycle max_cycles);

  std::unique_ptr<State> state_;
};

/// Builder for SimSystem. Every setter returns *this for chaining;
/// build() consumes the builder and reports all configuration problems
/// through Expected instead of throwing.
class SimSystem::Builder {
 public:
  /// Build from a declarative machine description — the primary entry
  /// point. Core programs, memory sizes, FIFO depth, peripherals (via
  /// the PeripheralRegistry) and cross-core links all come from the
  /// description; mixing machine() with the per-core setters below
  /// (program/hardware/bind_fsl/opb/custom_instruction/cpu_config/
  /// memory_bytes/fifo_depth/quiescence/predecode/exec_tier) is a
  /// build() error.
  Builder& machine(machine::MachineDesc desc);
  /// Host worker threads for multi-core rounds (0 = one per hardware
  /// thread; ignored for single-core machines). Results are identical
  /// at every worker count.
  Builder& workers(unsigned count);
  /// Core serve_gdb() attaches the debugger to (default 0).
  Builder& gdb_core(std::size_t index);

  /// MB32 assembly source, assembled at build() time.
  Builder& program(std::string_view source);
  /// Pre-assembled image (overrides a previously-set source and vice
  /// versa: the last program() call wins).
  Builder& program(assembler::Program image);

  Builder& cpu_config(const isa::CpuConfig& config);
  /// LMB BRAM size (default 64 KiB).
  Builder& memory_bytes(u32 bytes);
  /// Depth of every FSL FIFO (default fsl::FslChannel::kDefaultDepth).
  Builder& fifo_depth(std::size_t depth);

  /// Attach a hardware model built elsewhere; bind its gateways with
  /// bind_fsl(). Mutually exclusive with the factory overload.
  Builder& hardware(std::unique_ptr<sysgen::Model> model);
  /// Attach a factory producing the model plus its channel bindings;
  /// invoked (and its SimError caught) at build() time.
  Builder& hardware(HardwareFactory factory);

  /// Bind peripheral gateways onto FSL channel `channel`.
  Builder& bind_fsl(unsigned channel, const FslGateways& io);

  /// Enable/disable the processor's predecode cache and batched fast
  /// path (default: enabled). Disabling restores decode-per-step
  /// execution — the `--no-predecode` A/B baseline; simulated cycle
  /// counts and statistics are identical either way.
  Builder& predecode(bool enabled);

  /// Select the processor execution tier (default iss::ExecTier::kDbt;
  /// see DESIGN.md §12). Subsumes predecode(): kPrecise ==
  /// predecode(false). Simulated cycle counts and statistics are
  /// bit-identical across tiers.
  Builder& exec_tier(iss::ExecTier tier);

  /// Quiescence fast-forward window in cycles (0 = disabled); see
  /// CoSimEngine::set_quiescence_window.
  Builder& quiescence(Cycle drain_cycles);
  /// Consecutive blocked cycles with no FIFO movement before run()
  /// reports StopReason::kDeadlock.
  Builder& deadlock_threshold(Cycle threshold);

  /// Install a Nios-style custom instruction in `slot` (0..7).
  Builder& custom_instruction(unsigned slot, iss::CustomInstruction unit);

  /// Attach a memory-mapped OPB bus (with its peripherals already
  /// mapped); data accesses outside the LMB memory decode on it.
  Builder& opb(std::unique_ptr<bus::OpbBus> bus);

  /// Arm a fault plan: the fault fires during run() at the plan's
  /// trigger. build() fails on an inconsistent plan (validate_plan).
  /// Without this call the system is bit-identical to a fault-free
  /// build — no hook is armed anywhere.
  Builder& fault(const fault::FaultPlan& plan);

  // -- observability ---------------------------------------------------
  /// Stream every simulation event as one JSON object per line into
  /// `path`. build() fails if the file cannot be opened.
  Builder& trace(std::string path);
  /// Dump a GTKWave-compatible value-change waveform of the run into
  /// `path`. build() fails if the file cannot be opened.
  Builder& vcd(std::string path);
  /// Aggregate events into counters and histograms, readable after (or
  /// during) the run via SimSystem::metrics_snapshot().
  Builder& metrics();
  /// Attach an arbitrary extra sink (e.g. a JsonlSink over a string
  /// stream in a test).
  Builder& sink(std::unique_ptr<obs::TraceSink> sink);

  /// Configure the port SimSystem::serve_gdb() (no-argument form) will
  /// listen on; 0 picks an ephemeral port. Build-time configuration
  /// only — the socket opens when serve_gdb is called.
  Builder& gdb_server(u16 port);

  /// Write a checkpoint every `interval` simulated cycles during run():
  /// "<path_prefix>NNNNNN.ckpt", numbered from 0. The run is chunked at
  /// checkpoint boundaries, which restarts the deadlock-streak counters
  /// there (see DESIGN.md §11); cycle counts and results are otherwise
  /// identical. 0 disables periodic checkpoints. Ignored while a fault
  /// plan drives the run (the campaign engine owns its own snapshots).
  Builder& checkpoint_every(Cycle interval, std::string path_prefix);

  /// Assemble, construct and wire everything; leaves the system reset at
  /// the program entry. All errors come back as Expected failures.
  [[nodiscard]] Expected<SimSystem> build();

 private:
  std::optional<machine::MachineDesc> machine_;
  unsigned workers_ = 0;
  std::size_t gdb_core_ = 0;
  /// Name of the first value-typed per-core setter that was called
  /// (cpu_config/memory_bytes/...), for the machine() contradiction
  /// diagnostic — these have in-band defaults, so a flag must record
  /// that the caller touched them.
  const char* single_core_setter_ = nullptr;
  std::optional<std::string> source_;
  std::optional<assembler::Program> image_;
  isa::CpuConfig cpu_config_{};
  u32 memory_bytes_ = 64 * 1024;
  std::size_t fifo_depth_ = fsl::FslChannel::kDefaultDepth;
  std::unique_ptr<sysgen::Model> model_;
  HardwareFactory factory_;
  std::vector<HardwareBundle::ChannelBinding> bindings_;
  bool predecode_ = true;
  iss::ExecTier exec_tier_ = iss::ExecTier::kDbt;
  Cycle quiescence_ = 0;
  Cycle deadlock_threshold_ = 100'000;
  std::vector<std::pair<unsigned, iss::CustomInstruction>> custom_;
  std::unique_ptr<bus::OpbBus> opb_;
  std::optional<fault::FaultPlan> fault_plan_;
  std::optional<std::string> trace_path_;
  std::optional<std::string> vcd_path_;
  bool metrics_ = false;
  std::vector<std::unique_ptr<obs::TraceSink>> extra_sinks_;
  std::optional<u16> gdb_port_;
  Cycle checkpoint_interval_ = 0;
  std::string checkpoint_prefix_;
};

}  // namespace mbcosim::sim
