// PeripheralRegistry: the name -> hardware-factory table that lets a
// declarative machine description say `"type": "cordic"` and get the
// same sysgen model + FSL gateway bindings an explicit
// Builder::hardware() call would wire. Applications register their
// peripheral types once at startup (apps::register_machine_peripherals
// installs the built-ins) and SimSystem::Builder resolves
// machine::PeripheralDesc entries against the table at build() time.
//
// Registration must finish before builds start; lookups afterwards are
// const and safe from the concurrent builds of a sweep. Factories
// signal bad parameters by throwing SimError — the builder catches it
// and reports through its Expected channel, like hardware factories.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "machine/machine_desc.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::sim {

/// Builds one peripheral instance from its description (type-specific
/// parameters come from PeripheralDesc::params). May throw SimError.
using PeripheralFactory =
    std::function<HardwareBundle(const machine::PeripheralDesc&)>;

class PeripheralRegistry {
 public:
  /// The process-wide table the machine builder consults.
  static PeripheralRegistry& instance();

  /// Register a type; fails (without replacing) when the name is taken.
  Status add(const std::string& type, PeripheralFactory factory);

  /// Factory for `type`, or nullptr when unregistered.
  [[nodiscard]] const PeripheralFactory* find(const std::string& type) const;

  /// Registered type names, sorted (for diagnostics).
  [[nodiscard]] std::vector<std::string> types() const;

 private:
  std::map<std::string, PeripheralFactory> factories_;
};

}  // namespace mbcosim::sim
