// SimSystem::State — the private heap block behind the facade, shared
// between sim_system.cpp (construction, running) and sim_checkpoint.cpp
// (whole-system snapshot/restore). Not part of the public surface: only
// those two translation units may include this header.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/sim_system.hpp"

namespace mbcosim::fault {
class Injector;
}  // namespace mbcosim::fault

namespace mbcosim::sim {

// One soft processor with everything private to it: program, memory,
// FIFOs, peripheral model, lock-step engine and observability bus. All
// per-core state lives in one heap block so SimSystem stays movable
// while the internal references (Processor -> LmbMemory/FslHub,
// CoSimEngine -> Processor/Model/FslHub, TraceEvent::origin ->
// Core::name) stay stable. A single-core machine — which is what every
// legacy Builder call produces — is exactly one of these, and behaves
// byte-for-byte like the pre-machine SimSystem.
struct SimSystem::State {
  struct Core {
    Core(std::string core_name, assembler::Program p,
         const isa::CpuConfig& config, u32 mem_bytes, std::size_t fifo_depth,
         const std::string& hub_prefix)
        : name(std::move(core_name)),
          program(std::move(p)),
          cpu_config(config),
          memory(mem_bytes),
          hub(fifo_depth, hub_prefix),
          cpu(config, memory, &hub) {}

    std::string name;  ///< stable: TraceBus origin points at it
    assembler::Program program;
    isa::CpuConfig cpu_config;
    iss::LmbMemory memory;
    fsl::FslHub hub;
    iss::Processor cpu;
    std::unique_ptr<sysgen::Model> hardware;  ///< null for software-only
    std::optional<core::CoSimEngine> engine;  ///< engaged iff hardware
    std::unique_ptr<bus::OpbBus> opb;         ///< null unless Builder::opb
    unsigned fsl_links = 0;
    obs::TraceBus trace_bus;
    obs::MetricsRegistry* metrics = nullptr;  ///< owned by trace_bus if set
    /// Deadlock diagnosis of the software-only loop (the engine keeps
    /// its own); SimSystem::deadlock_diagnosis() merges them.
    std::optional<core::DeadlockDiagnosis> last_deadlock;
  };

  /// The estimator view of one core (its slice of the whole design).
  static estimate::SystemDescription describe(const Core& core) {
    estimate::SystemDescription description;
    description.cpu = core.cpu_config;
    description.fsl_links_used = core.fsl_links;
    description.peripheral = core.hardware.get();
    description.program = &core.program;
    for (unsigned slot = 0; slot < isa::kNumCustomSlots; ++slot) {
      if (const iss::CustomInstruction* unit =
              core.cpu.custom_instruction(slot)) {
        description.custom_instructions.push_back(unit->resources);
      }
    }
    return description;
  }

  std::vector<std::unique_ptr<Core>> cores;  ///< machine order, never empty
  machine::MachineDesc desc;                 ///< what this machine is
  /// Engaged iff cores.size() > 1; a lone core runs through its own
  /// CoSimEngine exactly as it always has.
  std::optional<core::ManyCoreEngine> machine_engine;
  std::size_t stop_core = 0;   ///< culprit of the last terminal stop
  std::size_t gdb_core = 0;    ///< Builder::gdb_core
  std::size_t fault_core = 0;  ///< FaultPlan::core of the armed plan
  Cycle deadlock_threshold = 100'000;
  double last_run_wall_seconds = 0.0;
  std::optional<u16> gdb_port;                ///< Builder::gdb_server
  std::unique_ptr<fault::Injector> injector;  ///< null = fault-free
  /// Builder::checkpoint_every — run() writes "<prefix>NNNNNN.ckpt"
  /// every `checkpoint_interval` cycles; 0 = disabled.
  Cycle checkpoint_interval = 0;
  std::string checkpoint_prefix;

  [[nodiscard]] Core& c0() noexcept { return *cores.front(); }
  [[nodiscard]] const Core& c0() const noexcept { return *cores.front(); }
};

}  // namespace mbcosim::sim
