// Whole-system snapshot/restore over the sealed ckpt format (DESIGN.md
// §11). Payload layout, all little-endian via ckpt::Writer:
//
//   u64 shape fingerprint   fnv1a(machine description JSON)
//   u64 core count          shape check against the built system
//   per core, in machine order:
//     cpu, memory, hub      component save_state payloads
//     bool has engine       + hardware model, engine (iff engaged)
//     bool has opb          + bus and peripheral payloads (iff attached)
//   bool has machine engine + round progress (iff multi-core)
//
// The fingerprint covers everything structural (core names, programs,
// peripherals, links, FIFO depth), so a stale or foreign image fails
// loudly with "[ckpt-shape]" instead of scrambling a lookalike machine.
// A fault *plan* is deliberately not part of the fingerprint: it lives
// in the injector, not the description, so a fault-free base image
// restores into the faulted forks of a campaign (fault::run_campaign).
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "sim/sim_state.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::sim {

namespace {

[[nodiscard]] u64 shape_fingerprint(const machine::MachineDesc& desc) {
  return ckpt::fnv1a(desc.to_json());
}

[[nodiscard]] Status shape_error(const std::string& detail) {
  return Status::failure(std::string(ckpt::kCkptErrorCodes[5]) + " " + detail);
}

}  // namespace

std::vector<unsigned char> SimSystem::snapshot() const {
  ckpt::Writer writer;
  writer.write_u64(shape_fingerprint(state_->desc));
  writer.write_u64(state_->cores.size());
  for (const auto& core : state_->cores) {
    core->cpu.save_state(writer);
    core->memory.save_state(writer);
    core->hub.save_state(writer);
    writer.write_bool(core->engine.has_value());
    if (core->engine) {
      core->hardware->save_state(writer);
      core->engine->save_state(writer);
    }
    writer.write_bool(core->opb != nullptr);
    if (core->opb) core->opb->save_state(writer);
  }
  writer.write_bool(state_->machine_engine.has_value());
  if (state_->machine_engine) state_->machine_engine->save_state(writer);
  return ckpt::seal(writer.buffer());
}

Status SimSystem::restore_image(const std::vector<unsigned char>& image) {
  Expected<std::vector<unsigned char>> payload = ckpt::unseal(image);
  if (!payload) return Status::failure(payload.error());
  ckpt::Reader reader(payload.value());

  const u64 fingerprint = reader.read_u64();
  if (fingerprint != shape_fingerprint(state_->desc)) {
    return shape_error(
        "checkpoint was taken on a different machine description");
  }
  if (reader.read_u64() != state_->cores.size()) {
    return shape_error("checkpoint core count does not match this machine");
  }
  for (auto& core : state_->cores) {
    const std::string prefix = "core '" + core->name + "': ";
    if (!core->cpu.load_state(reader)) {
      return shape_error(prefix + "processor state does not fit");
    }
    if (!core->memory.load_state(reader)) {
      return shape_error(prefix + "memory image does not fit");
    }
    if (!core->hub.load_state(reader)) {
      return shape_error(prefix + "FSL hub state does not fit");
    }
    if (reader.read_bool() != core->engine.has_value()) {
      return shape_error(prefix + "engine presence does not match");
    }
    if (core->engine) {
      if (!core->hardware->load_state(reader)) {
        return shape_error(prefix + "hardware model state does not fit");
      }
      if (!core->engine->load_state(reader)) {
        return shape_error(prefix + "engine state does not fit");
      }
    }
    if (reader.read_bool() != (core->opb != nullptr)) {
      return shape_error(prefix + "OPB bus presence does not match");
    }
    if (core->opb && !core->opb->load_state(reader)) {
      return shape_error(prefix + "OPB bus state does not fit");
    }
    core->last_deadlock.reset();
  }
  if (reader.read_bool() != state_->machine_engine.has_value()) {
    return shape_error("machine engine presence does not match");
  }
  if (state_->machine_engine &&
      !state_->machine_engine->load_state(reader)) {
    return shape_error("machine engine state does not fit");
  }
  if (!reader.ok()) {
    return Status::failure(std::string(ckpt::kCkptErrorCodes[3]) +
                           " checkpoint payload ends early");
  }
  if (reader.remaining() != 0) {
    return shape_error("checkpoint payload has trailing bytes");
  }
  state_->stop_core = 0;
  return {};
}

Status SimSystem::save_checkpoint(const std::string& path) const {
  return ckpt::write_file(path, snapshot());
}

std::vector<unsigned char> SimSystem::metrics_state() const {
  ckpt::Writer writer;
  writer.write_u32(static_cast<u32>(state_->cores.size()));
  for (const auto& core : state_->cores) {
    writer.write_bool(core->metrics != nullptr);
    if (core->metrics != nullptr) core->metrics->save_state(writer);
  }
  return writer.take();
}

Status SimSystem::restore_metrics_state(
    const std::vector<unsigned char>& state) {
  ckpt::Reader reader(state);
  const u32 cores = reader.read_u32();
  if (cores != state_->cores.size()) {
    return Status::failure(
        std::string(ckpt::kCkptErrorCodes[5]) + " metrics state covers " +
        std::to_string(cores) + " core(s), this system has " +
        std::to_string(state_->cores.size()));
  }
  for (const auto& core : state_->cores) {
    const bool present = reader.read_bool();
    if (present != (core->metrics != nullptr)) {
      return Status::failure(
          std::string(ckpt::kCkptErrorCodes[5]) +
          " metrics state does not match this system's metrics wiring");
    }
    if (present) core->metrics->load_state(reader);
  }
  if (!reader.ok()) {
    return Status::failure(std::string(ckpt::kCkptErrorCodes[3]) +
                           " metrics state ends early");
  }
  return {};
}

Status SimSystem::restore(const std::string& path) {
  Expected<std::vector<unsigned char>> image = ckpt::read_file(path);
  if (!image) return Status::failure(image.error());
  return restore_image(image.value());
}

SimSystem::Builder& SimSystem::Builder::checkpoint_every(
    Cycle interval, std::string path_prefix) {
  checkpoint_interval_ = interval;
  checkpoint_prefix_ = std::move(path_prefix);
  return *this;
}

}  // namespace mbcosim::sim
