// Parallel design-space-exploration sweep engine. A Sweep is an ordered
// list of configuration points; each point carries a factory that builds
// one fresh, independent SimSystem. run() executes every point — on a
// fixed pool of worker threads when asked — and collects the statistics
// plus the rapid resource/energy estimates into an order-stable result
// table. This is what makes the paper's headline use case (sweeping
// CORDIC pipeline depth, Fig. 5, and matmul block size, Fig. 7) fast:
// the points of a sweep are embarrassingly parallel because every
// SimSystem is self-contained.
//
// Failure isolation: a point whose factory fails (Expected error or
// exception) or whose simulation deadlocks reports its error /
// StopReason in its own result row and never poisons the other points.
//
// Determinism: the simulators are single-threaded and seed-determined,
// so the per-point results are bit-identical no matter how many worker
// threads the sweep uses or how the points interleave. The contract the
// caller must keep is the one SimSystem documents: factories must not
// share mutable state between points (capture inputs by value or as
// read-only data).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/resources.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/cosim_engine.hpp"
#include "energy/energy_model.hpp"
#include "obs/metrics.hpp"
#include "sim/sim_system.hpp"

namespace mbcosim::sim {

/// The worker pool now lives in common/thread_pool.hpp so the manycore
/// co-simulation engine (core::ManyCoreEngine) can share it; this alias
/// keeps the historical sim::ThreadPool spelling working.
using ThreadPool = mbcosim::ThreadPool;

/// One row of the sweep result table.
struct SweepPointResult {
  std::size_t index = 0;  ///< position in the sweep (results are ordered)
  std::string label;
  /// True when the point built and ran to a software halt. False rows
  /// carry the diagnosis: a non-empty `error` means the factory or the
  /// wiring failed (and `stop` is meaningless); an empty `error` means
  /// the simulation ran but stopped abnormally (`stop` says how, e.g.
  /// StopReason::kDeadlock for a deadlocked configuration).
  bool ok = false;
  std::string error;
  core::StopReason stop = core::StopReason::kCycleLimit;
  core::CoSimStats stats;
  ResourceVec estimated_resources;
  ResourceVec implemented_resources;
  energy::EnergyReport energy;
  /// Observability counters/histograms of the point's run; empty unless
  /// the factory built the system with SimSystem::Builder::metrics().
  obs::MetricsSnapshot metrics;
  double sim_wall_seconds = 0.0;  ///< host time inside the run() loop
  double wall_seconds = 0.0;      ///< host time for the whole point

  /// Simulated execution time at the paper's 50 MHz system clock.
  [[nodiscard]] double usec() const { return cycles_to_usec(stats.cycles); }
};

struct SweepOptions {
  unsigned threads = 0;  ///< worker threads; 0 = hardware concurrency
  Cycle max_cycles = Cycle{1} << 36;
  bool estimates = true; ///< collect resource/energy estimates per point
};

class Sweep {
 public:
  /// Builds the point's SimSystem; runs on a worker thread.
  using Factory = std::function<Expected<SimSystem>()>;
  /// Optional hook run after every simulation that built and ran —
  /// whatever its StopReason — while the point's SimSystem is still
  /// alive. Use it to pull application results out of the simulated
  /// memory, to veto `ok` on a wrong answer, or to inspect a deadlocked
  /// or trapped point (check `result.ok` / `result.stop` first when only
  /// clean halts matter). It does not run when the factory itself fails.
  using Collector = std::function<void(SimSystem&, SweepPointResult&)>;

  /// Append a configuration point; returns its index.
  std::size_t add(std::string label, Factory factory, Collector collect = {});

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Run every point and return one result row per point, in add()
  /// order regardless of thread interleaving.
  [[nodiscard]] std::vector<SweepPointResult> run(
      const SweepOptions& options = {}) const;

 private:
  struct Point {
    std::string label;
    Factory factory;
    Collector collect;
  };

  void run_point(const Point& point, const SweepOptions& options,
                 SweepPointResult& result) const;

  std::vector<Point> points_;
};

}  // namespace mbcosim::sim
