#include "sim/peripheral_registry.hpp"

#include <utility>

namespace mbcosim::sim {

PeripheralRegistry& PeripheralRegistry::instance() {
  static PeripheralRegistry registry;
  return registry;
}

Status PeripheralRegistry::add(const std::string& type,
                               PeripheralFactory factory) {
  if (type.empty() || !factory) {
    return Status::failure(
        "PeripheralRegistry: type name and factory must be non-empty");
  }
  if (!factories_.emplace(type, std::move(factory)).second) {
    return Status::failure("PeripheralRegistry: type '" + type +
                           "' is already registered");
  }
  return {};
}

const PeripheralFactory* PeripheralRegistry::find(
    const std::string& type) const {
  const auto it = factories_.find(type);
  return it == factories_.end() ? nullptr : &it->second;
}

std::vector<std::string> PeripheralRegistry::types() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace mbcosim::sim
