#include "sim/sweep.hpp"

#include <algorithm>
#include <utility>

#include "common/stopwatch.hpp"

namespace mbcosim::sim {

// ---------------------------------------------------------------------------
// Sweep

std::size_t Sweep::add(std::string label, Factory factory, Collector collect) {
  points_.push_back(
      Point{std::move(label), std::move(factory), std::move(collect)});
  return points_.size() - 1;
}

void Sweep::run_point(const Point& point, const SweepOptions& options,
                      SweepPointResult& result) const {
  Stopwatch watch;
  try {
    Expected<SimSystem> built = point.factory();
    if (!built) {
      result.error = built.error();
      result.wall_seconds = watch.elapsed_seconds();
      return;
    }
    SimSystem system = std::move(built).value();
    result.stop = system.run(options.max_cycles);
    result.sim_wall_seconds = system.run_wall_seconds();
    result.stats = system.stats();
    result.ok = result.stop == core::StopReason::kHalted;
    if (options.estimates) {
      const estimate::ResourceReport report = system.resource_report();
      result.estimated_resources = report.estimated;
      result.implemented_resources = report.implemented;
      result.energy = system.energy_report(report.implemented);
    }
    result.metrics = system.metrics_snapshot();
    // The collector sees every point that actually ran — including
    // deadlocked or trapped ones, which are exactly the points a DSE
    // wants to autopsy. (Factory failures never reach this line.)
    if (point.collect) point.collect(system, result);
  } catch (const std::exception& error) {
    result.ok = false;
    result.error = error.what();
  }
  result.wall_seconds = watch.elapsed_seconds();
}

std::vector<SweepPointResult> Sweep::run(const SweepOptions& options) const {
  std::vector<SweepPointResult> results(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    results[i].index = i;
    results[i].label = points_[i].label;
  }

  unsigned threads = options.threads == 0
                         ? std::thread::hardware_concurrency()
                         : options.threads;
  threads = std::max(threads, 1u);
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(points_.size(), 1)));

  if (threads <= 1) {
    for (std::size_t i = 0; i < points_.size(); ++i) {
      run_point(points_[i], options, results[i]);
    }
    return results;
  }

  // Each job writes only its own pre-sized result row, so the workers
  // share no mutable state beyond the pool's queue.
  ThreadPool pool(threads);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    pool.submit([this, &options, &results, i] {
      run_point(points_[i], options, results[i]);
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace mbcosim::sim
