#include "sim/sim_system.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "fault/injector.hpp"
#include "isa/isa.hpp"
#include "iss/debugger.hpp"
#include "iss/memory.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/vcd_sink.hpp"
#include "rsp/cosim_target.hpp"
#include "rsp/transport.hpp"

namespace mbcosim::sim {

// All components live in one heap block so SimSystem stays movable while
// the internal references (Processor -> LmbMemory/FslHub, CoSimEngine ->
// Processor/Model/FslHub) stay stable.
struct SimSystem::State {
  State(assembler::Program p, const isa::CpuConfig& config, u32 mem_bytes,
        std::size_t fifo_depth)
      : program(std::move(p)),
        cpu_config(config),
        memory(mem_bytes),
        hub(fifo_depth),
        cpu(config, memory, &hub) {}

  assembler::Program program;
  isa::CpuConfig cpu_config;
  iss::LmbMemory memory;
  fsl::FslHub hub;
  iss::Processor cpu;
  std::unique_ptr<sysgen::Model> hardware;  ///< null for software-only
  std::optional<core::CoSimEngine> engine;  ///< engaged iff hardware
  std::unique_ptr<bus::OpbBus> opb;         ///< null unless Builder::opb
  unsigned fsl_links = 0;
  Cycle deadlock_threshold = 100'000;
  double last_run_wall_seconds = 0.0;
  obs::TraceBus trace_bus;                  ///< stable: lives in the State
  obs::MetricsRegistry* metrics = nullptr;  ///< owned by trace_bus if set
  std::optional<u16> gdb_port;              ///< Builder::gdb_server
  std::unique_ptr<fault::Injector> injector;  ///< null = fault-free
  /// Deadlock diagnosis of the software-only loop (the engine keeps its
  /// own); SimSystem::deadlock_diagnosis() merges the two.
  std::optional<core::DeadlockDiagnosis> last_deadlock;
};

SimSystem::SimSystem(std::unique_ptr<State> state) : state_(std::move(state)) {}
SimSystem::SimSystem(SimSystem&&) noexcept = default;
SimSystem& SimSystem::operator=(SimSystem&&) noexcept = default;
SimSystem::~SimSystem() = default;

void SimSystem::reset() {
  if (state_->engine) {
    state_->engine->reset(state_->program.entry());
  } else {
    state_->cpu.reset(state_->program.entry());
    state_->hub.clear();
  }
  state_->last_deadlock.reset();
  // Return every component to fault-free operation, then re-arm the
  // configured plan with fresh one-shot state for the new run.
  state_->hub.clear_faults();
  if (state_->opb) state_->opb->clear_fault();
  if (state_->injector) {
    state_->injector =
        std::make_unique<fault::Injector>(state_->injector->plan());
    state_->injector->arm(&state_->hub, state_->opb.get());
  }
}

core::StopReason SimSystem::run_software_only(Cycle max_cycles) {
  // Mirror of CoSimEngine::run without a hardware side: with no
  // peripheral attached nothing can ever unblock a blocking FSL access,
  // so a stall streak of deadlock_threshold cycles is reported as a
  // deadlock instead of burning the whole cycle budget.
  iss::Processor& cpu = state_->cpu;
  Cycle blocked_streak = 0;
  while (!cpu.halted() && cpu.cycle() < max_cycles) {
    if (cpu.fast_path_available()) {
      const iss::BatchResult batch = cpu.run_batch(max_cycles, false);
      switch (batch.stop) {
        case iss::BatchStop::kHalted:
          return core::StopReason::kHalted;
        case iss::BatchStop::kIllegal:
          return core::StopReason::kIllegal;
        case iss::BatchStop::kFslStall:
          // A stall costs exactly one cycle, so cycles > 1 means the
          // batch retired instructions first — the streak restarts.
          blocked_streak = batch.cycles > 1 ? 1 : blocked_streak + 1;
          if (blocked_streak >= state_->deadlock_threshold) {
            state_->last_deadlock =
                core::diagnose_deadlock(cpu, state_->hub, blocked_streak);
            return core::StopReason::kDeadlock;  // bus disabled: no event
          }
          continue;
        case iss::BatchStop::kBudget:
          continue;  // loop condition exits
        case iss::BatchStop::kFslPending:  // unreachable: stop_before_fsl off
        case iss::BatchStop::kPrecise:
          break;  // fall through to the precise step below
      }
    }
    const iss::StepResult result = cpu.step();
    switch (result.event) {
      case iss::Event::kHalted:
        return core::StopReason::kHalted;
      case iss::Event::kIllegal:
        return core::StopReason::kIllegal;
      case iss::Event::kFslStall:
        if (++blocked_streak >= state_->deadlock_threshold) {
          state_->last_deadlock =
              core::diagnose_deadlock(cpu, state_->hub, blocked_streak);
          if (state_->trace_bus.enabled()) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::kDeadlock;
            event.cycle = cpu.cycle();
            event.cycles = blocked_streak;
            event.channel = state_->last_deadlock->channel.empty()
                                ? nullptr
                                : state_->last_deadlock->channel.c_str();
            state_->trace_bus.emit(event);
          }
          return core::StopReason::kDeadlock;
        }
        break;
      case iss::Event::kRetired:
        blocked_streak = 0;
        break;
    }
  }
  return cpu.halted() ? core::StopReason::kHalted
                      : core::StopReason::kCycleLimit;
}

core::StopReason SimSystem::run_segment(Cycle max_cycles) {
  return state_->engine ? state_->engine->run(max_cycles)
                        : run_software_only(max_cycles);
}

core::StopReason SimSystem::run_faulted(Cycle max_cycles) {
  fault::Injector& injector = *state_->injector;
  const fault::FaultPlan& plan = injector.plan();
  if (plan.trigger == fault::TriggerKind::kCycle) {
    // Run to the trigger cycle, inject, continue. If the software ends
    // before the trigger the fault never fires (masked by timing).
    const Cycle target = std::min<Cycle>(plan.trigger_value, max_cycles);
    const core::StopReason before = run_segment(target);
    if (before != core::StopReason::kCycleLimit) return before;
    injector.fire(state_->cpu, &state_->hub, state_->opb.get(),
                  &state_->trace_bus);
    return run_segment(max_cycles);
  }
  // PC trigger: precise lock-step until the processor is about to
  // execute the trigger PC. A blocked or runaway program is bounded by
  // the deadlock threshold / cycle budget, like any other run.
  iss::Processor& cpu = state_->cpu;
  Cycle blocked_streak = 0;
  while (!cpu.halted() && cpu.cycle() < max_cycles) {
    if (cpu.pc() == static_cast<Addr>(plan.trigger_value)) {
      injector.fire(cpu, &state_->hub, state_->opb.get(), &state_->trace_bus);
      return run_segment(max_cycles);
    }
    const iss::StepResult result = state_->engine ? state_->engine->debug_step()
                                                  : cpu.step();
    switch (result.event) {
      case iss::Event::kHalted:
        return core::StopReason::kHalted;
      case iss::Event::kIllegal:
        return core::StopReason::kIllegal;
      case iss::Event::kFslStall:
        if (++blocked_streak >= state_->deadlock_threshold) {
          state_->last_deadlock =
              core::diagnose_deadlock(cpu, state_->hub, blocked_streak);
          return core::StopReason::kDeadlock;
        }
        break;
      case iss::Event::kRetired:
        blocked_streak = 0;
        break;
    }
  }
  return cpu.halted() ? core::StopReason::kHalted
                      : core::StopReason::kCycleLimit;
}

core::StopReason SimSystem::run(Cycle max_cycles) {
  Stopwatch watch;
  const bool pending_point_fault = state_->injector != nullptr &&
                                   state_->injector->needs_point_trigger() &&
                                   !state_->injector->armed_or_fired();
  const core::StopReason reason = pending_point_fault
                                      ? run_faulted(max_cycles)
                                      : run_segment(max_cycles);
  state_->last_run_wall_seconds = watch.elapsed_seconds();
  // Make every attached sink durable after each run: the JSONL/VCD files
  // are complete on disk even if the caller never destroys the system.
  state_->trace_bus.flush();
  return reason;
}

core::CoSimStats SimSystem::stats() const {
  if (state_->engine) return state_->engine->stats();
  core::CoSimStats stats;
  stats.cycles = state_->cpu.stats().cycles;
  stats.instructions = state_->cpu.stats().instructions;
  stats.fsl_stall_cycles = state_->cpu.stats().fsl_stall_cycles;
  return stats;
}

double SimSystem::run_wall_seconds() const noexcept {
  return state_->last_run_wall_seconds;
}

estimate::ResourceReport SimSystem::resource_report() const {
  estimate::SystemDescription description;
  description.cpu = state_->cpu_config;
  description.fsl_links_used = state_->fsl_links;
  description.peripheral = state_->hardware.get();
  description.program = &state_->program;
  for (unsigned slot = 0; slot < isa::kNumCustomSlots; ++slot) {
    if (const iss::CustomInstruction* unit =
            state_->cpu.custom_instruction(slot)) {
      description.custom_instructions.push_back(unit->resources);
    }
  }
  return estimate::estimate_system(description);
}

energy::EnergyReport SimSystem::energy_report() const {
  return energy_report(resource_report().implemented);
}

energy::EnergyReport SimSystem::energy_report(
    const ResourceVec& implemented) const {
  return energy::estimate_energy(state_->cpu.stats(), state_->hardware.get(),
                                 stats().hw_cycles_stepped, implemented);
}

obs::MetricsSnapshot SimSystem::metrics_snapshot() const {
  if (state_->metrics == nullptr) return obs::MetricsSnapshot{};
  return state_->metrics->snapshot();
}

obs::TraceBus& SimSystem::trace_bus() noexcept { return state_->trace_bus; }

iss::Processor& SimSystem::cpu() noexcept { return state_->cpu; }
const iss::Processor& SimSystem::cpu() const noexcept { return state_->cpu; }
iss::LmbMemory& SimSystem::memory() noexcept { return state_->memory; }
const iss::LmbMemory& SimSystem::memory() const noexcept {
  return state_->memory;
}
const assembler::Program& SimSystem::program() const noexcept {
  return state_->program;
}
sysgen::Model* SimSystem::hardware() noexcept {
  return state_->hardware.get();
}
const sysgen::Model* SimSystem::hardware() const noexcept {
  return state_->hardware.get();
}
core::CoSimEngine* SimSystem::engine() noexcept {
  return state_->engine ? &*state_->engine : nullptr;
}

fsl::FslHub& SimSystem::fsl_hub() noexcept { return state_->hub; }

bus::OpbBus* SimSystem::opb() noexcept { return state_->opb.get(); }

Status SimSystem::arm_fault(const fault::FaultPlan& plan, bool immediate) {
  if (Status valid = fault::validate_plan(plan); !valid.ok) return valid;
  // Replace any previous arming wholesale so re-arming is idempotent.
  state_->hub.clear_faults();
  if (state_->opb) state_->opb->clear_fault();
  state_->injector = std::make_unique<fault::Injector>(plan);
  state_->injector->arm(&state_->hub, state_->opb.get());
  if (immediate && state_->injector->needs_point_trigger()) {
    state_->injector->fire(state_->cpu, &state_->hub, state_->opb.get(),
                           &state_->trace_bus);
  }
  return {};
}

const fault::Injector* SimSystem::fault_injector() const noexcept {
  return state_->injector.get();
}

std::optional<core::DeadlockDiagnosis> SimSystem::deadlock_diagnosis() const {
  if (state_->engine && state_->engine->deadlock_diagnosis()) {
    return state_->engine->deadlock_diagnosis();
  }
  return state_->last_deadlock;
}

Status SimSystem::sink_status() const { return state_->trace_bus.status(); }

std::optional<u16> SimSystem::gdb_port() const noexcept {
  return state_->gdb_port;
}

Expected<rsp::SessionEnd> SimSystem::serve_gdb() {
  if (!state_->gdb_port) {
    return Expected<rsp::SessionEnd>::failure(
        "SimSystem: no gdb port configured (call Builder::gdb_server)");
  }
  return serve_gdb(*state_->gdb_port);
}

Expected<rsp::SessionEnd> SimSystem::serve_gdb(
    u16 port, std::function<void(u16)> on_listen) {
  using Failure = Expected<rsp::SessionEnd>;
  Expected<rsp::TcpListener> bound = rsp::TcpListener::listen(port);
  if (!bound) {
    return Failure::failure("SimSystem: gdb server: " + bound.error());
  }
  rsp::TcpListener listener = std::move(bound).value();
  if (on_listen) on_listen(listener.port());
  std::unique_ptr<rsp::Transport> transport = listener.accept();
  if (transport == nullptr) {
    return Failure::failure("SimSystem: gdb server accepted no client");
  }

  iss::Debugger debugger(state_->cpu);
  rsp::CoSimTarget target(debugger, engine());
  target.set_stall_threshold(state_->deadlock_threshold);
  // System-level monitor verbs layered over the debugger's vocabulary,
  // so `monitor metrics` / `monitor stats` work from a gdb prompt.
  target.set_monitor_extra([this](std::string_view line) -> std::string {
    if (line == "metrics") {
      const obs::MetricsSnapshot snapshot = metrics_snapshot();
      if (snapshot.empty()) {
        return "metrics: not enabled (build with Builder::metrics)";
      }
      return snapshot.to_string();
    }
    if (line == "fault") {
      const fault::Injector* injector = fault_injector();
      if (injector == nullptr) return "fault: none armed";
      std::string out = "fault: " + injector->plan().to_string();
      out += injector->armed_or_fired()
                 ? (injector->applied() ? "\nstate: " + injector->detail()
                                        : "\nstate: engaged, not applied")
                 : "\nstate: waiting for trigger";
      return out;
    }
    if (line.rfind("fault ", 0) == 0) {
      const Expected<fault::FaultPlan> parsed =
          fault::parse_plan(std::string(line.substr(6)));
      if (!parsed) return "fault: " + parsed.error();
      // From a debugger the system is stopped at the prompt: point
      // triggers fire right here; count triggers arm and fire later.
      if (const Status status = arm_fault(parsed.value(), true); !status.ok) {
        return "fault: " + status.message;
      }
      return "fault: " + fault_injector()->detail();
    }
    if (line == "stats") {
      const core::CoSimStats s = stats();
      std::string out;
      out += "cycles " + std::to_string(s.cycles);
      out += "\ninstructions " + std::to_string(s.instructions);
      out += "\nfsl_stall_cycles " + std::to_string(s.fsl_stall_cycles);
      out += "\nhw_cycles_stepped " + std::to_string(s.hw_cycles_stepped);
      out += "\nhw_cycles_skipped " + std::to_string(s.hw_cycles_skipped);
      out += "\nwords_to_hw " + std::to_string(s.bridge.words_to_hw);
      out += "\nwords_from_hw " + std::to_string(s.bridge.words_from_hw);
      return out;
    }
    return {};
  });

  rsp::RspServer server(*transport, target);
  const rsp::SessionEnd end = server.serve();
  // The client may have run the program to completion: make the trace
  // sinks durable exactly as run() does.
  state_->trace_bus.flush();
  return end;
}

Addr SimSystem::symbol(const std::string& name) const {
  return state_->program.symbol(name);
}

Word SimSystem::word(const std::string& name, u32 index) const {
  return state_->memory.read_word(symbol(name) + 4 * index);
}

// ---------------------------------------------------------------------------
// Builder

SimSystem::Builder& SimSystem::Builder::program(std::string_view source) {
  source_ = std::string(source);
  image_.reset();
  return *this;
}

SimSystem::Builder& SimSystem::Builder::program(assembler::Program image) {
  image_ = std::move(image);
  source_.reset();
  return *this;
}

SimSystem::Builder& SimSystem::Builder::cpu_config(
    const isa::CpuConfig& config) {
  cpu_config_ = config;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::memory_bytes(u32 bytes) {
  memory_bytes_ = bytes;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::fifo_depth(std::size_t depth) {
  fifo_depth_ = depth;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::hardware(
    std::unique_ptr<sysgen::Model> model) {
  model_ = std::move(model);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::hardware(HardwareFactory factory) {
  factory_ = std::move(factory);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::bind_fsl(unsigned channel,
                                                 const FslGateways& io) {
  bindings_.push_back({channel, io});
  return *this;
}

SimSystem::Builder& SimSystem::Builder::predecode(bool enabled) {
  predecode_ = enabled;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::quiescence(Cycle drain_cycles) {
  quiescence_ = drain_cycles;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::deadlock_threshold(Cycle threshold) {
  deadlock_threshold_ = threshold;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::custom_instruction(
    unsigned slot, iss::CustomInstruction unit) {
  custom_.emplace_back(slot, std::move(unit));
  return *this;
}

SimSystem::Builder& SimSystem::Builder::opb(std::unique_ptr<bus::OpbBus> bus) {
  opb_ = std::move(bus);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::fault(const fault::FaultPlan& plan) {
  fault_plan_ = plan;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::trace(std::string path) {
  trace_path_ = std::move(path);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::vcd(std::string path) {
  vcd_path_ = std::move(path);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::metrics() {
  metrics_ = true;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::sink(
    std::unique_ptr<obs::TraceSink> sink) {
  extra_sinks_.push_back(std::move(sink));
  return *this;
}

SimSystem::Builder& SimSystem::Builder::gdb_server(u16 port) {
  gdb_port_ = port;
  return *this;
}

Expected<SimSystem> SimSystem::Builder::build() {
  using Failure = Expected<SimSystem>;

  // 1. Software.
  if (!source_ && !image_) {
    return Failure::failure(
        "SimSystem: no program was given (call Builder::program)");
  }
  assembler::Program program;
  if (image_) {
    program = std::move(*image_);
  } else {
    Expected<assembler::Program> assembled = assembler::assemble(*source_);
    if (!assembled) {
      return Failure::failure("SimSystem: program does not assemble: " +
                              assembled.error());
    }
    program = std::move(assembled).value();
  }

  // 2. Hardware (optional): a ready-made model, or a factory that also
  // carries its own channel bindings.
  if (model_ && factory_) {
    return Failure::failure(
        "SimSystem: both a hardware model and a hardware factory were "
        "given; they are mutually exclusive");
  }
  std::unique_ptr<sysgen::Model> model = std::move(model_);
  if (factory_) {
    try {
      HardwareBundle bundle = factory_();
      model = std::move(bundle.model);
      for (const auto& binding : bundle.channels) bindings_.push_back(binding);
    } catch (const std::exception& error) {
      return Failure::failure(std::string("SimSystem: hardware factory "
                                          "failed: ") + error.what());
    }
    if (model == nullptr) {
      return Failure::failure(
          "SimSystem: the hardware factory returned no model");
    }
  }

  // 3. FSL bindings.
  if (model == nullptr && !bindings_.empty()) {
    return Failure::failure(
        "SimSystem: bind_fsl was called but no hardware model was given");
  }
  std::set<unsigned> bound;
  unsigned fsl_links = 0;
  for (const auto& binding : bindings_) {
    if (binding.channel >= fsl::FslHub::kChannels) {
      return Failure::failure(
          "SimSystem: FSL channel " + std::to_string(binding.channel) +
          " is out of range (0.." + std::to_string(fsl::FslHub::kChannels - 1) +
          ")");
    }
    if (!bound.insert(binding.channel).second) {
      return Failure::failure("SimSystem: FSL channel " +
                              std::to_string(binding.channel) +
                              " is bound twice");
    }
    const FslGateways& io = binding.io;
    if (!io.has_slave() && !io.has_master()) {
      return Failure::failure("SimSystem: FSL channel " +
                              std::to_string(binding.channel) +
                              " binds no gateways");
    }
    if (io.has_slave() && (io.s_data == nullptr || io.s_exists == nullptr ||
                           io.s_read == nullptr)) {
      return Failure::failure(
          "SimSystem: the slave side of FSL channel " +
          std::to_string(binding.channel) +
          " needs the s_data, s_exists and s_read gateways");
    }
    if (io.has_master() && (io.m_data == nullptr || io.m_write == nullptr)) {
      return Failure::failure("SimSystem: the master side of FSL channel " +
                              std::to_string(binding.channel) +
                              " needs the m_data and m_write gateways");
    }
    fsl_links += (io.has_slave() ? 1u : 0u) + (io.has_master() ? 1u : 0u);
  }

  // 4. Assemble the components and wire them up.
  if (fault_plan_) {
    if (const Status valid = fault::validate_plan(*fault_plan_); !valid.ok) {
      return Failure::failure("SimSystem: " + valid.message);
    }
  }
  auto state = std::make_unique<State>(std::move(program), cpu_config_,
                                       memory_bytes_, fifo_depth_);
  state->fsl_links = fsl_links;
  state->deadlock_threshold = deadlock_threshold_;
  state->gdb_port = gdb_port_;
  state->cpu.set_predecode(predecode_);
  if (opb_) {
    state->opb = std::move(opb_);
    state->cpu.attach_opb(state->opb.get());
  }
  if (fault_plan_) {
    state->injector = std::make_unique<fault::Injector>(*fault_plan_);
  }

  // 5. Observability sinks. The bus lives inside the heap-allocated
  // State, so the pointers handed to the components survive moves of
  // the SimSystem itself.
  if (trace_path_) {
    auto sink = std::make_unique<obs::JsonlSink>(*trace_path_);
    if (!sink->ok()) {
      return Failure::failure("SimSystem: cannot open trace file '" +
                              *trace_path_ + "'");
    }
    sink->set_disassembler(
        [](Addr, Word raw) { return isa::disassemble(raw); });
    state->trace_bus.add_sink(std::move(sink));
  }
  if (vcd_path_) {
    auto sink = std::make_unique<obs::VcdSink>(*vcd_path_);
    if (!sink->ok()) {
      return Failure::failure("SimSystem: cannot open VCD file '" +
                              *vcd_path_ + "'");
    }
    state->trace_bus.add_sink(std::move(sink));
  }
  if (metrics_) {
    auto registry = std::make_unique<obs::MetricsRegistry>();
    state->metrics = registry.get();
    state->trace_bus.add_sink(std::move(registry));
  }
  for (auto& extra : extra_sinks_) {
    if (extra != nullptr) state->trace_bus.add_sink(std::move(extra));
  }
  // Always wired (the bus without sinks costs one enabled() load per
  // would-be event), so sinks can also be attached after build() via
  // SimSystem::trace_bus().
  state->cpu.set_trace_bus(&state->trace_bus);
  state->hub.set_trace_bus(&state->trace_bus);
  if (state->opb) state->opb->set_trace_bus(&state->trace_bus);

  try {
    state->memory.load_program(state->program);
    for (auto& [slot, unit] : custom_) {
      state->cpu.register_custom_instruction(slot, std::move(unit));
    }
    if (model != nullptr) {
      state->hardware = std::move(model);
      state->engine.emplace(state->cpu, *state->hardware, state->hub);
      for (const auto& binding : bindings_) {
        const FslGateways& io = binding.io;
        if (io.has_slave()) {
          core::SlaveBinding slave;
          slave.channel = binding.channel;
          slave.data = io.s_data;
          slave.exists = io.s_exists;
          slave.control = io.s_control;
          slave.read = io.s_read;
          state->engine->bridge().bind_slave(slave);
        }
        if (io.has_master()) {
          core::MasterBinding master;
          master.channel = binding.channel;
          master.data = io.m_data;
          master.control = io.m_control;
          master.write = io.m_write;
          master.full = io.m_full;
          state->engine->bridge().bind_master(master);
        }
      }
      state->engine->set_quiescence_window(quiescence_);
      state->engine->set_deadlock_threshold(deadlock_threshold_);
      state->engine->set_trace_bus(&state->trace_bus);
    }
  } catch (const std::exception& error) {
    return Failure::failure(std::string("SimSystem: ") + error.what());
  }

  SimSystem system(std::move(state));
  system.reset();
  return system;
}

}  // namespace mbcosim::sim
