#include "sim/sim_system.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "asm/assembler.hpp"
#include "common/stopwatch.hpp"
#include "fault/injector.hpp"
#include "isa/isa.hpp"
#include "iss/debugger.hpp"
#include "iss/memory.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/vcd_sink.hpp"
#include "rsp/cosim_target.hpp"
#include "rsp/transport.hpp"
#include "sim/peripheral_registry.hpp"
#include "sim/sim_state.hpp"

namespace mbcosim::sim {

namespace {

/// "trace.jsonl" + "cpu1" -> "trace.cpu1.jsonl"; no extension appends.
std::string per_core_path(const std::string& path, const std::string& name) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

}  // namespace

SimSystem::SimSystem(std::unique_ptr<State> state) : state_(std::move(state)) {}
SimSystem::SimSystem(SimSystem&&) noexcept = default;
SimSystem& SimSystem::operator=(SimSystem&&) noexcept = default;
SimSystem::~SimSystem() = default;

void SimSystem::reset() {
  for (auto& core : state_->cores) {
    if (core->engine) {
      core->engine->reset(core->program.entry());
    } else {
      core->cpu.reset(core->program.entry());
      core->hub.clear();
    }
    core->last_deadlock.reset();
    // Return every component to fault-free operation, then re-arm the
    // configured plan with fresh one-shot state for the new run.
    core->hub.clear_faults();
    if (core->opb) core->opb->clear_fault();
  }
  if (state_->machine_engine) state_->machine_engine->reset_progress();
  state_->stop_core = 0;
  if (state_->injector) {
    State::Core& target = *state_->cores[state_->fault_core];
    state_->injector =
        std::make_unique<fault::Injector>(state_->injector->plan());
    state_->injector->arm(&target.hub, target.opb.get());
  }
}

core::StopReason SimSystem::run_software_only(Cycle max_cycles) {
  // Mirror of CoSimEngine::run without a hardware side: with no
  // peripheral attached nothing can ever unblock a blocking FSL access,
  // so a stall streak of deadlock_threshold cycles is reported as a
  // deadlock instead of burning the whole cycle budget.
  State::Core& core = state_->c0();
  iss::Processor& cpu = core.cpu;
  Cycle blocked_streak = 0;
  while (!cpu.halted() && cpu.cycle() < max_cycles) {
    if (cpu.fast_path_available()) {
      const iss::BatchResult batch = cpu.run_batch(max_cycles, false);
      switch (batch.stop) {
        case iss::BatchStop::kHalted:
          return core::StopReason::kHalted;
        case iss::BatchStop::kIllegal:
          return core::StopReason::kIllegal;
        case iss::BatchStop::kFslStall:
          // A stall costs exactly one cycle, so cycles > 1 means the
          // batch retired instructions first — the streak restarts.
          blocked_streak = batch.cycles > 1 ? 1 : blocked_streak + 1;
          if (blocked_streak >= state_->deadlock_threshold) {
            core.last_deadlock =
                core::diagnose_deadlock(cpu, core.hub, blocked_streak);
            return core::StopReason::kDeadlock;  // bus disabled: no event
          }
          continue;
        case iss::BatchStop::kBudget:
          continue;  // loop condition exits
        case iss::BatchStop::kFslPending:  // unreachable: stop_before_fsl off
        case iss::BatchStop::kPrecise:
          break;  // fall through to the precise step below
      }
    }
    const iss::StepResult result = cpu.step();
    switch (result.event) {
      case iss::Event::kHalted:
        return core::StopReason::kHalted;
      case iss::Event::kIllegal:
        return core::StopReason::kIllegal;
      case iss::Event::kFslStall:
        if (++blocked_streak >= state_->deadlock_threshold) {
          core.last_deadlock =
              core::diagnose_deadlock(cpu, core.hub, blocked_streak);
          if (core.trace_bus.enabled()) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::kDeadlock;
            event.cycle = cpu.cycle();
            event.cycles = blocked_streak;
            event.channel = core.last_deadlock->channel.empty()
                                ? nullptr
                                : core.last_deadlock->channel.c_str();
            core.trace_bus.emit(event);
          }
          return core::StopReason::kDeadlock;
        }
        break;
      case iss::Event::kRetired:
        blocked_streak = 0;
        break;
    }
  }
  return cpu.halted() ? core::StopReason::kHalted
                      : core::StopReason::kCycleLimit;
}

core::StopReason SimSystem::run_segment(Cycle max_cycles) {
  State::Core& core = state_->c0();
  return core.engine ? core.engine->run(max_cycles)
                     : run_software_only(max_cycles);
}

core::StopReason SimSystem::run_faulted(Cycle max_cycles) {
  State::Core& core = state_->c0();
  fault::Injector& injector = *state_->injector;
  const fault::FaultPlan& plan = injector.plan();
  if (plan.trigger == fault::TriggerKind::kCycle) {
    // Run to the trigger cycle, inject, continue. If the software ends
    // before the trigger the fault never fires (masked by timing).
    const Cycle target = std::min<Cycle>(plan.trigger_value, max_cycles);
    const core::StopReason before = run_segment(target);
    if (before != core::StopReason::kCycleLimit) return before;
    injector.fire(core.cpu, &core.hub, core.opb.get(), &core.trace_bus);
    return run_segment(max_cycles);
  }
  // PC trigger: precise lock-step until the processor is about to
  // execute the trigger PC. A blocked or runaway program is bounded by
  // the deadlock threshold / cycle budget, like any other run.
  iss::Processor& cpu = core.cpu;
  Cycle blocked_streak = 0;
  while (!cpu.halted() && cpu.cycle() < max_cycles) {
    if (cpu.pc() == static_cast<Addr>(plan.trigger_value)) {
      injector.fire(cpu, &core.hub, core.opb.get(), &core.trace_bus);
      return run_segment(max_cycles);
    }
    const iss::StepResult result =
        core.engine ? core.engine->debug_step() : cpu.step();
    switch (result.event) {
      case iss::Event::kHalted:
        return core::StopReason::kHalted;
      case iss::Event::kIllegal:
        return core::StopReason::kIllegal;
      case iss::Event::kFslStall:
        if (++blocked_streak >= state_->deadlock_threshold) {
          core.last_deadlock =
              core::diagnose_deadlock(cpu, core.hub, blocked_streak);
          return core::StopReason::kDeadlock;
        }
        break;
      case iss::Event::kRetired:
        blocked_streak = 0;
        break;
    }
  }
  return cpu.halted() ? core::StopReason::kHalted
                      : core::StopReason::kCycleLimit;
}

core::StopReason SimSystem::run_machine_faulted(Cycle max_cycles) {
  // Only cycle triggers reach here: build()/arm_fault reject pc
  // triggers on multi-core machines (a PC is ambiguous across cores).
  fault::Injector& injector = *state_->injector;
  State::Core& target_core = *state_->cores[state_->fault_core];
  const Cycle target =
      std::min<Cycle>(injector.plan().trigger_value, max_cycles);
  core::MachineStop stop = state_->machine_engine->run(target);
  state_->stop_core = stop.core;
  if (stop.reason != core::StopReason::kCycleLimit) return stop.reason;
  injector.fire(target_core.cpu, &target_core.hub, target_core.opb.get(),
                &target_core.trace_bus);
  stop = state_->machine_engine->run(max_cycles);
  state_->stop_core = stop.core;
  return stop.reason;
}

core::StopReason SimSystem::run_unfaulted(Cycle max_cycles) {
  if (state_->machine_engine) {
    const core::MachineStop stop = state_->machine_engine->run(max_cycles);
    state_->stop_core = stop.core;
    return stop.reason;
  }
  return run_segment(max_cycles);
}

core::StopReason SimSystem::run_checkpointed(Cycle max_cycles) {
  // Chunk the run at absolute-cycle checkpoint boundaries. Engine run
  // targets are per-core clocks, so the next boundary climbs from the
  // current clock; numbering restarts at 0 each run().
  u64 seq = 0;
  for (;;) {
    const Cycle boundary = stats().cycles + state_->checkpoint_interval;
    const Cycle target = std::min(boundary, max_cycles);
    const core::StopReason reason = run_unfaulted(target);
    if (reason != core::StopReason::kCycleLimit || target == max_cycles) {
      return reason;
    }
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "%06llu.ckpt",
                  static_cast<unsigned long long>(seq++));
    if (const Status saved =
            save_checkpoint(state_->checkpoint_prefix + suffix);
        !saved.ok) {
      std::fprintf(stderr, "SimSystem: periodic checkpoint failed: %s\n",
                   saved.message.c_str());
    }
  }
}

core::StopReason SimSystem::run(Cycle max_cycles) {
  Stopwatch watch;
  const bool pending_point_fault = state_->injector != nullptr &&
                                   state_->injector->needs_point_trigger() &&
                                   !state_->injector->armed_or_fired();
  core::StopReason reason;
  if (pending_point_fault) {
    reason = state_->machine_engine ? run_machine_faulted(max_cycles)
                                    : run_faulted(max_cycles);
  } else if (state_->checkpoint_interval != 0) {
    reason = run_checkpointed(max_cycles);
  } else {
    reason = run_unfaulted(max_cycles);
  }
  state_->last_run_wall_seconds = watch.elapsed_seconds();
  // Make every attached sink durable after each run: the JSONL/VCD files
  // are complete on disk even if the caller never destroys the system.
  for (auto& core : state_->cores) core->trace_bus.flush();
  return reason;
}

core::CoSimStats SimSystem::stats() const {
  if (state_->machine_engine) return state_->machine_engine->aggregate_stats();
  return core_stats(0);
}

core::CoSimStats SimSystem::core_stats(std::size_t index) const {
  const State::Core& core = *state_->cores[index];
  if (core.engine) return core.engine->stats();
  core::CoSimStats stats;
  stats.cycles = core.cpu.stats().cycles;
  stats.instructions = core.cpu.stats().instructions;
  stats.fsl_stall_cycles = core.cpu.stats().fsl_stall_cycles;
  return stats;
}

obs::TraceBus& SimSystem::trace_bus(std::size_t index) {
  return state_->cores[index]->trace_bus;
}

double SimSystem::run_wall_seconds() const noexcept {
  return state_->last_run_wall_seconds;
}

estimate::ResourceReport SimSystem::resource_report() const {
  if (!state_->machine_engine) {
    return estimate::estimate_system(State::describe(state_->c0()));
  }
  // Machine estimate: one processor system per core, parts prefixed
  // with the core name so the report reads like the floorplan.
  estimate::ResourceReport total;
  for (const auto& core : state_->cores) {
    estimate::ResourceReport report =
        estimate::estimate_system(State::describe(*core));
    for (estimate::ResourcePart& part : report.parts) {
      part.name = core->name + "." + part.name;
      total.parts.push_back(std::move(part));
    }
    total.estimated += report.estimated;
    total.implemented += report.implemented;
  }
  return total;
}

energy::EnergyReport SimSystem::energy_report() const {
  if (!state_->machine_engine) {
    return energy_report(resource_report().implemented);
  }
  // Machine estimate: each core's dynamic + static share, summed; the
  // cores tick one shared clock, so the covered cycle count is the max.
  energy::EnergyReport total;
  for (const auto& core : state_->cores) {
    const estimate::ResourceReport report =
        estimate::estimate_system(State::describe(*core));
    const energy::EnergyReport slice = energy::estimate_energy(
        core->cpu.stats(), core->hardware.get(),
        core->engine ? core->engine->stats().hw_cycles_stepped : 0,
        report.implemented);
    total.processor_nj += slice.processor_nj;
    total.peripheral_nj += slice.peripheral_nj;
    total.static_nj += slice.static_nj;
    total.cycles = std::max(total.cycles, slice.cycles);
  }
  return total;
}

energy::EnergyReport SimSystem::energy_report(
    const ResourceVec& implemented) const {
  // A whole-machine resource vector cannot be split back per core;
  // recompute from scratch instead of misattributing the static share.
  if (state_->machine_engine) return energy_report();
  const State::Core& core = state_->c0();
  return energy::estimate_energy(core.cpu.stats(), core.hardware.get(),
                                 stats().hw_cycles_stepped, implemented);
}

iss::DbtStats SimSystem::dbt_stats() const {
  iss::DbtStats total;
  for (const auto& core : state_->cores) {
    const iss::DbtStats& dbt = core->cpu.dbt_stats();
    total.blocks_translated += dbt.blocks_translated;
    total.block_dispatches += dbt.block_dispatches;
    total.smc_retirements += dbt.smc_retirements;
    total.dbt_instructions += dbt.dbt_instructions;
  }
  return total;
}

namespace {

// Superblock-tier counters ride along in the metrics snapshot once the
// core has executed anything (a pre-run snapshot stays empty). They are
// emitted even when the core never reached the dbt tier — as zeros — so
// the counter-key schema is identical across exec tiers and streamed
// snapshots diff cleanly tier-against-tier.
// Note an enabled trace bus (any sink, which
// Builder::metrics attaches) forces the precise fallback, so these are
// zero under --metrics unless the tier ran before the sink was enabled;
// `monitor stats` is the live view (DESIGN.md §12).
void inject_dbt_counters(obs::MetricsSnapshot& snapshot,
                         const iss::Processor& cpu,
                         const std::string& prefix) {
  const iss::DbtStats& dbt = cpu.dbt_stats();
  snapshot.counters[prefix + "dbt.blocks_translated"] = dbt.blocks_translated;
  snapshot.counters[prefix + "dbt.block_dispatches"] = dbt.block_dispatches;
  snapshot.counters[prefix + "dbt.smc_retirements"] = dbt.smc_retirements;
  snapshot.counters[prefix + "dbt.fast_path_instructions"] =
      dbt.dbt_instructions;
}

}  // namespace

obs::MetricsSnapshot SimSystem::metrics_snapshot() const {
  if (!state_->machine_engine) {
    const State::Core& core = state_->c0();
    if (core.metrics == nullptr) return obs::MetricsSnapshot{};
    obs::MetricsSnapshot snapshot = core.metrics->snapshot();
    if (!snapshot.empty() || core.cpu.cycle() != 0) {
      inject_dbt_counters(snapshot, core.cpu, "");
    }
    return snapshot;
  }
  // Merge the per-core registries under "corename." key prefixes.
  obs::MetricsSnapshot merged;
  for (const auto& core : state_->cores) {
    if (core->metrics == nullptr) continue;
    obs::MetricsSnapshot snapshot = core->metrics->snapshot();
    if (!snapshot.empty() || core->cpu.cycle() != 0) {
      inject_dbt_counters(snapshot, core->cpu, "");
    }
    for (auto& [key, value] : snapshot.counters) {
      merged.counters[core->name + "." + key] = value;
    }
    for (auto& [key, histogram] : snapshot.histograms) {
      merged.histograms[core->name + "." + key] = std::move(histogram);
    }
  }
  return merged;
}

obs::TraceBus& SimSystem::trace_bus() noexcept {
  return state_->c0().trace_bus;
}

iss::Processor& SimSystem::cpu() noexcept { return state_->c0().cpu; }
const iss::Processor& SimSystem::cpu() const noexcept {
  return state_->c0().cpu;
}
iss::LmbMemory& SimSystem::memory() noexcept { return state_->c0().memory; }
const iss::LmbMemory& SimSystem::memory() const noexcept {
  return state_->c0().memory;
}
const assembler::Program& SimSystem::program() const noexcept {
  return state_->c0().program;
}
sysgen::Model* SimSystem::hardware() noexcept {
  return state_->c0().hardware.get();
}
const sysgen::Model* SimSystem::hardware() const noexcept {
  return state_->c0().hardware.get();
}
core::CoSimEngine* SimSystem::engine() noexcept {
  State::Core& core = state_->c0();
  return core.engine ? &*core.engine : nullptr;
}

fsl::FslHub& SimSystem::fsl_hub() noexcept { return state_->c0().hub; }

bus::OpbBus* SimSystem::opb() noexcept { return state_->c0().opb.get(); }

std::size_t SimSystem::core_count() const noexcept {
  return state_->cores.size();
}

const std::string& SimSystem::core_name(std::size_t index) const {
  return state_->cores[index]->name;
}

iss::Processor& SimSystem::cpu(std::size_t index) {
  return state_->cores[index]->cpu;
}

const assembler::Program& SimSystem::program(std::size_t index) const {
  return state_->cores[index]->program;
}

core::ManyCoreEngine* SimSystem::machine_engine() noexcept {
  return state_->machine_engine ? &*state_->machine_engine : nullptr;
}

std::size_t SimSystem::stop_core() const noexcept { return state_->stop_core; }

const machine::MachineDesc& SimSystem::machine_desc() const noexcept {
  return state_->desc;
}

Addr SimSystem::symbol_on(std::size_t index, const std::string& name) const {
  return state_->cores[index]->program.symbol(name);
}

Word SimSystem::word_on(std::size_t index, const std::string& name,
                        u32 word_index) const {
  const State::Core& core = *state_->cores[index];
  return core.memory.read_word(core.program.symbol(name) + 4 * word_index);
}

Status SimSystem::arm_fault(const fault::FaultPlan& plan, bool immediate) {
  if (Status valid = fault::validate_plan(plan); !valid.ok) return valid;
  if (plan.core >= state_->cores.size()) {
    return Status::failure(
        "fault plan targets core " + std::to_string(plan.core) +
        " but the machine has " + std::to_string(state_->cores.size()) +
        " core(s)");
  }
  if (state_->cores.size() > 1 &&
      plan.trigger == fault::TriggerKind::kPc) {
    return Status::failure(
        "pc-triggered fault plans are not supported on multi-core machines "
        "(use a cycle trigger)");
  }
  // Replace any previous arming wholesale so re-arming is idempotent —
  // including a previous plan on a different core.
  for (auto& core : state_->cores) {
    core->hub.clear_faults();
    if (core->opb) core->opb->clear_fault();
  }
  state_->fault_core = plan.core;
  State::Core& target = *state_->cores[plan.core];
  state_->injector = std::make_unique<fault::Injector>(plan);
  state_->injector->arm(&target.hub, target.opb.get());
  if (immediate && state_->injector->needs_point_trigger()) {
    state_->injector->fire(target.cpu, &target.hub, target.opb.get(),
                           &target.trace_bus);
  }
  return {};
}

const fault::Injector* SimSystem::fault_injector() const noexcept {
  return state_->injector.get();
}

std::optional<core::DeadlockDiagnosis> SimSystem::deadlock_diagnosis() const {
  if (state_->machine_engine && state_->machine_engine->deadlock_diagnosis()) {
    return state_->machine_engine->deadlock_diagnosis();
  }
  const State::Core& core = state_->c0();
  if (core.engine && core.engine->deadlock_diagnosis()) {
    return core.engine->deadlock_diagnosis();
  }
  return core.last_deadlock;
}

Status SimSystem::sink_status() const {
  for (const auto& core : state_->cores) {
    if (Status status = core->trace_bus.status(); !status.ok) return status;
  }
  return {};
}

std::optional<u16> SimSystem::gdb_port() const noexcept {
  return state_->gdb_port;
}

Expected<rsp::SessionEnd> SimSystem::serve_gdb() {
  if (!state_->gdb_port) {
    return Expected<rsp::SessionEnd>::failure(
        "SimSystem: no gdb port configured (call Builder::gdb_server)");
  }
  return serve_gdb(*state_->gdb_port);
}

Expected<rsp::SessionEnd> SimSystem::serve_gdb(
    u16 port, std::function<void(u16)> on_listen) {
  using Failure = Expected<rsp::SessionEnd>;
  Expected<rsp::TcpListener> bound = rsp::TcpListener::listen(port);
  if (!bound) {
    return Failure::failure("SimSystem: gdb server: " + bound.error());
  }
  rsp::TcpListener listener = std::move(bound).value();
  if (on_listen) on_listen(listener.port());
  std::unique_ptr<rsp::Transport> transport = listener.accept();
  if (transport == nullptr) {
    return Failure::failure("SimSystem: gdb server accepted no client");
  }
  GdbServeHooks hooks;
  hooks.busy_listener = &listener;  // late arrivals get "E.srv-busy"
  return serve_gdb_on(*transport, hooks);
}

Expected<rsp::SessionEnd> SimSystem::serve_gdb_on(rsp::Transport& transport,
                                                  const GdbServeHooks& hooks) {
  // The debugger drives one core (Builder::gdb_core, default 0); on a
  // multi-core machine each of its steps advances the whole machine
  // through ManyCoreEngine::debug_step so cross-links stay live.
  State::Core& debugged = *state_->cores[state_->gdb_core];
  iss::Debugger debugger(debugged.cpu);
  rsp::CoSimTarget target(debugger,
                          debugged.engine ? &*debugged.engine : nullptr);
  target.set_stall_threshold(state_->deadlock_threshold);
  if (state_->machine_engine) {
    target.set_step_fn([this] {
      return state_->machine_engine->debug_step(state_->gdb_core);
    });
  }
  // System-level monitor verbs layered over the debugger's vocabulary,
  // so `monitor metrics` / `monitor stats` work from a gdb prompt.
  target.set_monitor_extra([this](std::string_view line) -> std::string {
    if (line == "metrics") {
      const obs::MetricsSnapshot snapshot = metrics_snapshot();
      if (snapshot.empty()) {
        return "metrics: not enabled (build with Builder::metrics)";
      }
      return snapshot.to_string();
    }
    if (line == "fault") {
      const fault::Injector* injector = fault_injector();
      if (injector == nullptr) return "fault: none armed";
      std::string out = "fault: " + injector->plan().to_string();
      out += injector->armed_or_fired()
                 ? (injector->applied() ? "\nstate: " + injector->detail()
                                        : "\nstate: engaged, not applied")
                 : "\nstate: waiting for trigger";
      return out;
    }
    if (line.rfind("fault ", 0) == 0) {
      const Expected<fault::FaultPlan> parsed =
          fault::parse_plan(std::string(line.substr(6)));
      if (!parsed) return "fault: " + parsed.error();
      // From a debugger the system is stopped at the prompt: point
      // triggers fire right here; count triggers arm and fire later.
      if (const Status status = arm_fault(parsed.value(), true); !status.ok) {
        return "fault: " + status.message;
      }
      return "fault: " + fault_injector()->detail();
    }
    if (line.rfind("checkpoint ", 0) == 0) {
      const std::string path(line.substr(11));
      if (path.empty()) return "checkpoint: missing path";
      if (const Status saved = save_checkpoint(path); !saved.ok) {
        return "checkpoint: " + saved.message;
      }
      return "checkpoint: saved to " + path;
    }
    if (line.rfind("restore ", 0) == 0) {
      const std::string path(line.substr(8));
      if (path.empty()) return "restore: missing path";
      if (const Status restored = restore(path); !restored.ok) {
        return "restore: " + restored.message;
      }
      return "restore: restored from " + path;
    }
    if (line == "stats") {
      const core::CoSimStats s = stats();
      std::string out;
      out += "cycles " + std::to_string(s.cycles);
      out += "\ninstructions " + std::to_string(s.instructions);
      out += "\nfsl_stall_cycles " + std::to_string(s.fsl_stall_cycles);
      out += "\nhw_cycles_stepped " + std::to_string(s.hw_cycles_stepped);
      out += "\nhw_cycles_skipped " + std::to_string(s.hw_cycles_skipped);
      out += "\nwords_to_hw " + std::to_string(s.bridge.words_to_hw);
      out += "\nwords_from_hw " + std::to_string(s.bridge.words_from_hw);
      const iss::DbtStats dbt = dbt_stats();
      out += "\ndbt_blocks_translated " + std::to_string(dbt.blocks_translated);
      out += "\ndbt_block_dispatches " + std::to_string(dbt.block_dispatches);
      out += "\ndbt_smc_retirements " + std::to_string(dbt.smc_retirements);
      out += "\ndbt_fast_path_instructions " +
             std::to_string(dbt.dbt_instructions);
      return out;
    }
    return {};
  });

  rsp::RspServer server(transport, target);
  server.set_busy_listener(hooks.busy_listener);
  server.set_cancel(hooks.cancel);
  const rsp::SessionEnd end = server.serve();
  // The client may have run the program to completion: make the trace
  // sinks durable exactly as run() does.
  for (auto& core : state_->cores) core->trace_bus.flush();
  return end;
}

Addr SimSystem::symbol(const std::string& name) const {
  return state_->c0().program.symbol(name);
}

Word SimSystem::word(const std::string& name, u32 index) const {
  return state_->c0().memory.read_word(symbol(name) + 4 * index);
}

// ---------------------------------------------------------------------------
// Builder

SimSystem::Builder& SimSystem::Builder::machine(machine::MachineDesc desc) {
  machine_ = std::move(desc);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::workers(unsigned count) {
  workers_ = count;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::gdb_core(std::size_t index) {
  gdb_core_ = index;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::program(std::string_view source) {
  source_ = std::string(source);
  image_.reset();
  return *this;
}

SimSystem::Builder& SimSystem::Builder::program(assembler::Program image) {
  image_ = std::move(image);
  source_.reset();
  return *this;
}

SimSystem::Builder& SimSystem::Builder::cpu_config(
    const isa::CpuConfig& config) {
  cpu_config_ = config;
  single_core_setter_ = "cpu_config";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::memory_bytes(u32 bytes) {
  memory_bytes_ = bytes;
  single_core_setter_ = "memory_bytes";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::fifo_depth(std::size_t depth) {
  fifo_depth_ = depth;
  single_core_setter_ = "fifo_depth";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::hardware(
    std::unique_ptr<sysgen::Model> model) {
  model_ = std::move(model);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::hardware(HardwareFactory factory) {
  factory_ = std::move(factory);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::bind_fsl(unsigned channel,
                                                 const FslGateways& io) {
  bindings_.push_back({channel, io});
  return *this;
}

SimSystem::Builder& SimSystem::Builder::predecode(bool enabled) {
  predecode_ = enabled;
  single_core_setter_ = "predecode";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::exec_tier(iss::ExecTier tier) {
  exec_tier_ = tier;
  predecode_ = tier != iss::ExecTier::kPrecise;
  single_core_setter_ = "exec_tier";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::quiescence(Cycle drain_cycles) {
  quiescence_ = drain_cycles;
  single_core_setter_ = "quiescence";
  return *this;
}

SimSystem::Builder& SimSystem::Builder::deadlock_threshold(Cycle threshold) {
  deadlock_threshold_ = threshold;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::custom_instruction(
    unsigned slot, iss::CustomInstruction unit) {
  custom_.emplace_back(slot, std::move(unit));
  return *this;
}

SimSystem::Builder& SimSystem::Builder::opb(std::unique_ptr<bus::OpbBus> bus) {
  opb_ = std::move(bus);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::fault(const fault::FaultPlan& plan) {
  fault_plan_ = plan;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::trace(std::string path) {
  trace_path_ = std::move(path);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::vcd(std::string path) {
  vcd_path_ = std::move(path);
  return *this;
}

SimSystem::Builder& SimSystem::Builder::metrics() {
  metrics_ = true;
  return *this;
}

SimSystem::Builder& SimSystem::Builder::sink(
    std::unique_ptr<obs::TraceSink> sink) {
  extra_sinks_.push_back(std::move(sink));
  return *this;
}

SimSystem::Builder& SimSystem::Builder::gdb_server(u16 port) {
  gdb_port_ = port;
  return *this;
}

Expected<SimSystem> SimSystem::Builder::build() {
  using Failure = Expected<SimSystem>;

  // 0. Settle on the machine description: the one given to machine(),
  // or one synthesized from the legacy single-core setters (the shim
  // path every pre-machine caller takes). Mixing the two is ambiguous
  // and rejected with a setter-specific diagnostic.
  const bool from_machine = machine_.has_value();
  if (from_machine) {
    if (source_ || image_) {
      return Failure::failure(
          "SimSystem: machine() and program() are mutually exclusive — core "
          "programs come from the machine description");
    }
    if (model_ || factory_) {
      return Failure::failure(
          "SimSystem: machine() and hardware() are mutually exclusive — "
          "peripherals come from the machine description via the "
          "PeripheralRegistry");
    }
    if (!bindings_.empty()) {
      return Failure::failure(
          "SimSystem: machine() and bind_fsl() are mutually exclusive — "
          "peripheral channels come from the machine description");
    }
    if (opb_) {
      return Failure::failure(
          "SimSystem: machine() and opb() are mutually exclusive — OPB "
          "buses are not describable per core yet");
    }
    if (!custom_.empty()) {
      return Failure::failure(
          "SimSystem: machine() and custom_instruction() are mutually "
          "exclusive — custom instructions are not describable per core yet");
    }
    if (single_core_setter_ != nullptr) {
      return Failure::failure(std::string("SimSystem: machine() and ") +
                              single_core_setter_ +
                              "() are mutually exclusive — per-core options "
                              "come from the machine description");
    }
  } else if (!source_ && !image_) {
    return Failure::failure(
        "SimSystem: no program was given (call Builder::program)");
  }
  machine::MachineDesc desc;
  if (from_machine) {
    desc = std::move(*machine_);
    if (const Status valid = desc.validate(); !valid.ok) {
      return Failure::failure("SimSystem: " + valid.message);
    }
  } else {
    machine::CoreDesc core;
    core.name = "cpu0";
    if (source_) core.program = *source_;
    core.memory_bytes = memory_bytes_;
    core.has_barrel_shifter = cpu_config_.has_barrel_shifter;
    core.has_multiplier = cpu_config_.has_multiplier;
    core.has_divider = cpu_config_.has_divider;
    core.predecode = predecode_;
    core.exec_tier = exec_tier_;
    desc.cores.push_back(std::move(core));
    desc.fifo_depth = fifo_depth_;
  }
  const bool multi = desc.cores.size() > 1;

  // 1. Software and per-core skeletons (program, memory, FIFOs, CPU).
  auto state = std::make_unique<State>();
  state->deadlock_threshold = deadlock_threshold_;
  state->gdb_port = gdb_port_;
  state->checkpoint_interval = checkpoint_interval_;
  state->checkpoint_prefix = checkpoint_prefix_;
  for (const machine::CoreDesc& core_desc : desc.cores) {
    assembler::Program program;
    if (!from_machine && image_) {
      program = std::move(*image_);
    } else {
      std::string source;
      if (!from_machine) {
        source = *source_;
      } else if (!core_desc.program.empty()) {
        source = core_desc.program;
      } else {
        std::ifstream in(core_desc.program_file, std::ios::binary);
        if (!in) {
          return Failure::failure("SimSystem: [file-io] cannot read program "
                                  "file '" + core_desc.program_file +
                                  "' for core '" + core_desc.name + "'");
        }
        std::ostringstream text;
        text << in.rdbuf();
        source = text.str();
      }
      Expected<assembler::Program> assembled = assembler::assemble(source);
      if (!assembled) {
        return Failure::failure(
            from_machine
                ? "SimSystem: core '" + core_desc.name +
                      "': program does not assemble: " + assembled.error()
                : "SimSystem: program does not assemble: " + assembled.error());
      }
      program = std::move(assembled).value();
    }

    isa::CpuConfig config = cpu_config_;
    if (from_machine) {
      config = isa::CpuConfig{};
      config.has_barrel_shifter = core_desc.has_barrel_shifter;
      config.has_multiplier = core_desc.has_multiplier;
      config.has_divider = core_desc.has_divider;
    }
    // The FSL channel names (and with them trace/VCD signal names) are
    // scoped by the core name only on real multi-core machines, so a
    // single-core system's output stays byte-identical to before.
    const std::string hub_prefix =
        multi ? core_desc.name + "." : std::string();
    auto core = std::make_unique<State::Core>(
        core_desc.name, std::move(program), config,
        static_cast<u32>(core_desc.memory_bytes), desc.fifo_depth, hub_prefix);
    // The legacy predecode flag dominates: false forces the precise
    // tier regardless of the declared exec_tier.
    core->cpu.set_exec_tier(core_desc.predecode ? core_desc.exec_tier
                                                : iss::ExecTier::kPrecise);
    state->cores.push_back(std::move(core));
  }
  State::Core& c0 = state->c0();

  // 2. Hardware. Shared attachment logic: validate a bundle's channel
  // bindings, then stand up the core's lock-step engine around it.
  const Cycle threshold = deadlock_threshold_;
  const auto attach = [threshold](State::Core& core, HardwareBundle bundle,
                                  const std::string& prefix) -> Status {
    std::set<unsigned> bound;
    unsigned links = 0;
    for (const auto& binding : bundle.channels) {
      if (binding.channel >= fsl::FslHub::kChannels) {
        return Status::failure(
            prefix + "FSL channel " + std::to_string(binding.channel) +
            " is out of range (0.." +
            std::to_string(fsl::FslHub::kChannels - 1) + ")");
      }
      if (!bound.insert(binding.channel).second) {
        return Status::failure(prefix + "FSL channel " +
                               std::to_string(binding.channel) +
                               " is bound twice");
      }
      const FslGateways& io = binding.io;
      if (!io.has_slave() && !io.has_master()) {
        return Status::failure(prefix + "FSL channel " +
                               std::to_string(binding.channel) +
                               " binds no gateways");
      }
      if (io.has_slave() && (io.s_data == nullptr || io.s_exists == nullptr ||
                             io.s_read == nullptr)) {
        return Status::failure(
            prefix + "the slave side of FSL channel " +
            std::to_string(binding.channel) +
            " needs the s_data, s_exists and s_read gateways");
      }
      if (io.has_master() && (io.m_data == nullptr || io.m_write == nullptr)) {
        return Status::failure(prefix + "the master side of FSL channel " +
                               std::to_string(binding.channel) +
                               " needs the m_data and m_write gateways");
      }
      links += (io.has_slave() ? 1u : 0u) + (io.has_master() ? 1u : 0u);
    }
    core.fsl_links += links;
    core.hardware = std::move(bundle.model);
    core.engine.emplace(core.cpu, *core.hardware, core.hub);
    for (const auto& binding : bundle.channels) {
      const FslGateways& io = binding.io;
      if (io.has_slave()) {
        core::SlaveBinding slave;
        slave.channel = binding.channel;
        slave.data = io.s_data;
        slave.exists = io.s_exists;
        slave.control = io.s_control;
        slave.read = io.s_read;
        core.engine->bridge().bind_slave(slave);
      }
      if (io.has_master()) {
        core::MasterBinding master;
        master.channel = binding.channel;
        master.data = io.m_data;
        master.control = io.m_control;
        master.write = io.m_write;
        master.full = io.m_full;
        core.engine->bridge().bind_master(master);
      }
    }
    core.engine->set_quiescence_window(bundle.quiescence);
    core.engine->set_deadlock_threshold(threshold);
    core.engine->set_trace_bus(&core.trace_bus);
    return {};
  };

  if (model_ && factory_) {
    return Failure::failure(
        "SimSystem: both a hardware model and a hardware factory were "
        "given; they are mutually exclusive");
  }
  if (!from_machine) {
    // Legacy path: a ready-made model, or a factory that also carries
    // its own channel bindings, wired onto the (only) core.
    std::unique_ptr<sysgen::Model> model = std::move(model_);
    if (factory_) {
      try {
        HardwareBundle produced = factory_();
        model = std::move(produced.model);
        for (const auto& binding : produced.channels) {
          bindings_.push_back(binding);
        }
      } catch (const std::exception& error) {
        return Failure::failure(std::string("SimSystem: hardware factory "
                                            "failed: ") + error.what());
      }
      if (model == nullptr) {
        return Failure::failure(
            "SimSystem: the hardware factory returned no model");
      }
    }
    if (model == nullptr && !bindings_.empty()) {
      return Failure::failure(
          "SimSystem: bind_fsl was called but no hardware model was given");
    }
    if (model != nullptr) {
      HardwareBundle bundle;
      bundle.model = std::move(model);
      bundle.channels = std::move(bindings_);
      bundle.quiescence = quiescence_;
      if (Status status = attach(c0, std::move(bundle), "SimSystem: ");
          !status.ok) {
        return Failure::failure(status.message);
      }
    }
  } else {
    // Machine path: peripherals resolved against the registry. One
    // hardware model per core — a core's peripherals must be merged
    // into one model type, exactly like one Builder::hardware() call.
    std::set<std::size_t> with_peripheral;
    for (const machine::PeripheralDesc& peripheral : desc.peripherals) {
      const std::size_t index = desc.core_index(peripheral.core);
      if (!with_peripheral.insert(index).second) {
        return Failure::failure("SimSystem: core '" + peripheral.core +
                                "' has more than one peripheral; a core "
                                "hosts at most one hardware model");
      }
      const PeripheralFactory* factory =
          PeripheralRegistry::instance().find(peripheral.type);
      if (factory == nullptr) {
        std::string known;
        for (const std::string& type : PeripheralRegistry::instance().types()) {
          known += known.empty() ? type : ", " + type;
        }
        return Failure::failure(
            "SimSystem: unknown peripheral type '" + peripheral.type +
            "' on core '" + peripheral.core + "'" +
            (known.empty() ? std::string(" (no types are registered; call "
                                         "apps::register_machine_peripherals)")
                           : " (registered: " + known + ")"));
      }
      HardwareBundle bundle;
      try {
        bundle = (*factory)(peripheral);
      } catch (const std::exception& error) {
        return Failure::failure("SimSystem: peripheral '" + peripheral.type +
                                "' on core '" + peripheral.core +
                                "': " + error.what());
      }
      if (bundle.model == nullptr) {
        return Failure::failure("SimSystem: peripheral '" + peripheral.type +
                                "' on core '" + peripheral.core +
                                "' produced no model");
      }
      const std::string prefix =
          "SimSystem: core '" + peripheral.core + "': ";
      if (Status status =
              attach(*state->cores[index], std::move(bundle), prefix);
          !status.ok) {
        return Failure::failure(status.message);
      }
    }
    if (multi) {
      // Every core of a machine needs a lock-step engine for the
      // machine engine to drive; peripheral-less cores get an empty
      // hardware model (zero blocks, zero resources).
      for (auto& core : state->cores) {
        if (core->engine) continue;
        HardwareBundle bundle;
        bundle.model = std::make_unique<sysgen::Model>(core->name + ".none");
        if (Status status =
                attach(*core, std::move(bundle), "SimSystem: ");
            !status.ok) {
          return Failure::failure(status.message);
        }
      }
    }
  }

  // 3. Fault plan, debug-core and machine-wide option checks.
  if (fault_plan_) {
    if (const Status valid = fault::validate_plan(*fault_plan_); !valid.ok) {
      return Failure::failure("SimSystem: " + valid.message);
    }
    if (fault_plan_->core >= desc.cores.size()) {
      return Failure::failure(
          "SimSystem: fault plan targets core " +
          std::to_string(fault_plan_->core) + " but the machine has " +
          std::to_string(desc.cores.size()) + " core(s)");
    }
    if (multi && fault_plan_->trigger == fault::TriggerKind::kPc) {
      return Failure::failure(
          "SimSystem: pc-triggered fault plans are not supported on "
          "multi-core machines (use a cycle trigger)");
    }
    state->fault_core = fault_plan_->core;
    state->injector = std::make_unique<fault::Injector>(*fault_plan_);
  }
  if (gdb_core_ >= desc.cores.size()) {
    return Failure::failure("SimSystem: gdb_core " +
                            std::to_string(gdb_core_) +
                            " is out of range for a machine with " +
                            std::to_string(desc.cores.size()) + " core(s)");
  }
  state->gdb_core = gdb_core_;
  if (opb_) {
    c0.opb = std::move(opb_);
    c0.cpu.attach_opb(c0.opb.get());
  }

  // 4. Observability sinks, one set per core. The buses live inside the
  // heap-allocated core blocks, so the pointers handed to the
  // components survive moves of the SimSystem itself. On multi-core
  // machines file sinks split per core ("t.jsonl" -> "t.cpu1.jsonl")
  // and every event is stamped with its core of origin.
  for (auto& core : state->cores) {
    if (trace_path_) {
      const std::string path =
          multi ? per_core_path(*trace_path_, core->name) : *trace_path_;
      auto sink = std::make_unique<obs::JsonlSink>(path);
      if (!sink->ok()) {
        return Failure::failure("SimSystem: cannot open trace file '" + path +
                                "'");
      }
      sink->set_disassembler(
          [](Addr, Word raw) { return isa::disassemble(raw); });
      core->trace_bus.add_sink(std::move(sink));
    }
    if (vcd_path_) {
      const std::string path =
          multi ? per_core_path(*vcd_path_, core->name) : *vcd_path_;
      auto sink = std::make_unique<obs::VcdSink>(path);
      if (!sink->ok()) {
        return Failure::failure("SimSystem: cannot open VCD file '" + path +
                                "'");
      }
      core->trace_bus.add_sink(std::move(sink));
    }
    if (metrics_) {
      auto registry = std::make_unique<obs::MetricsRegistry>();
      core->metrics = registry.get();
      core->trace_bus.add_sink(std::move(registry));
    }
    if (multi) core->trace_bus.set_origin(core->name.c_str());
    // Always wired (the bus without sinks costs one enabled() load per
    // would-be event), so sinks can also be attached after build() via
    // SimSystem::trace_bus().
    core->cpu.set_trace_bus(&core->trace_bus);
    core->hub.set_trace_bus(&core->trace_bus);
    if (core->opb) core->opb->set_trace_bus(&core->trace_bus);
  }
  for (auto& extra : extra_sinks_) {
    if (extra != nullptr) c0.trace_bus.add_sink(std::move(extra));
  }

  // 5. Load programs, custom instructions, and the machine engine.
  try {
    for (auto& core : state->cores) {
      core->memory.load_program(core->program);
    }
    for (auto& [slot, unit] : custom_) {
      c0.cpu.register_custom_instruction(slot, std::move(unit));
    }
  } catch (const std::exception& error) {
    return Failure::failure(std::string("SimSystem: ") + error.what());
  }
  if (multi) {
    state->machine_engine.emplace(desc.quantum);
    state->machine_engine->set_workers(workers_);
    state->machine_engine->set_deadlock_threshold(deadlock_threshold_);
    for (auto& core : state->cores) {
      state->machine_engine->add_core(core->name, core->cpu, *core->engine,
                                      core->hub);
    }
    for (const machine::LinkDesc& link : desc.links) {
      const std::size_t from = desc.core_index(link.from);
      const std::size_t to = desc.core_index(link.to);
      state->cores[from]->fsl_links += 1;
      state->cores[to]->fsl_links += 1;
      if (Status status = state->machine_engine->link(
              from, link.from_channel, to, link.to_channel);
          !status.ok) {
        return Failure::failure("SimSystem: " + status.message);
      }
    }
  }
  state->desc = std::move(desc);

  SimSystem system(std::move(state));
  system.reset();
  return system;
}

}  // namespace mbcosim::sim
