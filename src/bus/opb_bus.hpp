// Cycle-accurate arithmetic-level model of the IBM On-chip Peripheral Bus
// (OPB). The paper's environment supports "various bus protocols, such as
// the IBM on-chip peripheral bus (OPB) and the Xilinx fast simplex link"
// (Section III-A); FSL is the fast path used by both applications, OPB is
// the general memory-mapped path. Only the arithmetic aspects of the
// protocol are modelled: address decode, single-beat reads/writes, and
// per-access wait states charged to the processor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/trace_bus.hpp"

namespace mbcosim::bus {

/// A device attached to the OPB. Offsets are byte offsets from the
/// device's base address, always word-aligned by the bus.
class OpbPeripheral {
 public:
  virtual ~OpbPeripheral() = default;
  [[nodiscard]] virtual Word read(Addr offset) = 0;
  virtual void write(Addr offset, Word value) = 0;
  /// Extra wait states this device adds beyond the bus overhead.
  [[nodiscard]] virtual Cycle device_wait_states() const { return 0; }

  /// Checkpoint hooks. Stateless devices inherit the empty defaults;
  /// stateful ones serialize their registers (see DESIGN.md §11).
  virtual void save_state(ckpt::Writer&) const {}
  [[nodiscard]] virtual bool load_state(ckpt::Reader&) { return true; }
};

/// Result of a bus transaction.
struct BusResponse {
  bool ok = false;      ///< address decoded to a device, transfer completed
  Word data = 0;        ///< read data (reads only)
  Cycle wait_states = 0;  ///< cycles beyond the base access charged to CPU
};

/// Armed fault-injection behaviour of the bus (src/fault's view of a
/// failing OPB slave or arbiter). Held behind a null-by-default pointer
/// so the un-faulted path pays one predictable branch per decoded
/// transaction — same contract as the trace bus.
struct OpbFaultControls {
  enum class Mode : u8 {
    kNone,
    kError,    ///< slave raises the OPB error acknowledge (ok = false)
    kTimeout,  ///< no acknowledge: arbiter times the transfer out
  };
  Mode mode = Mode::kNone;
  u64 countdown = 0;   ///< decoded transactions to let through first
  bool fired = false;  ///< set once the one-shot fault has hit
};

class OpbBus {
 public:
  /// OPB single-beat transfers cost a bus arbitration + address phase;
  /// two wait states is typical for the MicroBlaze OPB master.
  static constexpr Cycle kBusWaitStates = 2;
  /// Wait states charged when the arbiter's watchdog times a transfer
  /// out (OPB timeout counter: 16 cycles of no slave acknowledge).
  static constexpr Cycle kTimeoutWaitStates = 16;

  /// Attach a peripheral at [base, base + size). The bus owns it.
  /// Ranges must be word-aligned and non-overlapping.
  void map(std::string name, Addr base, u32 size,
           std::unique_ptr<OpbPeripheral> peripheral);

  [[nodiscard]] bool decodes(Addr addr) const noexcept;

  [[nodiscard]] BusResponse read(Addr addr);
  [[nodiscard]] BusResponse write(Addr addr, Word value);

  [[nodiscard]] std::size_t device_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] u64 transactions() const noexcept { return transactions_; }

  /// Attach the observability bus (nullptr to detach): every decoded
  /// transaction is reported with its wait states, timestamped with the
  /// bus's simulated-time cursor (driven by the processor).
  void set_trace_bus(obs::TraceBus* bus) noexcept { trace_bus_ = bus; }

  // -- fault injection (src/fault) -------------------------------------
  /// Arm fault behaviour on the bus (replaces any previous arming).
  void arm_fault(const OpbFaultControls& controls) {
    fault_ = std::make_unique<OpbFaultControls>(controls);
  }
  /// Return the bus to fault-free operation.
  void clear_fault() noexcept { fault_.reset(); }
  /// Armed controls, or nullptr when the bus is fault-free.
  [[nodiscard]] const OpbFaultControls* fault() const noexcept {
    return fault_.get();
  }

  /// Checkpoint the transaction counter, armed fault controls and every
  /// mapped device's state (the memory map itself is structural).
  /// load_state returns false when the snapshot maps a different number
  /// of devices or a device refuses its slice.
  void save_state(ckpt::Writer& writer) const {
    writer.write_u64(transactions_);
    writer.write_bool(fault_ != nullptr);
    if (fault_ != nullptr) {
      writer.write_u8(static_cast<u8>(fault_->mode));
      writer.write_u64(fault_->countdown);
      writer.write_bool(fault_->fired);
    }
    writer.write_u64(regions_.size());
    for (const Region& region : regions_) {
      region.peripheral->save_state(writer);
    }
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) {
    transactions_ = reader.read_u64();
    if (reader.read_bool()) {
      OpbFaultControls controls;
      const u8 mode = reader.read_u8();
      if (mode > static_cast<u8>(OpbFaultControls::Mode::kTimeout)) {
        return false;
      }
      controls.mode = static_cast<OpbFaultControls::Mode>(mode);
      controls.countdown = reader.read_u64();
      controls.fired = reader.read_bool();
      fault_ = std::make_unique<OpbFaultControls>(controls);
    } else {
      fault_.reset();
    }
    if (reader.read_u64() != regions_.size()) return false;
    for (Region& region : regions_) {
      if (!region.peripheral->load_state(reader)) return false;
    }
    return reader.ok();
  }

 private:
  void emit(obs::EventKind kind, Addr addr, Cycle wait_states) const;

  /// Consume the armed one-shot fault for one decoded transaction.
  /// Returns the mode that fires now (kNone when nothing fires).
  [[nodiscard]] OpbFaultControls::Mode consume_fault() noexcept;

  struct Region {
    std::string name;
    Addr base = 0;
    u32 size = 0;
    std::unique_ptr<OpbPeripheral> peripheral;
  };
  [[nodiscard]] Region* find(Addr addr) noexcept;
  [[nodiscard]] const Region* find(Addr addr) const noexcept;

  std::vector<Region> regions_;
  u64 transactions_ = 0;
  obs::TraceBus* trace_bus_ = nullptr;
  std::unique_ptr<OpbFaultControls> fault_;  ///< null = fault-free
};

// ---------------------------------------------------------------------------
// Stock peripherals
// ---------------------------------------------------------------------------

/// Word-addressed scratchpad register file.
class OpbScratchpad : public OpbPeripheral {
 public:
  explicit OpbScratchpad(u32 words) : regs_(words, 0) {}
  [[nodiscard]] Word read(Addr offset) override {
    return regs_.at(offset / 4);
  }
  void write(Addr offset, Word value) override {
    regs_.at(offset / 4) = value;
  }
  void save_state(ckpt::Writer& writer) const override {
    writer.write_u64(regs_.size());
    for (const Word reg : regs_) writer.write_u32(reg);
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    if (reader.read_u64() != regs_.size()) return false;
    for (Word& reg : regs_) reg = reader.read_u32();
    return reader.ok();
  }

 private:
  std::vector<Word> regs_;
};

/// Free-running cycle counter with a latch/clear register, like the OPB
/// timer cores shipped with EDK. Offset 0: counter low word (read),
/// write anything to clear. The bus owner advances it via tick().
class OpbTimer : public OpbPeripheral {
 public:
  void tick(Cycle cycles = 1) noexcept { counter_ += cycles; }
  [[nodiscard]] Word read(Addr offset) override {
    return offset == 0 ? static_cast<Word>(counter_)
                       : static_cast<Word>(counter_ >> 32);
  }
  void write(Addr, Word) override { counter_ = 0; }
  void save_state(ckpt::Writer& writer) const override {
    writer.write_u64(counter_);
  }
  [[nodiscard]] bool load_state(ckpt::Reader& reader) override {
    counter_ = reader.read_u64();
    return reader.ok();
  }

 private:
  Cycle counter_ = 0;
};

}  // namespace mbcosim::bus
