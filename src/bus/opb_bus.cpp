#include "bus/opb_bus.hpp"

#include <algorithm>

namespace mbcosim::bus {

void OpbBus::map(std::string name, Addr base, u32 size,
                 std::unique_ptr<OpbPeripheral> peripheral) {
  if (peripheral == nullptr) {
    throw SimError("OpbBus: null peripheral '" + name + "'");
  }
  if ((base % 4) != 0 || (size % 4) != 0 || size == 0) {
    throw SimError("OpbBus: region '" + name +
                   "' must be word-aligned and nonempty");
  }
  for (const Region& region : regions_) {
    const bool overlap = base < region.base + region.size &&
                         region.base < base + size;
    if (overlap) {
      throw SimError("OpbBus: region '" + name + "' overlaps '" +
                     region.name + "'");
    }
  }
  regions_.push_back(Region{std::move(name), base, size,
                            std::move(peripheral)});
}

bool OpbBus::decodes(Addr addr) const noexcept {
  return find(addr) != nullptr;
}

OpbBus::Region* OpbBus::find(Addr addr) noexcept {
  for (Region& region : regions_) {
    if (addr >= region.base && addr - region.base < region.size) {
      return &region;
    }
  }
  return nullptr;
}

const OpbBus::Region* OpbBus::find(Addr addr) const noexcept {
  for (const Region& region : regions_) {
    if (addr >= region.base && addr - region.base < region.size) {
      return &region;
    }
  }
  return nullptr;
}

void OpbBus::emit(obs::EventKind kind, Addr addr, Cycle wait_states) const {
  obs::TraceEvent event;
  event.kind = kind;
  event.cycle = trace_bus_->time();
  event.addr = addr;
  event.wait_states = wait_states;
  trace_bus_->emit(event);
}

OpbFaultControls::Mode OpbBus::consume_fault() noexcept {
  if (fault_ == nullptr || fault_->fired ||
      fault_->mode == OpbFaultControls::Mode::kNone) {
    return OpbFaultControls::Mode::kNone;
  }
  if (fault_->countdown > 0) {
    --fault_->countdown;
    return OpbFaultControls::Mode::kNone;
  }
  fault_->fired = true;
  return fault_->mode;
}

BusResponse OpbBus::read(Addr addr) {
  Region* region = find(addr);
  if (region == nullptr) return BusResponse{};
  ++transactions_;
  if (const auto mode = consume_fault();
      mode != OpbFaultControls::Mode::kNone) [[unlikely]] {
    BusResponse response;  // ok = false: error acknowledge or timeout
    response.wait_states = mode == OpbFaultControls::Mode::kTimeout
                               ? kTimeoutWaitStates
                               : kBusWaitStates;
    return response;
  }
  const Addr offset = (addr - region->base) & ~Addr{3};
  BusResponse response;
  response.ok = true;
  response.data = region->peripheral->read(offset);
  response.wait_states =
      kBusWaitStates + region->peripheral->device_wait_states();
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kOpbRead, addr, response.wait_states);
  }
  return response;
}

BusResponse OpbBus::write(Addr addr, Word value) {
  Region* region = find(addr);
  if (region == nullptr) return BusResponse{};
  ++transactions_;
  if (const auto mode = consume_fault();
      mode != OpbFaultControls::Mode::kNone) [[unlikely]] {
    BusResponse response;  // ok = false; the write never reaches the slave
    response.wait_states = mode == OpbFaultControls::Mode::kTimeout
                               ? kTimeoutWaitStates
                               : kBusWaitStates;
    return response;
  }
  const Addr offset = (addr - region->base) & ~Addr{3};
  region->peripheral->write(offset, value);
  BusResponse response;
  response.ok = true;
  response.wait_states =
      kBusWaitStates + region->peripheral->device_wait_states();
  if (trace_bus_ != nullptr && trace_bus_->enabled()) {
    emit(obs::EventKind::kOpbWrite, addr, response.wait_states);
  }
  return response;
}

}  // namespace mbcosim::bus
