// Error handling: construction / configuration errors throw SimError;
// hot-path operations report through status enums or Expected<T>.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mbcosim {

/// Exception thrown for configuration and programming errors (bad block
/// graphs, malformed assembly, out-of-range parameters). Simulation-time
/// conditions (bus errors, illegal opcodes) are modelled as architectural
/// events instead, never as C++ exceptions.
class SimError : public std::runtime_error {
 public:
  explicit SimError(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Success-or-error-message result for operations with no value to
/// return (e.g. "did this sink's output stream fail?"). Default state
/// is success; a failing component latches the *first* failure message
/// so the error surfaces exactly once instead of repeating per event.
struct Status {
  bool ok = true;
  std::string message;

  static Status failure(std::string text) {
    return Status{false, std::move(text)};
  }
  explicit operator bool() const noexcept { return ok; }
};

/// Lightweight expected-or-error-message result for parsing layers.
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Expected failure(std::string message) {
    return Expected(ErrorMessage{std::move(message)});
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw SimError("Expected::value on error: " + error());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw SimError("Expected::value on error: " + error());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const std::string& error() const {
    static const std::string empty;
    if (ok()) return empty;
    return std::get<ErrorMessage>(storage_).text;
  }

 private:
  /// Distinct wrapper so Expected<std::string> is well-formed.
  struct ErrorMessage {
    std::string text;
  };
  explicit Expected(ErrorMessage message) : storage_(std::move(message)) {}
  std::variant<T, ErrorMessage> storage_;
};

}  // namespace mbcosim
