// Deterministic pseudo-random generator for workload synthesis and
// property-based tests. splitmix64 seeding + xoshiro256** core; every
// experiment in bench/ derives its inputs from fixed seeds so runs are
// reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace mbcosim {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept {
    // splitmix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  u64 next_u64() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() noexcept { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be nonzero. Widening-multiply
  /// reduction: the high 64 bits of a 128-bit product, so the result
  /// comes from the generator's high bits (xoshiro's weakest bits are
  /// the low ones) and the bias stays bounded by bound/2^64.
  u64 next_below(u64 bound) noexcept {
    const auto product =
        static_cast<unsigned __int128>(next_u64()) *
        static_cast<unsigned __int128>(bound);
    return static_cast<u64>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 next_in(i64 lo, i64 hi) noexcept {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Raw xoshiro256** state, for checkpointing mid-stream generators.
  [[nodiscard]] std::array<u64, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<u64, 4>& state) noexcept {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  u64 state_[4]{};
};

}  // namespace mbcosim
