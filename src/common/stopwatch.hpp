// Wall-clock stopwatch for the simulation-speed experiments (Table I / II).
#pragma once

#include <chrono>

namespace mbcosim {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbcosim
