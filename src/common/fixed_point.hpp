// Fixed-point arithmetic in the style of Xilinx System Generator's
// Fix/UFix types. The sysgen block library (src/sysgen) computes on these
// values: this is the "arithmetic aspect of the low-level implementations"
// that the paper's high-level simulation captures (Section I).
//
// A value with format (sign, word_bits, frac_bits) stores an integer raw
// code on word_bits bits; the represented value is raw / 2^frac_bits.
// Arithmetic grows precision exactly (full-precision add/sub/mul) and
// explicit casts apply a quantization mode (truncate / round) followed by
// an overflow mode (wrap / saturate), matching the hardware semantics of
// the corresponding FPGA arithmetic cores.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace mbcosim {

enum class Signedness : u8 { kUnsigned, kSigned };
enum class Overflow : u8 { kWrap, kSaturate };
enum class Quantization : u8 { kTruncate, kRoundHalfUp };

/// Number format of a fixed-point signal.
struct FixFormat {
  Signedness sign = Signedness::kSigned;
  u8 word_bits = 32;  ///< total width in [1, 63]
  u8 frac_bits = 0;   ///< binary point position in [0, word_bits]

  friend bool operator==(const FixFormat&, const FixFormat&) = default;

  /// Throws SimError when the format is outside the supported envelope.
  void validate() const;

  [[nodiscard]] i64 max_raw() const noexcept;
  [[nodiscard]] i64 min_raw() const noexcept;
  [[nodiscard]] double resolution() const noexcept;  ///< 2^-frac_bits
  [[nodiscard]] std::string to_string() const;

  static constexpr FixFormat signed_fix(u8 word, u8 frac) {
    return FixFormat{Signedness::kSigned, word, frac};
  }
  static constexpr FixFormat unsigned_fix(u8 word, u8 frac) {
    return FixFormat{Signedness::kUnsigned, word, frac};
  }
  /// Plain two's-complement integer of `word` bits.
  static constexpr FixFormat integer(u8 word) {
    return FixFormat{Signedness::kSigned, word, 0};
  }
};

/// A fixed-point value: raw integer code + format. Raw codes are kept
/// sign-extended (signed) or zero-extended (unsigned) in an i64 so host
/// arithmetic is exact for all supported widths.
class Fix {
 public:
  /// Zero in the default 32-bit signed integer format.
  Fix() noexcept : fmt_{}, raw_{0} {}

  /// Value from a raw code; the code is masked/extended to the format.
  static Fix from_raw(FixFormat fmt, i64 raw);

  /// Quantize a real number into the format (round-half-up, saturate).
  static Fix from_double(FixFormat fmt, double value);

  /// Exact integer in the given format (throws SimError on overflow).
  static Fix from_int(FixFormat fmt, i64 value);

  [[nodiscard]] const FixFormat& format() const noexcept { return fmt_; }
  [[nodiscard]] i64 raw() const noexcept { return raw_; }
  [[nodiscard]] double to_double() const noexcept;
  /// Raw code truncated to the low word_bits, as it would appear on a bus.
  [[nodiscard]] u64 raw_bits() const noexcept;

  [[nodiscard]] bool is_zero() const noexcept { return raw_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return raw_ < 0; }

  /// Full-precision arithmetic: the result format grows so no information
  /// is lost (this mirrors System Generator's "full" precision option).
  [[nodiscard]] Fix add_full(const Fix& other) const;
  [[nodiscard]] Fix sub_full(const Fix& other) const;
  [[nodiscard]] Fix mul_full(const Fix& other) const;
  [[nodiscard]] Fix negate_full() const;

  /// Arithmetic shift right by `amount` bits (>= 0): moves the binary
  /// point, i.e. an exact division by 2^amount with format growth.
  [[nodiscard]] Fix shift_right_exact(unsigned amount) const;
  /// Exact multiply by 2^amount with format growth.
  [[nodiscard]] Fix shift_left_exact(unsigned amount) const;

  /// Hardware-style shift that keeps the format: bits fall off the end.
  [[nodiscard]] Fix shift_right_keep_format(unsigned amount) const;

  /// Convert to another format applying quantization then overflow
  /// handling, exactly as a System Generator "convert" block does.
  [[nodiscard]] Fix cast(FixFormat to, Quantization q = Quantization::kTruncate,
                         Overflow o = Overflow::kWrap) const;

  /// Numeric comparison across formats (exact).
  [[nodiscard]] std::strong_ordering compare(const Fix& other) const noexcept;
  friend bool operator==(const Fix& a, const Fix& b) noexcept {
    return a.compare(b) == std::strong_ordering::equal;
  }
  friend bool operator<(const Fix& a, const Fix& b) noexcept {
    return a.compare(b) == std::strong_ordering::less;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Fix(FixFormat fmt, i64 raw) noexcept : fmt_(fmt), raw_(raw) {}
  static FixFormat common_addsub_format(const FixFormat& a, const FixFormat& b);

  FixFormat fmt_;
  i64 raw_;
};

std::ostream& operator<<(std::ostream& os, const Fix& value);
std::ostream& operator<<(std::ostream& os, const FixFormat& fmt);

}  // namespace mbcosim
