#include "common/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace mbcosim {

namespace {
using i128 = __int128;

i64 clamp_to(i64 value, i64 lo, i64 hi) noexcept {
  return std::min(std::max(value, lo), hi);
}
}  // namespace

void FixFormat::validate() const {
  if (word_bits < 1 || word_bits > 63) {
    throw SimError("FixFormat: word_bits must be in [1, 63], got " +
                   std::to_string(int(word_bits)));
  }
  if (frac_bits > word_bits) {
    throw SimError("FixFormat: frac_bits (" + std::to_string(int(frac_bits)) +
                   ") exceeds word_bits (" + std::to_string(int(word_bits)) +
                   ")");
  }
  if (sign == Signedness::kSigned && word_bits < 1) {
    throw SimError("FixFormat: signed formats need at least 1 bit");
  }
}

i64 FixFormat::max_raw() const noexcept {
  if (sign == Signedness::kSigned) {
    return static_cast<i64>(low_mask64(word_bits - 1u));
  }
  return static_cast<i64>(low_mask64(word_bits));
}

i64 FixFormat::min_raw() const noexcept {
  if (sign == Signedness::kSigned) {
    return -static_cast<i64>(u64{1} << (word_bits - 1u));
  }
  return 0;
}

double FixFormat::resolution() const noexcept {
  return std::ldexp(1.0, -int(frac_bits));
}

std::string FixFormat::to_string() const {
  std::ostringstream os;
  os << (sign == Signedness::kSigned ? "Fix" : "UFix") << int(word_bits) << "_"
     << int(frac_bits);
  return os.str();
}

Fix Fix::from_raw(FixFormat fmt, i64 raw) {
  fmt.validate();
  const u64 masked = static_cast<u64>(raw) & low_mask64(fmt.word_bits);
  const i64 extended = fmt.sign == Signedness::kSigned
                           ? sign_extend64(masked, fmt.word_bits)
                           : static_cast<i64>(masked);
  return Fix(fmt, extended);
}

Fix Fix::from_double(FixFormat fmt, double value) {
  fmt.validate();
  const double scaled = std::ldexp(value, int(fmt.frac_bits));
  // Round half away from zero, then saturate, matching SysGen gateway-in
  // defaults with saturation enabled.
  const double rounded = std::nearbyint(scaled);
  i64 raw;
  if (rounded >= static_cast<double>(fmt.max_raw())) {
    raw = fmt.max_raw();
  } else if (rounded <= static_cast<double>(fmt.min_raw())) {
    raw = fmt.min_raw();
  } else {
    raw = static_cast<i64>(rounded);
  }
  return Fix(fmt, raw);
}

Fix Fix::from_int(FixFormat fmt, i64 value) {
  fmt.validate();
  if (fmt.frac_bits != 0) {
    throw SimError("Fix::from_int requires an integer format, got " +
                   fmt.to_string());
  }
  if (value > fmt.max_raw() || value < fmt.min_raw()) {
    throw SimError("Fix::from_int: " + std::to_string(value) +
                   " does not fit " + fmt.to_string());
  }
  return Fix(fmt, value);
}

double Fix::to_double() const noexcept {
  return std::ldexp(static_cast<double>(raw_), -int(fmt_.frac_bits));
}

u64 Fix::raw_bits() const noexcept {
  return static_cast<u64>(raw_) & low_mask64(fmt_.word_bits);
}

FixFormat Fix::common_addsub_format(const FixFormat& a, const FixFormat& b) {
  // Integer bits grow to the max of the operands plus one carry bit;
  // fraction bits grow to the max. Result is signed if either operand is
  // signed (an unsigned operand gains a bit when promoted to signed).
  const bool signed_result =
      a.sign == Signedness::kSigned || b.sign == Signedness::kSigned;
  auto int_bits = [signed_result](const FixFormat& f) {
    int ib = int(f.word_bits) - int(f.frac_bits);
    if (signed_result && f.sign == Signedness::kUnsigned) ib += 1;
    return ib;
  };
  const int frac = std::max(int(a.frac_bits), int(b.frac_bits));
  const int ints = std::max(int_bits(a), int_bits(b)) + 1;
  const int word = std::min(frac + ints, 63);
  FixFormat result{signed_result ? Signedness::kSigned : Signedness::kUnsigned,
                   static_cast<u8>(word), static_cast<u8>(frac)};
  result.validate();
  return result;
}

Fix Fix::add_full(const Fix& other) const {
  const FixFormat out = common_addsub_format(fmt_, other.fmt_);
  const i64 a = raw_ << (out.frac_bits - fmt_.frac_bits);
  const i64 b = other.raw_ << (out.frac_bits - other.fmt_.frac_bits);
  return Fix(out, a + b);
}

Fix Fix::sub_full(const Fix& other) const {
  FixFormat out = common_addsub_format(fmt_, other.fmt_);
  out.sign = Signedness::kSigned;  // subtraction can go negative
  out.validate();
  const i64 a = raw_ << (out.frac_bits - fmt_.frac_bits);
  const i64 b = other.raw_ << (out.frac_bits - other.fmt_.frac_bits);
  return Fix(out, a - b);
}

Fix Fix::mul_full(const Fix& other) const {
  const bool signed_result = fmt_.sign == Signedness::kSigned ||
                             other.fmt_.sign == Signedness::kSigned;
  const int word =
      std::min(int(fmt_.word_bits) + int(other.fmt_.word_bits), 63);
  const int frac = int(fmt_.frac_bits) + int(other.fmt_.frac_bits);
  FixFormat out{signed_result ? Signedness::kSigned : Signedness::kUnsigned,
                static_cast<u8>(word), static_cast<u8>(std::min(frac, word))};
  out.validate();
  const i128 product = i128(raw_) * i128(other.raw_);
  // The supported envelope (<= 63-bit operand products fitting in 126 bits,
  // results capped at 63 bits) is enforced by clamping; block authors who
  // need more width must cast down first.
  const i64 raw = clamp_to(
      static_cast<i64>(std::min<i128>(
          std::max<i128>(product, i128(out.min_raw())), i128(out.max_raw()))),
      out.min_raw(), out.max_raw());
  return Fix(out, raw);
}

Fix Fix::negate_full() const {
  FixFormat out = fmt_;
  out.sign = Signedness::kSigned;
  out.word_bits = static_cast<u8>(std::min(int(out.word_bits) + 1, 63));
  out.validate();
  return Fix(out, -raw_);
}

Fix Fix::shift_right_exact(unsigned amount) const {
  FixFormat out = fmt_;
  const int frac = int(fmt_.frac_bits) + int(amount);
  const int word = int(fmt_.word_bits) + int(amount);
  if (word > 63) {
    throw SimError("Fix::shift_right_exact: result exceeds 63 bits");
  }
  out.frac_bits = static_cast<u8>(frac);
  out.word_bits = static_cast<u8>(word);
  out.validate();
  return Fix(out, raw_);
}

Fix Fix::shift_left_exact(unsigned amount) const {
  FixFormat out = fmt_;
  const int word = int(fmt_.word_bits) + int(amount);
  if (word > 63) {
    throw SimError("Fix::shift_left_exact: result exceeds 63 bits");
  }
  out.word_bits = static_cast<u8>(word);
  out.validate();
  return Fix(out, raw_ << amount);
}

Fix Fix::shift_right_keep_format(unsigned amount) const {
  if (amount >= 63) return Fix(fmt_, raw_ < 0 ? -1 : 0);
  return Fix(fmt_, raw_ >> amount);
}

Fix Fix::cast(FixFormat to, Quantization q, Overflow o) const {
  to.validate();
  // Step 1: re-scale the raw code to the destination binary point.
  i128 scaled = raw_;
  const int shift = int(to.frac_bits) - int(fmt_.frac_bits);
  if (shift >= 0) {
    scaled <<= shift;
  } else {
    const int drop = -shift;
    switch (q) {
      case Quantization::kTruncate:
        scaled >>= drop;  // arithmetic shift: floor
        break;
      case Quantization::kRoundHalfUp: {
        const i128 half = i128(1) << (drop - 1);
        scaled = (scaled + half) >> drop;
        break;
      }
    }
  }
  // Step 2: overflow handling into the destination width.
  const i128 max_raw = to.max_raw();
  const i128 min_raw = to.min_raw();
  i64 raw;
  if (scaled <= max_raw && scaled >= min_raw) {
    raw = static_cast<i64>(scaled);
  } else if (o == Overflow::kSaturate) {
    raw = scaled > max_raw ? to.max_raw() : to.min_raw();
  } else {
    const u64 masked = static_cast<u64>(scaled) & low_mask64(to.word_bits);
    raw = to.sign == Signedness::kSigned ? sign_extend64(masked, to.word_bits)
                                         : static_cast<i64>(masked);
  }
  return Fix(to, raw);
}

std::strong_ordering Fix::compare(const Fix& other) const noexcept {
  // Align binary points exactly in 128-bit arithmetic.
  const int frac = std::max(int(fmt_.frac_bits), int(other.fmt_.frac_bits));
  const i128 a = i128(raw_) << (frac - fmt_.frac_bits);
  const i128 b = i128(other.raw_) << (frac - other.fmt_.frac_bits);
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Fix::to_string() const {
  std::ostringstream os;
  os << to_double() << " (" << fmt_.to_string() << " raw=" << raw_ << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Fix& value) {
  return os << value.to_string();
}

std::ostream& operator<<(std::ostream& os, const FixFormat& fmt) {
  return os << fmt.to_string();
}

}  // namespace mbcosim
