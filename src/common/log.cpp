#include "common/log.hpp"

#include <cstdio>
#include <utility>

namespace mbcosim {

Log::State& Log::state() noexcept {
  static State instance;
  return instance;
}

Log::Sink Log::set_sink(Sink sink) {
  Sink previous = std::move(state().sink);
  state().sink = std::move(sink);
  return previous;
}

const char* Log::level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  if (state().sink) {
    state().sink(level, message);
    return;
  }
  std::fprintf(stderr, "[mbcosim %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mbcosim
