// Fundamental scalar types shared by every mbcosim module.
#pragma once

#include <cstdint>

namespace mbcosim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A 32-bit machine word as seen by the soft processor and its buses.
using Word = u32;

/// Simulated clock-cycle count. All simulators in the project express
/// progress in cycles of the single system clock (50 MHz in the paper's
/// experiments).
using Cycle = u64;

/// Byte address in the processor's LMB address space.
using Addr = u32;

/// Clock frequency used throughout the paper's evaluation (Section IV).
inline constexpr double kClockHz = 50.0e6;

/// Convert a cycle count into simulated microseconds at the system clock.
constexpr double cycles_to_usec(Cycle cycles) noexcept {
  return static_cast<double>(cycles) / kClockHz * 1.0e6;
}

}  // namespace mbcosim
