// FPGA resource vector: the three quantities the paper's rapid resource
// estimation tracks for Xilinx Virtex-II Pro parts (Section III-C):
// slices, BRAM blocks, and embedded 18x18 multipliers.
#pragma once

#include <string>

#include "common/types.hpp"

namespace mbcosim {

struct ResourceVec {
  u32 slices = 0;
  u32 brams = 0;
  u32 mult18s = 0;

  friend bool operator==(const ResourceVec&, const ResourceVec&) = default;

  ResourceVec& operator+=(const ResourceVec& other) noexcept {
    slices += other.slices;
    brams += other.brams;
    mult18s += other.mult18s;
    return *this;
  }
  friend ResourceVec operator+(ResourceVec a, const ResourceVec& b) noexcept {
    a += b;
    return a;
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(slices) + " slices, " + std::to_string(brams) +
           " BRAMs, " + std::to_string(mult18s) + " MULT18x18s";
  }
};

}  // namespace mbcosim
