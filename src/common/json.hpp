// Hand-rolled integer-only JSON: the one parser/serializer the whole
// system shares. It grew up as the machine-description front end
// (src/machine) and now also carries the simulation server's request/
// response protocol (src/server) — the grammar both need is tiny:
// objects, arrays, strings, integers, booleans, null. Numbers are
// integers only; every quantity either layer exchanges (cycle counts,
// byte sizes, session ids, channel numbers) is integral, and rejecting
// floats keeps serialize/parse round-trips exact. No third-party
// dependency — the container bakes in none.
//
// Error channel: parse() never throws. Syntax problems come back as
// "[json-syntax] <what> at line L, column C". The get_* field helpers
// return "[missing-field]" / "[bad-field]" diagnostics, the same stable
// bracketed-code convention as machine::kDescErrorCodes and
// server::kSrvErrorCodes.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace mbcosim::common::json {

struct Value;
using Array = std::vector<Value>;
/// Key order is irrelevant for every schema built on this (machine
/// descriptions, server requests), so a sorted map keeps lookup simple
/// and makes dump() output canonical.
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, long long, std::string, Array, Object>
      data = nullptr;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(data);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<long long>(data);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(data);
  }

  // Unchecked accessors; call the matching is_*() first.
  [[nodiscard]] const Object& object() const {
    return std::get<Object>(data);
  }
  [[nodiscard]] const Array& array() const { return std::get<Array>(data); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(data);
  }
  [[nodiscard]] long long integer() const { return std::get<long long>(data); }
  [[nodiscard]] bool boolean() const { return std::get<bool>(data); }
};

/// Parse one complete JSON document (integers only; trailing characters
/// rejected). Failures are "[json-syntax] ..." with line/column.
[[nodiscard]] Expected<Value> parse(const std::string& text);

/// Serialize a Value back to compact JSON (no whitespace, object keys
/// in sorted order). parse(dump(v)) reproduces v exactly.
[[nodiscard]] std::string dump(const Value& value);

/// Escape `text` for embedding between the quotes of a JSON string
/// literal (quotes, backslashes, control characters).
[[nodiscard]] std::string escape(const std::string& text);

// ---------------------------------------------------------------------------
// Field helpers: schema readers over an Object with per-field
// diagnostics. Each returns an empty string on success (including an
// absent optional key, which leaves `out` untouched), or a
// "[missing-field]" / "[bad-field]" message naming the key and, when
// `context` is non-empty, where it was expected ("core 'feeder'").

[[nodiscard]] std::string get_string(const Object& object, const char* key,
                                     const std::string& context, bool required,
                                     std::string& out);
[[nodiscard]] std::string get_int(const Object& object, const char* key,
                                  const std::string& context, bool required,
                                  long long& out);
[[nodiscard]] std::string get_bool(const Object& object, const char* key,
                                   const std::string& context, bool& out);
/// get_int plus a non-negativity check; `fallback` seeds `out` when the
/// key is absent (and not required).
[[nodiscard]] std::string get_unsigned(const Object& object, const char* key,
                                       const std::string& context,
                                       bool required, long long fallback,
                                       unsigned& out);

}  // namespace mbcosim::common::json
