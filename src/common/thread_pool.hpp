// A fixed pool of std::jthread workers draining a FIFO work queue.
// Shared by the design-space sweep engine (sim::Sweep, one job per
// configuration point) and the manycore co-simulation engine
// (core::ManyCoreEngine, one job per core per quantum round).
// Destroying the pool stops the workers after their current job; jobs
// still queued are abandoned (call wait_idle() first to drain).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mbcosim {

class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);
  /// Block until the queue is empty and every worker is idle.
  void wait_idle();
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void work(std::stop_token token);

  std::mutex mutex_;
  std::condition_variable_any wake_;   ///< workers wait here for jobs
  std::condition_variable idle_;       ///< wait_idle() waits here
  std::deque<std::function<void()>> queue_;
  unsigned running_ = 0;
  std::vector<std::jthread> workers_;  ///< last member: joins first
};

}  // namespace mbcosim
