#include "common/thread_pool.hpp"

#include <algorithm>

namespace mbcosim {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned count = threads == 0 ? std::thread::hardware_concurrency() : threads;
  count = std::max(count, 1u);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this](std::stop_token token) { work(token); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& worker : workers_) worker.request_stop();
  wake_.notify_all();
  // std::jthread joins in workers_'s destructor.
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::work(std::stop_token token) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, token, [this] { return !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested, nothing left to do
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    job();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_.notify_all();
  }
}

}  // namespace mbcosim
