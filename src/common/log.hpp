// Minimal leveled logger. Simulators log through this so tests can silence
// or capture output deterministically.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace mbcosim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logging configuration. Not thread-safe by design: all
/// simulators in this project are single-threaded (see DESIGN.md §6).
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static LogLevel level() noexcept { return state().level; }
  static void set_level(LogLevel level) noexcept { state().level = level; }

  /// Replace the output sink (default: stderr). Returns the previous sink.
  static Sink set_sink(Sink sink);

  static bool enabled(LogLevel level) noexcept {
    return level >= state().level && state().level != LogLevel::kOff;
  }

  static void write(LogLevel level, std::string_view message);

  static const char* level_name(LogLevel level) noexcept;

 private:
  struct State {
    LogLevel level = LogLevel::kWarn;
    Sink sink;  // empty => stderr
  };
  static State& state() noexcept;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mbcosim

#define MBC_LOG(level)                        \
  if (!::mbcosim::Log::enabled(level)) {      \
  } else                                      \
    ::mbcosim::detail::LogLine(level)

#define MBC_TRACE MBC_LOG(::mbcosim::LogLevel::kTrace)
#define MBC_DEBUG MBC_LOG(::mbcosim::LogLevel::kDebug)
#define MBC_INFO MBC_LOG(::mbcosim::LogLevel::kInfo)
#define MBC_WARN MBC_LOG(::mbcosim::LogLevel::kWarn)
#define MBC_ERROR MBC_LOG(::mbcosim::LogLevel::kError)
