#include "common/json.hpp"

#include <cctype>
#include <cstdio>

namespace mbcosim::common::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parse the whole document into `out`; empty string on success,
  /// "[json-syntax] ..." otherwise (same convention as the parse_*
  /// helpers below).
  std::string parse(Value& out) {
    if (std::string err = parse_value(out); !err.empty()) return err;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return {};
  }

 private:
  std::string fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "[json-syntax] " + what + " at line " + std::to_string(line) +
           ", column " + std::to_string(col);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  // Each parse_* returns an empty string on success, an error otherwise.
  std::string parse_value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return parse_number(out);
    }
    if (literal("true")) {
      out.data = true;
      return {};
    }
    if (literal("false")) {
      out.data = false;
      return {};
    }
    if (literal("null")) {
      out.data = nullptr;
      return {};
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  std::string parse_object(Value& out) {
    consume('{');
    Object object;
    skip_ws();
    if (consume('}')) {
      out.data = std::move(object);
      return {};
    }
    while (true) {
      Value key;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected string key");
      }
      if (std::string err = parse_string_value(key); !err.empty()) return err;
      if (!consume(':')) return fail("expected ':' after key");
      Value value;
      if (std::string err = parse_value(value); !err.empty()) return err;
      std::string name = std::get<std::string>(std::move(key.data));
      // Strict, like the integer-only numbers: a duplicate key is a
      // client mistake, not something to resolve silently either way.
      if (object.find(name) != object.end()) {
        return fail("duplicate key \"" + name + "\" in object");
      }
      object.emplace(std::move(name), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    out.data = std::move(object);
    return {};
  }

  std::string parse_array(Value& out) {
    consume('[');
    Array array;
    skip_ws();
    if (consume(']')) {
      out.data = std::move(array);
      return {};
    }
    while (true) {
      Value value;
      if (std::string err = parse_value(value); !err.empty()) return err;
      array.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    out.data = std::move(array);
    return {};
  }

  std::string parse_string_value(Value& out) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        out.data = std::move(value);
        return {};
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          default:
            return fail(std::string("unsupported escape '\\") + escape + "'");
        }
        continue;
      }
      value += c;
    }
    return fail("unterminated string");
  }

  std::string parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                text_[pos_] == 'E')) {
      return fail("numbers must be integers (no floats)");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("malformed number");
    try {
      out.data = std::stoll(token);
    } catch (const std::exception&) {
      return fail("number out of range: " + token);
    }
    return {};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_into(const Value& value, std::string& out) {
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(long long n) const { out += std::to_string(n); }
    void operator()(const std::string& s) const {
      out += '"';
      out += escape(s);
      out += '"';
    }
    void operator()(const Array& array) const {
      out += '[';
      bool first = true;
      for (const Value& entry : array) {
        if (!first) out += ',';
        first = false;
        dump_into(entry, out);
      }
      out += ']';
    }
    void operator()(const Object& object) const {
      out += '{';
      bool first = true;
      for (const auto& [key, entry] : object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        dump_into(entry, out);
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, value.data);
}

std::string where(const std::string& context) {
  return context.empty() ? std::string() : " in " + context;
}

}  // namespace

// GCC 12 -Wmaybe-uninitialized misfires on moving the variant's vector
// alternative into the Expected return slot; the value is always
// initialized by Parser::parse before the move.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
Expected<Value> parse(const std::string& text) {
  Parser parser(text);
  Value root;
  if (std::string err = parser.parse(root); !err.empty()) {
    return Expected<Value>::failure(err);
  }
  return root;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::string dump(const Value& value) {
  std::string out;
  dump_into(value, out);
  return out;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string get_string(const Object& object, const char* key,
                       const std::string& context, bool required,
                       std::string& out) {
  const auto it = object.find(key);
  if (it == object.end()) {
    if (!required) return {};
    return std::string("[missing-field] required key '") + key + "'" +
           where(context);
  }
  if (!it->second.is_string()) {
    return std::string("[bad-field] '") + key + "' must be a string" +
           where(context);
  }
  out = it->second.string();
  return {};
}

std::string get_int(const Object& object, const char* key,
                    const std::string& context, bool required, long long& out) {
  const auto it = object.find(key);
  if (it == object.end()) {
    if (!required) return {};
    return std::string("[missing-field] required key '") + key + "'" +
           where(context);
  }
  if (!it->second.is_int()) {
    return std::string("[bad-field] '") + key + "' must be an integer" +
           where(context);
  }
  out = it->second.integer();
  return {};
}

std::string get_bool(const Object& object, const char* key,
                     const std::string& context, bool& out) {
  const auto it = object.find(key);
  if (it == object.end()) return {};
  if (!it->second.is_bool()) {
    return std::string("[bad-field] '") + key + "' must be true or false" +
           where(context);
  }
  out = it->second.boolean();
  return {};
}

std::string get_unsigned(const Object& object, const char* key,
                         const std::string& context, bool required,
                         long long fallback, unsigned& out) {
  long long value = fallback;
  if (std::string err = get_int(object, key, context, required, value);
      !err.empty()) {
    return err;
  }
  if (value < 0) {
    return std::string("[bad-field] '") + key + "' must be non-negative" +
           where(context);
  }
  out = static_cast<unsigned>(value);
  return {};
}

}  // namespace mbcosim::common::json
