// Bit-manipulation helpers used by the ISA encoder/decoder, the ISS and the
// RTL primitive models.
#pragma once

#include <bit>
#include <cassert>
#include <limits>
#include <type_traits>

#include "common/types.hpp"

namespace mbcosim {

/// Extract bits [lo, lo+width) of `value` (lo = 0 is the LSB).
constexpr u32 bits(u32 value, unsigned lo, unsigned width) noexcept {
  assert(lo < 32 && width >= 1 && lo + width <= 32);
  const u32 mask = width >= 32 ? ~0u : ((1u << width) - 1u);
  return (value >> lo) & mask;
}

/// Return `value` with bits [lo, lo+width) replaced by the low bits of
/// `field`.
constexpr u32 insert_bits(u32 value, unsigned lo, unsigned width,
                          u32 field) noexcept {
  assert(lo < 32 && width >= 1 && lo + width <= 32);
  const u32 mask = (width >= 32 ? ~0u : ((1u << width) - 1u)) << lo;
  return (value & ~mask) | ((field << lo) & mask);
}

/// Test a single bit.
constexpr bool bit(u32 value, unsigned index) noexcept {
  assert(index < 32);
  return ((value >> index) & 1u) != 0;
}

/// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr u32 sign_extend(u32 value, unsigned width) noexcept {
  assert(width >= 1 && width <= 32);
  if (width == 32) return value;
  const u32 sign_bit = 1u << (width - 1);
  const u32 mask = (1u << width) - 1u;
  value &= mask;
  return (value ^ sign_bit) - sign_bit;
}

/// Sign-extend to 64 bits, as used by the fixed-point library.
constexpr i64 sign_extend64(u64 value, unsigned width) noexcept {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<i64>(value);
  const u64 sign_bit = u64{1} << (width - 1);
  const u64 mask = (u64{1} << width) - 1u;
  value &= mask;
  return static_cast<i64>((value ^ sign_bit) - sign_bit);
}

/// Mask of the low `width` bits (width in [0, 64]).
constexpr u64 low_mask64(unsigned width) noexcept {
  assert(width <= 64);
  return width >= 64 ? ~u64{0} : ((u64{1} << width) - 1u);
}

/// Number of 32-bit words needed to hold `bytes` bytes.
constexpr u32 words_for_bytes(u32 bytes) noexcept { return (bytes + 3u) / 4u; }

/// Ceiling division for unsigned integral operands.
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T ceil_div(T a, T b) noexcept {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// True when `value` is a power of two (zero is not).
constexpr bool is_pow2(u64 value) noexcept {
  return value != 0 && std::has_single_bit(value);
}

}  // namespace mbcosim
