#include "energy/energy_model.hpp"

#include <sstream>

namespace mbcosim::energy {

double processor_energy_nj(const iss::CpuStats& stats,
                           const EnergyParams& params) {
  // Decompose the retired instruction mix. Loads, stores, multiplies,
  // branches and FSL accesses are counted directly by the ISS; the rest
  // of the retired instructions are plain ALU operations.
  const u64 counted = stats.loads + stats.stores + stats.multiplies +
                      stats.branches + stats.fsl_reads + stats.fsl_writes;
  const u64 alu = stats.instructions > counted
                      ? stats.instructions - counted
                      : 0;
  double energy = 0;
  energy += double(alu) * params.alu_nj;
  energy += double(stats.multiplies) * params.multiply_nj;
  energy += double(stats.loads) * params.load_nj;
  energy += double(stats.stores) * params.store_nj;
  energy += double(stats.branches) * params.branch_nj;
  energy += double(stats.fsl_reads + stats.fsl_writes) * params.fsl_nj;
  energy += double(stats.fsl_stall_cycles) * params.stall_nj;
  return energy;
}

double peripheral_energy_nj(const sysgen::Model& model, Cycle active_cycles,
                            const EnergyParams& params) {
  const ResourceVec resources = model.resources();
  const double per_cycle =
      params.default_activity *
      (double(resources.slices) * params.slice_dynamic_nj_per_cycle +
       double(resources.mult18s) * params.mult18_dynamic_nj_per_cycle +
       double(resources.brams) * params.bram_dynamic_nj_per_cycle);
  return per_cycle * double(active_cycles);
}

double static_energy_nj(const ResourceVec& resources, Cycle cycles,
                        const EnergyParams& params) {
  const double static_watts =
      double(resources.slices) * params.slice_static_nw * 1e-9;
  const double seconds = double(cycles) / params.clock_hz;
  return static_watts * seconds * 1e9;  // joules -> nJ
}

EnergyReport estimate_energy(const iss::CpuStats& cpu_stats,
                             const sysgen::Model* peripheral,
                             Cycle active_hw_cycles,
                             const ResourceVec& system_resources,
                             const EnergyParams& params) {
  EnergyReport report;
  report.cycles = cpu_stats.cycles;
  report.processor_nj = processor_energy_nj(cpu_stats, params);
  if (peripheral != nullptr) {
    report.peripheral_nj =
        peripheral_energy_nj(*peripheral, active_hw_cycles, params);
  }
  report.static_nj =
      static_energy_nj(system_resources, cpu_stats.cycles, params);
  return report;
}

std::string EnergyReport::to_string() const {
  std::ostringstream os;
  os << "energy: " << total_uj() << " uJ over " << cycles << " cycles ("
     << "processor " << processor_nj * 1e-3 << " uJ, peripheral "
     << peripheral_nj * 1e-3 << " uJ, static " << static_nj * 1e-3
     << " uJ); average power " << average_power_mw() << " mW";
  return os.str();
}

}  // namespace mbcosim::energy
