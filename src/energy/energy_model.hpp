// Rapid energy estimation — the extension the paper names as its future
// work (Section V): "One important extension of our work is to provide
// rapid energy estimation for application development using soft
// processors. We have developed an instruction-level energy estimation
// technique for computations on soft processors in [9] ... and a
// domain-specific energy modeling technique for different parallel
// hardware designs using FPGAs in [10]. We are working on to integrate
// these two rapid energy estimation techniques into the co-simulation
// framework."
//
// This module implements that integration:
//   - instruction-level model (the [9] technique): each instruction class
//     executed on the soft processor is charged a characterized energy;
//     stall cycles are charged idle energy;
//   - domain-specific model (the [10] technique): each hardware block is
//     charged a per-active-cycle energy derived from the resources of its
//     low-level implementation (slices / embedded multipliers / BRAMs)
//     and a switching-activity factor; quiescent (fast-forwarded) cycles
//     are charged static leakage only, following the leakage analysis the
//     paper cites ([12], Tuan & Lai).
//
// The characterization constants approximate a Virtex-II Pro at 1.5 V,
// 50 MHz; like the resource tables they are calibration points, not
// measurements — what the framework provides is the *rapid estimation
// flow*, resolved per instruction and per block without any low-level
// power simulation.
#pragma once

#include <string>

#include "common/resources.hpp"
#include "common/types.hpp"
#include "iss/processor.hpp"
#include "sysgen/model.hpp"

namespace mbcosim::energy {

/// Characterized per-event energies in nanojoules and static power in
/// milliwatts. Defaults approximate a small Virtex-II Pro design.
struct EnergyParams {
  // Instruction-level constants (nJ per instruction), from [9]-style
  // characterization: multiply and memory instructions switch much more
  // logic than plain ALU operations.
  double alu_nj = 1.2;
  double multiply_nj = 4.1;
  double load_nj = 2.6;   ///< includes the BRAM read
  double store_nj = 2.8;  ///< includes the BRAM write
  double branch_nj = 1.6;
  double fsl_nj = 1.9;    ///< FSL get/put (FIFO access)
  double stall_nj = 0.5;  ///< pipeline held, clock still toggling
  // Domain-specific hardware constants ([10]-style): dynamic energy per
  // active clock cycle per resource unit, scaled by switching activity.
  double slice_dynamic_nj_per_cycle = 0.0065;
  double mult18_dynamic_nj_per_cycle = 0.45;
  double bram_dynamic_nj_per_cycle = 0.6;
  double default_activity = 0.25;  ///< average toggle rate of the datapath
  // Leakage ([12]): static power of the occupied fabric, charged for
  // every simulated cycle, active or quiescent.
  double slice_static_nw = 18.0;  ///< nanowatts per occupied slice
  double clock_hz = kClockHz;
};

/// Energy broken down the way the two techniques produce it.
struct EnergyReport {
  double processor_nj = 0;   ///< instruction-level total (software side)
  double peripheral_nj = 0;  ///< domain-specific total (hardware side)
  double static_nj = 0;      ///< leakage of the occupied fabric
  Cycle cycles = 0;          ///< simulated cycles the estimate covers

  [[nodiscard]] double total_nj() const {
    return processor_nj + peripheral_nj + static_nj;
  }
  [[nodiscard]] double total_uj() const { return total_nj() * 1e-3; }
  /// Average power over the run at the configured clock.
  [[nodiscard]] double average_power_mw(double clock_hz = kClockHz) const {
    if (cycles == 0) return 0;
    const double seconds = static_cast<double>(cycles) / clock_hz;
    return total_nj() * 1e-9 / seconds * 1e3;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Instruction-level energy of a finished software run (technique [9]).
[[nodiscard]] double processor_energy_nj(const iss::CpuStats& stats,
                                         const EnergyParams& params = {});

/// Domain-specific energy of a hardware model over `active_cycles`
/// evaluated cycles (technique [10]). Quiescent cycles contribute no
/// dynamic energy (clock gating / inactive datapath).
[[nodiscard]] double peripheral_energy_nj(const sysgen::Model& model,
                                          Cycle active_cycles,
                                          const EnergyParams& params = {});

/// Static (leakage) energy of `resources` over `cycles` simulated cycles.
[[nodiscard]] double static_energy_nj(const ResourceVec& resources,
                                      Cycle cycles,
                                      const EnergyParams& params = {});

/// Full-system estimate combining all three contributions. `peripheral`
/// may be null (pure-software design); `active_hw_cycles` is the number
/// of cycles the hardware model actually evaluated (the co-simulation
/// engine's hw_cycles_stepped statistic).
[[nodiscard]] EnergyReport estimate_energy(
    const iss::CpuStats& cpu_stats, const sysgen::Model* peripheral,
    Cycle active_hw_cycles, const ResourceVec& system_resources,
    const EnergyParams& params = {});

}  // namespace mbcosim::energy
