#include "rsp/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <mutex>

namespace mbcosim::rsp {

// ---------------------------------------------------------------------------
// Loopback

namespace {

/// Shared state of one loopback pair: one buffer per direction. The
/// mutex makes the pair usable across two threads (server thread +
/// in-process client); single-threaded tests never contend on it.
struct LoopbackState {
  std::mutex mutex;
  std::array<std::string, 2> buffer;  ///< buffer[i] = bytes waiting for side i
  std::array<bool, 2> open{true, true};
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~LoopbackTransport() override {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->open[side_] = false;
  }

  bool send(std::string_view bytes) override {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (!state_->open[1 - side_]) return false;
    state_->buffer[1 - side_].append(bytes);
    return true;
  }

  std::string recv(int /*timeout_ms*/) override {
    // Deterministic: whatever is queued right now, never a wait.
    const std::lock_guard<std::mutex> lock(state_->mutex);
    std::string out = std::move(state_->buffer[side_]);
    state_->buffer[side_].clear();
    return out;
  }

  [[nodiscard]] bool closed() const override {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return !state_->open[1 - side_] && state_->buffer[side_].empty();
  }

 private:
  std::shared_ptr<LoopbackState> state_;
  int side_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback() {
  auto state = std::make_shared<LoopbackState>();
  return {std::make_unique<LoopbackTransport>(state, 0),
          std::make_unique<LoopbackTransport>(state, 1)};
}

// ---------------------------------------------------------------------------
// TCP

namespace {

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send(std::string_view bytes) override {
    if (fd_ < 0) return false;
    const bool ok = write_fully(
        [this](const char* data, std::size_t size) {
          return ::send(fd_, data, size, MSG_NOSIGNAL);
        },
        bytes.data(), bytes.size());
    if (!ok) closed_ = true;
    return ok;
  }

  std::string recv(int timeout_ms) override {
    if (fd_ < 0 || closed_) return {};
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return {};
    char chunk[4096];
    const ssize_t n = read_retry(
        [this](char* data, std::size_t size) {
          return ::recv(fd_, data, size, 0);
        },
        chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) return {};  // retry budget exhausted
      closed_ = true;  // n == 0: orderly shutdown by the peer
      return {};
    }
    return std::string(chunk, static_cast<std::size_t>(n));
  }

  [[nodiscard]] bool closed() const override { return closed_; }

 private:
  int fd_ = -1;
  bool closed_ = false;
};

}  // namespace

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Expected<TcpListener> TcpListener::listen(u16 port, int backlog) {
  using Failure = Expected<TcpListener>;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Failure::failure(std::string("TcpListener: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Failure::failure("TcpListener: bind port " + std::to_string(port) +
                            ": " + message);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Failure::failure("TcpListener: listen: " + message);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    return Failure::failure("TcpListener: getsockname: " + message);
  }
  return TcpListener(fd, ntohs(bound.sin_port));
}

std::unique_ptr<Transport> TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return nullptr;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return nullptr;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<TcpTransport>(client);
}

std::unique_ptr<Transport> tcp_connect(const std::string& host, u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpTransport>(fd);
}

}  // namespace mbcosim::rsp
