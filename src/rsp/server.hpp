// RspServer: the GDB Remote Serial Protocol state machine — the piece
// that makes the co-simulated system debuggable by any stock RSP client
// (gdb's `target remote`, IDEs, scripted test clients), reproducing the
// run-control role mb-gdb plays in the paper's Figure 2 pipe.
//
// The server owns no sockets and no machine: it speaks through a
// Transport (loopback pair in tests, TCP for live clients) and drives a
// Target (the ISS / co-sim adapter). Two operating modes:
//   - serve(): blocking session loop for a live client;
//   - pump():  process exactly the bytes already queued — the
//     deterministic entry the loopback protocol tests use.
//
// Supported packets: qSupported, ?, g/G, p/P, m/M/X, c, s, vCont,
// Z0/z0 (and Z1/z1, same mechanism), k, D, H/T thread stubs, qRcmd
// (monitor commands, forwarded to the target's command interpreter) and
// the common handshake queries. Unknown packets get the standard empty
// reply so clients can probe features.
#pragma once

#include <atomic>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "rsp/packet.hpp"
#include "rsp/target.hpp"
#include "rsp/transport.hpp"

namespace mbcosim::rsp {

/// How a debug session ended.
enum class SessionEnd : u8 {
  kDetached,      ///< client sent `D`
  kKilled,        ///< client sent `k`
  kDisconnected,  ///< transport closed under us
};

[[nodiscard]] constexpr const char* to_string(SessionEnd end) noexcept {
  switch (end) {
    case SessionEnd::kDetached: return "detached";
    case SessionEnd::kKilled: return "killed";
    case SessionEnd::kDisconnected: return "disconnected";
  }
  return "?";
}

class RspServer {
 public:
  struct Options {
    /// Simulated cycles per resume quantum; between quanta the server
    /// polls the transport for gdb's `\x03` interrupt.
    Cycle resume_quantum = 100'000;
    /// Hard ceiling on one continue (safety net for runaway guests in
    /// tests; a live session leaves it effectively unbounded).
    Cycle max_resume_cycles = ~Cycle{0};
    /// Transport poll granularity of the blocking serve() loop.
    int poll_ms = 20;
  };

  RspServer(Transport& transport, Target& target, Options options)
      : transport_(transport), target_(target), options_(options) {}
  RspServer(Transport& transport, Target& target)
      : RspServer(transport, target, Options{}) {}

  /// While a session is live, poll-accept further clients on this
  /// listener and turn each away with a framed "E.srv-busy: ..." error
  /// before closing — one debugger per target, but the loser learns why.
  /// The listener must outlive the server. Null (default) disables.
  void set_busy_listener(TcpListener* listener) { busy_listener_ = listener; }

  /// External cancellation: when `*cancel` becomes true the session ends
  /// (kDisconnected) at the next pump, and a running continue stops at
  /// the next resume-quantum boundary. The flag must outlive the server.
  /// The simulation server uses this to kill a debug-attached session.
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Blocking session loop: handle packets until detach, kill or
  /// disconnect.
  SessionEnd serve();

  /// Drain the bytes currently available from the transport and handle
  /// every complete packet among them — no waiting, fully deterministic
  /// on a loopback transport. Returns true while the session is alive.
  bool pump();

  [[nodiscard]] bool ended() const noexcept { return end_.has_value(); }
  [[nodiscard]] SessionEnd end() const { return *end_; }

 private:
  void drain_transport(int timeout_ms);
  void reject_pending_clients();
  [[nodiscard]] bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  /// Remove and report a queued interrupt event (polled mid-resume).
  bool take_interrupt();
  void handle_event(const DecoderEvent& event);
  /// Reply payload for one packet; nullopt = no reply at all (`k`).
  std::optional<std::string> handle_packet(std::string_view payload);
  std::string handle_query(std::string_view payload);
  std::string run_target(bool step, std::optional<Addr> addr);
  [[nodiscard]] static std::string stop_reply(const StopInfo& stop);
  void transmit(std::string_view payload);

  Transport& transport_;
  Target& target_;
  Options options_;
  TcpListener* busy_listener_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  PacketDecoder decoder_;
  std::deque<DecoderEvent> queue_;
  std::string last_reply_frame_;       ///< retransmitted on NAK
  std::string last_stop_reply_ = "S05";  ///< what `?` reports
  std::optional<SessionEnd> end_;
};

}  // namespace mbcosim::rsp
