// The debug-target abstraction the RSP server drives: registers, memory,
// breakpoints and run control, independent of how the machine behind it
// is simulated. One adapter (CoSimTarget) bridges it onto the ISS and —
// when a co-simulation engine is attached — onto the full hardware/
// software system, so continue/step keep the hardware model and the FSL
// channels at cycle parity with the software exactly as a free run does.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace mbcosim::rsp {

/// Stand-in register numbering of the MB32 remote target (DESIGN.md
/// "Remote debug"): gdb register 0..31 are r0..r31, 32 is the PC, 33 is
/// the machine status register. All are 32-bit, little-endian on the
/// wire like the LMB memory.
inline constexpr unsigned kNumRegs = 34;
inline constexpr unsigned kRegPc = 32;
inline constexpr unsigned kRegMsr = 33;

/// Why a resume / step returned control to the protocol layer.
struct StopInfo {
  enum class Kind : u8 {
    kBreakpoint,  ///< stopped on a software breakpoint
    kStep,        ///< single step retired
    kHalted,      ///< program end (branch-to-self) — maps to an exit reply
    kIllegal,     ///< architectural error (undecodable word / bad unit)
    kStalled,     ///< FSL deadlock heuristic fired (no progress possible)
    kBudget,      ///< cycle quantum exhausted; the target can keep running
  };
  Kind kind = Kind::kStep;
  Addr pc = 0;
};

class Target {
 public:
  virtual ~Target() = default;

  /// Value of gdb register `index` (see the numbering above); 0 for an
  /// index outside the file.
  [[nodiscard]] virtual Word read_reg(unsigned index) = 0;
  /// False for an index outside the file (writes to r0 succeed as no-ops).
  virtual bool write_reg(unsigned index, Word value) = 0;

  /// Append `length` guest bytes starting at `addr` to `out`; false when
  /// the range leaves the guest memory (nothing appended).
  virtual bool read_mem(Addr addr, u32 length, std::string& out) = 0;
  /// Write raw bytes into guest memory; false when out of range.
  virtual bool write_mem(Addr addr, std::string_view bytes) = 0;

  virtual void add_breakpoint(Addr addr) = 0;
  virtual void remove_breakpoint(Addr addr) = 0;

  /// Run until a stop condition or at most `max_cycles` simulated cycles
  /// (Kind::kBudget — the server polls for an interrupt and resumes).
  /// `step_off_breakpoint` suppresses the breakpoint check before the
  /// first instruction so a resume from a breakpoint address makes
  /// progress; the server passes true only on the first quantum.
  virtual StopInfo resume(Cycle max_cycles, bool step_off_breakpoint) = 0;

  /// Execute exactly one instruction (riding out transient FSL stalls).
  virtual StopInfo step_one() = 0;

  /// Execute a `monitor` command (gdb `qRcmd`) and return its reply text.
  virtual std::string monitor(std::string_view line) = 0;

  /// Current simulated cycle (diagnostics / stop-reply annotations).
  [[nodiscard]] virtual Cycle cycles() const = 0;
};

}  // namespace mbcosim::rsp
