// Target adapter bridging the RSP server onto the simulated machine:
// registers and memory come from iss::Processor (through the
// iss::Debugger run-control front end, whose breakpoint set and
// `monitor` command vocabulary are reused verbatim), and run control
// advances either the bare ISS or — when a core::CoSimEngine is
// attached — the full co-simulated system, one precise lock-step unit
// at a time, so the hardware model and the FSL channels stay at cycle
// parity with the software at every stop.
#pragma once

#include <functional>
#include <string>

#include "core/cosim_engine.hpp"
#include "iss/debugger.hpp"
#include "rsp/target.hpp"

namespace mbcosim::rsp {

class CoSimTarget final : public Target {
 public:
  /// `engine` may be null: a software-only target (bare ISS). Both
  /// references are aliased, not owned.
  explicit CoSimTarget(iss::Debugger& debugger,
                       core::CoSimEngine* engine = nullptr)
      : dbg_(debugger), engine_(engine) {}

  /// Extra monitor-command handler consulted before the debugger's own
  /// vocabulary (an empty reply falls through). SimSystem installs the
  /// `metrics` / `stats` verbs here.
  void set_monitor_extra(std::function<std::string(std::string_view)> extra) {
    monitor_extra_ = std::move(extra);
  }

  /// Consecutive stalled cycles with no retired instruction before a
  /// resume reports StopInfo::Kind::kStalled (FSL deadlock heuristic).
  void set_stall_threshold(Cycle threshold) noexcept {
    stall_threshold_ = threshold;
  }

  /// Override the machine-step primitive. On a multi-core machine the
  /// debugger focuses one core but every step must advance the whole
  /// system coherently, so sim::SimSystem installs
  /// core::ManyCoreEngine::debug_step(core) here; resume/step then use
  /// it instead of the single-core engine/processor.
  void set_step_fn(std::function<iss::StepResult()> step) {
    step_fn_ = std::move(step);
  }

  [[nodiscard]] iss::Debugger& debugger() noexcept { return dbg_; }

  // -- Target ----------------------------------------------------------
  [[nodiscard]] Word read_reg(unsigned index) override;
  bool write_reg(unsigned index, Word value) override;
  bool read_mem(Addr addr, u32 length, std::string& out) override;
  bool write_mem(Addr addr, std::string_view bytes) override;
  void add_breakpoint(Addr addr) override { dbg_.add_breakpoint(addr); }
  void remove_breakpoint(Addr addr) override { dbg_.remove_breakpoint(addr); }
  StopInfo resume(Cycle max_cycles, bool step_off_breakpoint) override;
  StopInfo step_one() override;
  std::string monitor(std::string_view line) override;
  [[nodiscard]] Cycle cycles() const override {
    return dbg_.cpu().cycle();
  }

 private:
  /// One precise machine step: the bare processor, or the processor plus
  /// the hardware model brought to cycle parity.
  iss::StepResult machine_step();

  iss::Debugger& dbg_;
  core::CoSimEngine* engine_;
  Cycle stall_threshold_ = 100'000;
  std::function<iss::StepResult()> step_fn_;
  std::function<std::string(std::string_view)> monitor_extra_;
};

}  // namespace mbcosim::rsp
