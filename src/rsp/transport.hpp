// Byte transports for the RSP server — the carrier of the paper's
// "bidirectional software pipe" between the debugger front end and the
// simulated system (Figure 2). Two implementations:
//
//   - an in-memory loopback pair, fully deterministic (no sockets, no
//     threads, no time) so protocol sessions can be unit-tested
//     byte-for-byte;
//   - a POSIX TCP listener/stream, accepting a single gdb client on a
//     localhost port, with non-blocking polling so a running target can
//     notice the client's raw `\x03` interrupt byte mid-continue.
#pragma once

#include <cerrno>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::rsp {

/// How often a transport retries a POSIX call that made no progress
/// (EINTR, or a zero-length write) before giving up. Signal storms are
/// bounded instead of looping forever on a wedged descriptor.
inline constexpr int kMaxIoRetries = 64;

/// Write `size` bytes through `write_some(ptr, len) -> ssize_t-like`
/// (negative = error with errno set), retrying EINTR interruptions and
/// continuing after short writes until everything is out. At most
/// kMaxIoRetries attempts that make *no progress* are tolerated; a short
/// write that moves bytes resets the budget. Returns true when all bytes
/// were written. Templated over the syscall so the retry policy is unit-
/// testable without a real socket.
template <typename WriteSome>
[[nodiscard]] bool write_fully(WriteSome&& write_some, const char* data,
                               std::size_t size,
                               int max_retries = kMaxIoRetries) {
  std::size_t done = 0;
  int stalls = 0;
  while (done < size) {
    const auto n = write_some(data + done, size - done);
    if (n < 0) {
      if (errno == EINTR && ++stalls <= max_retries) continue;
      return false;
    }
    if (n == 0) {
      if (++stalls > max_retries) return false;
      continue;
    }
    done += static_cast<std::size_t>(n);
    stalls = 0;
  }
  return true;
}

/// Read through `read_some(ptr, len) -> ssize_t-like`, retrying EINTR at
/// most `max_retries` times. Returns the syscall result: > 0 bytes read,
/// 0 on EOF, negative on error (including an exhausted retry budget).
template <typename ReadSome>
[[nodiscard]] auto read_retry(ReadSome&& read_some, char* data,
                              std::size_t size,
                              int max_retries = kMaxIoRetries) {
  for (int attempt = 0;; ++attempt) {
    const auto n = read_some(data, size);
    if (n < 0 && errno == EINTR && attempt < max_retries) continue;
    return n;
  }
}

/// A bidirectional byte stream. All methods are single-threaded with
/// respect to one endpoint; the two endpoints of a loopback pair may
/// live on different threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue/write raw bytes to the peer. False when the connection is
  /// gone (the session should end).
  virtual bool send(std::string_view bytes) = 0;

  /// Receive whatever bytes are available, waiting at most `timeout_ms`
  /// (0 = poll and return immediately). Returns an empty string when
  /// nothing arrived; check closed() to distinguish timeout from EOF.
  [[nodiscard]] virtual std::string recv(int timeout_ms) = 0;

  /// True once the peer has disconnected (and every byte it sent before
  /// disconnecting has been recv()'d).
  [[nodiscard]] virtual bool closed() const = 0;
};

/// Create a connected in-memory transport pair (server side, client
/// side). recv() never blocks regardless of the timeout — the pair is
/// for deterministic tests and same-process clients.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback();

/// A one-client TCP listener bound to 127.0.0.1. Port 0 picks an
/// ephemeral port; port() reports the actual one either way.
class TcpListener {
 public:
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Bind and listen on 127.0.0.1:port (0 = ephemeral). The backlog
  /// admits extra pending connections so a busy server can accept and
  /// *reject* a second client with a structured error instead of leaving
  /// its connect() hanging (RspServer::set_busy_listener).
  [[nodiscard]] static Expected<TcpListener> listen(u16 port, int backlog = 4);

  [[nodiscard]] u16 port() const noexcept { return port_; }

  /// Accept one client, waiting at most `timeout_ms` (< 0 = forever).
  /// Null on timeout or listener failure.
  [[nodiscard]] std::unique_ptr<Transport> accept(int timeout_ms = -1);

 private:
  TcpListener(int fd, u16 port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  u16 port_ = 0;
};

/// Client-side connect to host:port (numeric IPv4 host, e.g.
/// "127.0.0.1"). Null on failure. Used by the end-to-end tests and by
/// scripted clients.
[[nodiscard]] std::unique_ptr<Transport> tcp_connect(const std::string& host,
                                                     u16 port);

}  // namespace mbcosim::rsp
