// GDB Remote Serial Protocol packet codec — the wire layer of the
// remote-debug subsystem (the analog of the byte stream flowing through
// the paper's mb-gdb "bidirectional software pipe", Figure 2).
//
// Everything in this header is a pure function or a small incremental
// parser over plain byte strings: no sockets, no target state, no time.
// That keeps the whole framing layer unit-testable byte-for-byte —
// checksums, run-length encoding, hex payloads and the `}`-escaping of
// binary payloads all round-trip without ever opening a connection.
//
// Wire format recap (GDB "Remote Protocol" appendix):
//   packet      := '$' payload '#' hex hex     (checksum = sum of payload
//                                               bytes mod 256)
//   ack / nak   := '+' / '-'
//   interrupt   := 0x03 (sent raw, outside any packet)
//   RLE         := c '*' n  expands to 1 + (n - 29) copies of c
//   binary data := '}' escapes; escaped byte is original XOR 0x20
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::rsp {

/// Mod-256 sum of the payload bytes — the RSP packet checksum.
[[nodiscard]] u8 checksum(std::string_view payload) noexcept;

/// Wrap an (already escaped / RLE'd) payload into `$payload#xx`.
[[nodiscard]] std::string frame_packet(std::string_view payload);

/// Lower-case hex encoding of raw bytes, two digits per byte.
[[nodiscard]] std::string to_hex(std::string_view bytes);

/// Inverse of to_hex. Fails on odd length or non-hex digits.
[[nodiscard]] Expected<std::string> from_hex(std::string_view hex);

/// A 32-bit register value as 8 hex digits in *target byte order*. The
/// MB32 LMB memory is little-endian (iss::LmbMemory), so registers
/// travel least-significant byte first — gdb byte-swaps per its own
/// notion of target endianness, which our target description pins to
/// little-endian as well (see DESIGN.md "Remote debug").
[[nodiscard]] std::string hex_word(Word value);

/// Inverse of hex_word (exactly 8 hex digits, little-endian bytes).
[[nodiscard]] Expected<Word> parse_hex_word(std::string_view hex);

/// Plain big-endian hex number (addresses, lengths, register indexes in
/// packet headers — NOT register payloads). Empty input fails.
[[nodiscard]] Expected<u64> parse_hex_number(std::string_view hex);

/// Escape a binary payload for an `X`-style packet: 0x23 `#`, 0x24 `$`,
/// 0x2a `*` and 0x7d `}` become `}` followed by the byte XOR 0x20.
[[nodiscard]] std::string escape_binary(std::string_view data);

/// Inverse of escape_binary. Fails on a trailing lone `}`.
[[nodiscard]] Expected<std::string> unescape_binary(std::string_view data);

/// Run-length encode a payload (`c*n` = 1 + (n - 29) copies of c).
/// Never emits the forbidden repeat counts 6 and 7 (`#`, `$`), never
/// emits `+` or `-` as a count, and leaves runs shorter than 4 literal.
[[nodiscard]] std::string rle_encode(std::string_view payload);

/// Expand run-length encoding. Fails on a dangling `*`, a count below
/// the printable floor (29 + 3) or an expansion with no preceding byte.
[[nodiscard]] Expected<std::string> rle_decode(std::string_view payload);

/// One event recovered from the byte stream by PacketDecoder.
struct DecoderEvent {
  enum class Kind : u8 {
    kPacket,     ///< a well-formed packet; `payload` is RLE-expanded
    kAck,        ///< '+'
    kNak,        ///< '-'
    kInterrupt,  ///< raw 0x03 (gdb's Ctrl-C)
    kBadPacket,  ///< framing or checksum failure — answer with a NAK
  };
  Kind kind = Kind::kPacket;
  std::string payload;
};

/// Incremental packet parser: feed() arbitrary byte chunks (a packet may
/// arrive split across any number of reads), next() yields the decoded
/// events in order. Bytes outside any packet that are not '+', '-' or
/// 0x03 are line noise per the RSP spec and are skipped.
class PacketDecoder {
 public:
  void feed(std::string_view bytes) { pending_.append(bytes); }

  /// The next complete event, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<DecoderEvent> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_.size();
  }

 private:
  std::string pending_;
};

}  // namespace mbcosim::rsp
