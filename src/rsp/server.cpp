#include "rsp/server.hpp"

#include <algorithm>

namespace mbcosim::rsp {

namespace {

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace

SessionEnd RspServer::serve() {
  while (pump()) {
    reject_pending_clients();
    drain_transport(options_.poll_ms);
  }
  return *end_;
}

void RspServer::reject_pending_clients() {
  if (busy_listener_ == nullptr) return;
  while (std::unique_ptr<Transport> intruder = busy_listener_->accept(0)) {
    intruder->send(
        frame_packet("E.srv-busy: debug port already has a client"));
  }
}

bool RspServer::pump() {
  if (!end_ && cancelled()) end_ = SessionEnd::kDisconnected;
  drain_transport(0);
  while (!end_ && !queue_.empty()) {
    const DecoderEvent event = std::move(queue_.front());
    queue_.pop_front();
    handle_event(event);
  }
  if (!end_ && queue_.empty() && transport_.closed()) {
    end_ = SessionEnd::kDisconnected;
  }
  return !end_;
}

void RspServer::drain_transport(int timeout_ms) {
  const std::string bytes = transport_.recv(timeout_ms);
  if (!bytes.empty()) decoder_.feed(bytes);
  while (std::optional<DecoderEvent> event = decoder_.next()) {
    queue_.push_back(std::move(*event));
  }
}

bool RspServer::take_interrupt() {
  const auto it =
      std::find_if(queue_.begin(), queue_.end(), [](const DecoderEvent& e) {
        return e.kind == DecoderEvent::Kind::kInterrupt;
      });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void RspServer::handle_event(const DecoderEvent& event) {
  switch (event.kind) {
    case DecoderEvent::Kind::kAck:
      last_reply_frame_.clear();  // delivered; nothing to retransmit
      return;
    case DecoderEvent::Kind::kNak:
      if (!last_reply_frame_.empty()) transport_.send(last_reply_frame_);
      return;
    case DecoderEvent::Kind::kBadPacket:
      transport_.send("-");
      return;
    case DecoderEvent::Kind::kInterrupt:
      // Interrupt while already stopped: report a SIGINT stop.
      last_stop_reply_ = "S02";
      transmit(last_stop_reply_);
      return;
    case DecoderEvent::Kind::kPacket:
      break;
  }
  transport_.send("+");
  const std::optional<std::string> reply = handle_packet(event.payload);
  if (reply) transmit(*reply);
}

void RspServer::transmit(std::string_view payload) {
  last_reply_frame_ = frame_packet(payload);
  transport_.send(last_reply_frame_);
}

std::string RspServer::stop_reply(const StopInfo& stop) {
  switch (stop.kind) {
    case StopInfo::Kind::kBreakpoint:
    case StopInfo::Kind::kStep:
      return "S05";  // SIGTRAP
    case StopInfo::Kind::kHalted:
      return "W00";  // clean program exit (branch-to-self)
    case StopInfo::Kind::kIllegal:
      return "S04";  // SIGILL
    case StopInfo::Kind::kStalled:
      return "S06";  // SIGABRT: FSL deadlock, nothing can unblock it
    case StopInfo::Kind::kBudget:
      return "S02";  // SIGINT: ran out of budget / interrupted
  }
  return "S05";
}

std::string RspServer::run_target(bool step, std::optional<Addr> addr) {
  if (addr) target_.write_reg(kRegPc, *addr);
  StopInfo stop;
  if (step) {
    stop = target_.step_one();
  } else {
    Cycle remaining = options_.max_resume_cycles;
    bool first_quantum = true;
    while (true) {
      const Cycle quantum = std::min(options_.resume_quantum, remaining);
      stop = target_.resume(quantum, first_quantum);
      first_quantum = false;
      if (stop.kind != StopInfo::Kind::kBudget) break;
      remaining -= std::min(quantum, remaining);
      if (remaining == 0) break;  // give up; reported as an interrupt stop
      // Between quanta: poll the wire for gdb's Ctrl-C, turn away any
      // newly arrived clients, and honour external cancellation.
      reject_pending_clients();
      drain_transport(0);
      if (take_interrupt() || cancelled()) {
        stop.kind = StopInfo::Kind::kBudget;  // maps to SIGINT below
        break;
      }
    }
  }
  last_stop_reply_ = stop_reply(stop);
  return last_stop_reply_;
}

std::optional<std::string> RspServer::handle_packet(std::string_view p) {
  if (p.empty()) return std::string{};
  const std::string_view rest = p.substr(1);
  switch (p[0]) {
    case '?':
      return last_stop_reply_;

    case 'g': {
      std::string out;
      out.reserve(kNumRegs * 8);
      for (unsigned i = 0; i < kNumRegs; ++i) {
        out += hex_word(target_.read_reg(i));
      }
      return out;
    }

    case 'G': {
      if (rest.size() != kNumRegs * 8) return "E01";
      for (unsigned i = 0; i < kNumRegs; ++i) {
        const Expected<Word> value = parse_hex_word(rest.substr(i * 8, 8));
        if (!value) return "E01";
        if (!target_.write_reg(i, value.value())) return "E01";
      }
      return "OK";
    }

    case 'p': {
      const Expected<u64> index = parse_hex_number(rest);
      if (!index || index.value() >= kNumRegs) return "E01";
      return hex_word(target_.read_reg(static_cast<unsigned>(index.value())));
    }

    case 'P': {
      const std::size_t eq = rest.find('=');
      if (eq == std::string_view::npos) return "E01";
      const Expected<u64> index = parse_hex_number(rest.substr(0, eq));
      const Expected<Word> value = parse_hex_word(rest.substr(eq + 1));
      if (!index || index.value() >= kNumRegs || !value) return "E01";
      return target_.write_reg(static_cast<unsigned>(index.value()),
                               value.value())
                 ? "OK"
                 : "E01";
    }

    case 'm': {
      const std::size_t comma = rest.find(',');
      if (comma == std::string_view::npos) return "E01";
      const Expected<u64> addr = parse_hex_number(rest.substr(0, comma));
      const Expected<u64> length = parse_hex_number(rest.substr(comma + 1));
      if (!addr || !length || length.value() > (u64{1} << 24)) return "E01";
      std::string bytes;
      if (!target_.read_mem(static_cast<Addr>(addr.value()),
                            static_cast<u32>(length.value()), bytes)) {
        return "E01";
      }
      return to_hex(bytes);
    }

    case 'M':
    case 'X': {
      const std::size_t comma = rest.find(',');
      const std::size_t colon = rest.find(':');
      if (comma == std::string_view::npos || colon == std::string_view::npos ||
          colon < comma) {
        return "E01";
      }
      const Expected<u64> addr = parse_hex_number(rest.substr(0, comma));
      const Expected<u64> length =
          parse_hex_number(rest.substr(comma + 1, colon - comma - 1));
      if (!addr || !length || length.value() > (u64{1} << 24)) return "E01";
      const Expected<std::string> bytes =
          p[0] == 'M' ? from_hex(rest.substr(colon + 1))
                      : unescape_binary(rest.substr(colon + 1));
      if (!bytes) return "E01";
      if (length.value() == 0) return "OK";  // gdb's X write probe
      if (bytes.value().size() != length.value()) return "E01";
      return target_.write_mem(static_cast<Addr>(addr.value()), bytes.value())
                 ? "OK"
                 : "E01";
    }

    case 'c':
    case 's': {
      std::optional<Addr> addr;
      if (!rest.empty()) {
        const Expected<u64> parsed = parse_hex_number(rest);
        if (!parsed) return "E01";
        addr = static_cast<Addr>(parsed.value());
      }
      return run_target(p[0] == 's', addr);
    }

    case 'Z':
    case 'z': {
      // Z0 (software) and Z1 (hardware) breakpoints both land in the
      // debugger's PC-match set — the ISS has no separate mechanisms.
      if (rest.size() < 2 || (rest[0] != '0' && rest[0] != '1') ||
          rest[1] != ',') {
        return std::string{};  // watchpoints etc.: unsupported
      }
      const std::string_view args = rest.substr(2);
      const std::size_t comma = args.find(',');
      const Expected<u64> addr = parse_hex_number(
          comma == std::string_view::npos ? args : args.substr(0, comma));
      if (!addr) return "E01";
      if (p[0] == 'Z') {
        target_.add_breakpoint(static_cast<Addr>(addr.value()));
      } else {
        target_.remove_breakpoint(static_cast<Addr>(addr.value()));
      }
      return "OK";
    }

    case 'k':
      end_ = SessionEnd::kKilled;
      return std::nullopt;  // `k` expects no reply

    case 'D':
      end_ = SessionEnd::kDetached;
      return "OK";

    case 'H':  // set thread for subsequent ops: single-threaded target
    case 'T':  // thread-alive query
      return "OK";

    case 'v': {
      if (p == "vCont?") return "vCont;c;C;s;S";
      if (starts_with(p, "vCont;")) {
        // Single thread: honour the first action, ignore thread suffixes.
        const char action = p.size() > 6 ? p[6] : 'c';
        if (action == 'c' || action == 'C') return run_target(false, {});
        if (action == 's' || action == 'S') return run_target(true, {});
        return std::string{};
      }
      return std::string{};  // vMustReplyEmpty and friends
    }

    case 'q':
      return handle_query(p);

    default:
      return std::string{};  // unsupported packet: standard empty reply
  }
}

std::string RspServer::handle_query(std::string_view p) {
  if (starts_with(p, "qSupported")) {
    return "PacketSize=4096;swbreak+;vContSupported+";
  }
  if (p == "qAttached") return "1";
  if (p == "qC") return "QC0";
  if (p == "qfThreadInfo") return "m0";
  if (p == "qsThreadInfo") return "l";
  if (p == "qOffsets") return "Text=0;Data=0;Bss=0";
  if (starts_with(p, "qSymbol")) return "OK";
  if (starts_with(p, "qRcmd,")) {
    const Expected<std::string> line = from_hex(p.substr(6));
    if (!line) return "E01";
    std::string reply = target_.monitor(line.value());
    if (reply.empty()) return "OK";
    if (reply.back() != '\n') reply.push_back('\n');
    return to_hex(reply);
  }
  return {};
}

}  // namespace mbcosim::rsp
