#include "rsp/cosim_target.hpp"

namespace mbcosim::rsp {

Word CoSimTarget::read_reg(unsigned index) {
  iss::Processor& cpu = dbg_.cpu();
  if (index < isa::kNumRegisters) return cpu.reg(index);
  if (index == kRegPc) return cpu.pc();
  if (index == kRegMsr) return cpu.msr();
  return 0;
}

bool CoSimTarget::write_reg(unsigned index, Word value) {
  iss::Processor& cpu = dbg_.cpu();
  if (index < isa::kNumRegisters) {
    cpu.set_reg(index, value);  // r0 writes are architectural no-ops
    return true;
  }
  if (index == kRegPc) {
    cpu.set_pc(static_cast<Addr>(value));
    return true;
  }
  if (index == kRegMsr) {
    cpu.set_msr(value);
    return true;
  }
  return false;
}

bool CoSimTarget::read_mem(Addr addr, u32 length, std::string& out) {
  const iss::LmbMemory& memory = dbg_.cpu().memory();
  if (!memory.contains(addr, length)) return false;
  out.reserve(out.size() + length);
  for (u32 i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(memory.read_byte(addr + i)));
  }
  return true;
}

bool CoSimTarget::write_mem(Addr addr, std::string_view bytes) {
  iss::Processor& cpu = dbg_.cpu();
  iss::LmbMemory& memory = cpu.memory();
  const u32 length = static_cast<u32>(bytes.size());
  if (!memory.contains(addr, length)) return false;
  for (u32 i = 0; i < length; ++i) {
    memory.write_byte(addr + i, static_cast<u8>(bytes[i]));
  }
  // The write may have patched instruction words (this is exactly how
  // gdb plants software breakpoints): drop the predecoded entries of
  // every word the range touches.
  for (Addr word = addr & ~Addr{3}; word < addr + length; word += 4) {
    cpu.invalidate_predecode(word);
  }
  return true;
}

iss::StepResult CoSimTarget::machine_step() {
  if (step_fn_) return step_fn_();
  if (engine_ != nullptr) return engine_->debug_step();
  return dbg_.cpu().step();
}

StopInfo CoSimTarget::resume(Cycle max_cycles, bool step_off_breakpoint) {
  iss::Processor& cpu = dbg_.cpu();
  if (cpu.halted()) return {StopInfo::Kind::kHalted, cpu.pc()};
  const Cycle start = cpu.cycle();
  Cycle stall_streak = 0;
  bool first = step_off_breakpoint;
  while (cpu.cycle() - start < max_cycles) {
    if (!first && dbg_.has_breakpoint(cpu.pc())) {
      return {StopInfo::Kind::kBreakpoint, cpu.pc()};
    }
    const iss::StepResult result = machine_step();
    first = false;
    switch (result.event) {
      case iss::Event::kHalted:
        return {StopInfo::Kind::kHalted, cpu.pc()};
      case iss::Event::kIllegal:
        return {StopInfo::Kind::kIllegal, cpu.pc()};
      case iss::Event::kFslStall:
        // With an engine attached the hardware just advanced one cycle
        // and may yet unblock the access; without one nothing can.
        if (++stall_streak >= stall_threshold_) {
          return {StopInfo::Kind::kStalled, cpu.pc()};
        }
        break;
      case iss::Event::kRetired:
        stall_streak = 0;
        break;
    }
  }
  return {StopInfo::Kind::kBudget, cpu.pc()};
}

StopInfo CoSimTarget::step_one() {
  iss::Processor& cpu = dbg_.cpu();
  if (cpu.halted()) return {StopInfo::Kind::kHalted, cpu.pc()};
  Cycle stall_streak = 0;
  while (true) {
    const iss::StepResult result = machine_step();
    switch (result.event) {
      case iss::Event::kHalted:
        return {StopInfo::Kind::kHalted, cpu.pc()};
      case iss::Event::kIllegal:
        return {StopInfo::Kind::kIllegal, cpu.pc()};
      case iss::Event::kRetired:
        return {StopInfo::Kind::kStep, cpu.pc()};
      case iss::Event::kFslStall:
        if (++stall_streak >= stall_threshold_) {
          return {StopInfo::Kind::kStalled, cpu.pc()};
        }
        break;  // ride out the stall: the hardware side is catching up
    }
  }
}

std::string CoSimTarget::monitor(std::string_view line) {
  if (monitor_extra_) {
    std::string reply = monitor_extra_(line);
    if (!reply.empty()) return reply;
  }
  return dbg_.command(line);
}

}  // namespace mbcosim::rsp
