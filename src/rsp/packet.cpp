#include "rsp/packet.hpp"

#include <charconv>

namespace mbcosim::rsp {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// RLE repeat counts are printable characters n = 29 + repeats. Counts 6
// and 7 would be '#' and '$' (packet framing), and '+' / '-' (counts 14
// and 16) would read as ack/nak to sloppy parsers; the GDB spec forbids
// all four on the wire.
bool forbidden_count(Cycle repeats) noexcept {
  const char c = static_cast<char>(29 + repeats);
  return c == '#' || c == '$' || c == '+' || c == '-';
}

}  // namespace

u8 checksum(std::string_view payload) noexcept {
  unsigned sum = 0;
  for (const char c : payload) sum += static_cast<u8>(c);
  return static_cast<u8>(sum);
}

std::string frame_packet(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  out.push_back('$');
  out.append(payload);
  out.push_back('#');
  const u8 sum = checksum(payload);
  out.push_back(kHexDigits[sum >> 4]);
  out.push_back(kHexDigits[sum & 0xf]);
  return out;
}

std::string to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const u8 byte = static_cast<u8>(c);
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xf]);
  }
  return out;
}

Expected<std::string> from_hex(std::string_view hex) {
  using Failure = Expected<std::string>;
  if (hex.size() % 2 != 0) {
    return Failure::failure("from_hex: odd digit count");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return Failure::failure("from_hex: non-hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string hex_word(Word value) {
  std::string bytes;
  bytes.push_back(static_cast<char>(value));
  bytes.push_back(static_cast<char>(value >> 8));
  bytes.push_back(static_cast<char>(value >> 16));
  bytes.push_back(static_cast<char>(value >> 24));
  return to_hex(bytes);
}

Expected<Word> parse_hex_word(std::string_view hex) {
  using Failure = Expected<Word>;
  if (hex.size() != 8) return Failure::failure("parse_hex_word: need 8 digits");
  const Expected<std::string> bytes = from_hex(hex);
  if (!bytes) return Failure::failure(bytes.error());
  const std::string& b = bytes.value();
  return Word(static_cast<u8>(b[0])) | Word(static_cast<u8>(b[1])) << 8 |
         Word(static_cast<u8>(b[2])) << 16 | Word(static_cast<u8>(b[3])) << 24;
}

Expected<u64> parse_hex_number(std::string_view hex) {
  using Failure = Expected<u64>;
  u64 value = 0;
  if (hex.empty()) return Failure::failure("parse_hex_number: empty");
  const auto* end = hex.data() + hex.size();
  const auto result = std::from_chars(hex.data(), end, value, 16);
  if (result.ec != std::errc{} || result.ptr != end) {
    return Failure::failure("parse_hex_number: bad digits in '" +
                            std::string(hex) + "'");
  }
  return value;
}

std::string escape_binary(std::string_view data) {
  std::string out;
  out.reserve(data.size());
  for (const char c : data) {
    if (c == '#' || c == '$' || c == '*' || c == '}') {
      out.push_back('}');
      out.push_back(static_cast<char>(c ^ 0x20));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Expected<std::string> unescape_binary(std::string_view data) {
  using Failure = Expected<std::string>;
  std::string out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == '}') {
      if (i + 1 >= data.size()) {
        return Failure::failure("unescape_binary: dangling escape");
      }
      out.push_back(static_cast<char>(data[++i] ^ 0x20));
    } else {
      out.push_back(data[i]);
    }
  }
  return out;
}

std::string rle_encode(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  std::size_t i = 0;
  while (i < payload.size()) {
    const char c = payload[i];
    std::size_t run = 1;
    while (i + run < payload.size() && payload[i + run] == c) ++run;
    i += run;
    out.push_back(c);
    std::size_t repeats = run - 1;  // copies beyond the literal byte
    while (repeats > 0) {
      if (repeats < 3) {
        // Runs of 2 or 3 total don't pay for the two-byte `*n` suffix
        // (and counts below 3 are not representable anyway).
        out.append(repeats, c);
        break;
      }
      std::size_t chunk = repeats < 97 ? repeats : 97;  // 29 + 97 = 126 '~'
      while (forbidden_count(chunk)) --chunk;
      out.push_back('*');
      out.push_back(static_cast<char>(29 + chunk));
      repeats -= chunk;
      // A leftover tail continues the same run: re-emit a literal base
      // byte for the next `*n` (or literally, via the branch above).
      if (repeats > 0) {
        out.push_back(c);
        --repeats;
      }
    }
  }
  return out;
}

Expected<std::string> rle_decode(std::string_view payload) {
  using Failure = Expected<std::string>;
  std::string out;
  out.reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != '*') {
      out.push_back(payload[i]);
      continue;
    }
    if (out.empty()) return Failure::failure("rle_decode: leading '*'");
    if (i + 1 >= payload.size()) {
      return Failure::failure("rle_decode: dangling '*'");
    }
    const int repeats = static_cast<u8>(payload[++i]) - 29;
    if (repeats < 3) return Failure::failure("rle_decode: count below 3");
    out.append(static_cast<std::size_t>(repeats), out.back());
  }
  return out;
}

std::optional<DecoderEvent> PacketDecoder::next() {
  std::size_t i = 0;
  while (i < pending_.size()) {
    const char c = pending_[i];
    if (c == '+' || c == '-' || c == '\x03') {
      pending_.erase(0, i + 1);
      DecoderEvent event;
      event.kind = c == '+'      ? DecoderEvent::Kind::kAck
                   : c == '-'    ? DecoderEvent::Kind::kNak
                                 : DecoderEvent::Kind::kInterrupt;
      return event;
    }
    if (c != '$') {
      ++i;  // line noise between packets: skip
      continue;
    }
    const std::size_t hash = pending_.find('#', i + 1);
    if (hash == std::string::npos || hash + 2 >= pending_.size()) {
      // Incomplete packet: drop the noise before it and wait for bytes.
      pending_.erase(0, i);
      return std::nullopt;
    }
    const std::string_view body =
        std::string_view(pending_).substr(i + 1, hash - i - 1);
    const int hi = hex_value(pending_[hash + 1]);
    const int lo = hex_value(pending_[hash + 2]);
    DecoderEvent event;
    if (hi < 0 || lo < 0 || static_cast<u8>((hi << 4) | lo) != checksum(body)) {
      event.kind = DecoderEvent::Kind::kBadPacket;
    } else if (Expected<std::string> expanded = rle_decode(body); expanded) {
      event.kind = DecoderEvent::Kind::kPacket;
      event.payload = std::move(expanded).value();
    } else {
      event.kind = DecoderEvent::Kind::kBadPacket;
    }
    pending_.erase(0, hash + 3);
    return event;
  }
  pending_.clear();
  return std::nullopt;
}

}  // namespace mbcosim::rsp
