#include "rtlmodels/cordic_rtl.hpp"

#include <string>

#include "apps/cordic/cordic_reference.hpp"
#include "ckpt/ckpt.hpp"
#include "common/status.hpp"

namespace mbcosim::rtlmodels {

using rtl::Logic;
using rtl::LogicVector;

CordicPipelineRtl::CordicPipelineRtl(rtl::Simulator& sim, rtl::Net& clk,
                                     unsigned num_pes,
                                     fsl::FslChannel& from_cpu,
                                     fsl::FslChannel& to_cpu)
    : sim_(sim), clk_(clk), num_pes_(num_pes), from_cpu_(from_cpu),
      to_cpu_(to_cpu) {
  if (num_pes_ == 0 || num_pes_ > 32) {
    throw SimError("CordicPipelineRtl: P must be in [1, 32]");
  }
  x_hold_ = &sim_.net("cordic.deser.x_hold", 32, 0);
  y_hold_ = &sim_.net("cordic.deser.y_hold", 32, 0);
  s0_hold_ = &sim_.net("cordic.deser.s0_hold", 6, 0);
  idx_ = &sim_.net("cordic.deser.idx", 2, 0);
  stages_.resize(num_pes_);
  for (unsigned i = 0; i < num_pes_; ++i) {
    const std::string prefix = "cordic.pe" + std::to_string(i + 1);
    stages_[i].x = &sim_.net(prefix + ".x", 32, 0);
    stages_[i].y = &sim_.net(prefix + ".y", 32, 0);
    stages_[i].z = &sim_.net(prefix + ".z", 32, 0);
    stages_[i].s = &sim_.net(prefix + ".s", 6, 0);
    stages_[i].v = &sim_.net(prefix + ".v", 1, 0);
    stages_[i].neg = &sim_.net(prefix + ".neg", 1, 0);
    stages_[i].xs = &sim_.net(prefix + ".xs", 32, 0);
    stages_[i].cs = &sim_.net(prefix + ".cs", 32, 0);
    stages_[i].y_next = &sim_.net(prefix + ".y_next", 32, 0);
    stages_[i].z_next = &sim_.net(prefix + ".z_next", 32, 0);
    stages_[i].s_next = &sim_.net(prefix + ".s_next", 6, 0);
  }
  sim_.process("cordic.pipeline", {&clk_}, [this] { on_clock(); });
}

void CordicPipelineRtl::reset() {
  sim_.assign(*x_hold_, 0);
  sim_.assign(*y_hold_, 0);
  sim_.assign(*s0_hold_, 0);
  sim_.assign(*idx_, 0);
  for (Stage& stage : stages_) {
    sim_.assign(*stage.x, 0);
    sim_.assign(*stage.y, 0);
    sim_.assign(*stage.z, 0);
    sim_.assign(*stage.s, 0);
    sim_.assign(*stage.v, 0);
  }
  out_queue_.clear();
  sim_.settle();
}

void CordicPipelineRtl::on_clock() {
  if (!clk_.rose()) return;

  // ---- FSL slave side: inspect the incoming FIFO head. ---------------------
  const auto head = from_cpu_.peek();
  const bool exists = head.has_value();
  const bool is_control = exists && head->control;
  const bool data_accept = exists && !is_control;
  const bool ctrl_accept = exists && is_control;
  const u64 head_data = exists ? head->data : 0;
  const u64 idx_now = idx_->value();

  // ---- Per-PE datapath, evaluated structurally every cycle. -----------------
  const LogicVector one32 =
      LogicVector::of(32, static_cast<u32>(apps::cordic::kOneRaw));
  // Stage-1 inputs come from the deserializer.
  LogicVector x_in = x_hold_->read();
  LogicVector y_in = y_hold_->read();
  LogicVector z_in = LogicVector::of(32, head_data & 0xFFFFFFFFu);
  LogicVector s_in = s0_hold_->read();
  bool v_in = data_accept && idx_now == 2;

  for (Stage& stage : stages_) {
    // d selection, barrel-shifted operands, the two add/sub pairs. Each
    // primitive output drives its own signal (netlist fidelity).
    const Logic neg = rtl::lt_signed(y_in, LogicVector::of(32, 0));
    const LogicVector xs = rtl::barrel_shift_right_arith(
        x_in, rtl::truncate(s_in, 5));
    const LogicVector cs = rtl::barrel_shift_right_arith(
        one32, rtl::truncate(s_in, 5));
    const LogicVector y_next =
        rtl::mux2(neg, rtl::rc_sub(y_in, xs), rtl::rc_add(y_in, xs));
    const LogicVector z_next =
        rtl::mux2(neg, rtl::rc_add(z_in, cs), rtl::rc_sub(z_in, cs));
    const LogicVector s_next =
        rtl::rc_add(s_in, LogicVector::of(6, 1));
    sim_.assign(*stage.neg, LogicVector::of(1, neg == Logic::k1 ? 1 : 0));
    sim_.assign(*stage.xs, xs);
    sim_.assign(*stage.cs, cs);
    sim_.assign(*stage.y_next, y_next);
    sim_.assign(*stage.z_next, z_next);
    sim_.assign(*stage.s_next, s_next);

    // Latch into the stage registers; the *current* register values feed
    // the next stage this cycle (fully pipelined linear array).
    const LogicVector x_q = stage.x->read();
    const LogicVector y_q = stage.y->read();
    const LogicVector z_q = stage.z->read();
    const LogicVector s_q = stage.s->read();
    const bool v_q = stage.v->value() != 0;

    sim_.assign(*stage.x, x_in);
    sim_.assign(*stage.y, y_next);
    sim_.assign(*stage.z, z_next);
    sim_.assign(*stage.s, s_next);
    sim_.assign_bit(*stage.v, v_in);

    x_in = x_q;
    y_in = y_q;
    z_in = z_q;
    s_in = s_q;
    v_in = v_q;
  }

  // ---- Output serializer (x_in .. v_in now hold the last stage's
  // registered outputs). ------------------------------------------------------
  if (!out_queue_.empty() && !to_cpu_.full()) {
    to_cpu_.try_write(out_queue_.front(), false);
    out_queue_.pop_front();
  }
  if (v_in) {
    out_queue_.push_back(static_cast<Word>(x_in.value()));
    out_queue_.push_back(static_cast<Word>(y_in.value()));
    out_queue_.push_back(static_cast<Word>(z_in.value()));
  }

  // ---- Deserializer state update and FIFO pop. ------------------------------
  if (ctrl_accept) {
    sim_.assign(*s0_hold_, head_data & 0x3Fu);
  }
  if (data_accept) {
    if (idx_now == 0) sim_.assign(*x_hold_, head_data & 0xFFFFFFFFu);
    if (idx_now == 1) sim_.assign(*y_hold_, head_data & 0xFFFFFFFFu);
    sim_.assign(*idx_, (idx_now + 1) % 3);
  }
  if (exists) {
    (void)from_cpu_.try_read();
  }
}

void CordicPipelineRtl::save_state(ckpt::Writer& writer) const {
  writer.write_u64(out_queue_.size());
  for (const Word word : out_queue_) writer.write_u32(word);
}

bool CordicPipelineRtl::load_state(ckpt::Reader& reader) {
  const u64 backlog = reader.read_u64();
  if (!reader.ok()) return false;
  out_queue_.clear();
  for (u64 i = 0; i < backlog; ++i) out_queue_.push_back(reader.read_u32());
  return reader.ok();
}

}  // namespace mbcosim::rtlmodels
