#include "rtlmodels/system_rtl.hpp"

namespace mbcosim::rtlmodels {

RtlSystem::RtlSystem(const assembler::Program& program,
                     isa::CpuConfig cpu_config,
                     RtlPeripheralConfig peripheral, u32 memory_bytes)
    : memory_(memory_bytes) {
  memory_.load_program(program);
  clk_ = &sim_.net("clk", 1, 0);
  // Registration order fixes same-edge process execution order: the core
  // first (it produces FSL words), then the peripheral — mirroring the
  // co-simulation engine's step order (processor step, then hardware
  // cycles).
  core_ = std::make_unique<MbCoreRtl>(sim_, *clk_, cpu_config, memory_,
                                      &hub_);
  switch (peripheral.kind) {
    case RtlPeripheralConfig::Kind::kNone:
      break;
    case RtlPeripheralConfig::Kind::kCordic:
      cordic_ = std::make_unique<CordicPipelineRtl>(
          sim_, *clk_, peripheral.parameter, hub_.to_hw(0), hub_.from_hw(0));
      break;
    case RtlPeripheralConfig::Kind::kMatmul:
      matmul_ = std::make_unique<MatmulRtl>(
          sim_, *clk_, peripheral.parameter, hub_.to_hw(0), hub_.from_hw(0));
      break;
  }
  sim_.start();
  core_->reset(program.entry());
}

RtlStopReason RtlSystem::run(Cycle max_cycles) {
  const Cycle start = sim_.stats().clock_cycles;
  while (!core_->halted() &&
         sim_.stats().clock_cycles - start < max_cycles) {
    sim_.tick(*clk_);
  }
  if (core_->illegal()) return RtlStopReason::kIllegal;
  return core_->halted() ? RtlStopReason::kHalted : RtlStopReason::kCycleLimit;
}

}  // namespace mbcosim::rtlmodels
