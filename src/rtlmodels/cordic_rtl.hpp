// Structural RTL model of the CORDIC division pipeline — the low-level
// implementation that System Generator would generate from the block
// design in src/apps/cordic/cordic_hw.cpp, simulated by the event-driven
// kernel for the baseline measurements. Stage registers are kernel nets;
// the per-stage datapath (sign detect, two barrel shifters, two
// adder/subtractor pairs) is evaluated gate-by-gate through the
// structural primitives each clock cycle.
//
// Cycle behaviour is identical to the high-level sysgen pipeline: the
// cross-validation tests run the same program on both systems and demand
// bit- and cycle-exact agreement.
#pragma once

#include <deque>
#include <vector>

#include "fsl/fsl_channel.hpp"
#include "rtl/kernel.hpp"
#include "rtl/primitives.hpp"

namespace mbcosim::rtlmodels {

class CordicPipelineRtl {
 public:
  CordicPipelineRtl(rtl::Simulator& sim, rtl::Net& clk, unsigned num_pes,
                    fsl::FslChannel& from_cpu, fsl::FslChannel& to_cpu);

  [[nodiscard]] unsigned num_pes() const noexcept { return num_pes_; }

  void reset();

  /// Checkpoint the behavioral state living outside the kernel nets (the
  /// output serializer queue). The nets themselves are saved/restored by
  /// rtl::Simulator::save_state on the owning simulator.
  void save_state(ckpt::Writer& writer) const;
  [[nodiscard]] bool load_state(ckpt::Reader& reader);

 private:
  void on_clock();

  rtl::Simulator& sim_;
  rtl::Net& clk_;
  unsigned num_pes_;
  fsl::FslChannel& from_cpu_;
  fsl::FslChannel& to_cpu_;

  // Deserializer state.
  rtl::Net* x_hold_ = nullptr;
  rtl::Net* y_hold_ = nullptr;
  rtl::Net* s0_hold_ = nullptr;
  rtl::Net* idx_ = nullptr;

  // Pipeline stage registers (index 0 = first PE's output registers),
  // plus one signal per combinational primitive output in the PE's
  // datapath, updated every cycle like the elaborated netlist.
  struct Stage {
    rtl::Net* x = nullptr;
    rtl::Net* y = nullptr;
    rtl::Net* z = nullptr;
    rtl::Net* s = nullptr;
    rtl::Net* v = nullptr;
    rtl::Net* neg = nullptr;
    rtl::Net* xs = nullptr;
    rtl::Net* cs = nullptr;
    rtl::Net* y_next = nullptr;
    rtl::Net* z_next = nullptr;
    rtl::Net* s_next = nullptr;
  };
  std::vector<Stage> stages_;

  // Output serializer (behavioral queue + handshake, as in the custom
  // VectorSerializer block of the high-level model).
  std::deque<Word> out_queue_;
};

}  // namespace mbcosim::rtlmodels
