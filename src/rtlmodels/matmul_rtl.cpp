#include "rtlmodels/matmul_rtl.hpp"

#include <string>

#include "common/status.hpp"

namespace mbcosim::rtlmodels {

using rtl::Logic;
using rtl::LogicVector;

MatmulRtl::MatmulRtl(rtl::Simulator& sim, rtl::Net& clk, unsigned block_size,
                     fsl::FslChannel& from_cpu, fsl::FslChannel& to_cpu)
    : sim_(sim), clk_(clk), n_(block_size), from_cpu_(from_cpu),
      to_cpu_(to_cpu) {
  if (n_ < 2 || n_ > 4) {
    throw SimError("MatmulRtl: block size must be in [2, 4]");
  }
  for (unsigned k = 0; k < n_; ++k) {
    for (unsigned j = 0; j < n_; ++j) {
      b_regs_.push_back(&sim_.net(
          "matmul.b" + std::to_string(k) + std::to_string(j), 16, 0));
    }
  }
  b_idx_ = &sim_.net("matmul.b_idx", 5, 0);
  k_idx_ = &sim_.net("matmul.k_idx", 3, 0);
  for (unsigned j = 0; j < n_; ++j) {
    const std::string tag = "matmul.col" + std::to_string(j);
    accs_.push_back(&sim_.net(tag + ".acc", 36, 0));
    b_sel_nets_.push_back(&sim_.net(tag + ".bsel", 16, 0));
    product_nets_.push_back(&sim_.net(tag + ".product", 32, 0));
    acc_next_nets_.push_back(&sim_.net(tag + ".acc_next", 36, 0));
  }
  sim_.process("matmul.mac", {&clk_}, [this] { on_clock(); });
}

void MatmulRtl::reset() {
  for (rtl::Net* reg : b_regs_) sim_.assign(*reg, 0);
  sim_.assign(*b_idx_, 0);
  sim_.assign(*k_idx_, 0);
  for (rtl::Net* acc : accs_) sim_.assign(*acc, 0);
  out_queue_.clear();
  sim_.settle();
}

void MatmulRtl::on_clock() {
  if (!clk_.rose()) return;

  const auto head = from_cpu_.peek();
  const bool exists = head.has_value();
  const bool is_control = exists && head->control;
  const bool data_accept = exists && !is_control;
  const bool ctrl_accept = exists && is_control;
  const LogicVector a_element =
      LogicVector::of(16, exists ? (head->data & 0xFFFFu) : 0);

  const u64 k_now = k_idx_->value();
  const bool k_first = k_now == 0;
  const bool row_done = data_accept && k_now == n_ - 1;

  // ---- Streaming MAC datapath: n multipliers + n accumulators. -------------
  // The combinational array evaluates every cycle on whatever sits at its
  // inputs (multipliers do not know about handshakes); only the state
  // updates are qualified by data_accept.
  std::vector<Word> row(n_, 0);
  const LogicVector a_ext = rtl::sign_extend_v(a_element, 32);
  for (unsigned j = 0; j < n_; ++j) {
    // b[k][j] selected from column j of the register file.
    const LogicVector b_sel =
        b_regs_[static_cast<std::size_t>(k_now) * n_ + j]->read();
    const LogicVector product =
        rtl::array_multiply(a_ext, rtl::sign_extend_v(b_sel, 32));
    const LogicVector product36 = rtl::sign_extend_v(product, 36);
    const LogicVector sum = rtl::rc_add(accs_[j]->read(), product36);
    const LogicVector acc_next = k_first ? product36 : sum;
    sim_.assign(*b_sel_nets_[j], b_sel);
    sim_.assign(*product_nets_[j], product);
    sim_.assign(*acc_next_nets_[j], acc_next);
    if (data_accept) {
      sim_.assign(*accs_[j], acc_next);
      row[j] = static_cast<Word>(rtl::truncate(acc_next, 32).value());
    }
  }
  if (data_accept) {
    sim_.assign(*k_idx_, (k_now + 1) % n_);
  }

  // ---- Output serializer. ----------------------------------------------------
  if (!out_queue_.empty() && !to_cpu_.full()) {
    to_cpu_.try_write(out_queue_.front(), false);
    out_queue_.pop_front();
  }
  if (row_done) {
    for (unsigned j = 0; j < n_; ++j) out_queue_.push_back(row[j]);
  }

  // ---- Control-word loading of the B block. ----------------------------------
  if (ctrl_accept) {
    const u64 index = b_idx_->value();
    sim_.assign(*b_regs_[static_cast<std::size_t>(index)], a_element);
    sim_.assign(*b_idx_, (index + 1) % (static_cast<u64>(n_) * n_));
  }
  if (exists) {
    (void)from_cpu_.try_read();
  }
}

}  // namespace mbcosim::rtlmodels
