#include "rtlmodels/mb_core_rtl.hpp"

#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"

namespace mbcosim::rtlmodels {

using isa::Instruction;
using isa::Op;
using rtl::Logic;
using rtl::LogicVector;

namespace {
constexpr unsigned kWordBits = 32;
}

MbCoreRtl::MbCoreRtl(rtl::Simulator& sim, rtl::Net& clk, isa::CpuConfig config,
                     iss::LmbMemory& memory, fsl::FslHub* fsl_hub)
    : sim_(sim), clk_(clk), config_(config), memory_(memory),
      fsl_hub_(fsl_hub) {
  regs_.reserve(isa::kNumRegisters);
  for (unsigned i = 0; i < isa::kNumRegisters; ++i) {
    regs_.push_back(&sim_.net("cpu.r" + std::to_string(i), kWordBits, 0));
  }
  pc_ = &sim_.net("cpu.pc", kWordBits, 0);
  msr_ = &sim_.net("cpu.msr", kWordBits, 0);
  halt_net_ = &sim_.net("cpu.halted", 1, 0);
  op_a_net_ = &sim_.net("cpu.op_a", kWordBits, 0);
  op_b_net_ = &sim_.net("cpu.op_b", kWordBits, 0);
  result_net_ = &sim_.net("cpu.result", kWordBits, 0);
  sim_.process("cpu.exec", {&clk_}, [this] { on_clock(); });
}

void MbCoreRtl::reset(Addr pc) {
  for (rtl::Net* reg : regs_) sim_.assign(*reg, 0);
  sim_.assign(*pc_, pc);
  sim_.assign(*msr_, 0);
  sim_.assign_bit(*halt_net_, false);
  halted_ = false;
  illegal_ = false;
  halt_pending_ = false;
  wait_counter_ = 0;
  imm_prefix_.reset();
  delay_target_.reset();
  instructions_ = 0;
  sim_.settle();
}

Word MbCoreRtl::reg_value(unsigned index) const {
  if (index >= isa::kNumRegisters) {
    throw SimError("MbCoreRtl::reg_value out of range");
  }
  return static_cast<Word>(regs_[index]->value());
}

LogicVector MbCoreRtl::read_reg(unsigned index) const {
  return regs_[index]->read();
}

void MbCoreRtl::write_reg(unsigned index, const LogicVector& value) {
  if (!value.is_fully_known()) {
    throw SimError("MbCoreRtl: X propagated into register r" +
                   std::to_string(index));
  }
  // The result bus toggles regardless of the destination register.
  sim_.assign(*result_net_, value);
  if (index == 0) return;  // r0 is hard-wired to zero
  sim_.assign(*regs_[index], value);
}

LogicVector MbCoreRtl::operand_b(const Instruction& in) const {
  LogicVector value;
  if (!in.imm_form) {
    value = read_reg(in.rb);
  } else {
    u32 imm32;
    if (imm_prefix_) {
      imm32 = (u32(*imm_prefix_) << 16) | (static_cast<u32>(in.imm) & 0xFFFFu);
    } else {
      imm32 = static_cast<u32>(in.imm);
    }
    value = LogicVector::of(kWordBits, imm32);
  }
  // Drive the operand buses (events on every executed instruction).
  sim_.assign(*op_a_net_, regs_[in.ra]->read());
  sim_.assign(*op_b_net_, value);
  return value;
}

void MbCoreRtl::set_msr_bits(bool carry_bit, bool fsl_error_bit) {
  Word msr = static_cast<Word>(msr_->value());
  msr = carry_bit ? (msr | isa::Msr::kCarry) : (msr & ~isa::Msr::kCarry);
  if (fsl_error_bit) msr |= isa::Msr::kFslError;
  sim_.assign(*msr_, msr);
}

void MbCoreRtl::on_clock() {
  if (!clk_.rose() || halted_) return;
  if (wait_counter_ > 0) {
    if (--wait_counter_ == 0 && halt_pending_) {
      halted_ = true;
      sim_.assign_bit(*halt_net_, true);
    }
    return;
  }
  const Addr pc = static_cast<Addr>(pc_->value());
  if (!memory_.contains(pc, 4)) {
    illegal_ = true;
    halted_ = true;
    sim_.assign_bit(*halt_net_, true);
    return;
  }
  const Word raw = memory_.read_word(pc);
  execute(isa::decode(raw));
}

void MbCoreRtl::execute(const Instruction& in) {
  const Addr this_pc = static_cast<Addr>(pc_->value());
  const bool in_delay_slot = delay_target_.has_value();
  Addr next_pc = this_pc + 4;
  bool consume_imm_prefix = true;
  bool branch_taken = false;
  auto stall = [this] { wait_counter_ = 0; };
  auto go_illegal = [this] {
    illegal_ = true;
    halted_ = true;
    sim_.assign_bit(*halt_net_, true);
  };

  switch (in.op) {
    case Op::kAdd:
    case Op::kAddc:
    case Op::kAddk:
    case Op::kRsub:
    case Op::kRsubc:
    case Op::kRsubk: {
      const bool subtract =
          in.op == Op::kRsub || in.op == Op::kRsubc || in.op == Op::kRsubk;
      const bool use_carry = in.op == Op::kAddc || in.op == Op::kRsubc;
      const bool keep_carry = in.op == Op::kAddk || in.op == Op::kRsubk;
      const LogicVector a = subtract ? rtl::not_v(read_reg(in.ra))
                                     : read_reg(in.ra);
      const LogicVector b = operand_b(in);
      Logic cin = Logic::k0;
      if (subtract && !use_carry) {
        cin = Logic::k1;
      } else if (use_carry) {
        cin = carry() ? Logic::k1 : Logic::k0;
      }
      Logic cout = Logic::k0;
      const LogicVector sum = rtl::rc_add(a, b, cin, &cout);
      write_reg(in.rd, sum);
      if (!keep_carry) {
        set_msr_bits(cout == Logic::k1, false);
      }
      break;
    }
    case Op::kCmp:
    case Op::kCmpu: {
      const LogicVector ra = read_reg(in.ra);
      const LogicVector rb = read_reg(in.rb);
      LogicVector diff = rtl::rc_sub(rb, ra);
      bool less;
      if (in.op == Op::kCmp) {
        less = rtl::lt_signed(rb, ra) == Logic::k1;
      } else {
        Logic borrow_free = Logic::k0;
        (void)rtl::rc_sub(rb, ra, &borrow_free);
        less = borrow_free == Logic::k0;  // no carry out => rb < ra
      }
      diff.set(31, less ? Logic::k1 : Logic::k0);
      write_reg(in.rd, diff);
      break;
    }
    case Op::kMul: {
      if (!config_.has_multiplier) return go_illegal();
      write_reg(in.rd, rtl::array_multiply(read_reg(in.ra), operand_b(in)));
      break;
    }
    case Op::kIdiv:
    case Op::kIdivu: {
      if (!config_.has_divider) return go_illegal();
      // Behavioral division (the serial divider would iterate 32 steps;
      // the timing model charges them through base_latency).
      const u32 divisor = static_cast<u32>(read_reg(in.ra).value());
      const u32 dividend = static_cast<u32>(read_reg(in.rb).value());
      u32 quotient = 0;
      if (divisor != 0) {
        quotient = in.op == Op::kIdiv
                       ? static_cast<u32>(static_cast<i32>(dividend) /
                                          static_cast<i32>(divisor))
                       : dividend / divisor;
      }
      write_reg(in.rd, LogicVector::of(kWordBits, quotient));
      break;
    }
    case Op::kBsll:
    case Op::kBsra:
    case Op::kBsrl: {
      if (!config_.has_barrel_shifter) return go_illegal();
      const LogicVector amount = rtl::truncate(operand_b(in), 5);
      const LogicVector value = read_reg(in.ra);
      LogicVector result = value;
      if (in.op == Op::kBsll) {
        result = rtl::barrel_shift_left(value, amount);
      } else if (in.op == Op::kBsrl) {
        result = rtl::barrel_shift_right_logic(value, amount);
      } else {
        result = rtl::barrel_shift_right_arith(value, amount);
      }
      write_reg(in.rd, result);
      break;
    }
    case Op::kOr:
      write_reg(in.rd, rtl::or_v(read_reg(in.ra), operand_b(in)));
      break;
    case Op::kAnd:
      write_reg(in.rd, rtl::and_v(read_reg(in.ra), operand_b(in)));
      break;
    case Op::kXor:
      write_reg(in.rd, rtl::xor_v(read_reg(in.ra), operand_b(in)));
      break;
    case Op::kAndn:
      write_reg(in.rd,
                rtl::and_v(read_reg(in.ra), rtl::not_v(operand_b(in))));
      break;
    case Op::kSra:
    case Op::kSrl:
    case Op::kSrc: {
      const LogicVector value = read_reg(in.ra);
      LogicVector result = LogicVector::of(kWordBits, 0);
      for (unsigned i = 0; i + 1 < kWordBits; ++i) {
        result.set(i, value.at(i + 1));
      }
      if (in.op == Op::kSra) {
        result.set(31, value.at(31));
      } else if (in.op == Op::kSrc) {
        result.set(31, carry() ? Logic::k1 : Logic::k0);
      }  // kSrl: stays 0
      write_reg(in.rd, result);
      set_msr_bits(value.at(0) == Logic::k1, false);
      break;
    }
    case Op::kSext8:
      write_reg(in.rd, rtl::sign_extend_v(rtl::slice(read_reg(in.ra), 0, 8),
                                          kWordBits));
      break;
    case Op::kSext16:
      write_reg(in.rd, rtl::sign_extend_v(rtl::slice(read_reg(in.ra), 0, 16),
                                          kWordBits));
      break;
    case Op::kImm:
      imm_prefix_ = static_cast<u16>(static_cast<u32>(in.imm) & 0xFFFFu);
      consume_imm_prefix = false;
      break;
    case Op::kMfs:
      write_reg(in.rd, LogicVector::of(kWordBits,
                                       in.imm == 0 ? pc_->value()
                                                   : msr_->value()));
      break;
    case Op::kMts:
      sim_.assign(*msr_, read_reg(in.ra));
      break;
    case Op::kBr: {
      branch_taken = true;
      const LogicVector disp = operand_b(in);
      const Addr target =
          in.absolute
              ? static_cast<Addr>(disp.value())
              : static_cast<Addr>(
                    rtl::rc_add(LogicVector::of(kWordBits, this_pc), disp)
                        .value());
      if (in.link) write_reg(in.rd, LogicVector::of(kWordBits, this_pc));
      if (target == this_pc && !in.link) {
        // Branch-to-self: end of program. Burn the branch latency first.
        wait_counter_ =
            static_cast<unsigned>(isa::base_latency(in, true)) - 1;
        halt_pending_ = true;
        instructions_ += 1;
        if (wait_counter_ == 0) {
          halted_ = true;
          sim_.assign_bit(*halt_net_, true);
        }
        return;
      }
      if (in_delay_slot) return go_illegal();
      if (in.delay_slot) {
        delay_target_ = target;
      } else {
        next_pc = target;
      }
      break;
    }
    case Op::kBcc: {
      const LogicVector value = read_reg(in.ra);
      const LogicVector zero = LogicVector::of(kWordBits, 0);
      const bool is_zero = rtl::eq_v(value, zero) == Logic::k1;
      const bool is_neg = value.at(31) == Logic::k1;
      bool taken = false;
      switch (in.cond) {
        case isa::Cond::kEq: taken = is_zero; break;
        case isa::Cond::kNe: taken = !is_zero; break;
        case isa::Cond::kLt: taken = is_neg; break;
        case isa::Cond::kLe: taken = is_neg || is_zero; break;
        case isa::Cond::kGt: taken = !is_neg && !is_zero; break;
        case isa::Cond::kGe: taken = !is_neg; break;
      }
      branch_taken = taken;
      if (taken) {
        const Addr target = static_cast<Addr>(
            rtl::rc_add(LogicVector::of(kWordBits, this_pc), operand_b(in))
                .value());
        if (in_delay_slot) return go_illegal();
        if (in.delay_slot) {
          delay_target_ = target;
        } else {
          next_pc = target;
        }
      }
      break;
    }
    case Op::kRtsd: {
      branch_taken = true;
      const Addr target = static_cast<Addr>(
          rtl::rc_add(read_reg(in.ra),
                      LogicVector::of(kWordBits, static_cast<u32>(in.imm)))
              .value());
      if (in_delay_slot) return go_illegal();
      delay_target_ = target;
      break;
    }
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLw: {
      const Addr addr = static_cast<Addr>(
          rtl::rc_add(read_reg(in.ra), operand_b(in)).value());
      const unsigned bytes =
          in.op == Op::kLbu ? 1u : in.op == Op::kLhu ? 2u : 4u;
      if (!memory_.contains(addr & ~Addr{bytes - 1}, bytes)) {
        return go_illegal();
      }
      const Word value = bytes == 1 ? memory_.read_byte(addr)
                         : bytes == 2 ? memory_.read_half(addr)
                                      : memory_.read_word(addr);
      write_reg(in.rd, LogicVector::of(kWordBits, value));
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      const Addr addr = static_cast<Addr>(
          rtl::rc_add(read_reg(in.ra), operand_b(in)).value());
      const unsigned bytes = in.op == Op::kSb ? 1u : in.op == Op::kSh ? 2u : 4u;
      if (!memory_.contains(addr & ~Addr{bytes - 1}, bytes)) {
        return go_illegal();
      }
      const Word value = static_cast<Word>(read_reg(in.rd).value());
      if (bytes == 1) {
        memory_.write_byte(addr, static_cast<u8>(value));
      } else if (bytes == 2) {
        memory_.write_half(addr, static_cast<u16>(value));
      } else {
        memory_.write_word(addr, value);
      }
      break;
    }
    case Op::kGet: {
      if (fsl_hub_ == nullptr || in.fsl_id >= config_.fsl_links) {
        return go_illegal();
      }
      auto& channel = fsl_hub_->from_hw(in.fsl_id);
      if (!channel.exists()) {
        if (in.fsl_nonblocking) {
          set_msr_bits(true, false);
          break;
        }
        return stall();
      }
      const auto entry = channel.try_read();
      write_reg(in.rd, LogicVector::of(kWordBits, entry->data));
      const bool fsl_error = entry->control != in.fsl_control;
      if (in.fsl_nonblocking) {
        set_msr_bits(false, fsl_error);
      } else if (fsl_error) {
        sim_.assign(*msr_, static_cast<Word>(msr_->value()) |
                               isa::Msr::kFslError);
      }
      break;
    }
    case Op::kPut: {
      if (fsl_hub_ == nullptr || in.fsl_id >= config_.fsl_links) {
        return go_illegal();
      }
      auto& channel = fsl_hub_->to_hw(in.fsl_id);
      if (channel.full()) {
        if (in.fsl_nonblocking) {
          set_msr_bits(true, false);
          break;
        }
        return stall();
      }
      channel.try_write(static_cast<Word>(read_reg(in.ra).value()),
                        in.fsl_control);
      if (in.fsl_nonblocking) set_msr_bits(false, false);
      break;
    }
    case Op::kCustom:
      // Custom-instruction units are a high-level (Nios-style) feature of
      // the co-simulation environment; the generated low-level model does
      // not include user datapaths, so executing one here is an error.
      return go_illegal();
    case Op::kIllegal:
      return go_illegal();
  }

  if (consume_imm_prefix) imm_prefix_.reset();

  if (in_delay_slot) {
    next_pc = *delay_target_;
    delay_target_.reset();
  }
  sim_.assign(*pc_, next_pc);
  wait_counter_ =
      static_cast<unsigned>(isa::base_latency(in, branch_taken)) - 1;
  instructions_ += 1;
}

}  // namespace mbcosim::rtlmodels
