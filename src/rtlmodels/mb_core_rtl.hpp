// Low-level model of the MB32 soft processor for the baseline simulator —
// the analog of simulating the vendor's MicroBlaze HDL model in ModelSim
// (the paper's Table I baseline). The architectural state lives in
// kernel signals (32 register nets, PC, MSR), every datapath operation is
// evaluated through the structural bit-level primitives (ripple-carry
// adders, barrel-shifter mux trees, a shift-add array multiplier), and
// the model advances through the event-driven kernel's delta cycles.
//
// Timing contract: the core is a multi-cycle behavioral model whose
// per-instruction cycle counts equal isa::base_latency plus one cycle per
// blocked FSL attempt — i.e. exactly the timing of the high-level ISS.
// This is what lets the test suite cross-validate the two simulators
// cycle-for-cycle (the paper's definition of high-level cycle accuracy
// demands that the high-level simulation match the low-level one).
//
// The BRAM contents and the FSL FIFO queues are shared behavioral state
// (an iss::LmbMemory and fsl::FslHub), as they would be `shared variable`
// arrays in a behavioral VHDL model.
#pragma once

#include <optional>
#include <vector>

#include "fsl/fsl_hub.hpp"
#include "isa/isa.hpp"
#include "iss/memory.hpp"
#include "rtl/kernel.hpp"
#include "rtl/primitives.hpp"

namespace mbcosim::rtlmodels {

class MbCoreRtl {
 public:
  MbCoreRtl(rtl::Simulator& sim, rtl::Net& clk, isa::CpuConfig config,
            iss::LmbMemory& memory, fsl::FslHub* fsl_hub);

  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] bool illegal() const noexcept { return illegal_; }
  [[nodiscard]] Addr pc_value() const { return static_cast<Addr>(pc_->value()); }
  [[nodiscard]] Word reg_value(unsigned index) const;
  [[nodiscard]] Word msr_value() const {
    return static_cast<Word>(msr_->value());
  }
  [[nodiscard]] u64 instructions_retired() const noexcept {
    return instructions_;
  }

  void reset(Addr pc);

 private:
  void on_clock();
  void execute(const isa::Instruction& in);
  [[nodiscard]] rtl::LogicVector read_reg(unsigned index) const;
  void write_reg(unsigned index, const rtl::LogicVector& value);
  [[nodiscard]] rtl::LogicVector operand_b(const isa::Instruction& in) const;
  [[nodiscard]] bool carry() const { return (msr_->value() & 1u) != 0; }
  void set_msr_bits(bool carry_bit, bool fsl_error_bit);

  rtl::Simulator& sim_;
  rtl::Net& clk_;
  isa::CpuConfig config_;
  iss::LmbMemory& memory_;
  fsl::FslHub* fsl_hub_;

  std::vector<rtl::Net*> regs_;
  rtl::Net* pc_ = nullptr;
  rtl::Net* msr_ = nullptr;
  rtl::Net* halt_net_ = nullptr;
  // Datapath signals driven on every executed instruction (operand buses
  // and the ALU result), as in the core's netlist.
  rtl::Net* op_a_net_ = nullptr;
  rtl::Net* op_b_net_ = nullptr;
  rtl::Net* result_net_ = nullptr;

  bool halted_ = false;
  bool illegal_ = false;
  bool halt_pending_ = false;  ///< halting branch still burning latency
  unsigned wait_counter_ = 0;
  std::optional<u16> imm_prefix_;
  std::optional<Addr> delay_target_;
  u64 instructions_ = 0;
};

}  // namespace mbcosim::rtlmodels
