// Full-system low-level simulation testbench: soft-processor core +
// FSL FIFOs + (optionally) one of the two application peripherals, all on
// one clock, simulated by the event-driven kernel. This is the analog of
// behavioral simulation of the complete generated design in ModelSim —
// the baseline the paper's Table I compares the co-simulation
// environment against.
#pragma once

#include <memory>
#include <optional>

#include "asm/program.hpp"
#include "fsl/fsl_hub.hpp"
#include "iss/memory.hpp"
#include "rtl/kernel.hpp"
#include "rtlmodels/cordic_rtl.hpp"
#include "rtlmodels/matmul_rtl.hpp"
#include "rtlmodels/mb_core_rtl.hpp"

namespace mbcosim::rtlmodels {

/// Which customized hardware peripheral is instantiated next to the core.
struct RtlPeripheralConfig {
  enum class Kind : u8 { kNone, kCordic, kMatmul };
  Kind kind = Kind::kNone;
  unsigned parameter = 0;  ///< P for CORDIC, block size for matmul
};

enum class RtlStopReason : u8 { kHalted, kCycleLimit, kIllegal };

class RtlSystem {
 public:
  RtlSystem(const assembler::Program& program, isa::CpuConfig cpu_config,
            RtlPeripheralConfig peripheral,
            u32 memory_bytes = 64 * 1024);

  /// Run full clock cycles until the program halts or the budget is out.
  RtlStopReason run(Cycle max_cycles);

  [[nodiscard]] Cycle cycles() const noexcept {
    return sim_.stats().clock_cycles;
  }
  [[nodiscard]] const rtl::KernelStats& kernel_stats() const noexcept {
    return sim_.stats();
  }
  [[nodiscard]] MbCoreRtl& core() noexcept { return *core_; }
  [[nodiscard]] iss::LmbMemory& memory() noexcept { return memory_; }
  [[nodiscard]] rtl::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] rtl::Net& clock() noexcept { return *clk_; }

  /// Advance exactly one clock cycle (for probe/waveform loops).
  void tick() { sim_.tick(*clk_); }

 private:
  rtl::Simulator sim_;
  iss::LmbMemory memory_;
  fsl::FslHub hub_;
  rtl::Net* clk_ = nullptr;
  std::unique_ptr<MbCoreRtl> core_;
  std::unique_ptr<CordicPipelineRtl> cordic_;
  std::unique_ptr<MatmulRtl> matmul_;
};

}  // namespace mbcosim::rtlmodels
