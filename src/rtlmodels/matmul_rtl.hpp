// Structural RTL model of the n x n block matrix multiplication
// peripheral (the low-level counterpart of src/apps/matmul/matmul_hw.cpp)
// for the baseline simulator. The B-block register file, the stream
// counter and the accumulators are kernel nets; the multipliers are
// shift-add arrays and the accumulators ripple-carry adders, evaluated
// bit by bit each clock cycle. Cycle behaviour matches the high-level
// model exactly (cross-validated by the test suite).
#pragma once

#include <deque>
#include <vector>

#include "fsl/fsl_channel.hpp"
#include "rtl/kernel.hpp"
#include "rtl/primitives.hpp"

namespace mbcosim::rtlmodels {

class MatmulRtl {
 public:
  MatmulRtl(rtl::Simulator& sim, rtl::Net& clk, unsigned block_size,
            fsl::FslChannel& from_cpu, fsl::FslChannel& to_cpu);

  [[nodiscard]] unsigned block_size() const noexcept { return n_; }

  void reset();

 private:
  void on_clock();

  rtl::Simulator& sim_;
  rtl::Net& clk_;
  unsigned n_;
  fsl::FslChannel& from_cpu_;
  fsl::FslChannel& to_cpu_;

  std::vector<rtl::Net*> b_regs_;  ///< n*n 16-bit registers, row-major
  rtl::Net* b_idx_ = nullptr;      ///< control-word load index
  rtl::Net* k_idx_ = nullptr;      ///< stream position within a row
  std::vector<rtl::Net*> accs_;    ///< n accumulators (36-bit)
  // Combinational primitive outputs, one signal per netlist node (the
  // b-column mux, the multiplier, the adder and the restart mux of each
  // column) -- updated every cycle like the hardware they model.
  std::vector<rtl::Net*> b_sel_nets_;
  std::vector<rtl::Net*> product_nets_;
  std::vector<rtl::Net*> acc_next_nets_;

  std::deque<Word> out_queue_;
};

}  // namespace mbcosim::rtlmodels
