#include "ckpt/ckpt.hpp"

#include <cstdio>
#include <string>

namespace mbcosim::ckpt {
namespace {

std::string code_message(const char* code, const std::string& detail) {
  return std::string(code) + " " + detail;
}

}  // namespace

u64 fnv1a(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  u64 hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::vector<unsigned char> seal(std::vector<unsigned char> payload) {
  Writer header;
  header.write_bytes(kMagic, sizeof(kMagic));
  header.write_u32(kFormatVersion);
  header.write_u64(payload.size());
  header.write_u64(fnv1a(payload.data(), payload.size()));
  std::vector<unsigned char> image = header.take();
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

Expected<std::vector<unsigned char>> unseal(
    const std::vector<unsigned char>& image) {
  using Result = Expected<std::vector<unsigned char>>;
  if (image.size() < kHeaderBytes) {
    return Result::failure(code_message(
        "[ckpt-truncated]",
        "image of " + std::to_string(image.size()) +
            " bytes is shorter than the " + std::to_string(kHeaderBytes) +
            "-byte header"));
  }
  Reader header(image.data(), kHeaderBytes);
  unsigned char magic[4] = {};
  header.read_bytes(magic, sizeof(magic));
  if (magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    return Result::failure(
        code_message("[ckpt-magic]", "not a checkpoint image (bad magic)"));
  }
  const u32 version = header.read_u32();
  if (version != kFormatVersion) {
    return Result::failure(code_message(
        "[ckpt-version]", "image format version " + std::to_string(version) +
                              ", this build reads version " +
                              std::to_string(kFormatVersion)));
  }
  const u64 payload_size = header.read_u64();
  const u64 checksum = header.read_u64();
  if (image.size() - kHeaderBytes != payload_size) {
    return Result::failure(code_message(
        "[ckpt-truncated]",
        "header claims a " + std::to_string(payload_size) +
            "-byte payload but the image carries " +
            std::to_string(image.size() - kHeaderBytes) + " bytes"));
  }
  const u64 actual =
      fnv1a(image.data() + kHeaderBytes, static_cast<std::size_t>(payload_size));
  if (actual != checksum) {
    return Result::failure(code_message(
        "[ckpt-corrupt]", "payload checksum mismatch (image is damaged)"));
  }
  return std::vector<unsigned char>(image.begin() + kHeaderBytes, image.end());
}

Status write_file(const std::string& path,
                  const std::vector<unsigned char>& image) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::failure(
        code_message("[ckpt-io]", "cannot open '" + path + "' for writing"));
  }
  const std::size_t written =
      image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), file);
  const int close_result = std::fclose(file);
  if (written != image.size() || close_result != 0) {
    return Status::failure(
        code_message("[ckpt-io]", "short write to '" + path + "'"));
  }
  return {};
}

Expected<std::vector<unsigned char>> read_file(const std::string& path) {
  using Result = Expected<std::vector<unsigned char>>;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Result::failure(
        code_message("[ckpt-io]", "cannot open '" + path + "' for reading"));
  }
  std::vector<unsigned char> image;
  unsigned char chunk[4096];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof(chunk), file);
    image.insert(image.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Result::failure(
        code_message("[ckpt-io]", "read error on '" + path + "'"));
  }
  return image;
}

Expected<std::vector<unsigned char>> read_sealed(const std::string& path) {
  Expected<std::vector<unsigned char>> image = read_file(path);
  if (!image) return image;
  return unseal(image.value());
}

}  // namespace mbcosim::ckpt
