// Versioned full-system checkpoint format: a little-endian byte codec
// (Writer/Reader), an on-disk image container with a checksummed header,
// and the stable bracketed error codes restore failures report through.
//
// Layering: this module depends only on common/. Every stateful
// component (iss::Processor, fsl::FslChannel, sysgen::Model, the OPB
// peripherals, core engines, rtl::Simulator) implements
// save_state(ckpt::Writer&) / load_state(ckpt::Reader&) against these
// types, and sim::SimSystem concatenates them into one image
// (DESIGN.md §11 documents the layout).
//
// Error channel: matching machine::kDescErrorCodes, sealing and
// restoring never throw and never exit. Every failure comes back as a
// Status/Expected whose message starts with a stable bracketed code
// from kCkptErrorCodes, so callers (and tests) can dispatch on the
// class of error without string-matching prose.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace mbcosim::ckpt {

/// Stable bracketed codes prefixed to every checkpoint error message.
/// Tests assert on these; add new codes at the end, never rename.
inline constexpr const char* kCkptErrorCodes[] = {
    "[ckpt-io]",         // file unreadable / unwritable
    "[ckpt-magic]",      // not a checkpoint image
    "[ckpt-version]",    // written by an incompatible format version
    "[ckpt-truncated]",  // image shorter than its header claims
    "[ckpt-corrupt]",    // header checksum does not match the payload
    "[ckpt-shape]",      // snapshot of a different machine / component
};

/// On-disk format version. Bump on any layout change; readers reject
/// other versions with [ckpt-version] instead of guessing.
inline constexpr u32 kFormatVersion = 1;

/// Image header, 24 bytes, little-endian like everything else:
///   bytes 0..3   magic "MBCK"
///   bytes 4..7   u32 format version
///   bytes 8..15  u64 payload size
///   bytes 16..23 u64 FNV-1a checksum of the payload
inline constexpr unsigned char kMagic[4] = {'M', 'B', 'C', 'K'};
inline constexpr std::size_t kHeaderBytes = 24;

/// FNV-1a over a byte range — the header checksum and the machine-shape
/// fingerprint both use it.
[[nodiscard]] u64 fnv1a(const void* data, std::size_t size) noexcept;
[[nodiscard]] inline u64 fnv1a(std::string_view text) noexcept {
  return fnv1a(text.data(), text.size());
}

/// Append-only little-endian encoder. Every field is written byte by
/// byte so an image produced on any host byte order is identical.
class Writer {
 public:
  void write_u8(u8 value) { buf_.push_back(value); }
  void write_u16(u16 value) {
    write_u8(static_cast<u8>(value & 0xff));
    write_u8(static_cast<u8>(value >> 8));
  }
  void write_u32(u32 value) {
    write_u16(static_cast<u16>(value & 0xffff));
    write_u16(static_cast<u16>(value >> 16));
  }
  void write_u64(u64 value) {
    write_u32(static_cast<u32>(value & 0xffffffffull));
    write_u32(static_cast<u32>(value >> 32));
  }
  void write_i64(i64 value) { write_u64(static_cast<u64>(value)); }
  void write_bool(bool value) { write_u8(value ? 1 : 0); }
  void write_bytes(const void* data, std::size_t size) {
    // resize + memcpy instead of insert(end, first, last): the range
    // insert's inlined grow path trips a GCC 12 -Wstringop-overflow
    // false positive under -fsanitize=thread, and this is also the
    // fastest append for the bulk memory images that dominate here.
    if (size == 0) return;
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + size);
    std::memcpy(buf_.data() + old_size, data, size);
  }
  void write_str(std::string_view text) {
    write_u64(text.size());
    write_bytes(text.data(), text.size());
  }

  [[nodiscard]] const std::vector<unsigned char>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<unsigned char> take() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<unsigned char> buf_;
};

/// Matching decoder. Reads past the end do not throw: they return zero
/// values and latch an underrun flag, so component load_state code can
/// run a whole fixed layout and check ok() / its own shape fields once.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<unsigned char>& payload) noexcept
      : Reader(payload.data(), payload.size()) {}

  [[nodiscard]] u8 read_u8() noexcept {
    if (pos_ >= size_) {
      underrun_ = true;
      return 0;
    }
    return data_[pos_++];
  }
  [[nodiscard]] u16 read_u16() noexcept {
    const u16 lo = read_u8();
    const u16 hi = read_u8();
    return static_cast<u16>(lo | (hi << 8));
  }
  [[nodiscard]] u32 read_u32() noexcept {
    const u32 lo = read_u16();
    const u32 hi = read_u16();
    return lo | (hi << 16);
  }
  [[nodiscard]] u64 read_u64() noexcept {
    const u64 lo = read_u32();
    const u64 hi = read_u32();
    return lo | (hi << 32);
  }
  [[nodiscard]] i64 read_i64() noexcept {
    return static_cast<i64>(read_u64());
  }
  [[nodiscard]] bool read_bool() noexcept { return read_u8() != 0; }
  bool read_bytes(void* out, std::size_t size) noexcept {
    if (size_ - pos_ < size) {
      pos_ = size_;
      underrun_ = true;
      return false;
    }
    auto* bytes = static_cast<unsigned char*>(out);
    for (std::size_t i = 0; i < size; ++i) bytes[i] = data_[pos_ + i];
    pos_ += size;
    return true;
  }
  [[nodiscard]] std::string read_str() {
    const u64 size = read_u64();
    if (size_ - pos_ < size) {
      pos_ = size_;
      underrun_ = true;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(data_ + pos_),
                     static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return text;
  }

  /// False once any read ran past the end of the payload.
  [[nodiscard]] bool ok() const noexcept { return !underrun_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool underrun_ = false;
};

/// Frame a payload into a complete image: header + payload.
[[nodiscard]] std::vector<unsigned char> seal(
    std::vector<unsigned char> payload);

/// Verify an image's header (magic, version, size, checksum) and return
/// its payload. Errors: [ckpt-magic], [ckpt-version], [ckpt-truncated],
/// [ckpt-corrupt].
[[nodiscard]] Expected<std::vector<unsigned char>> unseal(
    const std::vector<unsigned char>& image);

/// Whole-image file I/O. Errors: [ckpt-io].
[[nodiscard]] Status write_file(const std::string& path,
                                const std::vector<unsigned char>& image);
[[nodiscard]] Expected<std::vector<unsigned char>> read_file(
    const std::string& path);

/// read_file + unseal in one step: load a sealed image file and return
/// its verified payload. The read side of the journal's skip-corrupt-
/// tail path — every way a file can be damaged (missing, zero-length,
/// truncated, bit-flipped) comes back as a structured [ckpt-*] error.
[[nodiscard]] Expected<std::vector<unsigned char>> read_sealed(
    const std::string& path);

}  // namespace mbcosim::ckpt
