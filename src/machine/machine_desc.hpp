// Declarative machine descriptions — the unit of construction for the
// co-simulator. A MachineDesc says *what* to build: how many soft
// processors, what program and ISA options each runs, which hardware
// peripherals hang off which FSL channels, and which FSL channels are
// cross-wired between cores (the paper's Figure 3 topology, generalized
// from one MicroBlaze to a farm of them). It deliberately contains no
// live simulator objects, so a description can be parsed from a JSON
// file, validated, pretty-printed back, replicated, and handed to
// sim::SimSystem::Builder::machine() to be instantiated — the same
// split Simulink makes between a block diagram and a running model.
//
// Error channel: parsing and validation never throw and never exit.
// Every failure comes back as an Expected/Status whose message starts
// with a stable bracketed error code ("[duplicate-core] ..."), so
// callers (and tests) can dispatch on the class of error without
// string-matching prose. The full code list is kDescErrorCodes below.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "iss/exec_tier.hpp"

namespace mbcosim::common::json {
struct Value;
}  // namespace mbcosim::common::json

namespace mbcosim::machine {

/// Stable bracketed codes prefixed to every description error message.
/// Tests assert on these; add new codes at the end, never rename.
inline constexpr const char* kDescErrorCodes[] = {
    "[json-syntax]",     // malformed JSON text
    "[missing-field]",   // required key absent
    "[bad-field]",       // key present but wrong type / out of range
    "[no-cores]",        // machine has an empty core list
    "[bad-core-name]",   // empty or non [A-Za-z0-9_] core name
    "[duplicate-core]",  // two cores share a name
    "[no-program]",      // core has neither program nor program_file
    "[program-conflict]",// core has both program and program_file
    "[bad-memory]",      // zero or non-word-multiple memory size
    "[bad-quantum]",     // zero synchronization quantum
    "[bad-fifo-depth]",  // zero FSL FIFO depth
    "[unknown-core]",    // link/peripheral names a core that does not exist
    "[channel-range]",   // FSL channel id outside 0..7
    "[self-link]",       // link with from == to
    "[link-conflict]",   // two links claim the same channel endpoint
    "[channel-conflict]",// peripheral and link (or two peripherals) collide
    "[file-io]",         // machine or program file unreadable
    "[bad-exec-tier]",   // exec_tier is not precise/predecode/dbt
};

/// One soft processor: its program plus the ISA/memory options that the
/// single-core Builder used to take directly.
struct CoreDesc {
  std::string name;          ///< unique id, [A-Za-z0-9_]+ ("cpu0", "feeder")
  std::string program;       ///< inline MB32 assembly source, or
  std::string program_file;  ///< path to a .s file (exactly one of the two)
  std::size_t memory_bytes = 64 * 1024;
  bool has_barrel_shifter = true;
  bool has_multiplier = true;
  bool has_divider = false;
  bool predecode = true;     ///< legacy on/off: false forces the precise tier
  /// Execution tier when `predecode` is true (JSON key "exec_tier":
  /// "precise" | "predecode" | "dbt"; see iss::ExecTier).
  iss::ExecTier exec_tier = iss::ExecTier::kDbt;
};

/// A cross-core FSL wire: writer core's `put` channel `from_channel`
/// feeds reader core's `get` channel `to_channel`. Transfers happen at
/// quantum boundaries in declaration order (see DESIGN.md §10).
struct LinkDesc {
  std::string from;
  unsigned from_channel = 0;
  std::string to;
  unsigned to_channel = 0;
};

/// A hardware peripheral attached to one core's FSL channel pair. The
/// `type` is resolved against sim::PeripheralRegistry at build time
/// ("cordic", "matmul", plus whatever the embedding registers).
struct PeripheralDesc {
  std::string core;
  std::string type;
  unsigned channel = 0;
  /// Type-specific integer parameters ("num_pes": 8, "block_size": 4).
  std::map<std::string, long long> params;
};

struct MachineDesc {
  std::vector<CoreDesc> cores;
  std::vector<LinkDesc> links;
  std::vector<PeripheralDesc> peripherals;
  std::size_t fifo_depth = 16;  ///< depth of every FSL FIFO in the machine
  /// Conservative synchronization quantum: cores run this many cycles
  /// between cross-link transfer points. Results are quantum-dependent
  /// but worker-count-independent (DESIGN.md §10).
  Cycle quantum = 64;

  /// The historical single-core shape: one core named "cpu0" running
  /// `program`, no links, no declared peripherals (the legacy Builder
  /// attaches its hardware() bundle to it directly).
  [[nodiscard]] static MachineDesc single_core(std::string program);

  /// `count` copies of `core_template`, named <stem>0..<stem>N-1 (the
  /// template's name is the stem, default "cpu"), with no links — the
  /// starting point for farm topologies.
  [[nodiscard]] static MachineDesc replicated(std::size_t count,
                                              CoreDesc core_template);

  /// Parse a description from JSON text / from a file. File-relative
  /// `program_file` entries parsed via from_file() are rewritten to be
  /// relative to the machine file's directory. Both return a validated
  /// description or a "[code] message" error.
  [[nodiscard]] static Expected<MachineDesc> from_json(const std::string& text);
  [[nodiscard]] static Expected<MachineDesc> from_file(const std::string& path);
  /// Build from an already-parsed common::json document (the simulation
  /// server passes the "machine" subtree of a request body straight
  /// through). No path rewriting happens here: `program_file` entries
  /// resolve against the *consumer's* working directory, so inline
  /// `program` text is the portable choice for over-the-wire machines.
  [[nodiscard]] static Expected<MachineDesc> from_value(
      const common::json::Value& root);

  /// Serialize back to JSON. from_json(to_json()) round-trips exactly.
  [[nodiscard]] std::string to_json() const;

  /// Structural validation (names, programs, channel graph). from_json /
  /// from_file already validate; call this after programmatic edits.
  [[nodiscard]] Status validate() const;

  /// Index of the named core, or cores.size() when absent.
  [[nodiscard]] std::size_t core_index(const std::string& name) const;
  [[nodiscard]] const CoreDesc* find_core(const std::string& name) const;
};

}  // namespace mbcosim::machine
